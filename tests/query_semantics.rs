//! Integration: every architecture implements the same query semantics
//! (Eq. 2) — `Σᵢ αᵢ|i⟩|0⟩ → Σᵢ αᵢ|i⟩|xᵢ⟩` with clean ancillas.

use qram::core::{
    BucketBrigadeQram, FanoutQram, Memory, QueryArchitecture, SelectSwapQram, Sqc, VirtualQram,
};
use qram::sim::{run, Amplitude, PathState};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn architectures(n: usize) -> Vec<Box<dyn QueryArchitecture>> {
    let mut archs: Vec<Box<dyn QueryArchitecture>> = vec![
        Box::new(Sqc::new(n)),
        Box::new(FanoutQram::new(n)),
        Box::new(BucketBrigadeQram::new(0, n)),
        Box::new(SelectSwapQram::new(0, n)),
        Box::new(VirtualQram::new(0, n)),
    ];
    if n >= 2 {
        archs.push(Box::new(BucketBrigadeQram::new(1, n - 1)));
        archs.push(Box::new(SelectSwapQram::new(1, n - 1)));
        archs.push(Box::new(VirtualQram::new(1, n - 1)));
    }
    if n >= 3 {
        archs.push(Box::new(VirtualQram::new(2, n - 2)));
        archs.push(Box::new(SelectSwapQram::new(n - 2, 2)));
    }
    archs
}

#[test]
fn every_architecture_verifies_on_random_memories() {
    for n in 1..=4 {
        let memory = Memory::random(n, &mut StdRng::seed_from_u64(100 + n as u64));
        for arch in architectures(n) {
            arch.build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("{} on n={n}: {e}", arch.name()));
        }
    }
}

#[test]
fn every_architecture_verifies_on_extreme_memories() {
    let n = 3;
    for memory in [Memory::zeroed(n), Memory::ones(n)] {
        for arch in architectures(n) {
            arch.build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
        }
    }
}

#[test]
fn architectures_agree_cell_by_cell() {
    let n = 4;
    let memory = Memory::random(n, &mut StdRng::seed_from_u64(17));
    for arch in architectures(n) {
        let query = arch.build(&memory);
        for address in 0..(1u64 << n) {
            assert_eq!(
                query.query_classical(address).expect("clean query"),
                memory.get(address as usize),
                "{} at address {address}",
                arch.name()
            );
        }
    }
}

#[test]
fn nonuniform_superpositions_are_preserved() {
    // A biased input: amplitudes ∝ (1, 2, 3, …), properly normalized.
    let n = 3;
    let memory = Memory::random(n, &mut StdRng::seed_from_u64(23));
    let raw: Vec<f64> = (1..=(1 << n)).map(|i| i as f64).collect();
    let norm: f64 = raw.iter().map(|a| a * a).sum::<f64>().sqrt();
    let amps: Vec<Amplitude> = raw.iter().map(|a| Amplitude::real(a / norm)).collect();

    for arch in architectures(n) {
        let query = arch.build(&memory);
        let mut state = query.input_state(Some(&amps));
        run(query.circuit().gates(), &mut state).expect("simulable");
        let ideal = query.ideal_output(&memory, Some(&amps));
        let fidelity = ideal.fidelity(&state);
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "{}: fidelity {fidelity}",
            arch.name()
        );
    }
}

#[test]
fn complex_amplitudes_survive_the_query() {
    // Phases must ride along untouched (classical-reversible circuits
    // never mix amplitudes).
    let n = 2;
    let memory = Memory::from_bits([true, false, false, true]);
    let amps = [
        Amplitude::new(0.5, 0.0),
        Amplitude::new(0.0, 0.5),
        Amplitude::new(-0.5, 0.0),
        Amplitude::new(0.0, -0.5),
    ];
    for arch in architectures(n) {
        let query = arch.build(&memory);
        let mut state = query.input_state(Some(&amps));
        run(query.circuit().gates(), &mut state).expect("simulable");
        let ideal = query.ideal_output(&memory, Some(&amps));
        assert!(
            (ideal.fidelity(&state) - 1.0).abs() < 1e-9,
            "{}",
            arch.name()
        );
    }
}

#[test]
fn double_query_is_identity_on_the_bus() {
    // Querying twice XORs xᵢ twice: the bus returns to |0⟩ on every
    // branch (the standard uncompute-by-requery trick).
    let memory = Memory::random(3, &mut StdRng::seed_from_u64(31));
    let arch = VirtualQram::new(1, 2);
    let query = arch.build(&memory);
    let input = query.input_state(None);
    let mut state = input.clone();
    run(query.circuit().gates(), &mut state).expect("simulable");
    run(query.circuit().gates(), &mut state).expect("simulable");
    assert!((state.fidelity(&input) - 1.0).abs() < 1e-9);
}

#[test]
fn wide_memory_queries_one_plane_at_a_time() {
    // Sec. 8 extension: a w-bit-word memory is w bit-planes, each queried
    // by an ordinary 1-bit QRAM.
    use qram::core::WideMemory;
    let words = [5u64, 2, 7, 0, 3, 6, 1, 4];
    let wide = WideMemory::from_words(3, &words);
    let arch = VirtualQram::new(1, 2);
    for (address, &expected) in words.iter().enumerate() {
        let mut word = 0u64;
        for bit in 0..wide.data_width() {
            let query = arch.build(wide.plane(bit));
            if query.query_classical(address as u64).expect("clean query") {
                word |= 1 << bit;
            }
        }
        assert_eq!(word, expected, "address {address}");
    }
}

#[test]
fn bus_initialized_to_one_receives_xor() {
    // Eq. 2 generalizes to |b⟩ → |b ⊕ xᵢ⟩; check the b = 1 case.
    let memory = Memory::from_bits([true, false, true, false]);
    let query = VirtualQram::new(0, 2).build(&memory);
    let mut state = PathState::computational_basis(query.num_qubits());
    state.apply_x(query.bus());
    // address 0: x = 1 → bus = 1 ⊕ 1 = 0.
    run(query.circuit().gates(), &mut state).expect("simulable");
    assert!(state.probability_of_one(query.bus()) < 1e-9);
}
