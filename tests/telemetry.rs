//! End-to-end telemetry determinism: the span-log digest and the
//! metrics registry produced by a full serving run must be bit-identical
//! for any `(workers, shot_threads, path_chunks)` setting, and the
//! admission spans must conserve the arrival flow
//! (`arrivals == completions + shed + rejected`).

use qram::core::Memory;
use qram::service::{
    Admission, ArrivalProcess, QramService, QuerySpec, ServiceConfig, TelemetryRecorder, Workload,
};
use qram::telemetry::{key, AdmissionOutcome, MetricsRegistry, SpanStage, SYNTHETIC_REQUEST_BASE};

fn memory(n: usize) -> Memory {
    Memory::from_bits((0..1usize << n).map(|i| i % 3 == 0))
}

/// Drives an overloaded open-loop run (bounded queue, bursty arrivals)
/// and returns the service with its captured telemetry.
fn overloaded_run(
    workers: usize,
    shot_threads: usize,
    path_chunks: usize,
) -> QramService<TelemetryRecorder> {
    let n = 3;
    let config = ServiceConfig::default()
        .with_shots(2)
        .with_seed(17)
        .with_workers(workers)
        .with_shot_threads(shot_threads)
        .with_path_chunks(path_chunks)
        .with_queue_capacity(8)
        .with_batch_limit(4);
    let mut service = QramService::with_recorder(memory(n), config, TelemetryRecorder::new());
    let workload = Workload::Zipfian {
        address_width: n,
        theta: 0.99,
        seed: 5,
    };
    // A deliberately hot arrival stream: the 8-deep queue sheds a
    // visible fraction of the 96 offers.
    let arrivals = ArrivalProcess::Poisson {
        mean_gap: 800.0,
        seed: 23,
    }
    .arrivals(96);
    let spec = QuerySpec::new(1, n - 1);
    for (address, &at) in workload.addresses(96).iter().zip(&arrivals) {
        match service.try_submit_at(*address, spec, at) {
            Admission::Accepted(_) | Admission::Shed { .. } => {}
            Admission::Rejected(reason) => panic!("workload rejected: {reason}"),
        }
    }
    let results = service.run_until_idle();
    assert!(!results.is_empty(), "overload must still complete requests");
    service
}

fn merged_metrics(service: &QramService<TelemetryRecorder>) -> MetricsRegistry {
    let mut merged = service.metrics_snapshot();
    merged.merge_from(service.recorder().metrics());
    merged
}

#[test]
fn trace_digest_is_knob_invariant_under_overload() {
    let reference = overloaded_run(1, 1, 1);
    let reference_trace = reference.recorder().trace_digest();
    let reference_metrics = merged_metrics(&reference).digest();
    assert!(
        reference.admission_stats().shed > 0,
        "the overload harness must actually shed"
    );
    for (workers, shot_threads, path_chunks) in
        [(2, 1, 1), (4, 1, 1), (1, 4, 1), (1, 1, 4), (4, 4, 4)]
    {
        let run = overloaded_run(workers, shot_threads, path_chunks);
        assert_eq!(
            run.recorder().trace_digest(),
            reference_trace,
            "trace digest diverged at workers={workers} shot_threads={shot_threads} \
             path_chunks={path_chunks}"
        );
        assert_eq!(
            merged_metrics(&run).digest(),
            reference_metrics,
            "metrics digest diverged at workers={workers} shot_threads={shot_threads} \
             path_chunks={path_chunks}"
        );
    }
}

#[test]
fn admission_spans_conserve_the_arrival_flow() {
    let service = overloaded_run(2, 1, 1);
    let metrics = merged_metrics(&service);
    let stats = service.admission_stats();
    let arrivals = stats.offered();
    let completed = metrics.counter(key::SERVICE_COMPLETED);
    assert_eq!(
        arrivals,
        completed + stats.shed + stats.rejected,
        "arrivals must equal completions + shed + rejected"
    );

    // Every offered arrival produced exactly one admission span, and
    // every shed offer is a terminal span with a synthetic request id.
    let spans = service.recorder().tracer().canonical();
    let admissions: Vec<_> = spans
        .iter()
        .filter(|s| matches!(s.stage, SpanStage::Admission { .. }))
        .collect();
    assert_eq!(admissions.len() as u64, arrivals);
    let terminal = admissions
        .iter()
        .filter(|s| s.request >= SYNTHETIC_REQUEST_BASE)
        .count() as u64;
    assert_eq!(terminal, stats.shed + stats.rejected);
    for span in &admissions {
        let SpanStage::Admission { outcome, .. } = &span.stage else {
            unreachable!()
        };
        match outcome {
            AdmissionOutcome::Accepted => assert!(span.request < SYNTHETIC_REQUEST_BASE),
            AdmissionOutcome::Shed | AdmissionOutcome::Rejected => {
                assert!(span.request >= SYNTHETIC_REQUEST_BASE)
            }
        }
    }
}

#[test]
fn accepted_requests_carry_the_full_span_pipeline() {
    let service = overloaded_run(1, 1, 1);
    let spans = service.recorder().tracer().canonical();
    let completed = merged_metrics(&service).counter(key::SERVICE_COMPLETED);
    let queue_waits = spans
        .iter()
        .filter(|s| matches!(s.stage, SpanStage::QueueWait { .. }))
        .count() as u64;
    let executes = spans
        .iter()
        .filter(|s| matches!(s.stage, SpanStage::Execute { .. }))
        .count() as u64;
    assert_eq!(queue_waits, completed);
    assert_eq!(executes, completed);
    // Batch formation and compile spans pair up one per fired batch.
    let batch_forms = spans
        .iter()
        .filter(|s| matches!(s.stage, SpanStage::BatchForm { .. }))
        .count();
    let compiles = spans
        .iter()
        .filter(|s| matches!(s.stage, SpanStage::Compile { .. }))
        .count();
    assert_eq!(batch_forms, compiles);
    assert!(batch_forms > 0);
}

#[test]
fn noop_recorder_runs_match_recorded_results() {
    // The recorder is observational: swapping it for the no-op default
    // must not perturb a single result bit.
    let n = 3;
    let config = ServiceConfig::default().with_shots(2).with_seed(17);
    let workload = Workload::Zipfian {
        address_width: n,
        theta: 0.99,
        seed: 5,
    };
    let spec = QuerySpec::new(1, n - 1);
    let submissions: Vec<(u64, QuerySpec)> =
        workload.addresses(24).iter().map(|&a| (a, spec)).collect();

    let mut plain = QramService::new(memory(n), config);
    plain.submit_all(submissions.clone());
    let plain_report = plain.drain();

    let mut recorded = QramService::with_recorder(memory(n), config, TelemetryRecorder::new());
    recorded.submit_all(submissions);
    let recorded_report = recorded.drain();

    assert_eq!(plain_report.results, recorded_report.results);
    assert_eq!(plain_report.cache, recorded_report.cache);
    assert_eq!(plain_report.admission, recorded_report.admission);
}
