//! Fleet acceptance tests: the determinism contract, the 1-shard
//! degeneracy to a bare service, and the SLO-aware shedding behavior
//! under overload.

use qram::core::Memory;
use qram::fleet::{FleetConfig, FleetController, FleetResult, ShardPollOrder, ShedPolicy};
use qram::service::{
    mixed_arch_specs, QramService, QuerySpec, ServiceConfig, SloClass, TelemetryRecorder, TenantId,
    Ticks,
};

fn memory(n: usize) -> Memory {
    Memory::from_bits((0..1usize << n).map(|i| (i * 5) % 7 < 3))
}

/// A deterministic SplitMix64 step — the arrival streams below must be
/// byte-identical across runs and policies by construction.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One pre-built fleet arrival: everything `submit_at` takes.
type Arrival = (u64, QuerySpec, Ticks, TenantId, SloClass);

/// A mixed-tenant, mixed-class, mixed-spec open-loop stream with the
/// given mean inter-arrival gap. Same seed → byte-identical stream.
fn arrivals(count: usize, mean_gap: u64, seed: u64) -> Vec<Arrival> {
    let specs = mixed_arch_specs(3);
    let mut state = seed;
    let mut t: Ticks = 0;
    (0..count)
        .map(|i| {
            t += 1 + splitmix(&mut state) % (2 * mean_gap);
            let spec = specs[(splitmix(&mut state) % specs.len() as u64) as usize];
            let address = splitmix(&mut state) % 8;
            let tenant = TenantId((splitmix(&mut state) % 3) as u32);
            let slo = match i % 4 {
                0 => SloClass::Interactive { deadline: 60_000 },
                1 | 2 => SloClass::Batch,
                _ => SloClass::BestEffort,
            };
            (address, spec, t, tenant, slo)
        })
        .collect()
}

fn shard_base(workers: usize, shot_threads: usize, path_chunks: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(workers)
        .with_shots(8)
        .with_shot_threads(shot_threads)
        .with_path_chunks(path_chunks)
}

/// Runs `stream` through a telemetry fleet and returns the completed
/// results plus the fleet trace and metrics digests.
fn run_fleet(config: FleetConfig, stream: &[Arrival]) -> (Vec<FleetResult>, u64, u64) {
    let mut fleet = FleetController::with_telemetry(memory(3), config);
    let mut results = Vec::new();
    for &(address, spec, at, tenant, slo) in stream {
        fleet.submit_at(address, spec, at, tenant, slo);
        results.extend(fleet.poll(at));
    }
    results.extend(fleet.run_until_idle());
    (results, fleet.trace_digest(), fleet.metrics_digest())
}

#[test]
fn fleet_outputs_are_bit_identical_across_parallelism_knobs() {
    let stream = arrivals(400, 6_000, 0xf1ee7);
    let reference = run_fleet(
        FleetConfig::default()
            .with_shards(3)
            .with_shard_base(shard_base(1, 1, 1)),
        &stream,
    );
    assert!(!reference.0.is_empty());
    for (workers, shot_threads, path_chunks) in [(4, 1, 1), (1, 4, 1), (1, 1, 4), (4, 2, 2)] {
        let run = run_fleet(
            FleetConfig::default()
                .with_shards(3)
                .with_shard_base(shard_base(workers, shot_threads, path_chunks)),
            &stream,
        );
        assert_eq!(
            reference.0, run.0,
            "results diverged at workers={workers} shot_threads={shot_threads} \
             path_chunks={path_chunks}"
        );
        assert_eq!(reference.1, run.1, "trace digest diverged");
        assert_eq!(reference.2, run.2, "metrics digest diverged");
    }
}

#[test]
fn fleet_outputs_are_invisible_to_shard_poll_order() {
    let stream = arrivals(400, 4_000, 0x9011);
    let config = |order| {
        FleetConfig::default()
            .with_shards(4)
            .with_shard_base(shard_base(2, 1, 1))
            .with_replication(2)
            .with_poll_order(order)
    };
    let asc = run_fleet(config(ShardPollOrder::Ascending), &stream);
    let desc = run_fleet(config(ShardPollOrder::Descending), &stream);
    assert_eq!(asc.0, desc.0);
    assert_eq!(asc.1, desc.1);
    assert_eq!(asc.2, desc.2);
}

/// A 1-shard fleet with a zero-capacity front door makes exactly the
/// bare service's decisions: on an uncongested stream the shard's
/// trace, metrics, and results are bit-identical to a bare
/// `QramService` fed the same tagged arrivals.
#[test]
fn one_shard_fleet_is_bit_identical_to_bare_service() {
    let stream = arrivals(300, 40_000, 0xba5e); // sparse: never sheds
    let base = shard_base(2, 2, 1);

    let mut bare = QramService::with_recorder(memory(3), base, TelemetryRecorder::default());
    for &(address, spec, at, tenant, slo) in &stream {
        let admission = bare.try_submit_tagged_at(address, spec, at, tenant, slo);
        assert!(admission.is_accepted(), "premise: the stream never sheds");
    }
    let mut bare_results = bare.run_until_idle();
    bare_results.sort_by_key(|r| r.id);

    let config = FleetConfig::default()
        .with_shards(1)
        .with_shard_base(base)
        .with_front_capacity(0)
        .with_shed_policy(ShedPolicy::TailDrop)
        .with_replication(1);
    let mut fleet = FleetController::with_telemetry(memory(3), config);
    for &(address, spec, at, tenant, slo) in &stream {
        let admission = fleet.submit_at(address, spec, at, tenant, slo);
        assert!(admission.admitted && admission.shed.is_none());
    }
    let mut fleet_results = fleet.run_until_idle();
    fleet_results.sort_by_key(|r| r.result.id);

    assert_eq!(fleet_results.len(), bare_results.len());
    for (f, b) in fleet_results.iter().zip(&bare_results) {
        assert_eq!(f.front_wait, 0, "uncongested: nothing parks at the door");
        assert_eq!(&f.result, b, "shard result must match the bare service");
    }
    let shard = &fleet.shards()[0];
    assert_eq!(
        shard.recorder().trace_digest(),
        bare.recorder().trace_digest(),
        "the shard's span trace must match the bare service's"
    );
    assert_eq!(
        shard.metrics_snapshot().digest(),
        bare.metrics_snapshot().digest(),
        "the shard's metrics must match the bare service's"
    );
}

/// Under overload the shed *decisions* coincide too: the fleet's
/// zero-capacity door sheds exactly when the bare bounded queue would,
/// so completed results and shed counts match (the shed accounting
/// moves from the shard to the fleet door, so traces are compared on
/// the completed population only).
#[test]
fn one_shard_fleet_matches_bare_service_shed_decisions_at_overload() {
    let stream = arrivals(600, 300, 0x0e1); // ~10x overload
    let base = ServiceConfig::default()
        .with_shots(0)
        .with_workers(1)
        .with_queue_capacity(8);

    let mut bare = QramService::new(memory(3), base);
    let mut bare_shed = 0u64;
    for &(address, spec, at, tenant, slo) in &stream {
        if !bare
            .try_submit_tagged_at(address, spec, at, tenant, slo)
            .is_accepted()
        {
            bare_shed += 1;
        }
    }
    let mut bare_results = bare.run_until_idle();
    bare_results.sort_by_key(|r| r.id);
    assert!(bare_shed > 0, "premise: the stream overloads the service");

    let config = FleetConfig::default()
        .with_shards(1)
        .with_shard_base(base)
        .with_front_capacity(0)
        .with_shed_policy(ShedPolicy::TailDrop)
        .with_replication(1);
    let mut fleet = FleetController::new(memory(3), config);
    for &(address, spec, at, tenant, slo) in &stream {
        fleet.submit_at(address, spec, at, tenant, slo);
    }
    let mut fleet_results = fleet.run_until_idle();
    fleet_results.sort_by_key(|r| r.result.id);

    assert_eq!(fleet.stats().shed, bare_shed, "same shed decisions");
    assert_eq!(fleet_results.len(), bare_results.len());
    for (f, b) in fleet_results.iter().zip(&bare_results) {
        assert_eq!(&f.result, b);
    }
}

/// Nearest-rank percentile over door-to-completion latencies.
fn percentile(sorted: &[Ticks], q: f64) -> Ticks {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the canonical overload stream under one shed policy and
/// returns (completed results, per-class shed counts as
/// (interactive, batch, best_effort)).
fn run_overloaded(policy: ShedPolicy) -> (Vec<FleetResult>, (u64, u64, u64)) {
    let stream = arrivals(1_500, 400, 0x0510); // far past fleet capacity
    let config = FleetConfig::default()
        .with_shards(2)
        .with_shard_base(
            ServiceConfig::default()
                .with_shots(0)
                .with_workers(1)
                .with_queue_capacity(4),
        )
        .with_front_capacity(48)
        .with_shed_policy(policy)
        .with_replication(2);
    let mut fleet = FleetController::new(memory(3), config);
    for &(address, spec, at, tenant, slo) in &stream {
        fleet.submit_at(address, spec, at, tenant, slo);
    }
    let results = fleet.run_until_idle();
    let shed = |label: &str| fleet.stats().per_class.get(label).map_or(0, |c| c.shed);
    (
        results,
        (shed("interactive"), shed("batch"), shed("best_effort")),
    )
}

#[test]
fn deadline_priority_beats_tail_drop_on_interactive_p99_at_overload() {
    let (dp_results, dp_shed) = run_overloaded(ShedPolicy::DeadlinePriority);
    let (td_results, td_shed) = run_overloaded(ShedPolicy::TailDrop);

    let interactive_latencies = |results: &[FleetResult]| {
        let mut v: Vec<Ticks> = results
            .iter()
            .filter(|r| matches!(r.slo, SloClass::Interactive { .. }))
            .map(|r| r.total_latency())
            .collect();
        v.sort_unstable();
        v
    };
    let dp = interactive_latencies(&dp_results);
    let td = interactive_latencies(&td_results);
    assert!(!dp.is_empty() && !td.is_empty());

    let (dp_p99, td_p99) = (percentile(&dp, 0.99), percentile(&td, 0.99));
    assert!(
        dp_p99 < td_p99,
        "deadline-priority interactive p99 {dp_p99} must beat tail-drop {td_p99} \
         on byte-identical arrivals"
    );

    // Deadline-priority sheds the low classes first: batch bears the
    // brunt, and the only interactive sheds are zombies whose deadline
    // had already passed (worthless to complete).
    let (dp_interactive, dp_batch, dp_best_effort) = dp_shed;
    assert!(dp_batch + dp_best_effort > 0, "premise: overload sheds");
    assert!(
        dp_batch > dp_interactive,
        "batch must bear the brunt: batch {dp_batch} vs interactive {dp_interactive}"
    );
    // Tail-drop is class-blind: under a 1-in-4 interactive mix it
    // inevitably drops interactive work too.
    let (td_interactive, _, _) = td_shed;
    assert!(
        td_interactive > 0,
        "premise: tail-drop should be shedding interactive arrivals"
    );
}

#[test]
#[ignore]
fn probe_capacity() {
    let stream = arrivals(1_500, 400, 0x510);
    let config = FleetConfig::default()
        .with_shards(2)
        .with_shard_base(
            ServiceConfig::default()
                .with_shots(0)
                .with_workers(1)
                .with_queue_capacity(4),
        )
        .with_front_capacity(48)
        .with_shed_policy(ShedPolicy::TailDrop)
        .with_replication(2);
    let mut fleet = FleetController::new(memory(3), config);
    for &(address, spec, at, tenant, slo) in &stream {
        fleet.submit_at(address, spec, at, tenant, slo);
    }
    let results = fleet.run_until_idle();
    let makespan = results.iter().map(|r| r.result.completed).max().unwrap();
    let last_arrival = stream.last().unwrap().2;
    println!(
        "completed={} shed={} makespan={} last_arrival={} mean_service_gap={}",
        results.len(),
        fleet.stats().shed,
        makespan,
        last_arrival,
        makespan / results.len() as u64
    );
}
