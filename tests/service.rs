//! Integration tests of the `qram-service` serving layer through the
//! facade — including the PR's acceptance pin: a 1k-request zipfian
//! workload served through the batching scheduler with a > 80%
//! circuit-cache hit rate and bit-identical batched estimates across
//! worker counts.

use qram::core::Memory;
use qram::service::{assign_specs, QramService, QuerySpec, ServiceConfig, ServiceReport, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;

fn serve_memory() -> Memory {
    Memory::random(N, &mut StdRng::seed_from_u64(2023))
}

/// The hot circuit shapes the 1k workload cycles over.
fn hot_specs() -> Vec<QuerySpec> {
    use qram::core::{DataEncoding, Optimizations};
    vec![
        QuerySpec::new(1, 3),
        QuerySpec::new(2, 2),
        QuerySpec::new(1, 3).with_encoding(DataEncoding::FusedBit),
        QuerySpec::new(2, 2).with_optimizations(Optimizations::OPT2),
    ]
}

fn serve_1k(workers: usize) -> ServiceReport {
    let workload = Workload::Zipfian {
        address_width: N,
        theta: 0.99,
        seed: 41,
    };
    let config = ServiceConfig::default()
        .with_workers(workers)
        .with_shots(4)
        .with_seed(7)
        .with_batch_limit(16);
    let mut service = QramService::new(serve_memory(), config);
    let admitted = service.submit_all(assign_specs(&workload, &hot_specs(), 1000));
    assert_eq!(admitted, 1000);
    service.drain()
}

#[test]
fn zipfian_1k_acceptance_hit_rate_and_worker_determinism() {
    let serial = serve_1k(1);
    assert_eq!(serial.results.len(), 1000);

    // Acceptance: hot configurations skip rebuild — > 80% of batch
    // lookups are served from the compiled-circuit cache (only the 4
    // distinct specs ever compile).
    assert_eq!(serial.cache.misses, hot_specs().len() as u64);
    assert!(
        serial.cache.hit_rate() > 0.8,
        "hit rate {:.3}",
        serial.cache.hit_rate()
    );
    assert_eq!(serial.cache.evictions, 0);

    // Acceptance: batched estimates are bit-identical across worker
    // counts — full QueryResult equality, fidelity estimates included.
    let quad = serve_1k(4);
    assert_eq!(serial.results, quad.results);
    assert_eq!(serial.cache, quad.cache);
    assert_eq!(quad.workers, 4);

    // The served values are the memory's ground truth.
    let memory = serve_memory();
    for result in &serial.results {
        assert_eq!(
            result.value,
            memory.get(result.address as usize),
            "address {}",
            result.address
        );
        let f = result.fidelity;
        assert_eq!(f.shots, 4);
        assert!((0.0..=1.0 + 1e-9).contains(&f.mean));
    }
}

#[test]
fn sequential_scan_reads_back_the_whole_memory() {
    let memory = serve_memory();
    let workload = Workload::SequentialScan { address_width: N };
    let mut service = QramService::new(
        memory.clone(),
        ServiceConfig::default().with_shots(0).with_workers(2),
    );
    service.submit_all(assign_specs(&workload, &[QuerySpec::new(1, 3)], 16));
    let report = service.drain();
    let bits: Vec<bool> = report.results.iter().map(|r| r.value).collect();
    assert_eq!(bits, memory.bits());
}

#[test]
fn grover_trace_is_one_hot_and_cache_resident() {
    let workload = Workload::GroverTrace {
        address_width: N,
        target: 11,
    };
    let mut service = QramService::new(
        serve_memory(),
        ServiceConfig::default().with_shots(0).with_batch_limit(8),
    );
    service.submit_all(assign_specs(&workload, &[QuerySpec::new(2, 2)], 64));
    let report = service.drain();
    assert!(report.results.iter().all(|r| r.address == 11));
    // 64 requests in batches of 8: one compile, seven hits.
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.cache.hits, 7);
}

#[test]
fn eviction_pressure_is_accounted_and_still_correct() {
    let memory = serve_memory();
    // Capacity 2 under 4 hot specs: the LRU thrashes but serves
    // correctly and counts evictions.
    let config = ServiceConfig::default()
        .with_shots(0)
        .with_cache_capacity(2)
        .with_batch_limit(4);
    let mut service = QramService::new(memory.clone(), config);
    let workload = Workload::Uniform {
        address_width: N,
        seed: 3,
    };
    service.submit_all(assign_specs(&workload, &hot_specs(), 64));
    let report = service.drain();
    assert!(report.cache.evictions > 0);
    for result in &report.results {
        assert_eq!(result.value, memory.get(result.address as usize));
    }
}
