//! Integration tests of the `qram-service` serving layer through the
//! facade — including the acceptance pins: a 1k-request zipfian
//! workload served through the batching scheduler with a > 80%
//! circuit-cache hit rate and bit-identical results across worker
//! counts, and an open-loop overload scenario where reported p99
//! latency includes queueing delay (growing with queue depth) while
//! back-pressure sheds the excess.

use qram::core::Memory;
use qram::service::{
    assign_specs, assign_specs_with, mixed_arch_specs, Admission, ArrivalProcess, ClosedLoop,
    CostModel, QramService, QueryResult, QuerySpec, ReleasePolicy, ServiceConfig, ServiceReport,
    SpecMix, Ticks, Workload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;

fn serve_memory() -> Memory {
    Memory::random(N, &mut StdRng::seed_from_u64(2023))
}

/// The hot circuit shapes the 1k workload cycles over.
fn hot_specs() -> Vec<QuerySpec> {
    use qram::core::{DataEncoding, Optimizations};
    vec![
        QuerySpec::new(1, 3),
        QuerySpec::new(2, 2),
        QuerySpec::new(1, 3)
            .try_with_encoding(DataEncoding::FusedBit)
            .unwrap(),
        QuerySpec::new(2, 2)
            .try_with_optimizations(Optimizations::OPT2)
            .unwrap(),
    ]
}

fn serve_1k(workers: usize) -> ServiceReport {
    let workload = Workload::Zipfian {
        address_width: N,
        theta: 0.99,
        seed: 41,
    };
    let config = ServiceConfig::default()
        .with_workers(workers)
        .with_shots(4)
        .with_seed(7)
        .with_batch_limit(16);
    let mut service = QramService::new(serve_memory(), config);
    let admitted = service.submit_all(assign_specs(&workload, &hot_specs(), 1000));
    assert_eq!(admitted, 1000);
    service.drain()
}

#[test]
fn zipfian_1k_acceptance_hit_rate_and_worker_determinism() {
    let serial = serve_1k(1);
    assert_eq!(serial.results.len(), 1000);

    // Acceptance: hot configurations skip rebuild — > 80% of batch
    // lookups are served from the compiled-circuit cache (only the 4
    // distinct specs ever compile).
    assert_eq!(serial.cache.misses, hot_specs().len() as u64);
    assert!(
        serial.cache.hit_rate() > 0.8,
        "hit rate {:.3}",
        serial.cache.hit_rate()
    );
    assert_eq!(serial.cache.evictions, 0);

    // Acceptance: batched estimates are bit-identical across worker
    // counts — full QueryResult equality, fidelity estimates included.
    let quad = serve_1k(4);
    assert_eq!(serial.results, quad.results);
    assert_eq!(serial.cache, quad.cache);
    assert_eq!(quad.workers, 4);

    // The served values are the memory's ground truth.
    let memory = serve_memory();
    for result in &serial.results {
        assert_eq!(
            result.value,
            memory.get(result.address as usize),
            "address {}",
            result.address
        );
        let f = result.fidelity;
        assert_eq!(f.shots, 4);
        assert!((0.0..=1.0 + 1e-9).contains(&f.mean));
    }
}

#[test]
fn sequential_scan_reads_back_the_whole_memory() {
    let memory = serve_memory();
    let workload = Workload::SequentialScan { address_width: N };
    let mut service = QramService::new(
        memory.clone(),
        ServiceConfig::default().with_shots(0).with_workers(2),
    );
    service.submit_all(assign_specs(&workload, &[QuerySpec::new(1, 3)], 16));
    let report = service.drain();
    let bits: Vec<bool> = report.results.iter().map(|r| r.value).collect();
    assert_eq!(bits, memory.bits());
}

#[test]
fn grover_trace_is_one_hot_and_cache_resident() {
    let workload = Workload::GroverTrace {
        address_width: N,
        target: 11,
    };
    let mut service = QramService::new(
        serve_memory(),
        ServiceConfig::default().with_shots(0).with_batch_limit(8),
    );
    service.submit_all(assign_specs(&workload, &[QuerySpec::new(2, 2)], 64));
    let report = service.drain();
    assert!(report.results.iter().all(|r| r.address == 11));
    // 64 requests in batches of 8: one compile, seven hits.
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.cache.hits, 7);
}

/// Nearest-rank percentile over the results' end-to-end virtual
/// latencies.
fn latency_percentile(results: &[QueryResult], q: f64) -> f64 {
    let mut totals: Vec<f64> = results.iter().map(|r| r.latency.total() as f64).collect();
    totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q / 100.0) * totals.len() as f64).ceil() as usize;
    totals[rank.clamp(1, totals.len()) - 1]
}

/// Drives an open-loop Poisson stream at 4x the modeled capacity
/// through a bounded queue; returns the completed results and the shed
/// count.
fn serve_overloaded(workers: usize, queue_capacity: usize) -> (Vec<QueryResult>, u64) {
    let config = ServiceConfig::default()
        .with_shots(2)
        .with_seed(11)
        .with_workers(workers)
        .with_batch_limit(8)
        .with_deadline(5_000)
        .with_queue_capacity(queue_capacity);
    let memory = serve_memory();
    let spec = QuerySpec::new(1, 3);
    // The modeled per-request cost fixes capacity; offer 4x that rate.
    let resources = spec.arch.instantiate().resources(&memory);
    let execute = config.cost.execute_cost(&resources, config.shots);
    let mean_gap = execute as f64 / (4.0 * config.cost.units as f64);
    let arrivals = ArrivalProcess::Poisson { mean_gap, seed: 3 }.arrivals(400);

    let mut service = QramService::new(memory, config);
    for (i, &arrival) in arrivals.iter().enumerate() {
        match service.try_submit_at(i as u64 % 16, spec, arrival) {
            Admission::Accepted(_) | Admission::Shed { .. } => {}
            Admission::Rejected(reason) => panic!("rejected: {reason}"),
        }
    }
    let results = service.run_until_idle();
    let stats = service.admission_stats();
    assert_eq!(stats.accepted as usize, results.len());
    assert_eq!(stats.offered(), 400);
    (results, stats.shed)
}

#[test]
fn overload_p99_includes_queueing_grows_with_queue_depth_and_sheds() {
    let (results, shed) = serve_overloaded(1, 32);
    // Back-pressure: the bounded queue shed a real fraction of the 4x
    // overload instead of queueing it forever.
    assert!(shed > 50, "shed {shed}");
    assert!(!results.is_empty());

    // Honest percentiles: at 4x overload the p99 is dominated by
    // queueing delay, not by compile + execute.
    let p99 = latency_percentile(&results, 99.0);
    let served_cost = results
        .iter()
        .map(|r| (r.latency.compile + r.latency.execute) as f64)
        .fold(0.0f64, f64::max);
    assert!(
        p99 > 3.0 * served_cost,
        "p99 {p99} vs max compile+execute {served_cost}"
    );
    let p99_queue_wait = {
        let mut waits: Vec<f64> = results
            .iter()
            .map(|r| r.latency.queue_wait as f64)
            .collect();
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        waits[waits.len() * 99 / 100]
    };
    assert!(p99_queue_wait > served_cost, "queueing dominates the tail");
    // The breakdown partitions the end-to-end time exactly.
    for r in &results {
        assert_eq!(r.completed - r.arrival, r.latency.total());
    }

    // A deeper bounded queue admits more and waits longer: p99 grows
    // with queue depth, shedding shrinks.
    let (deeper_results, deeper_shed) = serve_overloaded(1, 128);
    assert!(deeper_shed < shed, "{deeper_shed} vs {shed}");
    assert!(deeper_results.len() > results.len());
    let deeper_p99 = latency_percentile(&deeper_results, 99.0);
    assert!(
        deeper_p99 > 1.5 * p99,
        "queue 128 p99 {deeper_p99} vs queue 32 p99 {p99}"
    );
}

#[test]
fn overloaded_results_are_bit_identical_across_worker_counts() {
    // The work-stealing executor is a pure throughput knob even under
    // overload: results (fidelity estimates, latency breakdowns, shed
    // accounting) are bit-identical for any real worker count.
    let (serial, serial_shed) = serve_overloaded(1, 64);
    for workers in [2, 4] {
        let (parallel, parallel_shed) = serve_overloaded(workers, 64);
        assert_eq!(serial, parallel, "workers = {workers}");
        assert_eq!(serial_shed, parallel_shed);
    }
}

#[test]
fn spec_skewed_traffic_moves_eviction_counters() {
    use qram::core::{DataEncoding, Optimizations};
    // Six hot shapes through a 3-entry cache: zipf-skewed assignment
    // keeps the head resident while the tail churns the LRU.
    let specs = vec![
        QuerySpec::new(1, 3),
        QuerySpec::new(2, 2),
        QuerySpec::new(3, 1),
        QuerySpec::new(1, 3)
            .try_with_encoding(DataEncoding::FusedBit)
            .unwrap(),
        QuerySpec::new(2, 2)
            .try_with_encoding(DataEncoding::FusedBit)
            .unwrap(),
        QuerySpec::new(1, 3)
            .try_with_optimizations(Optimizations::OPT2)
            .unwrap(),
    ];
    let memory = serve_memory();
    let config = ServiceConfig::default()
        .with_shots(0)
        .with_cache_capacity(3)
        .with_batch_limit(4);
    let mut service = QramService::new(memory.clone(), config);
    let workload = Workload::Zipfian {
        address_width: N,
        theta: 0.99,
        seed: 5,
    };
    let mix = SpecMix::Zipfian {
        theta: 1.1,
        seed: 23,
    };
    service.submit_all(assign_specs_with(&workload, &specs, mix, 512));
    let report = service.drain();
    // Eviction pressure is real and fully accounted.
    assert!(report.cache.evictions > 0, "{:?}", report.cache);
    assert!(report.cache.hits > 0);
    assert_eq!(
        report.cache.lookups,
        report.cache.hits + report.cache.misses
    );
    // Skew keeps the head shapes hot: far fewer compiles than lookups.
    assert!(report.cache.hit_rate() > 0.5, "{:?}", report.cache);
    // Thrash or not, every answer is the memory's ground truth.
    for result in &report.results {
        assert_eq!(result.value, memory.get(result.address as usize));
    }
}

/// Acceptance (ISSUE 5): every `ArchSpec` family at n = 3 is servable
/// through `QramService`, and the served values match the architecture's
/// own `query_classical` ground truth computed outside the service.
#[test]
fn every_architecture_family_serves_ground_truth_at_n3() {
    let memory = Memory::random(3, &mut StdRng::seed_from_u64(5));
    for spec in mixed_arch_specs(3) {
        let arch = spec.arch;
        // Direct ground truth through the architecture itself.
        let direct = arch.instantiate().build(&memory);
        let truth: Vec<bool> = (0..8u64)
            .map(|a| direct.query_classical(a).unwrap())
            .collect();
        // Served through the full pipeline.
        let config = ServiceConfig::default().with_shots(0).with_workers(2);
        let mut service = QramService::new(memory.clone(), config);
        for address in 0..8u64 {
            service.submit(address, spec);
        }
        let report = service.drain();
        assert_eq!(report.results.len(), 8, "{}", arch.name());
        for result in &report.results {
            assert_eq!(
                result.value,
                truth[result.address as usize],
                "{} at address {}",
                arch.name(),
                result.address
            );
            assert_eq!(result.value, memory.get(result.address as usize));
            assert_eq!(result.spec.arch, arch);
        }
        assert_eq!(report.cache.misses, 1);
    }
}

/// Acceptance (ISSUE 5): a mixed-architecture zipfian workload through
/// one service — distinct cache keys per family, per-architecture cost
/// ticks from measured resources, and bit-identical results for any
/// worker count.
#[test]
fn mixed_arch_zipfian_workload_is_worker_count_invariant() {
    let memory = serve_memory();
    let specs = mixed_arch_specs(N);
    let workload = Workload::Zipfian {
        address_width: N,
        theta: 0.99,
        seed: 31,
    };
    let stream = assign_specs_with(
        &workload,
        &specs,
        SpecMix::Zipfian {
            theta: 0.8,
            seed: 9,
        },
        400,
    );
    let run = |workers: usize| {
        let config = ServiceConfig::default()
            .with_shots(4)
            .with_seed(13)
            .with_workers(workers)
            .with_cache_capacity(8)
            .with_batch_limit(8);
        let mut service = QramService::new(memory.clone(), config);
        service.submit_all(stream.clone());
        service.drain()
    };
    let serial = run(1);
    assert_eq!(serial.results.len(), 400);
    // Every family compiled exactly once: distinct keys, no cross-talk.
    assert_eq!(serial.cache.misses, specs.len() as u64);
    assert_eq!(serial.cache.evictions, 0);
    // Cost ticks are per-architecture: resources-calibrated execute.
    for result in &serial.results {
        let resources = result.spec.arch.instantiate().resources(&memory);
        assert_eq!(
            result.latency.execute,
            ServiceConfig::default().cost.execute_cost(&resources, 4),
            "{}",
            result.spec.arch.name()
        );
        assert_eq!(result.value, memory.get(result.address as usize));
    }
    // Bit-identity across worker counts, mixed architectures included.
    for workers in [2, 4] {
        let parallel = run(workers);
        assert_eq!(serial.results, parallel.results, "workers = {workers}");
        assert_eq!(serial.batches, parallel.batches);
        assert_eq!(serial.cache, parallel.cache);
    }
}

/// Satellite (ISSUE 5): work conservation halves (at least) light-load
/// p50 — an idle device fires underfull batches on arrival instead of
/// sitting out the deadline.
#[test]
fn work_conservation_cuts_light_load_p50() {
    let memory = serve_memory();
    let spec = QuerySpec::new(1, 3);
    let deadline: Ticks = 50_000;
    // Light load: arrivals far apart relative to the per-request cost,
    // so the device is idle when each request lands.
    let arrivals = ArrivalProcess::Poisson {
        mean_gap: 400_000.0,
        seed: 7,
    }
    .arrivals(64);
    let run = |work_conserving: bool| {
        let config = ServiceConfig::default()
            .with_shots(0)
            .with_workers(1)
            .with_deadline(deadline)
            .with_batch_limit(16)
            .with_work_conserving(work_conserving);
        let mut service = QramService::new(memory.clone(), config);
        for (i, &arrival) in arrivals.iter().enumerate() {
            assert!(service
                .try_submit_at(i as u64 % 16, spec, arrival)
                .is_accepted());
        }
        service.run_until_idle()
    };
    let conserving = run(true);
    let lazy = run(false);
    assert_eq!(conserving.len(), 64);
    assert_eq!(lazy.len(), 64);
    let p50_conserving = latency_percentile(&conserving, 50.0);
    let p50_lazy = latency_percentile(&lazy, 50.0);
    // Without work conservation the deadline dominates light-load
    // latency; with it the deadline wait disappears entirely.
    assert!(
        p50_lazy >= deadline as f64,
        "lazy p50 {p50_lazy} below deadline"
    );
    assert!(
        p50_conserving < p50_lazy / 2.0,
        "p50 {p50_conserving} vs lazy {p50_lazy}"
    );
    // Work conservation never reorders or corrupts: same ids and values.
    for (a, b) in conserving.iter().zip(&lazy) {
        assert_eq!(a.value, memory.get(a.address as usize));
        assert_eq!(b.value, memory.get(b.address as usize));
    }
}

/// Satellite (ISSUE 5): a closed-feedback Grover-style client through
/// the facade — each query of the trace waits for the previous result.
#[test]
fn closed_loop_grover_trace_self_throttles_and_serves_truth() {
    let memory = serve_memory();
    let target = 11u64;
    let stream = assign_specs(
        &Workload::GroverTrace {
            address_width: N,
            target,
        },
        &[QuerySpec::new(2, 2)],
        32,
    );
    let config = ServiceConfig::default()
        .with_shots(2)
        .with_seed(3)
        .with_workers(2)
        .with_queue_capacity(8);
    let mut service = QramService::new(memory.clone(), config);
    let results = ClosedLoop {
        clients: 1,
        queries_per_client: 32,
        think_time: 250,
    }
    .run(&mut service, &stream);
    assert_eq!(results.len(), 32);
    // One client: perfectly serialized — every arrival strictly after
    // the previous completion (dependent arrivals, the poll path).
    for pair in results.windows(2) {
        assert!(
            pair[1].arrival >= pair[0].completed + 250,
            "arrival {} overlaps completion {}",
            pair[1].arrival,
            pair[0].completed
        );
    }
    // Nothing shed: the closed loop never exceeds its population.
    assert_eq!(service.admission_stats().shed, 0);
    assert!(results
        .iter()
        .all(|r| r.address == target && r.value == memory.get(target as usize)));
}

#[test]
fn eviction_pressure_is_accounted_and_still_correct() {
    let memory = serve_memory();
    // Capacity 2 under 4 hot specs: the LRU thrashes but serves
    // correctly and counts evictions.
    let config = ServiceConfig::default()
        .with_shots(0)
        .with_cache_capacity(2)
        .with_batch_limit(4);
    let mut service = QramService::new(memory.clone(), config);
    let workload = Workload::Uniform {
        address_width: N,
        seed: 3,
    };
    service.submit_all(assign_specs(&workload, &hot_specs(), 64));
    let report = service.drain();
    assert!(report.cache.evictions > 0);
    for result in &report.results {
        assert_eq!(result.value, memory.get(result.address as usize));
    }
}

/// Serves a zipf-spec-skewed Poisson stream near the modeled capacity
/// under `policy`, over the planner's five-family mix and a cache two
/// entries small for it. The arrival stream, spec assignment and
/// addresses depend only on the fixed seeds — never on the policy — so
/// two policies serve byte-identical offered work, and the queue is
/// deep enough that nothing is shed.
fn serve_skewed_with_policy(
    policy: ReleasePolicy,
    workers: usize,
    shot_threads: usize,
    path_chunks: usize,
) -> Vec<QueryResult> {
    let memory = serve_memory();
    let specs: Vec<QuerySpec> = qram::plan::planned_families(N, usize::MAX)
        .into_iter()
        .map(QuerySpec::of)
        .collect();
    assert_eq!(specs.len(), 5, "one planned representative per family");
    let config = ServiceConfig::default()
        .with_shots(2)
        .with_seed(17)
        .with_workers(workers)
        .with_shot_threads(shot_threads)
        .with_path_chunks(path_chunks)
        .with_batch_limit(8)
        .with_cache_capacity(2)
        .with_queue_capacity(4096)
        .with_release_policy(policy);
    // Offer close to the modeled capacity: below it queues barely form,
    // far above it every group ages past the cap — the capacity point
    // is where the release policies actually diverge.
    let mean_execute = specs
        .iter()
        .map(|s| {
            config
                .cost
                .execute_cost(&s.arch.instantiate().resources(&memory), config.shots)
        })
        .sum::<u64>()
        / specs.len() as u64;
    let mean_gap = mean_execute as f64 / config.cost.units as f64;
    let arrivals = ArrivalProcess::Poisson { mean_gap, seed: 29 }.arrivals(400);
    let workload = Workload::Zipfian {
        address_width: N,
        theta: 0.99,
        seed: 31,
    };
    let submissions = assign_specs_with(
        &workload,
        &specs,
        SpecMix::Zipfian {
            theta: 0.9,
            seed: 37,
        },
        400,
    );
    let mut service = QramService::new(memory, config);
    for (&arrival, &(address, spec)) in arrivals.iter().zip(&submissions) {
        match service.try_submit_at(address, spec, arrival) {
            Admission::Accepted(_) => {}
            other => panic!("identical-arrivals premise broken: {other:?}"),
        }
    }
    let results = service.run_until_idle();
    assert_eq!(results.len(), 400);
    results
}

#[test]
fn cache_affine_dispatch_strictly_cuts_compile_ticks_on_identical_arrivals() {
    let mut oldest = serve_skewed_with_policy(ReleasePolicy::OldestFirst, 1, 1, 1);
    let mut affine = serve_skewed_with_policy(ReleasePolicy::cache_affine(), 1, 1, 1);
    // Completion order legitimately differs between policies; compare
    // request-by-request in admission order.
    oldest.sort_by_key(|r| r.id);
    affine.sort_by_key(|r| r.id);

    // Identical offered work: same ids, addresses, specs, arrivals.
    for (a, b) in oldest.iter().zip(&affine) {
        assert_eq!(
            (a.id, a.address, a.spec, a.arrival),
            (b.id, b.address, b.spec, b.arrival)
        );
    }
    // Acceptance: preferring cache-resident groups strictly reduces
    // the total compile ticks charged — fewer evict-recompile cycles
    // on the same arrival stream.
    let compile = |rs: &[QueryResult]| rs.iter().map(|r| r.latency.compile).sum::<u64>();
    let (c_oldest, c_affine) = (compile(&oldest), compile(&affine));
    assert!(
        c_affine < c_oldest,
        "cache-affine compile ticks {c_affine} must undercut oldest-first {c_oldest}"
    );
    // Both serve ground truth regardless of dispatch order.
    let memory = serve_memory();
    for r in oldest.iter().chain(&affine) {
        assert_eq!(r.value, memory.get(r.address as usize));
    }
}

#[test]
fn cache_affine_results_are_bit_identical_across_host_parallelism() {
    // The policy reads only virtual-time state (group arrival order +
    // cache residency), so every host-parallelism knob is still a pure
    // throughput knob: full QueryResult equality, latency breakdowns
    // and fidelity estimates included, across workers x shot-threads x
    // path-chunks.
    let reference = serve_skewed_with_policy(ReleasePolicy::cache_affine(), 1, 1, 1);
    for (workers, shot_threads, path_chunks) in [(4, 1, 1), (1, 4, 1), (1, 1, 4), (4, 4, 4)] {
        let run = serve_skewed_with_policy(
            ReleasePolicy::cache_affine(),
            workers,
            shot_threads,
            path_chunks,
        );
        assert_eq!(
            reference, run,
            "results diverged at workers={workers} shot_threads={shot_threads} path_chunks={path_chunks}"
        );
    }
}

#[test]
fn age_cap_bounds_a_cold_groups_queue_wait_without_deadlines() {
    // Batch-limit-only mode: the deadline never fires (`Ticks::MAX`
    // means "never" — pinned by the batcher) and the batch limit is
    // far above the offered group sizes, so the CacheAffine age cap is
    // the *only* anti-starvation mechanism in play.
    //
    // Starvation needs a precise shape: work conservation fires any
    // lone pending group the instant a unit frees, so the cold group
    // can only be passed over while a *resident* hot group is pending
    // at that same instant. With one execution unit, one hot request
    // arriving mid-way through every busy period guarantees exactly
    // that at every release point.
    let age_cap: Ticks = 30_000;
    let memory = serve_memory();
    let hot = QuerySpec::new(1, 3);
    let cold = QuerySpec::new(2, 2);
    let cost = CostModel::default().with_units(1);
    let config = ServiceConfig::default()
        .with_shots(0)
        .with_seed(5)
        .with_workers(1)
        .with_cost(cost)
        .with_batch_limit(64)
        .with_deadline(Ticks::MAX)
        .with_queue_capacity(4096)
        .with_release_policy(ReleasePolicy::CacheAffine { age_cap });
    let hot_resources = hot.arch.instantiate().resources(&memory);
    let c_h = cost.compile_cost(&hot_resources);
    let e_h = cost.execute_cost(&hot_resources, 0);
    let mut service = QramService::new(memory, config);

    // h0 fires immediately (empty queue, free unit) and occupies the
    // unit over [c_h, c_h + e_h). The cold request then pends behind
    // it; each later hot request i lands half a service period before
    // the unit frees at free_i = c_h + i·e_h, so every conserving
    // release sees heads = [cold, hot] with the hot group resident.
    match service.try_submit_at(1, hot, 0) {
        Admission::Accepted(_) => {}
        other => panic!("warm-up hot submit failed: {other:?}"),
    }
    let cold_arrival: Ticks = 100;
    let cold_id = match service.try_submit_at(3, cold, cold_arrival) {
        Admission::Accepted(id) => id,
        other => panic!("cold submit failed: {other:?}"),
    };
    // Enough rounds that the cold group's age crosses the cap with
    // margin while hot requests are still flowing.
    let rounds = age_cap / e_h + 8;
    for i in 1..=rounds {
        let arrival = c_h + i * e_h - e_h / 2;
        match service.try_submit_at(i % 16, hot, arrival) {
            Admission::Accepted(_) => {}
            other => panic!("hot submit failed: {other:?}"),
        }
    }
    let results = service.run_until_idle();
    let cold_result = results
        .iter()
        .find(|r| r.id == cold_id)
        .expect("cold served");

    // The redirect machinery really engaged: younger resident hot
    // groups were preferred over the pending cold one many times, and
    // the age cap eventually forced the cold group out.
    let metrics = service.metrics_snapshot();
    assert!(
        metrics.counter("policy.cache_affine_fires") > 1,
        "expected repeated cache-affine redirects, saw {}",
        metrics.counter("policy.cache_affine_fires")
    );
    assert!(
        metrics.counter("policy.age_cap_forced") >= 1,
        "the age cap never forced the cold group out"
    );

    // The cold group genuinely starved right up to the cap — the
    // redirects held it back — and then fired at the very next freed
    // unit, so its queue wait is sandwiched within one hot service
    // period above the cap.
    assert!(
        cold_result.latency.queue_wait >= age_cap,
        "cold queue wait {} below age cap {age_cap}: it never starved",
        cold_result.latency.queue_wait
    );
    assert!(
        cold_result.latency.queue_wait <= age_cap + e_h,
        "cold queue wait {} exceeds age cap {age_cap} + one hot period {e_h}",
        cold_result.latency.queue_wait
    );
}
