//! Property-based tests (proptest) over the whole stack: simulator
//! invariants, query correctness across random shapes and data, lazy
//! swapping's XOR-delta algebra, and resource-formula agreement.
//!
//! Determinism: cases are capped at 64 per property via
//! `ProptestConfig::with_cases` (CI further caps with `PROPTEST_CASES`),
//! the case RNG is seeded from `PROPTEST_RNG_SEED` (default 0), and
//! every `StdRng` inside a property derives from an explicit
//! `seed_from_u64` on a strategy-drawn seed — so tier-1 runs are
//! reproducible end to end.

use proptest::prelude::*;
use qram::circuit::{Circuit, Gate, Qubit};
use qram::core::{
    DataEncoding, Memory, Optimizations, QueryArchitecture, VirtualQram, VirtualQramModel,
};
use qram::sim::{run, PathState};

/// A random classical-reversible gate over `n ≥ 3` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = move || 0..n as u32;
    prop_oneof![
        q().prop_map(|a| Gate::x(Qubit(a))),
        q().prop_map(|a| Gate::y(Qubit(a))),
        q().prop_map(|a| Gate::z(Qubit(a))),
        (q(), q())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::cx(Qubit(a), Qubit(b))),
        (q(), q())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::swap(Qubit(a), Qubit(b))),
        (q(), q(), q())
            .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
            .prop_map(|(a, b, c)| Gate::ccx(Qubit(a), Qubit(b), Qubit(c))),
        (q(), q(), q())
            .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
            .prop_map(|(a, b, c)| Gate::cswap(Qubit(a), Qubit(b), Qubit(c))),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Norm and path count are invariant under any reversible circuit.
    #[test]
    fn reversible_circuits_preserve_norm_and_paths(
        circuit in arb_circuit(6, 40),
        addr_bits in 1usize..4,
    ) {
        let register: Vec<Qubit> = (0..addr_bits as u32).map(Qubit).collect();
        let mut state = PathState::uniform_over(6, &register);
        let paths_before = state.num_paths();
        run(circuit.gates(), &mut state).unwrap();
        prop_assert_eq!(state.num_paths(), paths_before);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Running a circuit then its inverse is the identity.
    #[test]
    fn inverse_circuits_uncompute(circuit in arb_circuit(6, 40)) {
        let register: Vec<Qubit> = (0..3).map(Qubit).collect();
        let input = PathState::uniform_over(6, &register);
        let mut state = input.clone();
        run(circuit.gates(), &mut state).unwrap();
        run(circuit.inverted().gates(), &mut state).unwrap();
        prop_assert!((state.fidelity(&input) - 1.0).abs() < 1e-9);
    }

    /// ASAP schedules are valid and never longer than the gate count.
    #[test]
    fn schedules_are_valid_and_bounded(circuit in arb_circuit(6, 40)) {
        let schedule = circuit.schedule();
        prop_assert!(schedule.is_valid());
        prop_assert!(schedule.depth() <= circuit.len());
        prop_assert_eq!(schedule.num_gates(), circuit.len());
    }

    /// The virtual QRAM answers correctly for every (k, m, data, address)
    /// — the full Eq. 2 contract on random instances.
    #[test]
    fn virtual_qram_queries_correctly(
        k in 0usize..3,
        m in 1usize..4,
        seed in 0u64..1000,
        recycle in any::<bool>(),
        lazy in any::<bool>(),
        pipeline in any::<bool>(),
        dual_rail in any::<bool>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(seed));
        let opts = Optimizations {
            recycle_qubits: recycle,
            lazy_swapping: lazy,
            pipeline_address: pipeline,
        };
        let encoding = if dual_rail { DataEncoding::DualRail } else { DataEncoding::Bit };
        let arch = VirtualQram::new(k, m).with_optimizations(opts).with_encoding(encoding);
        let query = arch.build(&memory);
        prop_assert!(query.verify(&memory).is_ok(), "{}", arch.name());
    }

    /// The closed-form resource model matches the generated circuit for
    /// arbitrary shapes, data and optimization sets.
    #[test]
    fn resource_formulas_hold(
        k in 0usize..4,
        m in 1usize..5,
        seed in 0u64..1000,
        lazy in any::<bool>(),
        recycle in any::<bool>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(seed));
        let opts = Optimizations {
            recycle_qubits: recycle,
            lazy_swapping: lazy,
            pipeline_address: true,
        };
        let query = VirtualQram::new(k, m).with_optimizations(opts).build(&memory);
        let model = VirtualQramModel::new(k, m, opts);
        prop_assert_eq!(query.num_qubits(), model.qubits());
        prop_assert_eq!(
            query.resources().classically_controlled,
            model.classically_controlled(&memory)
        );
        let census = query.circuit().gate_census();
        prop_assert_eq!(census.get("cswap").copied().unwrap_or(0), model.cswap_count());
    }

    /// Lazy swapping's algebra: first page, then XOR deltas, reconstructs
    /// every page prefix (the invariant that makes OPT2 sound).
    #[test]
    fn xor_delta_chain_reconstructs_pages(
        m in 1usize..5,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(seed));
        let mut acc: Vec<bool> = memory.page(m, 0).to_vec();
        for p in 0..memory.num_pages(m) - 1 {
            let delta = memory.page_delta(m, p);
            for (a, d) in acc.iter_mut().zip(delta) {
                *a = *a != d;
            }
            prop_assert_eq!(acc.as_slice(), memory.page(m, p + 1));
        }
    }

    /// Reduced fidelity is within [0, 1], ≥ full fidelity when the
    /// reference has clean ancillas, and = 1 for the noiseless run. The
    /// clean reference is built by computing and uncomputing the random
    /// circuit (ancillas provably return to |0⟩), then injecting noise
    /// only into the noisy copy.
    #[test]
    fn reduced_fidelity_is_well_behaved(
        circuit in arb_circuit(5, 25),
        noise_qubit in 0u32..5,
    ) {
        let register: Vec<Qubit> = (0..2).map(Qubit).collect();
        let ideal = PathState::uniform_over(5, &register);

        // Noisy copy: compute, suffer one Z mid-flight, uncompute.
        let mut noisy = ideal.clone();
        run(circuit.gates(), &mut noisy).unwrap();
        noisy.apply_z(Qubit(noise_qubit));
        run(circuit.inverted().gates(), &mut noisy).unwrap();

        let keep = [Qubit(0), Qubit(1)];
        let full = ideal.fidelity(&noisy);
        let reduced = ideal.reduced_fidelity(&noisy, &keep);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&reduced), "reduced = {reduced}");
        prop_assert!(reduced >= full - 1e-9);
        prop_assert!((ideal.reduced_fidelity(&ideal, &keep) - 1.0).abs() < 1e-9);
    }
}

/// Slab-equivalence suite: the arena-backed `PathState` pinned against a
/// naive reference interpreter, and the path-parallel executor pinned
/// against the serial one — **exactly**, amplitude bit for amplitude bit,
/// for any chunk count.
mod slab_equivalence {
    use super::*;
    use qram::circuit::Control;
    use qram::sim::{run_with_faults, run_with_faults_chunked, Amplitude, Fault, FaultPlan, Pauli};
    use std::collections::BTreeMap;

    /// The reference model: an ordered map from bit vectors to amplitudes,
    /// updated per gate with the same scalar operations the slab executor
    /// performs per path — so agreement must be exact, not approximate.
    type RefState = BTreeMap<Vec<bool>, Amplitude>;

    fn ref_from(state: &PathState) -> RefState {
        state
            .iter()
            .map(|(bits, amp)| (bits.iter().collect(), amp))
            .collect()
    }

    fn ctrl(bits: &[bool], c: &Control) -> bool {
        bits[c.qubit.index()] == c.value
    }

    /// Applies one classical-reversible gate (the `arb_gate` family) or
    /// Pauli to every reference path.
    fn ref_apply(gate: &Gate, state: &mut RefState) {
        let old = std::mem::take(state);
        for (mut bits, mut amp) in old {
            match gate {
                Gate::X(q) => bits[q.index()] = !bits[q.index()],
                Gate::Y(q) => {
                    let was_one = bits[q.index()];
                    bits[q.index()] = !was_one;
                    amp = if was_one {
                        amp.mul_neg_i()
                    } else {
                        amp.mul_i()
                    };
                }
                Gate::Z(q) => {
                    if bits[q.index()] {
                        amp = -amp;
                    }
                }
                Gate::Cx { control, target } => {
                    if ctrl(&bits, control) {
                        bits[target.index()] = !bits[target.index()];
                    }
                }
                Gate::Ccx { controls, target } => {
                    if ctrl(&bits, &controls[0]) && ctrl(&bits, &controls[1]) {
                        bits[target.index()] = !bits[target.index()];
                    }
                }
                Gate::Swap(a, b) => bits.swap(a.index(), b.index()),
                Gate::Cswap { control, a, b } => {
                    if ctrl(&bits, control) {
                        bits.swap(a.index(), b.index());
                    }
                }
                other => panic!("reference model does not cover {other:?}"),
            }
            assert!(state.insert(bits, amp).is_none(), "paths merged");
        }
    }

    fn ref_pauli(pauli: Pauli, qubit: usize, state: &mut RefState) {
        let gate = match pauli {
            Pauli::X => Gate::x(Qubit(qubit as u32)),
            Pauli::Y => Gate::y(Qubit(qubit as u32)),
            Pauli::Z => Gate::z(Qubit(qubit as u32)),
        };
        ref_apply(&gate, state);
    }

    /// Serial reference run with fault injection, mirroring
    /// `run_with_faults`' fire-before-gate ordering.
    fn ref_run(gates: &[Gate], plan: &[Fault], state: &mut RefState) {
        let mut faults = plan.to_vec();
        faults.sort_by_key(|f| f.gate_index);
        let mut next = 0usize;
        let fire = |idx: usize, next: &mut usize, state: &mut RefState| {
            while *next < faults.len() && faults[*next].gate_index <= idx {
                ref_pauli(faults[*next].pauli, faults[*next].qubit.index(), state);
                *next += 1;
            }
        };
        for (i, gate) in gates.iter().enumerate() {
            fire(i, &mut next, state);
            ref_apply(gate, state);
        }
        fire(gates.len(), &mut next, state);
    }

    /// Exact (bit-identical) equality between a slab state and the
    /// reference map.
    fn assert_exact_match(state: &PathState, reference: &RefState) {
        assert_eq!(state.num_paths(), reference.len());
        for (bits, amp) in state.iter() {
            let key: Vec<bool> = bits.iter().collect();
            let expected = reference.get(&key).expect("path missing from reference");
            assert!(
                amp.re == expected.re && amp.im == expected.im,
                "amplitude mismatch at {bits}: {amp} != {expected}"
            );
        }
    }

    /// A random fault plan over `n` qubits and circuit length `len`.
    fn arb_plan(n: usize, len: usize) -> impl Strategy<Value = Vec<Fault>> {
        prop::collection::vec(
            (0..len + 1, 0..n as u32, 0usize..3).prop_map(|(idx, q, p)| {
                Fault::new(idx, Qubit(q), [Pauli::X, Pauli::Y, Pauli::Z][p])
            }),
            0..6,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random gate sequences on random initial superpositions produce
        /// amplitude maps identical to the naive interpreter — for the
        /// serial executor and for every chunk count.
        #[test]
        fn slab_matches_reference_for_any_chunk_count(
            circuit in arb_circuit(6, 30),
            plan in arb_plan(6, 30),
            addr_bits in 1usize..4,
        ) {
            let register: Vec<Qubit> = (0..addr_bits as u32).map(Qubit).collect();
            let input = PathState::uniform_over(6, &register);
            let fault_plan: FaultPlan = plan.iter().copied().collect();

            let mut reference = ref_from(&input);
            ref_run(circuit.gates(), &plan, &mut reference);

            let mut serial = input.clone();
            run_with_faults(circuit.gates(), &mut serial, &fault_plan).unwrap();
            assert_exact_match(&serial, &reference);

            for chunks in [2usize, 3, 5, 16] {
                let mut chunked = input.clone();
                run_with_faults_chunked(circuit.gates(), &mut chunked, &fault_plan, chunks)
                    .unwrap();
                // Chunking must preserve slab order too, not just the set.
                let a: Vec<_> = chunked.iter().collect();
                let b: Vec<_> = serial.iter().collect();
                prop_assert_eq!(a, b, "chunks={}", chunks);
            }
        }

        /// The allocation-reusing `clone_from` reset is indistinguishable
        /// from a fresh clone, across shrinking and growing resets.
        #[test]
        fn clone_from_scratch_reuse_is_exact(
            circuit in arb_circuit(6, 20),
            first_bits in 1usize..4,
            second_bits in 1usize..4,
        ) {
            let big: Vec<Qubit> = (0..first_bits as u32).map(Qubit).collect();
            let small: Vec<Qubit> = (0..second_bits as u32).map(Qubit).collect();
            let mut scratch = PathState::zero_vector(6);
            // First reset (possibly growing), mutate, then second reset
            // (possibly shrinking) — the buffer history must not leak.
            scratch.clone_from(&PathState::uniform_over(6, &big));
            run(circuit.gates(), &mut scratch).unwrap();
            let source = PathState::uniform_over(6, &small);
            scratch.clone_from(&source);
            let a: Vec<_> = scratch.iter().collect();
            let b: Vec<_> = source.iter().collect();
            prop_assert_eq!(a, b);
        }

        /// `permute_paths` under genuinely injective maps (random
        /// reversible circuits compiled to bit permutations) preserves
        /// path count and norm on the slab — and the debug-mode
        /// injectivity check stays quiet.
        #[test]
        fn permute_paths_injectivity_on_slab(
            circuit in arb_circuit(6, 20),
            addr_bits in 1usize..4,
        ) {
            let register: Vec<Qubit> = (0..addr_bits as u32).map(Qubit).collect();
            let mut state = PathState::uniform_over(6, &register);
            let paths = state.num_paths();
            let norm = state.norm_sqr();
            // X/CX/CCX/SWAP/CSWAP subfamily as a pure bit permutation.
            for gate in circuit.gates() {
                match gate {
                    Gate::X(q) => {
                        let t = q.index();
                        state.permute_paths(|bits| bits.flip(t));
                    }
                    Gate::Cx { control, target } => {
                        let (c, t) = (*control, target.index());
                        state.permute_paths(|bits| {
                            if bits.get(c.qubit.index()) == c.value {
                                bits.flip(t);
                            }
                        });
                    }
                    Gate::Swap(a, b) => {
                        let (a, b) = (a.index(), b.index());
                        state.permute_paths(|bits| bits.swap_bits(a, b));
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(state.num_paths(), paths);
            prop_assert!((state.norm_sqr() - norm).abs() < 1e-12);
        }
    }
}

/// H-tree embeddings validate as topological minors for every width, and
/// the routing overhead ordering holds throughout.
#[test]
fn htree_and_routing_invariants() {
    use qram::layout::{swap_extra_depth, teleport_extra_depth, HTreeEmbedding};
    for m in 1..=9 {
        let e = HTreeEmbedding::new(m);
        e.validate().unwrap_or_else(|err| panic!("m={m}: {err}"));
        let census = e.role_census();
        assert_eq!(census.routers, (1 << m) - 1);
        assert_eq!(census.data, 1 << m);
        assert!(swap_extra_depth(&e) >= teleport_extra_depth(&e), "m={m}");
    }
}
