//! Integration: noisy simulation respects the Sec. 5.1 analytic fidelity
//! bounds, and deterministic fault injection reproduces the error-
//! propagation claims of Fig. 7.

use qram::core::{Memory, QueryArchitecture, VirtualQram};
use qram::noise::{FaultSampler, NoiseModel, PauliChannel};
use qram::qec::{virtual_z_fidelity_bound, z_fidelity_bound};
use qram::sim::{monte_carlo_fidelity, run, run_with_faults, Fault, FaultPlan, Pauli};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memory(n: usize, seed: u64) -> Memory {
    Memory::random(n, &mut StdRng::seed_from_u64(seed))
}

/// Eq. (3)-style check: per-qubit-once Z noise, measured fidelity must
/// sit at or above the closed-form floor.
#[test]
fn z_fidelity_respects_eq3_bound() {
    for (m, eps) in [(2usize, 1e-2), (3, 1e-2), (4, 3e-3)] {
        let mem = memory(m, m as u64);
        let query = VirtualQram::new(0, m).build(&mem);
        let input = query.input_state(None);
        let model = NoiseModel::per_qubit_once(PauliChannel::phase_flip(eps));
        let sampler = FaultSampler::new(query.circuit(), model, 77);
        let est = monte_carlo_fidelity(query.circuit().gates(), &input, 600, |shot| {
            sampler.sample_shot(shot)
        })
        .unwrap();
        let bound = z_fidelity_bound(eps, m);
        assert!(
            est.mean >= bound - 3.0 * est.std_error,
            "m={m} eps={eps}: measured {} < bound {bound}",
            est.mean
        );
    }
}

/// Eq. (5): the virtual-QRAM Z bound holds across (m, k) shapes.
#[test]
fn virtual_z_bound_holds_across_shapes() {
    for (k, m) in [(1usize, 2usize), (2, 2), (1, 3)] {
        let eps = 3e-3;
        let mem = memory(k + m, (k * 5 + m) as u64);
        let query = VirtualQram::new(k, m).build(&mem);
        let input = query.input_state(None);
        let model = NoiseModel::per_qubit_once(PauliChannel::phase_flip(eps));
        let sampler = FaultSampler::new(query.circuit(), model, 78);
        let est = monte_carlo_fidelity(query.circuit().gates(), &input, 600, |shot| {
            sampler.sample_shot(shot)
        })
        .unwrap();
        let bound = virtual_z_fidelity_bound(eps, m, k);
        assert!(
            est.mean >= bound - 3.0 * est.std_error,
            "k={k} m={m}: measured {} < bound {bound}",
            est.mean
        );
    }
}

/// Fig. 7's Z-locality claim, by construction: a single Z error on a
/// router corrupts only the branches routed through that router's
/// subtree; all other branches keep their exact amplitudes.
#[test]
fn z_fault_on_router_corrupts_only_its_subtree() {
    let m = 3;
    let mem = memory(m, 3);
    let query = VirtualQram::new(0, m).build(&mem);
    let input = query.input_state(None);
    let mut ideal = input.clone();
    run(query.circuit().gates(), &mut ideal).unwrap();

    // Find the "routers" register and fault its level-1 node (heap 2),
    // which owns addresses 0..2^(m-1) (the left half).
    let routers = query
        .registers()
        .iter()
        .find(|r| r.name() == "routers")
        .expect("router register")
        .clone();
    let victim = routers.get(1); // heap node 2

    // Inject mid-circuit: right after address loading (first third).
    let location = query.circuit().len() / 3;
    let plan: FaultPlan = [Fault::new(location, victim, Pauli::Z)]
        .into_iter()
        .collect();
    let mut noisy = input.clone();
    run_with_faults(query.circuit().gates(), &mut noisy, &plan).unwrap();

    // Branch-by-branch: overlap per address must be exactly ±1, and
    // every right-half address (not through heap 2) must be untouched.
    let addr_qs: Vec<_> = query.address().iter().collect();
    let n_qubits = query.num_qubits();
    for address in 0..(1u64 << m) {
        let mut branch_in = qram::sim::PathState::computational_basis(n_qubits);
        for (i, q) in addr_qs.iter().enumerate() {
            if (address >> (m - 1 - i)) & 1 == 1 {
                branch_in.apply_x(*q);
            }
        }
        let mut branch_ideal = branch_in.clone();
        run(query.circuit().gates(), &mut branch_ideal).unwrap();
        let mut branch_noisy = branch_in.clone();
        run_with_faults(query.circuit().gates(), &mut branch_noisy, &plan).unwrap();
        let overlap = branch_ideal.fidelity(&branch_noisy);
        if address >= (1 << (m - 1)) {
            // Right subtree: router heap 2 is not on the path; Z there is
            // invisible (it acts on |0⟩ or commutes clean through).
            assert!(
                (overlap - 1.0).abs() < 1e-9,
                "address {address} (off-subtree) damaged: {overlap}"
            );
        } else {
            // On-subtree branches may flip sign but stay basis-aligned.
            assert!(
                overlap < 1e-9 || (overlap - 1.0).abs() < 1e-9,
                "address {address}: partial overlap {overlap}"
            );
        }
    }
}

/// The X-channel contrast of Sec. 5.1: a single X on a compression rail
/// mid-retrieval destroys the (full-state) query fidelity.
#[test]
fn x_fault_on_rail_is_fatal_for_full_state_fidelity() {
    let m = 3;
    let mem = Memory::ones(m);
    let query = VirtualQram::new(0, m).build(&mem);
    let input = query.input_state(None);
    let mut ideal = input.clone();
    run(query.circuit().gates(), &mut ideal).unwrap();

    let flags = query
        .registers()
        .iter()
        .find(|r| r.name() == "flags")
        .expect("flag register")
        .clone();
    // Strike the middle of the circuit (inside retrieval).
    let plan: FaultPlan = [Fault::new(
        query.circuit().len() / 2,
        flags.get(0),
        Pauli::X,
    )]
    .into_iter()
    .collect();
    let mut noisy = input.clone();
    run_with_faults(query.circuit().gates(), &mut noisy, &plan).unwrap();
    assert!(
        ideal.fidelity(&noisy) < 0.6,
        "X mid-circuit should not be survivable at full-state fidelity"
    );
}

/// Phase flips reduce fidelity strictly less than bit flips of the same
/// strength on the same architecture — the Z-bias of Fig. 10.
#[test]
fn phase_noise_beats_bit_noise_at_equal_strength() {
    let m = 4;
    let mem = memory(m, 9);
    let query = VirtualQram::new(0, m).build(&mem);
    let input = query.input_state(None);
    let eps = 2e-3;
    let mut fid = [0.0f64; 2];
    for (i, channel) in [PauliChannel::phase_flip(eps), PauliChannel::bit_flip(eps)]
        .into_iter()
        .enumerate()
    {
        let model = NoiseModel::per_gate(channel);
        let sampler = FaultSampler::new(query.circuit(), model, 123);
        fid[i] = monte_carlo_fidelity(query.circuit().gates(), &input, 400, |shot| {
            sampler.sample_shot(shot)
        })
        .unwrap()
        .mean;
    }
    assert!(
        fid[0] > fid[1] + 0.02,
        "phase-flip {} should beat bit-flip {}",
        fid[0],
        fid[1]
    );
}

/// Fidelity is monotone in the error-reduction factor.
#[test]
fn fidelity_is_monotone_in_error_reduction() {
    use qram::noise::ErrorReductionFactor;
    let mem = memory(3, 4);
    let query = VirtualQram::new(1, 2).build(&mem);
    let input = query.input_state(None);
    let base = NoiseModel::per_gate(PauliChannel::depolarizing(5e-3));
    let mut last = 0.0;
    for er in [1.0, 10.0, 100.0] {
        let model = base.reduced_by(ErrorReductionFactor(er));
        let sampler = FaultSampler::new(query.circuit(), model, 321);
        let est = monte_carlo_fidelity(query.circuit().gates(), &input, 500, |shot| {
            sampler.sample_shot(shot)
        })
        .unwrap();
        assert!(
            est.mean >= last - 0.02,
            "fidelity not monotone: {} after {last} at εr={er}",
            est.mean
        );
        last = est.mean;
    }
    assert!(
        last > 0.99,
        "εr = 100 should be nearly noise-free, got {last}"
    );
}

/// The GHZ-fragility contrast of Sec. 2.3.2, made deterministic: a Z on
/// any level-2 router right after address loading. In fanout QRAM every
/// level-2 router carries a GHZ copy of the address bit, so the fault
/// dephases the *whole* superposition (fidelity 0); in bucket brigade the
/// same fault touches only branches routed through that node and holding
/// a 1 there (1/8 of them → overlap 3/4 → fidelity 9/16).
#[test]
fn fanout_router_faults_dephase_globally_bb_faults_locally() {
    use qram::circuit::Gate;
    use qram::core::{BucketBrigadeQram, FanoutQram};

    let m = 3;
    let mem = Memory::ones(m);
    let archs: [(Box<dyn QueryArchitecture>, f64); 2] = [
        (Box::new(FanoutQram::new(m)), 0.0),
        (Box::new(BucketBrigadeQram::new(0, m)), 9.0 / 16.0),
    ];
    for (arch, expected) in archs {
        let query = arch.build(&mem);
        let input = query.input_state(None);
        let mut ideal = input.clone();
        run(query.circuit().gates(), &mut ideal).unwrap();

        let routers = query
            .registers()
            .iter()
            .find(|r| r.name() == "routers")
            .expect("router register")
            .clone();
        // Both architectures inject their retrieval ball with the first X
        // gate — loading/broadcast ends exactly there.
        let after_loading = query
            .circuit()
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::X(_)))
            .expect("ball injection X");
        for heap in 4..8 {
            let plan: FaultPlan = [Fault::new(after_loading, routers.get(heap - 1), Pauli::Z)]
                .into_iter()
                .collect();
            let mut noisy = input.clone();
            run_with_faults(query.circuit().gates(), &mut noisy, &plan).unwrap();
            let fidelity = ideal.fidelity(&noisy);
            assert!(
                (fidelity - expected).abs() < 1e-9,
                "{} heap {heap}: fidelity {fidelity}, expected {expected}",
                arch.name()
            );
        }
    }
}
