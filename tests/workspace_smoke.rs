//! Workspace smoke test: every architecture, end to end, tiny sizes.
//!
//! This suite exists so a manifest regression (a dropped dependency edge,
//! a broken re-export, a renamed package) can never silently ship: it
//! exercises the facade's public path through **all five** architectures
//! at `n = 3` — `build → verify → query_classical` — which transitively
//! touches `qram-circuit`, `qram-sim` and `qram-core`, plus quick probes
//! of the `noise`, `layout` and `qec` re-exports.

use qram::core::{
    BucketBrigadeQram, FanoutQram, Memory, QueryArchitecture, SelectSwapQram, Sqc, VirtualQram,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 3;

/// Runs one architecture through the full query contract on `memory`.
fn exercise(arch: &dyn QueryArchitecture, memory: &Memory) {
    let query = arch.build(memory);
    query
        .verify(memory)
        .unwrap_or_else(|e| panic!("{}: verify failed: {e}", arch.name()));
    for address in 0..memory.len() as u64 {
        let got = query
            .query_classical(address)
            .unwrap_or_else(|e| panic!("{}: query({address}) failed: {e}", arch.name()));
        assert_eq!(
            got,
            memory.get(address as usize),
            "{}: wrong bit at address {address}",
            arch.name()
        );
    }
}

fn smoke_memory() -> Memory {
    Memory::random(N, &mut StdRng::seed_from_u64(2023))
}

#[test]
fn sqc_end_to_end() {
    exercise(&Sqc::new(N), &smoke_memory());
}

#[test]
fn fanout_end_to_end() {
    exercise(&FanoutQram::new(N), &smoke_memory());
}

#[test]
fn bucket_brigade_end_to_end() {
    // k = 1 exercises the hybrid SQC stage alongside the m = 2 tree.
    exercise(&BucketBrigadeQram::new(1, N - 1), &smoke_memory());
}

#[test]
fn select_swap_end_to_end() {
    exercise(&SelectSwapQram::new(1, N - 1), &smoke_memory());
}

#[test]
fn virtual_qram_end_to_end() {
    exercise(&VirtualQram::new(1, N - 1), &smoke_memory());
}

#[test]
fn facade_reexports_are_wired() {
    // One cheap call into each remaining sub-crate so a severed
    // dependency edge in any manifest fails this suite, not just a build
    // somewhere downstream.
    use qram::circuit::{Circuit, Gate, Qubit};
    use qram::layout::HTreeEmbedding;
    use qram::noise::{NoiseModel, PauliChannel};
    use qram::qec::{balanced_code, TYPICAL_THRESHOLD};
    use qram::service::{QramService, QuerySpec, ServiceConfig};
    use qram::sim::PathState;

    let mut c = Circuit::new(2);
    c.push(Gate::cx(Qubit(0), Qubit(1)));
    assert_eq!(c.len(), 1);

    let state = PathState::computational_basis(2);
    assert_eq!(state.num_paths(), 1);

    let _model = NoiseModel::per_gate(PauliChannel::depolarizing(1e-3));

    let embedding = HTreeEmbedding::new(N);
    embedding
        .validate()
        .expect("H-tree embedding is a topological minor");

    let code = balanced_code(1, N - 1, 1e-3, TYPICAL_THRESHOLD, 9);
    assert!(code.dx() >= code.dz());

    let memory = smoke_memory();
    let mut service = QramService::new(memory.clone(), ServiceConfig::default().with_shots(0));
    service.submit(5, QuerySpec::new(1, N - 1));
    let report = service.drain();
    assert_eq!(report.results[0].value, memory.get(5));
}
