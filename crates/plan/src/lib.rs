//! Offline `(k, m)` capacity planning over the staged query compiler.
//!
//! The serving layer compares architectures, but until now every hybrid
//! family entered the comparison hard-coded at `k = 1` — one arbitrary
//! point of each family's `(k, m)` split space. This crate makes the
//! split a *planned* quantity: for an address width `n` and a physical
//! qubit budget, it sweeps **every legal split of every family**
//! through the same `spec → circuit → resources → cost` pipeline the
//! service prices batches with, and reports
//!
//! * the full [`survey`] — one [`PlanPoint`] per candidate, carrying
//!   the measured qubit footprint and the virtual-time compile /
//!   execute prices;
//! * the [`pareto_frontier`] — the non-dominated candidates over
//!   `(compile ticks, execute ticks/shot, qubits)`, i.e. every
//!   configuration a rational deployment could pick;
//! * [`planned_families`] — the budget-optimal representative of each
//!   family, replacing legacy `k = 1` hard-codings wherever a fair
//!   cross-family comparison is wanted (e.g. `serve_bench --arch mix`).
//!
//! Planning prices through the [`QueryArchitecture::resources`] hook
//! (pinned by test to agree exactly with the measured resources of the
//! built circuit) and [`Compiler::estimate`], so a planned point costs
//! exactly what serving it will charge. Everything here is a pure
//! function of `(n, budget, cost model, shots)` — same inputs, same
//! frontier, same [JSON report](frontier_json) bytes, same digest — on
//! any host.
//!
//! [`QueryArchitecture::resources`]: qram_core::QueryArchitecture::resources

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qram_core::{ArchSpec, Memory};
use qram_service::{Compiler, CostModel, Ticks};
use qram_telemetry::fnv1a_64;

/// Schema identifier stamped into every [`frontier_json`] report.
pub const FRONTIER_SCHEMA: &str = "qram-plan/frontier/v1";

/// A qubit budget meaning "unconstrained" (serialized as `0` in
/// reports, matching the bench CLI convention).
pub const UNLIMITED_BUDGET: usize = usize::MAX;

/// One priced candidate configuration: an architecture spec and what it
/// costs on the three planning axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanPoint {
    /// The candidate architecture (family + `(k, m)` split).
    pub spec: ArchSpec,
    /// Measured qubit footprint (`ResourceCount::num_qubits` of the
    /// circuit the spec compiles) — what the budget constrains.
    pub qubits: usize,
    /// Virtual ticks to compile the circuit (charged per cache miss).
    pub compile: Ticks,
    /// Virtual ticks to execute one request (per batched request).
    pub execute: Ticks,
}

impl PlanPoint {
    /// Whether `self` dominates `other`: no worse on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &PlanPoint) -> bool {
        let no_worse = self.compile <= other.compile
            && self.execute <= other.execute
            && self.qubits <= other.qubits;
        let strictly_better = self.compile < other.compile
            || self.execute < other.execute
            || self.qubits < other.qubits;
        no_worse && strictly_better
    }
}

/// The canonical planning memory at width `n`: the same deterministic
/// `i % 3 == 0` bit pattern the workspace's tests and benches serve.
///
/// Resource counts (and therefore prices) depend only on the memory's
/// *width*, never its contents, for every architecture in `qram-core` —
/// any width-`n` memory would plan identically; this one is fixed so
/// report digests are stable byte-for-byte.
pub fn planning_memory(n: usize) -> Memory {
    Memory::from_bits((0..1u64 << n).map(|i| i % 3 == 0))
}

/// Prices every legal candidate at width `n` (see
/// [`ArchSpec::family_candidates`]) under `cost` for `shots`-shot
/// requests, in the candidates' canonical deterministic order.
///
/// # Panics
///
/// Panics if `n < 2` (candidate enumeration needs at least one legal
/// hybrid split).
pub fn survey(n: usize, cost: CostModel, shots: usize) -> Vec<PlanPoint> {
    let memory = planning_memory(n);
    let compiler = Compiler::new(cost, shots);
    ArchSpec::family_candidates(n)
        .into_iter()
        .map(|spec| {
            let resources = spec.instantiate().resources(&memory);
            let estimate = compiler.estimate(&resources);
            PlanPoint {
                spec,
                qubits: resources.num_qubits,
                compile: estimate.compile,
                execute: estimate.execute,
            }
        })
        .collect()
}

/// The non-dominated subset of `points` over
/// `(compile, execute, qubits)`, preserving input order.
///
/// Ties are kept: two points equal on all three axes dominate neither,
/// so both survive — the frontier is a deterministic function of the
/// input sequence.
pub fn pareto_frontier(points: &[PlanPoint]) -> Vec<PlanPoint> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .copied()
        .collect()
}

/// The budget-optimal representative of each architecture family at
/// width `n` under the default [`CostModel`] and single-shot pricing —
/// the planned replacement for hard-coded `k = 1` comparison sets.
///
/// Families whose *cheapest-in-qubits* candidate still exceeds
/// `qubit_budget` are dropped (the returned set may be empty under a
/// starvation budget). Within a family the representative minimizes
/// `(execute, compile, qubits)` lexicographically among the fitting
/// candidates, breaking remaining ties toward the smallest `k`.
/// Families appear in their canonical order: SQC, fanout,
/// bucket-brigade, select-swap, virtual.
///
/// Pass [`UNLIMITED_BUDGET`] (or any budget at least as large as every
/// candidate) to plan unconstrained.
///
/// # Panics
///
/// Panics if `n < 2`, like [`survey`].
pub fn planned_families(n: usize, qubit_budget: usize) -> Vec<ArchSpec> {
    planned_families_with(n, qubit_budget, CostModel::default(), 1)
}

/// [`planned_families`] under an explicit cost model and shot count.
///
/// # Panics
///
/// Panics if `n < 2`, like [`survey`].
pub fn planned_families_with(
    n: usize,
    qubit_budget: usize,
    cost: CostModel,
    shots: usize,
) -> Vec<ArchSpec> {
    let points = survey(n, cost, shots);
    // Candidate order is family-major, so walking the distinct family
    // tags of the survey preserves the canonical family order.
    let mut families: Vec<&'static str> = Vec::new();
    for point in &points {
        if !families.contains(&point.spec.family()) {
            families.push(point.spec.family());
        }
    }
    families
        .into_iter()
        .filter_map(|family| {
            points
                .iter()
                .filter(|p| p.spec.family() == family && p.qubits <= qubit_budget)
                // `min_by_key` keeps the *first* of equals, i.e. the
                // smallest k of the ascending candidate sweep.
                .min_by_key(|p| (p.execute, p.compile, p.qubits))
                .map(|p| p.spec)
        })
        .collect()
}

/// FNV-1a digest of a point sequence — the determinism fingerprint
/// stamped into [`frontier_json`] and compared by the planner's CI
/// smoke run.
pub fn frontier_digest(points: &[PlanPoint]) -> u64 {
    let mut canonical = String::new();
    for point in points {
        canonical.push_str(&format!(
            "{}|{}|{}|{};",
            point.spec.name(),
            point.qubits,
            point.compile,
            point.execute
        ));
    }
    fnv1a_64(canonical.into_bytes())
}

/// Renders a full planning report as deterministic JSON: the survey
/// size, the Pareto frontier, the [`planned_families`] pick under
/// `qubit_budget`, and the frontier's FNV-1a digest.
///
/// `qubit_budget == UNLIMITED_BUDGET` serializes as `0`, matching the
/// bench CLI's "0 means unlimited" convention.
///
/// # Panics
///
/// Panics if `n < 2`, like [`survey`].
pub fn frontier_json(n: usize, qubit_budget: usize, cost: CostModel, shots: usize) -> String {
    let points = survey(n, cost, shots);
    let frontier = pareto_frontier(&points);
    let planned = planned_families_with(n, qubit_budget, cost, shots);
    let digest = frontier_digest(&frontier);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FRONTIER_SCHEMA}\",\n"));
    out.push_str(&format!("  \"address_width\": {n},\n"));
    let budget = if qubit_budget == UNLIMITED_BUDGET {
        0
    } else {
        qubit_budget
    };
    out.push_str(&format!("  \"qubit_budget\": {budget},\n"));
    out.push_str(&format!("  \"shots\": {shots},\n"));
    out.push_str(&format!("  \"candidates\": {},\n", points.len()));
    out.push_str("  \"frontier\": [\n");
    for (i, point) in frontier.iter().enumerate() {
        let comma = if i + 1 == frontier.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"arch\": \"{}\", \"family\": \"{}\", \"qubits\": {}, \"compile_ticks\": {}, \"execute_ticks\": {}}}{comma}\n",
            point.spec.name(),
            point.spec.family(),
            point.qubits,
            point.compile,
            point.execute
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"planned\": [");
    for (i, spec) in planned.iter().enumerate() {
        let comma = if i + 1 == planned.len() { "" } else { ", " };
        out.push_str(&format!("\"{}\"{comma}", spec.name()));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"frontier_digest\": \"{digest:016x}\"\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_service::{QuerySpec, VerifyLevel};

    #[test]
    fn survey_prices_every_candidate_in_canonical_order() {
        let points = survey(4, CostModel::default(), 1);
        let candidates = ArchSpec::family_candidates(4);
        assert_eq!(points.len(), candidates.len());
        for (point, spec) in points.iter().zip(&candidates) {
            assert_eq!(point.spec, *spec);
            assert!(point.qubits > 0);
            assert!(point.compile > 0);
            assert!(point.execute > 0);
        }
    }

    #[test]
    fn planning_prices_agree_with_the_serving_compiler() {
        // The resources hook contract: a planned point costs exactly
        // what a full serving-path compile of the same spec charges.
        let compiler = Compiler::new(CostModel::default(), 3);
        for point in survey(3, CostModel::default(), 3) {
            let compiled = compiler.compile(QuerySpec::of(point.spec), &planning_memory(3));
            assert_eq!(point.qubits, compiled.resources.num_qubits);
            assert_eq!(point.compile, compiled.cost.compile);
            assert_eq!(point.execute, compiled.cost.execute);
        }
    }

    #[test]
    fn frontier_is_mutually_non_dominated_and_covers_the_dropped() {
        let points = survey(5, CostModel::default(), 1);
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= points.len());
        for a in &frontier {
            for b in &frontier {
                assert!(!a.dominates(b), "{a:?} dominates frontier member {b:?}");
            }
        }
        for dropped in points.iter().filter(|p| !frontier.contains(p)) {
            assert!(
                frontier.iter().any(|f| f.dominates(dropped)),
                "dropped point {dropped:?} is dominated by no frontier member"
            );
        }
    }

    #[test]
    fn unlimited_budget_plans_one_representative_per_family() {
        let planned = planned_families(4, UNLIMITED_BUDGET);
        let families: Vec<&str> = planned.iter().map(|s| s.family()).collect();
        assert_eq!(
            families,
            ["sqc", "fanout", "bucket_brigade", "select_swap", "virtual"]
        );
        for spec in &planned {
            assert_eq!(spec.address_width(), 4);
        }
    }

    #[test]
    fn budget_drops_families_that_cannot_fit() {
        let points = survey(4, CostModel::default(), 1);
        // Budget exactly at the smallest footprint: at least one family
        // survives, and every planned point respects the budget.
        let min_qubits = points.iter().map(|p| p.qubits).min().unwrap();
        let planned = planned_families(4, min_qubits);
        assert!(!planned.is_empty());
        assert!(
            planned.len() < 5,
            "a width-4 sweep spans > {min_qubits} qubits"
        );
        let memory = planning_memory(4);
        for spec in &planned {
            let footprint = spec.instantiate().resources(&memory).num_qubits;
            assert!(footprint <= min_qubits);
        }
        // A starvation budget drops everything rather than panicking.
        assert!(planned_families(4, 1).is_empty());
    }

    #[test]
    fn planned_representatives_are_family_optimal_in_execute() {
        let points = survey(4, CostModel::default(), 1);
        for spec in planned_families(4, UNLIMITED_BUDGET) {
            let chosen = points.iter().find(|p| p.spec == spec).unwrap();
            let best_execute = points
                .iter()
                .filter(|p| p.spec.family() == spec.family())
                .map(|p| p.execute)
                .min()
                .unwrap();
            assert_eq!(chosen.execute, best_execute);
        }
    }

    #[test]
    fn reports_are_bit_identical_across_runs() {
        let a = frontier_json(4, 128, CostModel::default(), 2);
        let b = frontier_json(4, 128, CostModel::default(), 2);
        assert_eq!(a, b);
        assert!(a.contains(FRONTIER_SCHEMA));
        assert!(a.contains("\"frontier_digest\""));
        let digest_a = frontier_digest(&pareto_frontier(&survey(4, CostModel::default(), 2)));
        assert!(a.contains(&format!("{digest_a:016x}")));
    }

    #[test]
    fn frontier_points_deep_verify_with_zero_findings() {
        // Every configuration the planner can recommend must survive
        // the full qram-verify analyzer (structural + deep passes).
        let compiler = Compiler::new(CostModel::default(), 1);
        let memory = planning_memory(3);
        for point in pareto_frontier(&survey(3, CostModel::default(), 1)) {
            compiler
                .try_compile(QuerySpec::of(point.spec), &memory, VerifyLevel::Deep)
                .unwrap_or_else(|e| panic!("{} failed deep verification: {e}", point.spec.name()));
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn planning_rejects_widths_without_a_split() {
        let _ = survey(1, CostModel::default(), 1);
    }
}
