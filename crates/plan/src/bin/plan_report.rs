//! `plan_report` — dumps the offline capacity planner's Pareto frontier
//! as deterministic JSON.
//!
//! ```text
//! cargo run --release -p qram-plan --bin plan_report -- \
//!     --width 4 --qubit-budget 64 --shots 1 --out PLAN.json
//! ```
//!
//! Flags:
//!
//! * `--width N` — memory address width `n` to plan for (default 4);
//! * `--qubit-budget Q` — physical qubit budget constraining
//!   [`qram_plan::planned_families`] (default `0` = unconstrained);
//! * `--shots N` — shot count execute prices scale with (default 1);
//! * `--out FILE` — also write the report to `FILE` (always printed to
//!   stdout).
//!
//! The report is a pure function of the flags: same flags, same bytes,
//! same `frontier_digest`, on any host (CI diffs back-to-back runs).

use std::path::PathBuf;

use qram_plan::{frontier_json, UNLIMITED_BUDGET};
use qram_service::CostModel;

fn main() {
    let mut width = 4usize;
    let mut qubit_budget = UNLIMITED_BUDGET;
    let mut shots = 1usize;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--width" => width = value("--width", &mut args).parse().expect("--width"),
            "--qubit-budget" => {
                let budget: usize = value("--qubit-budget", &mut args)
                    .parse()
                    .expect("--qubit-budget");
                qubit_budget = if budget == 0 {
                    UNLIMITED_BUDGET
                } else {
                    budget
                };
            }
            "--shots" => shots = value("--shots", &mut args).parse().expect("--shots"),
            "--out" => out = Some(PathBuf::from(value("--out", &mut args))),
            other => panic!("unknown flag {other}; known: --width --qubit-budget --shots --out"),
        }
    }

    let report = frontier_json(width, qubit_budget, CostModel::default(), shots);
    print!("{report}");
    if let Some(path) = out {
        std::fs::write(&path, &report)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
