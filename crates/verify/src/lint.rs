//! The determinism lint: a textual scan of workspace sources for
//! patterns that undermine the bit-identical-results contract.
//!
//! The serving stack promises results that are bit-identical for any
//! worker count, host and run — a promise kept by discipline: virtual
//! clocks instead of wall clocks, seeds derived from `(service seed,
//! request id)` instead of entropy, ordered containers in every digest
//! and schedule path. This lint makes the discipline checkable:
//!
//! * **`wall-clock`** — `Instant::now` / `SystemTime` reads. Host time
//!   in any serving or digest path destroys run-to-run reproducibility.
//! * **`unseeded-rng`** — `thread_rng`, `from_entropy`, `from_os_rng`,
//!   `rand::random`: entropy-seeded randomness cannot be replayed.
//! * **`unordered-iter`** — iteration over `HashMap`/`HashSet`
//!   bindings. Std hash collections seed their hasher per instance, so
//!   iteration order differs run to run; feeding it into a digest,
//!   schedule or float accumulation is nondeterminism. Binding
//!   discovery is per file (declarations mentioning the hash types),
//!   and order-*independent* consumers (`.any(..)` / `.all(..)`
//!   directly on the iterator) are exempt.
//!
//! Findings are suppressed only through the audited allowlist
//! (`crates/verify/allowlist.txt`): one `rule path-suffix` line per
//! exception, each carrying a comment justifying why the pattern is
//! harmless there. The scan skips `vendor/` (third-party stubs),
//! `target/`, `tests/` and `fixtures/` directories.
//!
//! The patterns below are assembled with `concat!` so this file's own
//! string literals never trip the scan.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule id for wall-clock reads.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule id for entropy-seeded randomness.
pub const RULE_UNSEEDED_RNG: &str = "unseeded-rng";
/// Rule id for hash-collection iteration.
pub const RULE_UNORDERED_ITER: &str = "unordered-iter";

const WALL_CLOCK_PATTERNS: [&str; 2] = [concat!("Instant::", "now"), concat!("System", "Time")];
const UNSEEDED_RNG_PATTERNS: [&str; 4] = [
    concat!("thread_", "rng"),
    concat!("from_", "entropy"),
    concat!("from_os_", "rng"),
    concat!("rand::", "random"),
];
const HASH_TYPES: [&str; 2] = [concat!("Hash", "Map"), concat!("Hash", "Set")];
const ITER_METHODS: [&str; 7] = [
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "drain(",
];

/// One lint diagnostic: a banned pattern at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule id.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// The audited-exception list: `rule path-suffix` pairs parsed from
/// `crates/verify/allowlist.txt`.
///
/// ```
/// use qram_verify::Allowlist;
/// let allow = Allowlist::parse("# audited: host wall-time column\nwall-clock crates/bench/src/bin/serve_bench.rs\n");
/// assert!(allow.allows("wall-clock", "crates/bench/src/bin/serve_bench.rs"));
/// assert!(!allow.allows("unseeded-rng", "crates/bench/src/bin/serve_bench.rs"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// An empty allowlist (nothing suppressed).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses `rule path-suffix` lines; `#` starts a comment.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(suffix)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), suffix.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Loads the workspace allowlist from
    /// `<root>/crates/verify/allowlist.txt`; missing file = empty list.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than the file being absent.
    pub fn load(root: &Path) -> io::Result<Self> {
        match fs::read_to_string(root.join("crates/verify/allowlist.txt")) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::empty()),
            Err(e) => Err(e),
        }
    }

    /// Whether `rule` findings in `file` are suppressed.
    pub fn allows(&self, rule: &str, file: &str) -> bool {
        let file = file.replace('\\', "/");
        self.entries
            .iter()
            .any(|(r, suffix)| r == rule && file.ends_with(suffix))
    }

    /// Number of allowlist entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Everything after `//` is a comment; doc comments vanish entirely.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Trailing identifier of `text`, if any.
fn trailing_ident(text: &str) -> Option<&str> {
    let end = text.len();
    let start = text
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &text[start..end];
    ident.chars().next().filter(|c| !c.is_ascii_digit())?;
    Some(ident)
}

/// Hash-collection binding names declared in `code` (one file's worth of
/// comment-stripped lines): `let`-bindings, struct fields and `fn`
/// parameters whose declarations mention a hash type.
fn hash_bindings(lines: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for code in lines {
        if !HASH_TYPES.iter().any(|t| code.contains(t)) {
            continue;
        }
        // `let [mut] name` — covers `let x: HashMap<..>` and
        // `let x = HashMap::new()` alike.
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let ident: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
            if !ident.is_empty() && !ident.starts_with(|c: char| c.is_ascii_digit()) {
                names.push(ident);
            }
        }
        // `name: HashMap<..>` / `name: &mut HashMap<..>` — struct
        // fields and function parameters.
        for t in HASH_TYPES {
            for (pos, _) in code.match_indices(t) {
                let mut prefix = code[..pos].trim_end();
                prefix = prefix.strip_suffix("mut").unwrap_or(prefix).trim_end();
                prefix = prefix.strip_suffix('&').unwrap_or(prefix).trim_end();
                let Some(stripped) = prefix.strip_suffix(':') else {
                    continue;
                };
                if let Some(ident) = trailing_ident(stripped.trim_end()) {
                    names.push(ident.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Whether `code` iterates one of the tracked hash bindings in an
/// order-dependent way.
fn iterates_hash_binding(code: &str, names: &[String]) -> bool {
    for name in names {
        for method in ITER_METHODS {
            let needle = format!("{name}.{method}");
            for (pos, _) in code.match_indices(&needle) {
                // Word boundary before the binding name.
                if pos > 0 && code[..pos].ends_with(is_ident_char) {
                    continue;
                }
                // `.any(` / `.all(` directly on the iterator are
                // order-independent reductions.
                let after = &code[pos + needle.len()..];
                if after.starts_with(".any(") || after.starts_with(".all(") {
                    continue;
                }
                return true;
            }
        }
        // `for x in name` / `for x in &[mut] name`.
        let trimmed = code.trim_start();
        if trimmed.starts_with("for ") {
            if let Some(pos) = trimmed.find(" in ") {
                let expr = trimmed[pos + 4..].trim_start();
                let expr = expr.strip_prefix('&').unwrap_or(expr);
                let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
                let ident: String = expr.chars().take_while(|c| is_ident_char(*c)).collect();
                let boundary = expr[ident.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !is_ident_char(c) && c != '.');
                if ident == *name && boundary {
                    return true;
                }
            }
        }
    }
    false
}

/// Lints one file's text. `file` is the label findings carry.
pub fn lint_file(file: &str, text: &str) -> Vec<LintFinding> {
    let stripped: Vec<&str> = text.lines().map(code_of).collect();
    let bindings = hash_bindings(&stripped);
    let mut findings = Vec::new();
    for (i, code) in stripped.iter().enumerate() {
        let mut hit = |rule: &'static str| {
            findings.push(LintFinding {
                file: file.to_string(),
                line: i + 1,
                rule,
                excerpt: text.lines().nth(i).unwrap_or("").trim().to_string(),
            });
        };
        if WALL_CLOCK_PATTERNS.iter().any(|p| code.contains(p)) {
            hit(RULE_WALL_CLOCK);
        }
        if UNSEEDED_RNG_PATTERNS.iter().any(|p| code.contains(p)) {
            hit(RULE_UNSEEDED_RNG);
        }
        if iterates_hash_binding(code, &bindings) {
            hit(RULE_UNORDERED_ITER);
        }
    }
    findings
}

/// Outcome of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived the allowlist.
    pub findings: Vec<LintFinding>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Directories never scanned: third-party code, build output, test
/// sources (whose fixtures deliberately contain banned patterns).
fn skipped_dir(name: &str) -> bool {
    matches!(
        name,
        "target" | "vendor" | ".git" | ".github" | "tests" | "fixtures"
    )
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    // read_dir order is OS-dependent; the lint's own output must be
    // deterministic.
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !skipped_dir(name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (minus skipped directories) and
/// filters findings through `allow`.
///
/// # Errors
///
/// Propagates directory-walk and file-read errors.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = LintReport::default();
    for path in files {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        for finding in lint_file(&label, &text) {
            if allow.allows(finding.rule, &finding.file) {
                report.suppressed += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_do_not_trip_rules() {
        let text = concat!("// a comment mentioning Instant::", "now()\nlet x = 1;\n");
        assert!(lint_file("a.rs", text).is_empty());
    }

    #[test]
    fn insert_and_lookup_on_hash_bindings_are_fine() {
        let text = concat!(
            "use std::collections::Hash",
            "Map;\n",
            "let mut seen: Hash",
            "Map<u64, usize> = Hash",
            "Map::new();\n",
            "seen.insert(1, 2);\n",
            "let v = seen.get(&1);\n",
        );
        assert!(lint_file("a.rs", text).is_empty());
    }

    #[test]
    fn any_and_all_reductions_are_exempt() {
        let text = concat!(
            "let mut seen = std::collections::Hash",
            "Set::new();\n",
            "seen.insert(3);\n",
            "assert!(seen.iter().any(|&x| x == 3));\n",
            "assert!(seen.values().all(|&x| x > 0));\n",
        );
        assert!(lint_file("a.rs", text).is_empty());
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged() {
        let text = concat!(
            "let mut seen = std::collections::Hash",
            "Set::new();\n",
            "for x in &seen {\n",
            "    digest(x);\n",
            "}\n",
        );
        let findings = lint_file("a.rs", text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_UNORDERED_ITER);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn struct_field_bindings_are_discovered() {
        let text = concat!(
            "struct S { samplers: Hash",
            "Map<u64, f64> }\n",
            "fn f(s: &S) -> f64 { s.samplers.values().sum() }\n",
        );
        let findings = lint_file("a.rs", text);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn allowlist_suppresses_by_rule_and_suffix() {
        let allow = Allowlist::parse(concat!(
            "# audited exception\n",
            "wall-clock crates/bench/src/bin/serve_bench.rs\n",
        ));
        assert_eq!(allow.len(), 1);
        assert!(allow.allows(RULE_WALL_CLOCK, "crates/bench/src/bin/serve_bench.rs"));
        assert!(!allow.allows(RULE_UNORDERED_ITER, "crates/bench/src/bin/serve_bench.rs"));
        assert!(!allow.allows(RULE_WALL_CLOCK, "crates/sim/src/state.rs"));
        assert!(Allowlist::empty().is_empty());
    }
}
