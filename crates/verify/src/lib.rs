//! Static verification for the QRAM reproduction: a circuit analyzer and
//! a source-level determinism lint.
//!
//! The serving stack compiles, prices and caches circuits it previously
//! never checked — a miscompiled artifact would silently corrupt both
//! query results and every virtual-time latency number derived from its
//! claimed [`ResourceCount`]. This crate closes that gap with two
//! independent passes:
//!
//! 1. **Circuit analyzer** ([`analyzer`]) — structural checks over the
//!    compiled [`qram_circuit::Circuit`] IR:
//!    * qubit-index bounds and control/target overlap per gate
//!      ([`check_gates`]);
//!    * gate-set legality per architecture family ([`check_gate_set`]):
//!      each generator emits a known gate vocabulary, so a foreign gate
//!      is a miscompile;
//!    * ancilla lifecycle ([`check_ancillas`]): every non-output qubit
//!      must have its structural writes cancel in compute/uncompute
//!      pairs (the bucket-brigade hygiene invariant — routing qubits
//!      restored to idle), and must not be read as a control after its
//!      final write released it;
//!    * resource certification ([`certify_resources`]): an independent
//!      [`recount`] of gates, depths and ancillae is diffed against the
//!      compiler-claimed [`ResourceCount`], so the cost estimates the
//!      scheduler charges are provably derived from the real artifact.
//!
//!    [`verify_query`] bundles these for one compiled query;
//!    `qram-service`'s `Compiler::try_compile` runs it on every artifact
//!    before it may enter the circuit cache (structural checks always,
//!    the deep passes behind the service's `deep_verify` flag).
//!
//! 2. **Determinism lint** ([`lint`]) — a textual scan of workspace
//!    sources for patterns that undermine the bit-identical-results
//!    contract: wall-clock reads (`Instant::now` / `SystemTime`),
//!    unseeded RNG, and iteration over hash collections (whose order is
//!    seeded per process) feeding digests or schedules. Audited
//!    exceptions live in `crates/verify/allowlist.txt`.
//!
//! Both passes run in CI via the `verify_all` binary (any finding fails
//! the build); `verify_source` runs the lint alone.
//!
//! [`ResourceCount`]: qram_circuit::resources::ResourceCount

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod lint;

pub use analyzer::{
    certify_resources, check_ancillas, check_gate_set, check_gates, recount, verify_query, Finding,
    VerifyError, VerifyLevel,
};
pub use lint::{lint_file, lint_workspace, Allowlist, LintFinding, LintReport};
