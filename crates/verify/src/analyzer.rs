//! The circuit analyzer: structural verification of compiled queries.
//!
//! Four check families, each returning plain [`Finding`]s so callers can
//! aggregate across passes:
//!
//! * [`check_gates`] — per-gate well-formedness (index bounds, operand
//!   overlap) at the raw gate-slice level. [`qram_circuit::Circuit`]
//!   validates pushes with `debug_assert!` only, so a malformed gate can
//!   reach a release-build artifact; this pass is the release-mode gate.
//! * [`check_gate_set`] — family legality: every generator emits a fixed
//!   gate vocabulary (the SQC QROM is nothing but MCX units, the fanout
//!   tree never routes with plain SWAPs, …), so a gate outside the
//!   family's set means the artifact was not produced by its claimed
//!   generator.
//! * [`check_ancillas`] — the ancilla-hygiene invariant of the
//!   bucket-brigade line of work: every non-output qubit must leave the
//!   circuit exactly as it entered. Statically, writes to an ancilla
//!   must cancel in compute/uncompute pairs — all QRAM gates are
//!   self-inverse, so an uncomputation replays the computing gate, and a
//!   commutation-aware LIFO match of structurally-equal write pairs
//!   reduces a correctly uncomputed ancilla's write word to nothing. A
//!   non-empty residue is an [`Finding::AncillaLeak`]; a routing swap
//!   controlled by an ancilla that nothing has loaded yet is a
//!   [`Finding::UseAfterRelease`].
//! * [`certify_resources`] — re-derives the full
//!   [`ResourceCount`] from the circuit with an independent
//!   implementation ([`recount`]: own constants table, own critical-path
//!   walk) and diffs it field by field against what the compiler claims.
//!
//! [`verify_query`] combines them at two [`VerifyLevel`]s: `Structural`
//! (bounds + overlap + gate set — cheap, always on in the serving path)
//! and `Deep` (adds ancilla lifecycle and resource certification).

use std::collections::BTreeMap;

use qram_circuit::resources::ResourceCount;
use qram_circuit::{Circuit, Gate, Qubit};
use qram_core::QueryCircuit;

/// How much of the analyzer to run on a compiled query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Per-gate well-formedness and gate-set legality — cheap (one walk
    /// over the gate list), always on in the serving path.
    Structural,
    /// Structural checks plus ancilla lifecycle analysis and resource
    /// certification.
    Deep,
}

/// One verification diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A gate names a qubit outside the circuit's qubit range.
    QubitOutOfRange {
        /// Index of the offending gate in the gate list.
        gate_index: usize,
        /// Rendered gate.
        gate: String,
        /// The out-of-range qubit index.
        qubit: u32,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A gate names the same qubit as two of its operands.
    OverlappingOperands {
        /// Index of the offending gate in the gate list.
        gate_index: usize,
        /// Rendered gate.
        gate: String,
        /// The duplicated qubit index.
        qubit: u32,
    },
    /// A gate outside the architecture family's legal vocabulary.
    IllegalGate {
        /// Index of the offending gate in the gate list.
        gate_index: usize,
        /// Rendered gate.
        gate: String,
        /// The family whose gate set was violated.
        family: String,
    },
    /// An ancilla's structural writes do not cancel: the qubit is left
    /// computed (not uncomputed) at circuit end.
    AncillaLeak {
        /// The leaked qubit index.
        qubit: u32,
        /// Register the qubit belongs to.
        register: String,
        /// Unmatched write gates remaining on the qubit's write stack.
        pending: usize,
    },
    /// A routing swap is controlled by an ancilla still in its released,
    /// idle state — nothing has loaded it yet.
    UseAfterRelease {
        /// Index of the reading gate in the gate list.
        gate_index: usize,
        /// Rendered gate.
        gate: String,
        /// The released qubit index.
        qubit: u32,
        /// Register the qubit belongs to.
        register: String,
    },
    /// A claimed [`ResourceCount`] field disagrees with the independent
    /// recount of the circuit.
    ResourceMismatch {
        /// The differing field (census entries as `census[name]`).
        field: String,
        /// What the compiler claimed.
        claimed: usize,
        /// What the recount measured.
        recounted: usize,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::QubitOutOfRange {
                gate_index,
                gate,
                qubit,
                num_qubits,
            } => write!(
                f,
                "gate {gate_index} `{gate}`: qubit q{qubit} out of range (circuit has {num_qubits} qubits)"
            ),
            Finding::OverlappingOperands {
                gate_index,
                gate,
                qubit,
            } => write!(
                f,
                "gate {gate_index} `{gate}`: qubit q{qubit} appears as two operands"
            ),
            Finding::IllegalGate {
                gate_index,
                gate,
                family,
            } => write!(
                f,
                "gate {gate_index} `{gate}`: not in the `{family}` family's gate set"
            ),
            Finding::AncillaLeak {
                qubit,
                register,
                pending,
            } => write!(
                f,
                "ancilla q{qubit} ({register}): {pending} write(s) never uncomputed"
            ),
            Finding::UseAfterRelease {
                gate_index,
                gate,
                qubit,
                register,
            } => write!(
                f,
                "gate {gate_index} `{gate}`: routes on ancilla q{qubit} ({register}) before anything loads it"
            ),
            Finding::ResourceMismatch {
                field,
                claimed,
                recounted,
            } => write!(
                f,
                "resource certification: {field} claimed {claimed}, recounted {recounted}"
            ),
        }
    }
}

/// A failed verification: the non-empty list of findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Everything the analyzer flagged, in gate order per pass.
    pub findings: Vec<Finding>,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuit verification failed ({} finding(s))",
            self.findings.len()
        )?;
        for finding in &self.findings {
            write!(f, "\n  - {finding}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Bounds and overlap checks over a raw gate slice.
///
/// Operates below [`Circuit`] on purpose: `Circuit::push` only
/// `debug_assert!`s validity, so release-compiled artifacts (and tests
/// seeding defects) need a checker that accepts arbitrary gate lists.
///
/// ```
/// use qram_circuit::{Gate, Qubit};
/// use qram_verify::check_gates;
/// // cx q0, q5 in a 2-qubit circuit: out of range.
/// let findings = check_gates(2, &[Gate::cx(Qubit(0), Qubit(5))]);
/// assert_eq!(findings.len(), 1);
/// ```
pub fn check_gates(num_qubits: usize, gates: &[Gate]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (gate_index, gate) in gates.iter().enumerate() {
        let qs = gate.qubits();
        for q in &qs {
            if q.index() >= num_qubits {
                findings.push(Finding::QubitOutOfRange {
                    gate_index,
                    gate: gate.to_string(),
                    qubit: q.0,
                    num_qubits,
                });
            }
        }
        for (i, a) in qs.iter().enumerate() {
            if qs[..i].contains(a) {
                findings.push(Finding::OverlappingOperands {
                    gate_index,
                    gate: gate.to_string(),
                    qubit: a.0,
                });
            }
        }
    }
    findings
}

/// The legal gate vocabulary of an architecture family, by mnemonic
/// (barriers are scheduling metadata and always legal). `None` means the
/// family is unknown and no legality is enforced.
pub fn allowed_gates(family: &str) -> Option<&'static [&'static str]> {
    match family {
        // The QROM is one MCX unit per 1-cell, nothing else.
        "sqc" => Some(&["mcx"]),
        // CX broadcast/compression, X + CSWAP flag ball, ClCx writes.
        "fanout" => Some(&["x", "cx", "cswap", "clcx"]),
        // SWAP address (un)loading, CSWAP routing, ClSwap dual-rail
        // writes, MCX/CX page select.
        "bucket_brigade" => Some(&["x", "cx", "swap", "cswap", "clswap", "mcx"]),
        // MCX/ClX select, CX fanout trees, CSWAP swap network.
        "select_swap" => Some(&["clx", "cx", "cswap", "mcx"]),
        // The paged design composes the tree vocabulary with per-page
        // selection and both data-write encodings.
        "virtual" => Some(&["x", "cx", "swap", "cswap", "clcx", "clswap", "mcx"]),
        _ => None,
    }
}

/// Flags every gate outside `family`'s vocabulary (see
/// [`allowed_gates`]). Unknown families produce no findings.
pub fn check_gate_set(family: &str, gates: &[Gate]) -> Vec<Finding> {
    let Some(allowed) = allowed_gates(family) else {
        return Vec::new();
    };
    gates
        .iter()
        .enumerate()
        .filter(|(_, gate)| !gate.is_barrier() && !allowed.contains(&gate.name()))
        .map(|(gate_index, gate)| Finding::IllegalGate {
            gate_index,
            gate: gate.to_string(),
            family: family.to_string(),
        })
        .collect()
}

/// Qubits a gate mutates (targets and swap operands). Controls are
/// read-only and excluded.
fn write_targets(gate: &Gate) -> Vec<Qubit> {
    match gate {
        Gate::X(q) | Gate::Y(q) | Gate::Z(q) | Gate::H(q) | Gate::ClX(q) => vec![*q],
        Gate::Cx { target, .. }
        | Gate::ClCx { target, .. }
        | Gate::Ccx { target, .. }
        | Gate::Mcx { target, .. } => vec![*target],
        Gate::Swap(a, b) | Gate::ClSwap(a, b) => vec![*a, *b],
        Gate::Cswap { a, b, .. } => vec![*a, *b],
        Gate::Barrier => Vec::new(),
    }
}

/// Qubits a gate reads as controls.
fn read_controls(gate: &Gate) -> Vec<Qubit> {
    match gate {
        Gate::Cx { control, .. } | Gate::ClCx { control, .. } | Gate::Cswap { control, .. } => {
            vec![control.qubit]
        }
        Gate::Ccx { controls, .. } => controls.iter().map(|c| c.qubit).collect(),
        Gate::Mcx { controls, .. } => controls.iter().map(|c| c.qubit).collect(),
        _ => Vec::new(),
    }
}

/// Whether a write XORs into its target (all X-type writes on a common
/// target commute with one another, whatever their controls), as
/// opposed to swapping it (order-sensitive against everything).
fn is_xor_write(gate: &Gate) -> bool {
    !matches!(gate, Gate::Swap(..) | Gate::ClSwap(..) | Gate::Cswap { .. })
}

/// Pushes `gate` onto an ancilla's write stack, cancelling the
/// compute/uncompute pair it closes if one is reachable.
///
/// Plain LIFO (pop when the incoming write structurally equals the top)
/// handles nested and repeated-identical words; additionally, an
/// incoming XOR-type write may cancel a matching entry *below* other
/// XOR-type entries, because XOR writes on a common target commute —
/// the fused encoding writes two leaves' data through the same parent
/// rail and uncomputes them in the same (not reversed) order, which is
/// only identity up to that commutation. Swap-type writes are
/// reorderable with nothing and act as barriers.
fn push_write<'a>(stack: &mut Vec<&'a Gate>, gate: &'a Gate) {
    if is_xor_write(gate) {
        for i in (0..stack.len()).rev() {
            if stack[i] == gate {
                stack.remove(i);
                return;
            }
            if !is_xor_write(stack[i]) {
                break;
            }
        }
        stack.push(gate);
    } else if stack.last() == Some(&gate) {
        stack.pop();
    } else {
        stack.push(gate);
    }
}

/// Ancilla lifecycle analysis over a compiled query.
///
/// Every qubit outside the address and bus registers is an ancilla the
/// Eq. 2 contract requires restored to `|0⟩`. Two structural invariants
/// are checked per ancilla:
///
/// * **Leak** — writes must cancel in compute/uncompute pairs. All QRAM
///   gates are self-inverse, so uncomputation replays the computing
///   gate; [`push_write`]'s commutation-aware LIFO reduction takes a
///   correctly uncomputed ancilla's write word to nothing, and a
///   non-empty residue at circuit end is a leak.
/// * **Use after release** — a routing swap (Cswap) whose quantum
///   control is an ancilla *no gate has written yet* routes data off a
///   wire still in its released, idle `|0⟩` state: the router was never
///   loaded, so the swap silently sends the query down a fixed arm.
///   XOR-type reads of idle ancillae are *not* flagged — the generators
///   deliberately read unwritten rails with plain CX to keep circuit
///   shape uniform when the classical memory bit is 0, and those reads
///   are exact no-ops.
pub fn check_ancillas(query: &QueryCircuit) -> Vec<Finding> {
    let n = query.num_qubits();
    let mut is_output = vec![false; n];
    for q in query.output_qubits() {
        is_output[q.index()] = true;
    }
    let register_of = |q: Qubit| -> String {
        query
            .registers()
            .iter()
            .find(|r| r.contains(q))
            .map_or_else(|| "?".to_string(), |r| r.name().to_string())
    };
    let gates = query.circuit().gates();

    let mut findings = Vec::new();
    let mut written = vec![false; n];
    let mut stacks: Vec<Vec<&Gate>> = vec![Vec::new(); n];
    for (i, gate) in gates.iter().enumerate() {
        for q in read_controls(gate) {
            if q.index() >= n || is_output[q.index()] || is_xor_write(gate) {
                continue;
            }
            if !written[q.index()] {
                findings.push(Finding::UseAfterRelease {
                    gate_index: i,
                    gate: gate.to_string(),
                    qubit: q.0,
                    register: register_of(q),
                });
            }
        }
        for q in write_targets(gate) {
            if q.index() >= n || is_output[q.index()] {
                continue;
            }
            written[q.index()] = true;
            push_write(&mut stacks[q.index()], gate);
        }
    }
    for (qubit, stack) in stacks.iter().enumerate() {
        if !stack.is_empty() {
            findings.push(Finding::AncillaLeak {
                qubit: qubit as u32,
                register: register_of(Qubit(qubit as u32)),
                pending: stack.len(),
            });
        }
    }
    findings
}

/// Per-gate decomposition weights — the certifier's own constants table,
/// deliberately duplicated from `qram-circuit` (paper Sec. 2.2.1 /
/// Amy–Maslov–Mosca CCX, V-chain MCX) so a drift in either copy shows up
/// as a [`Finding::ResourceMismatch`].
struct Weights {
    t_count: usize,
    t_depth: usize,
    clifford_depth: usize,
    full_depth: usize,
    ancillas: usize,
}

fn weights_of(gate: &Gate) -> Weights {
    let clifford = |depth: usize| Weights {
        t_count: 0,
        t_depth: 0,
        clifford_depth: depth,
        full_depth: depth,
        ancillas: 0,
    };
    let toffoli_chain = |toffolis: usize, ancillas: usize| Weights {
        t_count: 7 * toffolis,
        t_depth: 3 * toffolis,
        clifford_depth: 7 * toffolis,
        full_depth: 10 * toffolis,
        ancillas,
    };
    match gate {
        Gate::Barrier => clifford(0),
        Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::H(_) | Gate::ClX(_) => clifford(1),
        Gate::Cx { .. } | Gate::ClCx { .. } => clifford(1),
        Gate::Swap(..) | Gate::ClSwap(..) => clifford(3),
        Gate::Ccx { .. } => toffoli_chain(1, 0),
        // Fredkin: CX · CCX · CX.
        Gate::Cswap { .. } => Weights {
            t_count: 7,
            t_depth: 3,
            clifford_depth: 9,
            full_depth: 12,
            ancillas: 0,
        },
        Gate::Mcx { controls, .. } => match controls.len() {
            0 | 1 => clifford(1),
            2 => toffoli_chain(1, 0),
            c => toffoli_chain(2 * c - 3, c - 2),
        },
    }
}

/// Weighted ASAP critical path with barrier floors — the certifier's own
/// walk, one pass per metric (unlike the production counter's shared
/// pass).
fn weighted_depth(circuit: &Circuit, weight: impl Fn(&Gate) -> usize) -> usize {
    let mut ready = vec![0usize; circuit.num_qubits()];
    let mut floor = 0usize;
    for gate in circuit.gates() {
        if gate.is_barrier() {
            floor = ready.iter().copied().fold(floor, usize::max);
            continue;
        }
        let qs = gate.qubits();
        let start = qs.iter().map(|q| ready[q.index()]).fold(floor, usize::max);
        let end = start + weight(gate);
        for q in &qs {
            ready[q.index()] = end;
        }
    }
    ready.into_iter().fold(floor, usize::max)
}

/// Independently re-derives the full [`ResourceCount`] of `circuit`.
///
/// Same semantics as the production counter, different implementation
/// and constants copy — the point of [`certify_resources`] is that two
/// codepaths must agree on every artifact.
pub fn recount(circuit: &Circuit) -> ResourceCount {
    let mut num_gates = 0usize;
    let mut t_count = 0usize;
    let mut classically_controlled = 0usize;
    let mut mcx_ancillas = 0usize;
    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    for gate in circuit.gates() {
        if gate.is_barrier() {
            continue;
        }
        let w = weights_of(gate);
        num_gates += 1;
        t_count += w.t_count;
        if gate.is_classically_controlled() {
            classically_controlled += 1;
        }
        mcx_ancillas = mcx_ancillas.max(w.ancillas);
        *census.entry(gate.name()).or_insert(0) += 1;
    }
    ResourceCount {
        num_qubits: circuit.num_qubits(),
        num_gates,
        depth: weighted_depth(circuit, |_| 1),
        t_count,
        t_depth: weighted_depth(circuit, |g| weights_of(g).t_depth),
        clifford_depth: weighted_depth(circuit, |g| weights_of(g).clifford_depth),
        lowered_depth: weighted_depth(circuit, |g| weights_of(g).full_depth),
        classically_controlled,
        mcx_ancillas,
        census,
    }
}

/// Diffs a claimed [`ResourceCount`] against the independent
/// [`recount`] of `circuit`, one [`Finding::ResourceMismatch`] per
/// disagreeing field (census entries included).
pub fn certify_resources(circuit: &Circuit, claimed: &ResourceCount) -> Vec<Finding> {
    let measured = recount(circuit);
    let mut findings = Vec::new();
    let mut diff = |field: &str, claimed: usize, recounted: usize| {
        if claimed != recounted {
            findings.push(Finding::ResourceMismatch {
                field: field.to_string(),
                claimed,
                recounted,
            });
        }
    };
    diff("num_qubits", claimed.num_qubits, measured.num_qubits);
    diff("num_gates", claimed.num_gates, measured.num_gates);
    diff("depth", claimed.depth, measured.depth);
    diff("t_count", claimed.t_count, measured.t_count);
    diff("t_depth", claimed.t_depth, measured.t_depth);
    diff(
        "clifford_depth",
        claimed.clifford_depth,
        measured.clifford_depth,
    );
    diff(
        "lowered_depth",
        claimed.lowered_depth,
        measured.lowered_depth,
    );
    diff(
        "classically_controlled",
        claimed.classically_controlled,
        measured.classically_controlled,
    );
    diff("mcx_ancillas", claimed.mcx_ancillas, measured.mcx_ancillas);
    let names: std::collections::BTreeSet<&&str> = claimed
        .census
        .keys()
        .chain(measured.census.keys())
        .collect();
    for name in names {
        diff(
            &format!("census[{name}]"),
            claimed.census.get(*name).copied().unwrap_or(0),
            measured.census.get(*name).copied().unwrap_or(0),
        );
    }
    findings
}

/// Verifies one compiled query against its claimed resources.
///
/// `Structural` runs [`check_gates`] and [`check_gate_set`];
/// `Deep` adds [`check_ancillas`] and [`certify_resources`].
///
/// # Errors
///
/// Returns every finding of the selected passes.
///
/// ```
/// use qram_core::{ArchSpec, Memory};
/// use qram_verify::{verify_query, VerifyLevel};
///
/// let memory = Memory::from_bits((0..8).map(|i| i % 3 == 0));
/// let spec = ArchSpec::BucketBrigade { k: 1, m: 2 };
/// let query = spec.instantiate().build(&memory);
/// let resources = query.resources();
/// verify_query(spec.family(), &query, &resources, VerifyLevel::Deep)?;
/// # Ok::<(), qram_verify::VerifyError>(())
/// ```
pub fn verify_query(
    family: &str,
    query: &QueryCircuit,
    claimed: &ResourceCount,
    level: VerifyLevel,
) -> Result<(), VerifyError> {
    let circuit = query.circuit();
    let mut findings = check_gates(circuit.num_qubits(), circuit.gates());
    findings.extend(check_gate_set(family, circuit.gates()));
    if level == VerifyLevel::Deep {
        findings.extend(check_ancillas(query));
        findings.extend(certify_resources(circuit, claimed));
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { findings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::{Circuit, Gate, Qubit};

    #[test]
    fn clean_gates_produce_no_findings() {
        let gates = [
            Gate::cx(Qubit(0), Qubit(1)),
            Gate::cswap(Qubit(0), Qubit(1), Qubit(2)),
            Gate::Barrier,
        ];
        assert!(check_gates(3, &gates).is_empty());
    }

    #[test]
    fn recount_matches_production_counter_on_a_mixed_circuit() {
        let mut c = Circuit::new(6);
        c.push(Gate::cswap(Qubit(0), Qubit(1), Qubit(2)));
        c.push(Gate::mcx(
            [Qubit(0), Qubit(1), Qubit(2), Qubit(3)],
            Qubit(4),
        ));
        c.barrier();
        c.push(Gate::ClX(Qubit(5)));
        c.push(Gate::swap(Qubit(4), Qubit(5)));
        assert_eq!(recount(&c), ResourceCount::of(&c));
        assert!(certify_resources(&c, &ResourceCount::of(&c)).is_empty());
    }

    #[test]
    fn certifier_diffs_every_tampered_field() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        let mut claimed = ResourceCount::of(&c);
        claimed.t_count += 1;
        claimed.census.insert("swap", 9);
        let findings = certify_resources(&c, &claimed);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }
}
