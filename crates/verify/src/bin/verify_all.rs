//! CI verification driver: runs both static-analysis passes and writes
//! `VERIFY.json`.
//!
//! Pass 1 deep-verifies a compiled circuit for every architecture
//! family at n = 3..6 plus the full virtual-QRAM preset × encoding
//! matrix, each against two deterministic memory patterns. Pass 2 runs
//! the determinism lint over the workspace sources under the audited
//! allowlist. Any finding in either pass exits nonzero — the
//! `-D warnings` of circuit verification.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qram_core::{ArchSpec, DataEncoding, Memory, Optimizations};
use qram_verify::{lint_workspace, verify_query, Allowlist, Finding, LintReport, VerifyLevel};

/// The workspace root: the current directory when invoked from it (the
/// CI case), otherwise two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").exists() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .to_path_buf()
}

/// Every spec the circuit pass certifies: every legal `(k, m)` split of
/// every family at n = 3..6 (the full `family_candidates` space, not
/// just the historical `k = 1` representatives), plus the virtual
/// QRAM's optimization presets × data encodings at two paged shapes.
fn matrix() -> Vec<ArchSpec> {
    let mut specs = Vec::new();
    for n in 3..=6 {
        specs.extend(ArchSpec::family_candidates(n));
    }
    let presets = [
        Optimizations::RAW,
        Optimizations::OPT1,
        Optimizations::OPT2,
        Optimizations::OPT3,
        Optimizations::ALL,
    ];
    let encodings = [
        DataEncoding::Bit,
        DataEncoding::DualRail,
        DataEncoding::FusedBit,
    ];
    for (k, m) in [(1, 2), (2, 2)] {
        for opts in presets {
            for encoding in encodings {
                specs.push(ArchSpec::Virtual {
                    k,
                    m,
                    opts,
                    encoding,
                });
            }
        }
    }
    specs
}

/// Two deterministic memory patterns per width: a striped image and a
/// sparse one (exercises both emitted and elided classical gates).
fn memories(n: usize) -> [Memory; 2] {
    let cells = 1usize << n;
    [
        Memory::from_bits((0..cells).map(|i| i % 3 == 0)),
        Memory::from_bits((0..cells).map(|i| (i * 7) % 13 == 1)),
    ]
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let root = workspace_root();

    // Pass 1: circuit analyzer over the architecture matrix.
    let mut circuit_findings: Vec<(String, Finding)> = Vec::new();
    let mut specs_checked = 0usize;
    for spec in matrix() {
        let arch = spec.instantiate();
        for memory in memories(spec.address_width()) {
            let query = arch.build(&memory);
            let claimed = query.resources();
            specs_checked += 1;
            if let Err(e) = verify_query(spec.family(), &query, &claimed, VerifyLevel::Deep) {
                for finding in e.findings {
                    circuit_findings.push((spec.name(), finding));
                }
            }
        }
    }

    // Pass 2: determinism lint.
    let allowlist = match Allowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("verify_all: cannot read allowlist: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lint: LintReport = match lint_workspace(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify_all: lint walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Findings report (hand-rolled JSON; the workspace has no serde).
    let mut json = String::from("{\n  \"circuit_pass\": {\n");
    json.push_str(&format!("    \"artifacts_checked\": {specs_checked},\n"));
    json.push_str("    \"findings\": [");
    for (i, (spec, finding)) in circuit_findings.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n      {{\"spec\": \"{}\", \"finding\": \"{}\"}}",
            json_escape(spec),
            json_escape(&finding.to_string())
        ));
    }
    json.push_str("]\n  },\n  \"lint_pass\": {\n");
    json.push_str(&format!("    \"files_scanned\": {},\n", lint.files_scanned));
    json.push_str(&format!("    \"allowlisted\": {},\n", lint.suppressed));
    json.push_str("    \"findings\": [");
    for (i, finding) in lint.findings.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n      \"{}\"",
            json_escape(&finding.to_string())
        ));
    }
    json.push_str("]\n  }\n}\n");
    if let Err(e) = std::fs::write(root.join("VERIFY.json"), &json) {
        eprintln!("verify_all: cannot write VERIFY.json: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "verify_all: {} compiled artifacts deep-verified, {} findings",
        specs_checked,
        circuit_findings.len()
    );
    for (spec, finding) in &circuit_findings {
        println!("  [{spec}] {finding}");
    }
    println!(
        "verify_all: {} source files linted, {} findings ({} allowlisted)",
        lint.files_scanned,
        lint.findings.len(),
        lint.suppressed
    );
    for finding in &lint.findings {
        println!("  {finding}");
    }

    if circuit_findings.is_empty() && lint.findings.is_empty() {
        println!("verify_all: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("verify_all: FAILED");
        ExitCode::FAILURE
    }
}
