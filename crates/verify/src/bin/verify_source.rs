//! Standalone determinism lint: scans workspace sources for wall-clock
//! reads, unseeded RNG and hash-collection iteration, under the audited
//! allowlist (`crates/verify/allowlist.txt`). Exits nonzero on any
//! finding. The `verify_all` binary runs this pass plus the circuit
//! analyzer and writes the JSON report.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qram_verify::{lint_workspace, Allowlist};

/// The workspace root: the current directory when invoked from it (the
/// CI case), otherwise two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").exists() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = workspace_root();
    let allowlist = match Allowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("verify_source: cannot read allowlist: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lint_workspace(&root, &allowlist) {
        Ok(report) => {
            println!(
                "verify_source: {} files scanned, {} findings ({} allowlisted)",
                report.files_scanned,
                report.findings.len(),
                report.suppressed
            );
            for finding in &report.findings {
                println!("  {finding}");
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("verify_source: lint walk failed: {e}");
            ExitCode::FAILURE
        }
    }
}
