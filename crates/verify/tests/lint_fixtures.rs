//! The determinism lint's falsifiability evidence: each rule fires on a
//! fixture exhibiting exactly that defect, and the audited allowlist
//! suppresses a finding it names.
//!
//! Fixtures live under `tests/fixtures/` — a directory the workspace
//! walk skips — and are read as text, never compiled.

use qram_verify::lint::{RULE_UNORDERED_ITER, RULE_UNSEEDED_RNG, RULE_WALL_CLOCK};
use qram_verify::{lint_file, Allowlist};

const UNORDERED: &str = include_str!("fixtures/unordered_iter.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const UNSEEDED: &str = include_str!("fixtures/unseeded_rng.rs");

#[test]
fn hash_iteration_digest_is_flagged() {
    let findings = lint_file("tests/fixtures/unordered_iter.rs", UNORDERED);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, RULE_UNORDERED_ITER);
    assert!(findings[0].excerpt.contains("map.iter()"));
}

#[test]
fn wall_clock_read_is_flagged() {
    let findings = lint_file("tests/fixtures/wall_clock.rs", WALL_CLOCK);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, RULE_WALL_CLOCK);
}

#[test]
fn unseeded_rng_is_flagged() {
    let findings = lint_file("tests/fixtures/unseeded_rng.rs", UNSEEDED);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, RULE_UNSEEDED_RNG);
}

#[test]
fn allowlist_suppresses_named_findings_only() {
    let allow = Allowlist::parse(
        "# audited: fixture prints host runtime only\n\
         wall-clock tests/fixtures/wall_clock.rs\n",
    );
    assert_eq!(allow.len(), 1);

    // The named (rule, file) pair is suppressed...
    let mut findings = lint_file("tests/fixtures/wall_clock.rs", WALL_CLOCK);
    findings.retain(|f| !allow.allows(f.rule, &f.file));
    assert!(findings.is_empty());

    // ...but the same rule in another file, and other rules in the same
    // file, still fire.
    assert!(!allow.allows(RULE_WALL_CLOCK, "crates/service/src/service.rs"));
    assert!(!allow.allows(RULE_UNSEEDED_RNG, "tests/fixtures/wall_clock.rs"));
}
