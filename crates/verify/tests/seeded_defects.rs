//! Negative tests: every diagnostic class the analyzer defines is
//! demonstrated by a deliberately defective artifact. These are the
//! checks' falsifiability evidence — a pass that cannot fail verifies
//! nothing.

use qram_circuit::resources::ResourceCount;
use qram_circuit::{Circuit, Gate, Qubit, QubitAllocator};
use qram_core::QueryCircuit;
use qram_verify::{
    certify_resources, check_ancillas, check_gate_set, check_gates, verify_query, Finding,
    VerifyLevel,
};

/// A two-qubit-address query shell with one `work` ancilla, whose gate
/// list is supplied by the test. Address and bus are the output
/// registers; `work` is what the lifecycle pass watches.
fn query_with(gates: impl IntoIterator<Item = Gate>) -> QueryCircuit {
    let mut alloc = QubitAllocator::new();
    let address = alloc.register("address", 2);
    let bus = alloc.register("bus", 1);
    let _work = alloc.register("work", 1);
    let mut circuit = Circuit::new(alloc.num_qubits());
    for gate in gates {
        circuit.push(gate);
    }
    QueryCircuit::new(circuit, address, bus, alloc)
}

#[test]
fn out_of_range_qubit_is_flagged() {
    let findings = check_gates(2, &[Gate::cx(Qubit(0), Qubit(5))]);
    assert_eq!(findings.len(), 1);
    assert!(matches!(
        findings[0],
        Finding::QubitOutOfRange { qubit: 5, .. }
    ));
}

#[test]
fn overlapping_operands_are_flagged() {
    let findings = check_gates(3, &[Gate::cx(Qubit(1), Qubit(1))]);
    assert!(findings
        .iter()
        .any(|f| matches!(f, Finding::OverlappingOperands { qubit: 1, .. })));

    // A CSWAP swapping a qubit with itself is equally malformed.
    let findings = check_gates(3, &[Gate::cswap(Qubit(0), Qubit(2), Qubit(2))]);
    assert!(findings
        .iter()
        .any(|f| matches!(f, Finding::OverlappingOperands { qubit: 2, .. })));
}

#[test]
fn gate_outside_family_vocabulary_is_flagged() {
    // The SQC QROM is nothing but MCX units; a plain CX cannot appear.
    let findings = check_gate_set("sqc", &[Gate::cx(Qubit(0), Qubit(1))]);
    assert_eq!(findings.len(), 1);
    assert!(matches!(findings[0], Finding::IllegalGate { .. }));

    // The same CX is legal in the fanout family.
    assert!(check_gate_set("fanout", &[Gate::cx(Qubit(0), Qubit(1))]).is_empty());
}

#[test]
fn uncompensated_ancilla_write_is_a_leak() {
    // Writes work (q3) off the address, never uncomputes it.
    let query = query_with([Gate::cx(Qubit(0), Qubit(3))]);
    let findings = check_ancillas(&query);
    assert_eq!(findings.len(), 1);
    assert!(matches!(
        findings[0],
        Finding::AncillaLeak {
            qubit: 3,
            pending: 1,
            ..
        }
    ));
}

#[test]
fn balanced_ancilla_writes_are_clean() {
    // Compute, use, uncompute — the canonical hygienic pattern.
    let query = query_with([
        Gate::cx(Qubit(0), Qubit(3)),
        Gate::cswap(Qubit(3), Qubit(1), Qubit(2)),
        Gate::cx(Qubit(0), Qubit(3)),
    ]);
    assert!(check_ancillas(&query).is_empty());
}

#[test]
fn interleaved_commuting_writes_are_clean() {
    // The fused-encoding word shape: two distinct XOR writes onto one
    // rail, uncomputed in the same (not reversed) order. Only identity
    // up to commutation of XOR writes on a shared target.
    let query = query_with([
        Gate::cx(Qubit(0), Qubit(3)),
        Gate::cx(Qubit(1), Qubit(3)),
        Gate::cx(Qubit(0), Qubit(3)),
        Gate::cx(Qubit(1), Qubit(3)),
    ]);
    assert!(check_ancillas(&query).is_empty());
}

#[test]
fn routing_on_an_unloaded_ancilla_is_flagged() {
    // A CSWAP routed by work (q3), which nothing ever loads.
    let query = query_with([Gate::cswap(Qubit(3), Qubit(1), Qubit(2))]);
    let findings = check_ancillas(&query);
    assert_eq!(findings.len(), 1);
    assert!(matches!(
        findings[0],
        Finding::UseAfterRelease { qubit: 3, .. }
    ));
}

#[test]
fn tampered_resource_claim_is_flagged() {
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::cswap(Qubit(0), Qubit(1), Qubit(2)));
    let mut claimed = ResourceCount::of(&circuit);
    claimed.t_count += 1;
    let findings = certify_resources(&circuit, &claimed);
    assert!(findings.iter().any(|f| matches!(
        f,
        Finding::ResourceMismatch { field, .. } if field == "t_count"
    )));
}

#[test]
fn verify_query_aggregates_and_renders_findings() {
    let query = query_with([Gate::cx(Qubit(0), Qubit(3))]);
    let claimed = query.resources();
    // Structural level ignores the leak...
    assert!(verify_query("fanout", &query, &claimed, VerifyLevel::Structural).is_ok());
    // ...deep level reports it, with a human-readable rendering.
    let err = verify_query("fanout", &query, &claimed, VerifyLevel::Deep).unwrap_err();
    assert_eq!(err.findings.len(), 1);
    let text = err.to_string();
    assert!(text.contains("q3"), "unhelpful rendering: {text}");
}
