//! Acceptance: the analyzer reports **zero findings** on every artifact
//! the workspace's generators can produce — all five architecture
//! families at n = 3..6 plus the virtual QRAM's preset × encoding
//! matrix — and the independent resource recount agrees with the
//! compiler's claimed [`ResourceCount`] on each of them.

use qram_core::{ArchSpec, DataEncoding, Memory, Optimizations};
use qram_verify::{recount, verify_query, VerifyLevel};

/// Same matrix the `verify_all` CI binary walks: every legal `(k, m)`
/// split of every family at n = 3..6 (not just the historical `k = 1`
/// representatives), plus the virtual preset × encoding grid.
fn matrix() -> Vec<ArchSpec> {
    let mut specs = Vec::new();
    for n in 3..=6 {
        specs.extend(ArchSpec::family_candidates(n));
    }
    let presets = [
        Optimizations::RAW,
        Optimizations::OPT1,
        Optimizations::OPT2,
        Optimizations::OPT3,
        Optimizations::ALL,
    ];
    let encodings = [
        DataEncoding::Bit,
        DataEncoding::DualRail,
        DataEncoding::FusedBit,
    ];
    for (k, m) in [(1, 2), (2, 2)] {
        for opts in presets {
            for encoding in encodings {
                specs.push(ArchSpec::Virtual {
                    k,
                    m,
                    opts,
                    encoding,
                });
            }
        }
    }
    specs
}

fn memories(n: usize) -> [Memory; 2] {
    let cells = 1usize << n;
    [
        Memory::from_bits((0..cells).map(|i| i % 3 == 0)),
        Memory::from_bits((0..cells).map(|i| (i * 7) % 13 == 1)),
    ]
}

#[test]
fn deep_verify_matrix_is_clean() {
    for spec in matrix() {
        let arch = spec.instantiate();
        for memory in memories(spec.address_width()) {
            let query = arch.build(&memory);
            let claimed = query.resources();
            if let Err(e) = verify_query(spec.family(), &query, &claimed, VerifyLevel::Deep) {
                panic!("{}: {e}", spec.name());
            }
        }
    }
}

#[test]
fn recount_agrees_with_compiler_everywhere() {
    for spec in matrix() {
        let arch = spec.instantiate();
        for memory in memories(spec.address_width()) {
            let query = arch.build(&memory);
            assert_eq!(
                recount(query.circuit()),
                query.resources(),
                "resource drift on {}",
                spec.name()
            );
        }
    }
}
