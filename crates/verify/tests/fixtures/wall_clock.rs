//! Lint fixture: reading the host clock. Never compiled — read by
//! `lint_fixtures.rs` as text.
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
