//! Lint fixture: digesting a hash map in iteration order. Never
//! compiled — read by `lint_fixtures.rs` as text.
use std::collections::HashMap;

fn digest(map: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in map.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(*k) ^ u64::from(*v));
    }
    acc
}
