//! Lint fixture: drawing from an OS-seeded generator. Never compiled —
//! read by `lint_fixtures.rs` as text.
fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
