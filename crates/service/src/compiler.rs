//! The staged query compiler: `spec → circuit → resources → cost`.
//!
//! Compilation used to be a single opaque `architecture().build()` call
//! buried in the cache-miss path; this module makes it an explicit
//! pipeline whose stages are individually inspectable:
//!
//! 1. **instantiate + build** — the [`QuerySpec`]'s [`qram_core::
//!    ArchSpec`] is instantiated and compiles the served memory into a
//!    [`QueryCircuit`] (any of the five architecture families);
//! 2. **price** — the built circuit is measured into a
//!    [`ResourceCount`] (gate counts, Clifford+T depths). This equals
//!    what the architecture's `resources` hook reports — the hook's
//!    contract (pinned by test in `qram-core`) is to agree with the
//!    measured circuit — so capacity planning through the hook and
//!    serving through this pipeline price identically;
//! 3. **estimate** — the [`CostModel`] converts those resources into
//!    the virtual-time [`CostEstimate`] the scheduler charges.
//!
//! The output is a [`CompiledQuery`] — the artifact the circuit cache
//! stores and batches execute against. Because the cost estimate is
//! derived from the *measured resources of the compiled circuit*,
//! virtual latencies differ across architectures exactly as the paper's
//! Table 2 depth columns say they should, rather than through flat
//! per-gate coefficients.
//!
//! [`ResourceCount`]: qram_circuit::resources::ResourceCount

use qram_circuit::resources::ResourceCount;
use qram_core::{Memory, QueryCircuit};
use qram_verify::{verify_query, VerifyError, VerifyLevel};

use crate::{CostModel, QuerySpec, Ticks};

/// The virtual-time price of serving one spec, derived from its
/// compiled circuit's measured resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimate {
    /// Ticks to compile the circuit (charged once per cache miss;
    /// gate-count-calibrated).
    pub compile: Ticks,
    /// Ticks to execute one request (charged per batched request;
    /// lowered-depth-calibrated, includes the fixed dispatch overhead).
    pub execute: Ticks,
}

/// One fully compiled spec: the circuit, its measured resources, and
/// the virtual-time cost the scheduler charges for it. This is what the
/// [`crate::CircuitCache`] stores, `Arc`-shared with in-flight batches.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The spec this artifact serves.
    pub spec: QuerySpec,
    /// The compiled query circuit.
    pub circuit: QueryCircuit,
    /// Fault-tolerant resource count of the circuit (stage 2 output).
    pub resources: ResourceCount,
    /// Virtual-time cost estimate (stage 3 output).
    pub cost: CostEstimate,
}

/// The staged compiler: a [`CostModel`] plus the shot count requests
/// are served under (execution cost scales with shots).
///
/// ```
/// use qram_core::{ArchSpec, Memory};
/// use qram_service::{Compiler, CostModel, QuerySpec};
///
/// let memory = Memory::from_bits((0..8).map(|i| i % 2 == 0));
/// let compiler = Compiler::new(CostModel::default(), 4);
/// let sqc = compiler.compile(QuerySpec::of(ArchSpec::Sqc { n: 3 }), &memory);
/// let bb = compiler.compile(QuerySpec::of(ArchSpec::BucketBrigade { k: 1, m: 2 }), &memory);
/// // Costs are calibrated per architecture from measured resources.
/// assert_ne!(sqc.cost, bb.cost);
/// assert_eq!(sqc.cost.compile, CostModel::default().compile_cost(&sqc.resources));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compiler {
    cost: CostModel,
    shots: usize,
}

impl Compiler {
    /// A compiler estimating under `cost` for `shots`-shot requests.
    pub fn new(cost: CostModel, shots: usize) -> Self {
        Compiler { cost, shots }
    }

    /// The cost model estimates derive from.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs the full pipeline for `spec` over `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `spec`'s address width disagrees with the memory's
    /// (the architecture constructors and builders validate).
    pub fn compile(&self, spec: QuerySpec, memory: &Memory) -> CompiledQuery {
        let arch = spec.arch.instantiate();
        let circuit = arch.build(memory);
        let resources = circuit.resources();
        let cost = self.estimate(&resources);
        CompiledQuery {
            spec,
            circuit,
            resources,
            cost,
        }
    }

    /// Runs the full pipeline for `spec` over `memory`, then verifies
    /// the artifact with the `qram-verify` circuit analyzer at `level`
    /// before releasing it. The serving path compiles through this, so
    /// a circuit that fails static verification never reaches the
    /// [`crate::CircuitCache`] or a worker.
    ///
    /// # Panics
    ///
    /// Panics under the same width-mismatch conditions as
    /// [`compile`](Compiler::compile).
    pub fn try_compile(
        &self,
        spec: QuerySpec,
        memory: &Memory,
        level: VerifyLevel,
    ) -> Result<CompiledQuery, VerifyError> {
        let compiled = self.compile(spec, memory);
        verify_query(
            spec.arch.family(),
            &compiled.circuit,
            &compiled.resources,
            level,
        )?;
        Ok(compiled)
    }

    /// Stage 3 alone: prices a measured [`ResourceCount`] (exposed so
    /// capacity planning can estimate without building circuits twice).
    pub fn estimate(&self, resources: &ResourceCount) -> CostEstimate {
        CostEstimate {
            compile: self.cost.compile_cost(resources),
            execute: self.cost.execute_cost(resources, self.shots),
        }
    }

    /// The telemetry label of a verification level — what the compile
    /// span records about a cache-miss compile.
    pub fn verify_tag(level: VerifyLevel) -> qram_telemetry::VerifyTag {
        match level {
            VerifyLevel::Deep => qram_telemetry::VerifyTag::Deep,
            VerifyLevel::Structural => qram_telemetry::VerifyTag::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn memory() -> Memory {
        Memory::from_bits((0..8).map(|i| i % 3 == 0))
    }

    #[test]
    fn pipeline_stages_agree_with_direct_calls() {
        let cost_model = CostModel::default();
        let compiler = Compiler::new(cost_model, 2);
        for spec in crate::mixed_arch_specs(3) {
            let compiled = compiler.compile(spec, &memory());
            assert_eq!(compiled.spec, spec);
            // Stage 2: the stored resources are the circuit's.
            assert_eq!(compiled.resources, compiled.circuit.resources());
            // Stage 3: estimates derive from those resources.
            assert_eq!(
                compiled.cost.compile,
                cost_model.compile_cost(&compiled.resources)
            );
            assert_eq!(
                compiled.cost.execute,
                cost_model.execute_cost(&compiled.resources, 2)
            );
            // The artifact serves its memory correctly.
            compiled.circuit.verify(&memory()).unwrap();
        }
    }

    #[test]
    fn architectures_price_differently_at_equal_width() {
        let compiler = Compiler::new(CostModel::default(), 1);
        let costs: Vec<CostEstimate> = crate::mixed_arch_specs(3)
            .into_iter()
            .map(|spec| compiler.compile(spec, &memory()).cost)
            .collect();
        // At n = 3 every family compiles a structurally different
        // circuit; no two cost estimates coincide.
        for (i, a) in costs.iter().enumerate() {
            for b in &costs[i + 1..] {
                assert_ne!(a, b, "{costs:?}");
            }
        }
    }

    #[test]
    fn shots_scale_execute_but_not_compile() {
        let spec = QuerySpec::new(1, 2);
        let few = Compiler::new(CostModel::default(), 1).compile(spec, &memory());
        let many = Compiler::new(CostModel::default(), 8).compile(spec, &memory());
        assert_eq!(few.cost.compile, many.cost.compile);
        assert!(many.cost.execute > few.cost.execute);
    }
}
