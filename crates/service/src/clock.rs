//! Virtual time: the tick domain, the resource-calibrated cost model,
//! and the modeled execution-unit timeline the event-driven pipeline
//! schedules onto.
//!
//! The serving layer measures latency on a **discrete-event virtual
//! clock**, not on wall time. Wall time on the simulation host says
//! nothing about the latency a QRAM device would exhibit — and worse, it
//! varies with the host's core count, so percentiles computed from it
//! could never be bit-identical across `--threads` values. Virtual time
//! fixes both: every duration in the pipeline (compile, execute,
//! queueing) is a pure function of the request and the [`CostModel`], so
//! a workload's latency distribution is a *reproducible experiment*.
//!
//! One tick is one virtual nanosecond. The [`CostModel`] is calibrated
//! against the compiled circuit's [`ResourceCount`], per architecture:
//!
//! * **compile** scales with the *gate count* — compilation walks every
//!   gate of the generated circuit, whatever its shape;
//! * **execute** scales with the *lowered (Clifford+T) depth* — on the
//!   device, gates in the same layer run concurrently, so a shallow
//!   fanout circuit and a deep select-swap circuit of equal gate count
//!   cost very different virtual time. This is what makes serving-layer
//!   latencies track the paper's Table 2 depth asymptotics instead of a
//!   flat per-gate coefficient.
//!
//! The [`VirtualTimeline`] is the modeled device's execution resource —
//! `units` parallel execution slots that requests are list-scheduled
//! onto (earliest-free slot first), which is exactly the deterministic
//! trace a work-conserving work-stealing dispatcher produces over
//! identical-priority items. The timeline's `units` knob is *part of the
//! modeled system* and independent of the real worker threads doing the
//! Monte-Carlo computation (`ServiceConfig::workers`), which remain a
//! pure throughput knob.
//!
//! [`ResourceCount`]: qram_circuit::resources::ResourceCount

use qram_circuit::resources::ResourceCount;

/// Virtual nanoseconds on the service's discrete-event clock.
pub type Ticks = u64;

/// The deterministic cost model mapping compiled-circuit resources onto
/// virtual time.
///
/// ```
/// use qram_circuit::resources::ResourceCount;
/// use qram_service::CostModel;
/// let cost = CostModel::default();
/// let shallow = ResourceCount { num_gates: 100, lowered_depth: 10, ..Default::default() };
/// let deep = ResourceCount { num_gates: 100, lowered_depth: 90, ..Default::default() };
/// // Equal gate count, equal compile cost…
/// assert_eq!(cost.compile_cost(&shallow), cost.compile_cost(&deep));
/// // …but execution is depth-calibrated: the deep circuit costs more.
/// assert!(cost.execute_cost(&deep, 1) > cost.execute_cost(&shallow, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Virtual ns to compile one gate of a circuit on a cache miss.
    pub compile_per_gate: Ticks,
    /// Virtual ns to execute one lowered-depth layer of one Monte-Carlo
    /// shot.
    pub execute_per_layer_shot: Ticks,
    /// Fixed virtual ns of per-request dispatch overhead.
    pub request_overhead: Ticks,
    /// Modeled parallel execution units of the served device (the
    /// virtual-time analogue of "how many queries the hardware runs at
    /// once"). Deliberately **not** tied to the real executor's thread
    /// count: changing real threads must never change reported latency.
    pub units: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compile_per_gate: 50,
            execute_per_layer_shot: 10,
            request_overhead: 1_000,
            units: 2,
        }
    }
}

impl CostModel {
    /// Overrides the modeled execution-unit count.
    pub fn with_units(mut self, units: usize) -> Self {
        self.units = units;
        self
    }

    /// Overrides the per-gate compile cost.
    pub fn with_compile_per_gate(mut self, ticks: Ticks) -> Self {
        self.compile_per_gate = ticks;
        self
    }

    /// Overrides the per-layer-shot execute cost.
    pub fn with_execute_per_layer_shot(mut self, ticks: Ticks) -> Self {
        self.execute_per_layer_shot = ticks;
        self
    }

    /// Overrides the fixed per-request overhead.
    pub fn with_request_overhead(mut self, ticks: Ticks) -> Self {
        self.request_overhead = ticks;
        self
    }

    /// Virtual ns to compile the measured circuit (paid on a cache miss;
    /// a cache hit compiles in 0 ticks). Gate-count-calibrated:
    /// compilation touches every gate.
    pub fn compile_cost(&self, resources: &ResourceCount) -> Ticks {
        resources.num_gates as Ticks * self.compile_per_gate
    }

    /// Virtual ns to execute one request of the measured circuit under
    /// `shots` Monte-Carlo shots. Depth-calibrated: one lowered
    /// (Clifford+T) layer per `execute_per_layer_shot` ticks, so
    /// architectures of different depth cost different virtual time at
    /// equal gate count. Noiseless serving (`shots == 0`) still runs
    /// the one classical readout trajectory.
    pub fn execute_cost(&self, resources: &ResourceCount, shots: usize) -> Ticks {
        self.request_overhead
            + resources.lowered_depth as Ticks * self.execute_per_layer_shot * shots.max(1) as Ticks
    }

    /// The modeled steady-state capacity in requests per virtual second,
    /// for requests of mean execute cost `mean_execute` ticks.
    pub fn capacity_rps(&self, mean_execute: Ticks) -> f64 {
        if mean_execute == 0 {
            return f64::INFINITY;
        }
        self.units as f64 * 1e9 / mean_execute as f64
    }
}

/// The modeled device's execution-unit timeline: `units` parallel slots,
/// each remembering when it next falls idle.
///
/// [`assign`](VirtualTimeline::assign) list-schedules one request onto
/// the earliest-free slot (lowest index on ties) — the deterministic
/// schedule a greedy work-stealing dispatcher converges to when all
/// items are ready in a fixed order. Slots persist across batches, so
/// back-to-back batches queue behind each other exactly as they would on
/// a busy device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualTimeline {
    busy_until: Vec<Ticks>,
}

impl VirtualTimeline {
    /// An all-idle timeline of `units` slots.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "virtual timeline needs at least one unit");
        VirtualTimeline {
            busy_until: vec![0; units],
        }
    }

    /// Modeled execution units.
    pub fn units(&self) -> usize {
        self.busy_until.len()
    }

    /// Schedules one `cost`-tick item that becomes ready at `ready`;
    /// returns its `(start, end)` on the virtual clock.
    pub fn assign(&mut self, ready: Ticks, cost: Ticks) -> (Ticks, Ticks) {
        let (_, start, end) = self.assign_slot(ready, cost);
        (start, end)
    }

    /// Like [`assign`](VirtualTimeline::assign), additionally reporting
    /// which unit the item was scheduled on — the execute span's unit
    /// assignment. Deterministic: earliest-free slot, lowest index on
    /// ties.
    pub fn assign_slot(&mut self, ready: Ticks, cost: Ticks) -> (usize, Ticks, Ticks) {
        let slot = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("timeline has at least one unit");
        let start = self.busy_until[slot].max(ready);
        let end = start + cost;
        self.busy_until[slot] = end;
        (slot, start, end)
    }

    /// The earliest instant some slot is free (0 on a fresh timeline) —
    /// the event a work-conserving batcher fires on.
    pub fn next_free(&self) -> Ticks {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }

    /// The instant every slot is idle again (0 on a fresh timeline).
    pub fn idle_at(&self) -> Ticks {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resources(gates: usize, depth: usize) -> ResourceCount {
        ResourceCount {
            num_gates: gates,
            lowered_depth: depth,
            ..Default::default()
        }
    }

    #[test]
    fn costs_scale_with_gates_depth_and_shots() {
        let cost = CostModel::default()
            .with_compile_per_gate(7)
            .with_execute_per_layer_shot(3)
            .with_request_overhead(100);
        assert_eq!(cost.compile_cost(&resources(10, 4)), 70);
        assert_eq!(cost.execute_cost(&resources(10, 4), 5), 100 + 4 * 3 * 5);
        // Noiseless still runs one readout trajectory.
        assert_eq!(
            cost.execute_cost(&resources(10, 4), 0),
            cost.execute_cost(&resources(10, 4), 1)
        );
    }

    #[test]
    fn execute_is_depth_calibrated_not_gate_calibrated() {
        let cost = CostModel::default();
        let wide_shallow = resources(1_000, 5);
        let narrow_deep = resources(50, 50);
        assert!(cost.execute_cost(&narrow_deep, 1) > cost.execute_cost(&wide_shallow, 1));
        assert!(cost.compile_cost(&wide_shallow) > cost.compile_cost(&narrow_deep));
    }

    #[test]
    fn capacity_is_units_over_mean_cost() {
        let cost = CostModel::default().with_units(2);
        assert!((cost.capacity_rps(1_000) - 2e6).abs() < 1e-6);
        assert_eq!(cost.capacity_rps(0), f64::INFINITY);
    }

    #[test]
    fn timeline_prefers_earliest_free_slot() {
        let mut timeline = VirtualTimeline::new(2);
        assert_eq!(timeline.assign(0, 10), (0, 10)); // slot 0
        assert_eq!(timeline.assign(0, 4), (0, 4)); // slot 1
                                                   // Slot 1 frees first; the next item queues behind it.
        assert_eq!(timeline.assign(0, 5), (4, 9));
        // A late-ready item starts at its ready time on the idle slot.
        assert_eq!(timeline.assign(20, 1), (20, 21));
        assert_eq!(timeline.idle_at(), 21);
    }

    #[test]
    fn next_free_is_the_earliest_slot() {
        let mut timeline = VirtualTimeline::new(2);
        assert_eq!(timeline.next_free(), 0);
        timeline.assign(0, 10);
        // One slot busy until 10, the other still free.
        assert_eq!(timeline.next_free(), 0);
        timeline.assign(0, 4);
        assert_eq!(timeline.next_free(), 4);
        assert_eq!(timeline.idle_at(), 10);
    }

    #[test]
    fn single_unit_serializes() {
        let mut timeline = VirtualTimeline::new(1);
        assert_eq!(timeline.assign(0, 10), (0, 10));
        assert_eq!(timeline.assign(0, 10), (10, 20));
        assert_eq!(timeline.units(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_is_rejected() {
        let _ = VirtualTimeline::new(0);
    }
}
