//! Batched QRAM query serving — the systems layer above the simulator.
//!
//! The MICRO '23 paper argues QRAM must be designed as a *system*: a
//! virtual-QRAM layer paging a large address space through a small
//! physical tree. The original bucket-brigade proposals frame QRAM the
//! same way — a shared memory answering *streams* of addressed queries.
//! This crate is that serving layer for the reproduction's simulator
//! stack:
//!
//! * [`QueryRequest`] / [`QuerySpec`] / [`QueryResult`] — the serving
//!   vocabulary: an address, the compilation profile that serves it, and
//!   the answer (classical readout + Monte-Carlo fidelity estimate);
//! * [`plan_batches`] / [`QueryBatch`] — the batching scheduler:
//!   requests grouped by `(architecture shape, n, Optimizations,
//!   DataEncoding)` so one compiled circuit serves the whole batch;
//! * [`CircuitCache`] — a bounded LRU of compiled [`qram_core::
//!   QueryCircuit`]s, so hot specs skip the rebuild entirely;
//! * [`QramService`] — the engine: admission queue, cache-resolved batch
//!   plan, and a multi-worker executor dispatching onto the sharded shot
//!   engine ([`qram_sim::run_shots`]) with deterministic per-request
//!   seeds — results are **bit-identical for any worker count**;
//! * [`Workload`] — deterministic traffic generators (uniform, zipfian,
//!   sequential scan, Grover-style repeated queries) for driving the
//!   service in benches and tests.
//!
//! # Example
//!
//! ```
//! use qram_core::Memory;
//! use qram_service::{assign_specs, QramService, QuerySpec, ServiceConfig, Workload};
//!
//! let memory = Memory::from_bits((0..16).map(|i| i % 3 == 0));
//! let config = ServiceConfig::default().with_shots(0).with_batch_limit(4);
//! let mut service = QramService::new(memory, config);
//!
//! // 32 zipfian-addressed requests over two hot circuit shapes.
//! let workload = Workload::Zipfian { address_width: 4, theta: 0.99, seed: 7 };
//! let specs = [QuerySpec::new(2, 2), QuerySpec::new(1, 3)];
//! service.submit_all(assign_specs(&workload, &specs, 32));
//!
//! let report = service.drain();
//! assert_eq!(report.results.len(), 32);
//! assert_eq!(report.cache.misses, 2); // each hot shape compiled once
//! assert!(report.cache.hit_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod request;
mod scheduler;
mod service;
pub mod workload;

pub use cache::{CacheStats, CircuitCache};
pub use request::{QueryRequest, QueryResult, QuerySpec};
pub use scheduler::{plan_batches, QueryBatch};
pub use service::{BatchReport, QramService, ServiceConfig, ServiceReport};
pub use workload::{assign_specs, Workload};
