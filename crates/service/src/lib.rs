//! Event-driven QRAM query serving — the systems layer above the
//! simulator.
//!
//! The MICRO '23 paper argues QRAM must be designed as a *system*: a
//! virtual-QRAM layer paging a large address space through a small
//! physical tree. The original bucket-brigade proposals frame QRAM the
//! same way — a shared memory answering *streams* of addressed queries.
//! This crate is that serving layer for the reproduction's simulator
//! stack, built as a discrete-event pipeline on a **virtual clock** so
//! latency percentiles are honest (queueing delay included) and
//! reproducible (independent of the simulation host):
//!
//! The pipeline is **architecture-polymorphic**: a [`QuerySpec`] wraps
//! a [`qram_core::ArchSpec`] naming any of the five `qram-core`
//! architectures (SQC, fanout, bucket-brigade, select-swap, virtual),
//! and one service instance serves a mixed-architecture request stream
//! through shared batching, caching and cost accounting.
//!
//! * [`QueryRequest`] / [`QuerySpec`] / [`QueryResult`] — the serving
//!   vocabulary: an address with an arrival timestamp, the compilation
//!   profile (architecture spec) that serves it, and the answer
//!   (classical readout, Monte-Carlo fidelity estimate, and a
//!   [`Latency`] breakdown into `queue_wait` / `compile` / `execute` on
//!   the virtual clock);
//! * [`Compiler`] / [`CompiledQuery`] / [`CostEstimate`] — the staged
//!   compilation pipeline `spec → circuit → resources → cost`: every
//!   cache miss produces an artifact carrying the compiled circuit, its
//!   measured [`qram_circuit::resources::ResourceCount`], and the
//!   virtual-time price derived from it;
//! * [`Ticks`] / [`CostModel`] / [`VirtualTimeline`] — virtual time:
//!   one tick is one modeled nanosecond, costs are calibrated per
//!   architecture against measured resources (compile from gate count,
//!   execute from lowered Clifford+T depth), and the timeline models
//!   the device's parallel execution units;
//! * [`Admission`] / [`AdmissionStats`] — non-blocking admission over a
//!   bounded queue: accepted, [shed](Admission::Shed) by back-pressure,
//!   or rejected as structurally invalid;
//! * [`DeadlineBatcher`] / [`QueryBatch`] / [`plan_batches`] — the
//!   deadline-aware batching scheduler: a batch fires when it reaches
//!   the batch limit, when its oldest member's deadline slack runs
//!   out, or — work conservation, on by default — immediately when the
//!   modeled device has a free execution unit. *Which* pending group a
//!   freed unit serves is policy-driven ([`ReleasePolicy`]): strict
//!   FIFO by default, or cache-affine dispatch preferring the oldest
//!   group whose compiled circuit is cache-resident (zero compile
//!   ticks), bounded by an age cap so no group starves;
//! * [`CircuitCache`] — a bounded LRU of [`CompiledQuery`] artifacts
//!   with full lookup/hit/miss/eviction accounting. Artifacts are
//!   **verified before insertion**: every cache miss runs the
//!   `qram-verify` circuit analyzer (structural checks always; the deep
//!   ancilla-lifecycle + resource-certification pass under
//!   [`ServiceConfig::deep_verify`]), and a rejected artifact is never
//!   cached or served;
//! * [`QramService`] — the engine: `submit`/`drain` for closed-loop
//!   clients, `try_submit_at`/`poll` for open-loop arrival processes,
//!   and a work-stealing per-request executor dispatching onto the
//!   sharded shot engine ([`qram_sim::run_shots`]) with deterministic
//!   per-request seeds — results are **bit-identical for any worker
//!   count**, latency breakdowns included;
//! * [`Workload`] / [`ArrivalProcess`] / [`SpecMix`] / [`ClosedLoop`] —
//!   deterministic traffic generators: address patterns (uniform,
//!   zipfian, scan, Grover), open-loop arrival processes (Poisson,
//!   bursty MMPP), spec assignment (round-robin or zipf-skewed over
//!   circuit shapes, including mixed-architecture sets), and a
//!   closed-feedback client population issuing dependent arrivals.
//!
//! # Example
//!
//! ```
//! use qram_core::Memory;
//! use qram_service::{assign_specs, QramService, QuerySpec, ServiceConfig, Workload};
//!
//! let memory = Memory::from_bits((0..16).map(|i| i % 3 == 0));
//! let config = ServiceConfig::default().with_shots(0).with_batch_limit(4);
//! let mut service = QramService::new(memory, config);
//!
//! // 32 zipfian-addressed requests over two hot circuit shapes.
//! let workload = Workload::Zipfian { address_width: 4, theta: 0.99, seed: 7 };
//! let specs = [QuerySpec::new(2, 2), QuerySpec::new(1, 3)];
//! service.submit_all(assign_specs(&workload, &specs, 32));
//!
//! let report = service.drain();
//! assert_eq!(report.results.len(), 32);
//! assert_eq!(report.cache.misses, 2); // each hot shape compiled once
//! assert!(report.cache.hit_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod cache;
mod clock;
mod compiler;
mod executor;
mod request;
mod scheduler;
mod service;
pub mod workload;

pub use admission::{Admission, AdmissionStats, RejectReason};
pub use cache::{CacheStats, CircuitCache};
pub use clock::{CostModel, Ticks, VirtualTimeline};
pub use compiler::{CompiledQuery, Compiler, CostEstimate};
pub use qram_core::ArchSpec;
pub use qram_telemetry::{MetricsRegistry, NoopRecorder, Recorder, SpanTracer, TelemetryRecorder};
pub use qram_verify::{Finding, VerifyError, VerifyLevel};
pub use request::{
    Latency, QueryRequest, QueryResult, QuerySpec, SloClass, SpecOverrideError, TenantId,
};
pub use scheduler::{plan_batches, DeadlineBatcher, QueryBatch, ReleasePolicy};
pub use service::{BatchReport, QramService, ServiceConfig, ServiceReport};
pub use workload::{
    assign_specs, assign_specs_with, mixed_arch_specs, ArrivalProcess, ClosedLoop, SpecMix,
    Workload,
};
