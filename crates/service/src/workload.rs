//! Workload generation: deterministic address streams, open-loop arrival
//! processes, and spec-assignment mixes for driving the service.
//!
//! Three orthogonal axes compose a workload:
//!
//! * **where** the queries read — [`Workload`], the address pattern;
//! * **when** they arrive — [`ArrivalProcess`], virtual-clock timestamps
//!   for the open-loop [`crate::QramService::try_submit_at`] path;
//! * **what shape** serves them — [`SpecMix`], how [`QuerySpec`]s are
//!   assigned across the stream (round-robin, or zipf-skewed so hot
//!   shapes dominate and the compiled-circuit LRU is stressed
//!   realistically).
//!
//! Each address generator models one access pattern QRAM serving traffic
//! is expected to exhibit:
//!
//! * [`Workload::Uniform`] — independent uniform addresses, the
//!   memoryless baseline;
//! * [`Workload::Zipfian`] — rank-skewed popularity (`P(addr = r-th
//!   hottest) ∝ 1/(r+1)^θ`), the classic heavy-tail shape of shared-cache
//!   traffic; address 0 is the hottest rank;
//! * [`Workload::SequentialScan`] — a cyclic linear sweep, the streaming
//!   pattern of a table scan;
//! * [`Workload::GroverTrace`] — the same marked address re-queried over
//!   and over, which is exactly what a Grover search's oracle calls look
//!   like to the QRAM serving it (`O(√N)` queries of one address per
//!   search).
//!
//! Streams are pure functions of their parameters (seeded [`StdRng`]),
//! so a workload names a reproducible experiment.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qram_core::ArchSpec;

use crate::{
    Admission, QramService, QueryRequest, QueryResult, QuerySpec, SloClass, TenantId, Ticks,
};

/// A deterministic address-stream generator over a `2^address_width`-cell
/// memory.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Independent uniform addresses.
    Uniform {
        /// Address width `n` of the served memory.
        address_width: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Zipf-distributed addresses: rank `r` (= address `r`) is drawn with
    /// probability proportional to `1/(r+1)^theta`.
    Zipfian {
        /// Address width `n` of the served memory.
        address_width: usize,
        /// Skew exponent `θ ≥ 0` (0 degrades to uniform; ~0.99 is the
        /// YCSB-style default).
        theta: f64,
        /// RNG seed.
        seed: u64,
    },
    /// The cyclic sweep `0, 1, …, 2^n − 1, 0, …`.
    SequentialScan {
        /// Address width `n` of the served memory.
        address_width: usize,
    },
    /// The repeated-query trace of a Grover search: every query reads the
    /// same marked address.
    GroverTrace {
        /// Address width `n` of the served memory.
        address_width: usize,
        /// The marked (searched-for) address.
        target: u64,
    },
}

impl Workload {
    /// The generator's short name (used in bench reports).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform { .. } => "uniform",
            Workload::Zipfian { .. } => "zipfian",
            Workload::SequentialScan { .. } => "scan",
            Workload::GroverTrace { .. } => "grover",
        }
    }

    /// The address width the stream is generated over.
    pub fn address_width(&self) -> usize {
        match self {
            Workload::Uniform { address_width, .. }
            | Workload::Zipfian { address_width, .. }
            | Workload::SequentialScan { address_width }
            | Workload::GroverTrace { address_width, .. } => *address_width,
        }
    }

    /// Generates the first `count` addresses of the stream.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (negative `theta`, out-of-range
    /// `target`).
    pub fn addresses(&self, count: usize) -> Vec<u64> {
        let cells = 1u64 << self.address_width();
        match self {
            Workload::Uniform { seed, .. } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..count).map(|_| rng.random_range(0..cells)).collect()
            }
            Workload::Zipfian { theta, seed, .. } => {
                assert!(*theta >= 0.0, "zipf exponent must be non-negative");
                let cdf = zipf_cdf(cells as usize, *theta);
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..count)
                    .map(|_| {
                        let u: f64 = rng.random();
                        cdf.partition_point(|&c| c < u) as u64
                    })
                    .collect()
            }
            Workload::SequentialScan { .. } => (0..count as u64).map(|i| i % cells).collect(),
            Workload::GroverTrace { target, .. } => {
                assert!(*target < cells, "grover target {target} out of range");
                vec![*target; count]
            }
        }
    }
}

/// The cumulative distribution of the Zipf law over `items` ranks:
/// `cdf[r] = P(rank ≤ r)`, with `cdf[items − 1] == 1`.
fn zipf_cdf(items: usize, theta: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = Vec::with_capacity(items);
    let mut total = 0.0;
    for r in 0..items {
        total += 1.0 / ((r + 1) as f64).powf(theta);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    // Guard against floating-point shortfall at the tail.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// An open-loop arrival process: *when* each request reaches the
/// service, as nondecreasing timestamps on the virtual clock
/// ([`Ticks`] = virtual ns).
///
/// Open-loop means arrivals do not wait for earlier requests to finish —
/// the offered load is a property of the process, not of the service's
/// speed. That is what makes overload measurable: when the offered rate
/// exceeds capacity, queueing delay (and eventually back-pressure
/// shedding) shows up in the results instead of silently throttling the
/// generator.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals: independent exponential
    /// inter-arrival gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in virtual ns (rate = 1e9 / mean
        /// requests per virtual second).
        mean_gap: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A two-state Markov-modulated Poisson process (MMPP-2): bursts of
    /// fast arrivals alternate with quiet stretches. The classic model
    /// of bursty front-end traffic — same average load as a Poisson
    /// stream of the blended mean, far worse tail behavior.
    Bursty {
        /// Mean inter-arrival gap inside a burst (virtual ns).
        mean_fast_gap: f64,
        /// Mean inter-arrival gap between bursts (virtual ns).
        mean_slow_gap: f64,
        /// Mean arrivals spent in a state before switching (geometric
        /// dwell).
        mean_dwell: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// The process's short name (used in bench reports).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// The first `count` arrival instants, nondecreasing from 0.
    ///
    /// # Panics
    ///
    /// Panics on non-positive mean gaps or `mean_dwell < 1`.
    pub fn arrivals(&self, count: usize) -> Vec<Ticks> {
        match self {
            ArrivalProcess::Poisson { mean_gap, seed } => {
                assert!(*mean_gap > 0.0, "mean inter-arrival gap must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0f64;
                (0..count)
                    .map(|_| {
                        t += exponential(&mut rng, *mean_gap);
                        t as Ticks
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                mean_fast_gap,
                mean_slow_gap,
                mean_dwell,
                seed,
            } => {
                assert!(
                    *mean_fast_gap > 0.0 && *mean_slow_gap > 0.0,
                    "mean inter-arrival gaps must be positive"
                );
                assert!(*mean_dwell >= 1.0, "mean dwell must be at least 1 arrival");
                let mut rng = StdRng::seed_from_u64(*seed);
                let switch = 1.0 / *mean_dwell;
                let mut fast = true;
                let mut t = 0.0f64;
                (0..count)
                    .map(|_| {
                        let mean = if fast { *mean_fast_gap } else { *mean_slow_gap };
                        t += exponential(&mut rng, mean);
                        if rng.random::<f64>() < switch {
                            fast = !fast;
                        }
                        t as Ticks
                    })
                    .collect()
            }
        }
    }
}

/// One exponential sample with the given mean.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random();
    // 1 − u ∈ (0, 1]: ln never sees 0.
    -mean * (1.0 - u).ln()
}

/// How compilation profiles are assigned across a request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecMix {
    /// Cycle over the specs in order — every shape equally hot.
    RoundRobin,
    /// Zipf-skewed over the *spec list* (rank 0 = `specs[0]` hottest):
    /// a few shapes dominate, stressing LRU eviction the way real
    /// deployments do.
    Zipfian {
        /// Skew exponent `θ ≥ 0` (0 degrades to uniform).
        theta: f64,
        /// RNG seed (independent of the address stream's).
        seed: u64,
    },
}

/// Pairs a workload's address stream with compilation profiles assigned
/// round-robin, producing the `(address, spec)` submissions a service
/// accepts. A realistic deployment serves a handful of hot circuit
/// shapes; cycling over `specs` reproduces that mix deterministically.
///
/// # Panics
///
/// Panics if `specs` is empty or any spec's address width disagrees with
/// the workload's.
pub fn assign_specs(
    workload: &Workload,
    specs: &[QuerySpec],
    count: usize,
) -> Vec<(u64, QuerySpec)> {
    assign_specs_with(workload, specs, SpecMix::RoundRobin, count)
}

/// Like [`assign_specs`], with an explicit [`SpecMix`] deciding which
/// spec serves each request.
///
/// # Panics
///
/// Panics if `specs` is empty, any spec's address width disagrees with
/// the workload's, or a zipfian mix has a negative `theta`.
pub fn assign_specs_with(
    workload: &Workload,
    specs: &[QuerySpec],
    mix: SpecMix,
    count: usize,
) -> Vec<(u64, QuerySpec)> {
    assert!(!specs.is_empty(), "at least one spec is required");
    for spec in specs {
        assert_eq!(
            spec.address_width(),
            workload.address_width(),
            "spec width disagrees with workload width"
        );
    }
    let picks: Vec<usize> = match mix {
        SpecMix::RoundRobin => (0..count).map(|i| i % specs.len()).collect(),
        SpecMix::Zipfian { theta, seed } => {
            assert!(theta >= 0.0, "zipf exponent must be non-negative");
            let cdf = zipf_cdf(specs.len(), theta);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..count)
                .map(|_| {
                    let u: f64 = rng.random();
                    cdf.partition_point(|&c| c < u)
                })
                .collect()
        }
    };
    workload
        .addresses(count)
        .into_iter()
        .zip(picks)
        .map(|(address, pick)| (address, specs[pick]))
        .collect()
}

/// The standard mixed-architecture spec set at address width `n`: one
/// [`QuerySpec`] per architecture family (the historical `k = 1`
/// hybrids), for workloads that exercise the service's architecture
/// polymorphism.
///
/// This is the *fixed* comparison set with pinned behavior; workloads
/// that should pit each family's **best** `(k, m)` split against the
/// others under a qubit budget route through `qram_plan::planned_families`
/// instead (as `serve_bench --arch mix` now does).
///
/// # Panics
///
/// Panics if `n < 2` (the hybrid families need a page bit and a tree
/// bit).
pub fn mixed_arch_specs(n: usize) -> Vec<QuerySpec> {
    // The literal set the removed `ArchSpec::all_families` shim pinned;
    // moving it to the planner would change five tests' cache
    // accounting for no modeling gain.
    assert!(n >= 2, "mixed-architecture set needs n >= 2, got {n}");
    [
        ArchSpec::Sqc { n },
        ArchSpec::Fanout { m: n },
        ArchSpec::BucketBrigade { k: 1, m: n - 1 },
        ArchSpec::SelectSwap { k: 1, m: n - 1 },
        ArchSpec::virtual_all(1, n - 1),
    ]
    .into_iter()
    .map(QuerySpec::of)
    .collect()
}

/// A closed-feedback client population: each client submits its next
/// query only after polling the previous one's result — the dependency
/// structure of a Grover search, whose oracle issues one QRAM query per
/// iteration and cannot start iteration `i + 1` before iteration `i`
/// returns.
///
/// Unlike an open-loop [`ArrivalProcess`], the offered load here adapts
/// to the service's speed: a slow service *slows the clients down*
/// instead of building an unbounded queue, which is exactly the
/// self-throttling behavior closed-loop benchmarks (and real dependent
/// workloads) exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoop {
    /// Concurrent clients (outstanding queries never exceed this).
    pub clients: usize,
    /// Queries each client issues before retiring.
    pub queries_per_client: usize,
    /// Virtual ns a client "thinks" between polling one result and
    /// submitting its next query (0 = immediate resubmission).
    pub think_time: Ticks,
}

impl ClosedLoop {
    /// Drives `service` with this client population over the
    /// `(address, spec)` stream (global query index `q` is served by
    /// client `q % clients`, preserving per-client order), entirely
    /// through the event-driven [`QramService::try_submit_at`] /
    /// [`QramService::poll`] interface. Returns every result in virtual
    /// completion order.
    ///
    /// Deterministic: the submission schedule is a pure function of the
    /// stream and the service's virtual-clock behavior, so results are
    /// bit-identical for any real worker count.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`, if the stream is shorter than
    /// `clients * queries_per_client`, or if the service's bounded
    /// queue is smaller than `clients` (a closed loop never has more
    /// than `clients` queries in the system, so admission must not
    /// shed).
    pub fn run(&self, service: &mut QramService, stream: &[(u64, QuerySpec)]) -> Vec<QueryResult> {
        assert!(self.clients > 0, "closed loop needs at least one client");
        let total = self.clients * self.queries_per_client;
        assert!(
            stream.len() >= total,
            "stream holds {} submissions, need {total}",
            stream.len()
        );
        assert!(
            service.config().queue_capacity >= self.clients,
            "queue capacity {} cannot hold {} closed-loop clients",
            service.config().queue_capacity,
            self.clients
        );
        // Per-client cursor into its own slice of the stream, plus the
        // instant it next submits (None while waiting or retired).
        let mut issued = vec![0usize; self.clients];
        let mut submit_at: Vec<Option<Ticks>> = vec![Some(0); self.clients];
        let mut waiting: HashMap<u64, usize> = HashMap::new();
        let mut results: Vec<QueryResult> = Vec::with_capacity(total);

        while results.len() < total {
            // The earliest client ready to submit (lowest index ties)
            // and the service's next internal event.
            let next_submit = submit_at
                .iter()
                .enumerate()
                .filter_map(|(c, t)| t.map(|t| (t, c)))
                .min();
            let service_event = match (service.next_completion(), service.next_batch_deadline()) {
                (Some(c), Some(d)) => Some(c.min(d)),
                (c, d) => c.or(d),
            };
            match next_submit {
                // A service event precedes the next submission: poll up
                // to it so completions wake their clients in event
                // order (a woken client resubmits at `completed +
                // think ≥ event`, never in the past).
                Some((ts, _)) if service_event.is_some_and(|e| e < ts) => {
                    for done in service.poll(service_event.expect("checked above")) {
                        self.harvest(done, &mut submit_at, &mut waiting, &issued, &mut results);
                    }
                }
                Some((ts, client)) => {
                    let q = issued[client];
                    let (address, spec) = stream[client + q * self.clients];
                    match service.try_submit_at(address, spec, ts) {
                        Admission::Accepted(id) => {
                            submit_at[client] = None;
                            issued[client] = q + 1;
                            waiting.insert(id, client);
                        }
                        Admission::Shed { queue_depth } => unreachable!(
                            "closed loop shed at depth {queue_depth} with {} clients",
                            self.clients
                        ),
                        Admission::Rejected(reason) => {
                            panic!("closed-loop stream rejected: {reason}")
                        }
                    }
                }
                None => match service_event {
                    Some(e) => {
                        for done in service.poll(e) {
                            self.harvest(done, &mut submit_at, &mut waiting, &issued, &mut results);
                        }
                    }
                    None => {
                        // No future event can surface the in-flight
                        // work through polling alone (e.g. deadline
                        // firing disabled); flush what remains.
                        for done in service.run_until_idle() {
                            self.harvest(done, &mut submit_at, &mut waiting, &issued, &mut results);
                        }
                    }
                },
            }
        }
        results
    }

    /// Records one completed result and wakes its client.
    fn harvest(
        &self,
        done: QueryResult,
        submit_at: &mut [Option<Ticks>],
        waiting: &mut HashMap<u64, usize>,
        issued: &[usize],
        results: &mut Vec<QueryResult>,
    ) {
        let client = waiting
            .remove(&done.id)
            .expect("every closed-loop result answers a waiting client");
        if issued[client] < self.queries_per_client {
            submit_at[client] = Some(done.completed + self.think_time);
        }
        results.push(done);
    }
}

/// Like [`assign_specs`], but materializes full [`QueryRequest`]s with
/// ids `0..count` arriving at tick 0 — for driving the scheduler
/// directly in tests without a service instance.
pub fn requests(workload: &Workload, specs: &[QuerySpec], count: usize) -> Vec<QueryRequest> {
    assign_specs(workload, specs, count)
        .into_iter()
        .enumerate()
        .map(|(id, (address, spec))| QueryRequest {
            id: id as u64,
            address,
            spec,
            arrival: 0,
            tenant: TenantId::default(),
            slo: SloClass::default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(addresses: &[u64], cells: usize) -> Vec<usize> {
        let mut hist = vec![0usize; cells];
        for &a in addresses {
            hist[a as usize] += 1;
        }
        hist
    }

    #[test]
    fn uniform_is_roughly_flat_and_in_range() {
        let w = Workload::Uniform {
            address_width: 4,
            seed: 7,
        };
        let addresses = w.addresses(8000);
        let hist = histogram(&addresses, 16);
        let expected = 8000.0 / 16.0;
        for (a, &count) in hist.iter().enumerate() {
            assert!(
                (count as f64 - expected).abs() < 0.25 * expected,
                "address {a}: {count} vs {expected}"
            );
        }
    }

    #[test]
    fn zipfian_is_head_heavy_and_monotone_in_rank() {
        let w = Workload::Zipfian {
            address_width: 4,
            theta: 0.99,
            seed: 3,
        };
        let addresses = w.addresses(8000);
        let hist = histogram(&addresses, 16);
        // Address 0 is the hottest rank and dominates the tail.
        assert!(hist[0] > 2 * hist[4], "{hist:?}");
        assert!(hist[0] > 4 * hist[15], "{hist:?}");
        // The head (top 4 of 16 ranks) carries most of the traffic.
        let head: usize = hist[..4].iter().sum();
        assert!(head > 8000 / 2, "head {head} of 8000");
    }

    #[test]
    fn zipf_theta_zero_degrades_to_uniform() {
        let w = Workload::Zipfian {
            address_width: 3,
            theta: 0.0,
            seed: 5,
        };
        let hist = histogram(&w.addresses(8000), 8);
        let expected = 1000.0;
        for &count in &hist {
            assert!((count as f64 - expected).abs() < 0.2 * expected, "{hist:?}");
        }
    }

    #[test]
    fn scan_cycles_and_grover_repeats() {
        let scan = Workload::SequentialScan { address_width: 2 };
        assert_eq!(scan.addresses(6), vec![0, 1, 2, 3, 0, 1]);
        let grover = Workload::GroverTrace {
            address_width: 3,
            target: 5,
        };
        assert_eq!(grover.addresses(4), vec![5, 5, 5, 5]);
    }

    #[test]
    fn streams_are_reproducible() {
        let w = Workload::Zipfian {
            address_width: 5,
            theta: 1.1,
            seed: 11,
        };
        assert_eq!(w.addresses(100), w.addresses(100));
        assert_eq!(w.name(), "zipfian");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_complete() {
        let cdf = zipf_cdf(32, 0.99);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn specs_are_assigned_round_robin() {
        let w = Workload::SequentialScan { address_width: 3 };
        let specs = [QuerySpec::new(1, 2), QuerySpec::new(2, 1)];
        let reqs = requests(&w, &specs, 5);
        assert_eq!(reqs.len(), 5);
        assert_eq!(reqs[0].spec, specs[0]);
        assert_eq!(reqs[1].spec, specs[1]);
        assert_eq!(reqs[2].spec, specs[0]);
        assert_eq!(reqs[4].id, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grover_target_must_fit() {
        let _ = Workload::GroverTrace {
            address_width: 2,
            target: 4,
        }
        .addresses(1);
    }

    #[test]
    #[should_panic(expected = "width disagrees")]
    fn spec_width_mismatch_is_rejected() {
        let w = Workload::SequentialScan { address_width: 3 };
        let _ = assign_specs(&w, &[QuerySpec::new(0, 2)], 1);
    }

    #[test]
    fn poisson_arrivals_are_nondecreasing_at_the_right_rate() {
        let process = ArrivalProcess::Poisson {
            mean_gap: 1_000.0,
            seed: 9,
        };
        let arrivals = process.arrivals(4000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // The empirical mean gap converges on the configured mean.
        let span = *arrivals.last().unwrap() as f64;
        let mean = span / 4000.0;
        assert!(
            (mean - 1_000.0).abs() < 100.0,
            "empirical mean gap {mean:.1}"
        );
        // Reproducible, and the name is stable for reports.
        assert_eq!(arrivals, process.arrivals(4000));
        assert_eq!(process.name(), "poisson");
    }

    #[test]
    fn bursty_arrivals_are_burstier_than_poisson_at_equal_load() {
        // Compare squared-coefficient-of-variation of inter-arrival
        // gaps: MMPP-2 must exceed the memoryless baseline (≈1).
        let scv = |arrivals: &[Ticks]| {
            let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = ArrivalProcess::Poisson {
            mean_gap: 550.0,
            seed: 3,
        }
        .arrivals(6000);
        let bursty = ArrivalProcess::Bursty {
            mean_fast_gap: 100.0,
            mean_slow_gap: 1_000.0,
            mean_dwell: 50.0,
            seed: 3,
        }
        .arrivals(6000);
        assert!(bursty.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            scv(&bursty) > 1.5 * scv(&poisson),
            "bursty scv {:.2} vs poisson {:.2}",
            scv(&bursty),
            scv(&poisson)
        );
    }

    #[test]
    fn mmpp_with_equal_rates_degenerates_to_poisson() {
        // When both MMPP-2 states share the same mean gap, the state
        // switches are unobservable: the process is exactly Poisson, so
        // the gap distribution must be memoryless (SCV ≈ 1).
        let scv = |arrivals: &[Ticks]| {
            let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let degenerate = ArrivalProcess::Bursty {
            mean_fast_gap: 800.0,
            mean_slow_gap: 800.0,
            mean_dwell: 8.0,
            seed: 11,
        }
        .arrivals(8000);
        let s = scv(&degenerate);
        assert!(
            (0.85..1.15).contains(&s),
            "equal-rate MMPP-2 should look memoryless, got SCV {s:.3}"
        );
        let mean = {
            let gaps: Vec<f64> = degenerate
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64)
                .collect();
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        assert!((mean - 800.0).abs() < 50.0, "empirical mean gap {mean:.1}");
    }

    #[test]
    #[should_panic(expected = "gap must be positive")]
    fn zero_mean_gap_is_rejected() {
        let _ = ArrivalProcess::Poisson {
            mean_gap: 0.0,
            seed: 1,
        }
        .arrivals(1);
    }

    #[test]
    fn mixed_arch_specs_cover_every_family_once() {
        let specs = mixed_arch_specs(3);
        assert_eq!(specs.len(), 5);
        let families: std::collections::HashSet<&str> =
            specs.iter().map(|s| s.arch.family()).collect();
        assert_eq!(families.len(), 5);
        assert!(specs.iter().all(|s| s.address_width() == 3));
    }

    #[test]
    fn closed_loop_serializes_each_clients_queries() {
        use crate::{QramService, ServiceConfig};
        use qram_core::Memory;

        let memory = Memory::from_bits((0..8).map(|i| i % 3 == 0));
        let config = ServiceConfig::default()
            .with_shots(0)
            .with_workers(1)
            .with_deadline(2_000);
        let loop_model = ClosedLoop {
            clients: 3,
            queries_per_client: 4,
            think_time: 100,
        };
        let stream = assign_specs(
            &Workload::SequentialScan { address_width: 3 },
            &[QuerySpec::new(1, 2)],
            12,
        );
        let mut service = QramService::new(memory.clone(), config);
        let results = loop_model.run(&mut service, &stream);
        assert_eq!(results.len(), 12);
        // Ground truth holds and nothing was shed: dependent arrivals
        // self-throttle below the bounded queue.
        assert_eq!(service.admission_stats().shed, 0);
        for r in &results {
            assert_eq!(r.value, memory.get(r.address as usize));
        }
        // Dependence pin: a client's next query arrives only after its
        // previous one completed (plus think time). Requests are issued
        // round-robin, so consecutive ids of one client differ by the
        // client count... not necessarily — ids follow submission
        // order. Instead check per-address-stream order: each client's
        // completions are strictly increasing in arrival, and every
        // arrival is >= the previous completion + think of *some*
        // earlier result (the one that woke the client).
        let mut by_id = results.clone();
        by_id.sort_by_key(|r| r.id);
        for r in &by_id {
            if r.arrival > 0 {
                assert!(
                    by_id
                        .iter()
                        .any(|prev| prev.completed + loop_model.think_time == r.arrival),
                    "arrival {} has no waking completion",
                    r.arrival
                );
            }
        }
        // In-system load never exceeded the client population.
        assert!(service.admission_stats().accepted == 12);
    }

    #[test]
    fn closed_loop_is_deterministic_across_worker_counts() {
        use crate::{QramService, ServiceConfig};
        use qram_core::Memory;

        let memory = Memory::from_bits((0..16).map(|i| i % 5 == 1));
        let stream = assign_specs_with(
            &Workload::Zipfian {
                address_width: 4,
                theta: 0.9,
                seed: 19,
            },
            &[QuerySpec::new(1, 3), QuerySpec::new(2, 2)],
            SpecMix::RoundRobin,
            24,
        );
        let run = |workers: usize| {
            let config = ServiceConfig::default()
                .with_shots(6)
                .with_seed(23)
                .with_workers(workers);
            let mut service = QramService::new(memory.clone(), config);
            ClosedLoop {
                clients: 4,
                queries_per_client: 6,
                think_time: 50,
            }
            .run(&mut service, &stream)
        };
        let serial = run(1);
        assert_eq!(serial.len(), 24);
        assert_eq!(serial, run(4));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn closed_loop_rejects_undersized_queues() {
        use crate::{QramService, ServiceConfig};
        use qram_core::Memory;
        let config = ServiceConfig::default()
            .with_shots(0)
            .with_queue_capacity(2);
        let mut service = QramService::new(Memory::ones(3), config);
        let stream = vec![(0u64, QuerySpec::new(1, 2)); 8];
        let _ = ClosedLoop {
            clients: 4,
            queries_per_client: 2,
            think_time: 0,
        }
        .run(&mut service, &stream);
    }

    #[test]
    fn zipfian_spec_mix_concentrates_on_the_head() {
        let w = Workload::Uniform {
            address_width: 3,
            seed: 1,
        };
        let specs = [
            QuerySpec::new(0, 3),
            QuerySpec::new(1, 2),
            QuerySpec::new(2, 1),
            QuerySpec::new(3, 0),
        ];
        let mix = SpecMix::Zipfian {
            theta: 1.2,
            seed: 77,
        };
        let assigned = assign_specs_with(&w, &specs, mix, 4000);
        let mut hist = [0usize; 4];
        for (_, spec) in &assigned {
            hist[specs.iter().position(|s| s == spec).unwrap()] += 1;
        }
        // Rank 0 dominates; the tail spec is rarely chosen (θ = 1.2
        // over 4 ranks puts ~4.7x more mass on rank 0 than rank 3).
        assert!(hist[0] > 2 * hist[1], "{hist:?}");
        assert!(hist[0] > 4 * hist[3], "{hist:?}");
        // Every spec still appears (the LRU sees real churn).
        assert!(hist.iter().all(|&c| c > 0), "{hist:?}");
        // Reproducible.
        assert_eq!(assigned, assign_specs_with(&w, &specs, mix, 4000));
    }
}
