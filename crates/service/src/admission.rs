//! Admission control: the non-blocking outcomes of offering a request to
//! the bounded pipeline.
//!
//! The open-loop API ([`crate::QramService::try_submit_at`]) never
//! blocks and never panics on traffic it cannot take. Instead every
//! offer resolves to an explicit [`Admission`]:
//!
//! * [`Admission::Accepted`] — the request entered the pipeline and got
//!   an id;
//! * [`Admission::Shed`] — the bounded queue is full; the request is
//!   dropped at the door (back-pressure). Shed requests consume no id,
//!   so the accepted id sequence — and with it every accepted request's
//!   deterministic fault stream — is independent of how much excess
//!   traffic was shed around it;
//! * [`Admission::Rejected`] — the request is structurally invalid for
//!   the served memory (wrong spec width, out-of-range address) and
//!   could never be served, regardless of load.

use crate::QuerySpec;

/// Why a request could never be served by this service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The spec's address width disagrees with the served memory's.
    SpecWidthMismatch {
        /// The offending spec.
        spec: QuerySpec,
        /// The served memory's address width.
        memory_width: usize,
    },
    /// The address does not exist in the served memory.
    AddressOutOfRange {
        /// The offending address.
        address: u64,
        /// The served memory's cell count.
        cells: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::SpecWidthMismatch { spec, memory_width } => write!(
                f,
                "spec address width {} disagrees with the served memory width {memory_width}",
                spec.address_width()
            ),
            RejectReason::AddressOutOfRange { address, cells } => {
                write!(f, "address {address} out of range for {cells} cells")
            }
        }
    }
}

/// The outcome of offering one request to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted under this request id.
    Accepted(u64),
    /// Dropped by back-pressure: the bounded queue held `queue_depth`
    /// requests already.
    Shed {
        /// In-system requests at the instant of the offer.
        queue_depth: usize,
    },
    /// Structurally invalid; would be refused even on an idle service.
    Rejected(RejectReason),
}

impl Admission {
    /// The assigned request id, if admitted.
    pub fn id(&self) -> Option<u64> {
        match self {
            Admission::Accepted(id) => Some(*id),
            _ => None,
        }
    }

    /// Whether the request entered the pipeline.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted(_))
    }

    /// The telemetry label of this outcome — what the admission span
    /// records.
    pub fn outcome(&self) -> qram_telemetry::AdmissionOutcome {
        match self {
            Admission::Accepted(_) => qram_telemetry::AdmissionOutcome::Accepted,
            Admission::Shed { .. } => qram_telemetry::AdmissionOutcome::Shed,
            Admission::Rejected(_) => qram_telemetry::AdmissionOutcome::Rejected,
        }
    }
}

/// Lifetime admission counters of a service.
///
/// ```
/// use qram_service::AdmissionStats;
/// let stats = AdmissionStats { accepted: 90, shed: 9, rejected: 1 };
/// assert_eq!(stats.offered(), 100);
/// assert!((stats.shed_rate() - 0.09).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests admitted into the pipeline.
    pub accepted: u64,
    /// Requests dropped by back-pressure (bounded queue full).
    pub shed: u64,
    /// Structurally invalid requests refused.
    pub rejected: u64,
}

impl AdmissionStats {
    /// Total requests offered.
    pub fn offered(&self) -> u64 {
        self.accepted + self.shed + self.rejected
    }

    /// Fraction of offered requests shed by back-pressure (0 when none
    /// were offered).
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }

    /// Reads the counters back from a metrics registry — the inverse of
    /// the service recording admissions under the `admission.*` keys.
    /// Keeps this struct a thin shim now that the registry is the
    /// source of truth.
    pub fn from_metrics(metrics: &qram_telemetry::MetricsRegistry) -> Self {
        AdmissionStats {
            accepted: metrics.counter(qram_telemetry::key::ADMISSION_ACCEPTED),
            shed: metrics.counter(qram_telemetry::key::ADMISSION_SHED),
            rejected: metrics.counter(qram_telemetry::key::ADMISSION_REJECTED),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_rates() {
        assert_eq!(Admission::Accepted(7).id(), Some(7));
        assert!(Admission::Accepted(7).is_accepted());
        assert_eq!(Admission::Shed { queue_depth: 3 }.id(), None);
        assert!(!Admission::Shed { queue_depth: 3 }.is_accepted());
        assert_eq!(AdmissionStats::default().shed_rate(), 0.0);
    }

    #[test]
    fn reject_reasons_render() {
        let width = RejectReason::SpecWidthMismatch {
            spec: QuerySpec::new(1, 2),
            memory_width: 4,
        };
        assert!(width.to_string().contains("width 3 disagrees"));
        let range = RejectReason::AddressOutOfRange {
            address: 9,
            cells: 8,
        };
        assert!(range.to_string().contains("address 9 out of range"));
    }
}
