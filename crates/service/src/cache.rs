//! The bounded LRU cache of compiled queries.
//!
//! Running the staged [`crate::Compiler`] pipeline — instantiating the
//! architecture, walking its whole generator, pricing the circuit — is
//! by far the most expensive per-spec cost of serving. Hot specs must
//! pay it once, not once per batch, so the service keeps
//! [`CompiledQuery`] artifacts behind this cache keyed by [`QuerySpec`]
//! (which wraps the hashable [`qram_core::ArchSpec`], so every
//! architecture family and parameterization gets its own distinct key).
//! Entries are `Arc`-shared with in-flight batches, which makes eviction
//! safe while a worker still executes against an evicted artifact.

use std::sync::Arc;

use qram_telemetry::{key, MetricsRegistry};

use crate::{CompiledQuery, QuerySpec};

/// Hit/miss/eviction accounting of a [`CircuitCache`].
///
/// Invariant: every lookup is exactly one hit or one miss, so
/// `lookups == hits + misses` always holds (pinned by tests).
///
/// ```
/// use qram_service::CacheStats;
/// let stats = CacheStats { lookups: 10, hits: 9, misses: 1, evictions: 0 };
/// assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
/// assert_eq!(stats.lookups, stats.hits + stats.misses);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total lookups performed (== `hits + misses`).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A bounded least-recently-used map `QuerySpec → Arc<CompiledQuery>`.
///
/// Recency order is kept in a plain vector (most recent last): the
/// capacity is the number of *distinct circuit shapes* a deployment
/// serves — typically a handful — so a linear scan beats any pointer
/// structure and keeps the cache allocation-free on the hit path.
#[derive(Debug, Default)]
pub struct CircuitCache {
    /// `(spec, artifact)` in recency order, least recent first.
    entries: Vec<(QuerySpec, Arc<CompiledQuery>)>,
    capacity: usize,
    /// Accounting lives on the shared metrics registry (under the
    /// `cache.*` keys); [`CircuitCache::stats`] reads it back as the
    /// historical [`CacheStats`] shape.
    metrics: MetricsRegistry,
}

impl CircuitCache {
    /// An empty cache holding at most `capacity` compiled queries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a service that can hold no compiled
    /// query at all would silently recompile every batch.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "circuit cache capacity must be positive");
        CircuitCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            metrics: MetricsRegistry::new(),
        }
    }

    /// The compiled query for `spec`, compiling via `compile` on a miss
    /// and evicting the least-recently-used entry when over capacity.
    pub fn get_or_insert_with(
        &mut self,
        spec: QuerySpec,
        compile: impl FnOnce() -> CompiledQuery,
    ) -> Arc<CompiledQuery> {
        self.fetch(spec, compile).0
    }

    /// Like [`get_or_insert_with`](CircuitCache::get_or_insert_with),
    /// additionally reporting whether the lookup hit — which is what the
    /// virtual clock charges the compile cost on.
    pub fn fetch(
        &mut self,
        spec: QuerySpec,
        compile: impl FnOnce() -> CompiledQuery,
    ) -> (Arc<CompiledQuery>, bool) {
        match self.try_fetch(spec, || Ok::<_, std::convert::Infallible>(compile())) {
            Ok(result) => result,
            Err(e) => match e {},
        }
    }

    /// Like [`fetch`](CircuitCache::fetch) for fallible compilation —
    /// the verify-before-insert path. A miss whose `compile` fails still
    /// counts as a miss (the `lookups == hits + misses` invariant is
    /// unconditional) but inserts nothing: a rejected artifact never
    /// becomes servable state, and a later lookup of the same spec
    /// recompiles from scratch.
    pub fn try_fetch<E>(
        &mut self,
        spec: QuerySpec,
        compile: impl FnOnce() -> Result<CompiledQuery, E>,
    ) -> Result<(Arc<CompiledQuery>, bool), E> {
        self.metrics.add(key::CACHE_LOOKUPS, 1);
        if let Some(pos) = self.entries.iter().position(|(s, _)| *s == spec) {
            self.metrics.add(key::CACHE_HITS, 1);
            // Refresh recency: move to the back.
            let entry = self.entries.remove(pos);
            let compiled = Arc::clone(&entry.1);
            self.entries.push(entry);
            return Ok((compiled, true));
        }
        self.metrics.add(key::CACHE_MISSES, 1);
        let compiled = Arc::new(compile()?);
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.metrics.add(key::CACHE_EVICTIONS, 1);
        }
        self.entries.push((spec, Arc::clone(&compiled)));
        Ok((compiled, false))
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no compiled query yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit/miss/eviction counts — a read-back shim over the
    /// `cache.*` counters of [`CircuitCache::metrics`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.metrics.counter(key::CACHE_LOOKUPS),
            hits: self.metrics.counter(key::CACHE_HITS),
            misses: self.metrics.counter(key::CACHE_MISSES),
            evictions: self.metrics.counter(key::CACHE_EVICTIONS),
        }
    }

    /// The underlying metrics registry (the `cache.*` counters), for
    /// merging into a service-wide telemetry snapshot.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cached specs in recency order, least recent first (for
    /// introspection and tests).
    pub fn keys(&self) -> Vec<QuerySpec> {
        self.entries.iter().map(|(s, _)| *s).collect()
    }

    /// Whether `spec`'s compiled query is resident *without* touching
    /// recency or the lookup counters — the scheduler's cache-affinity
    /// probe: releasing a resident group charges zero compile ticks.
    pub fn contains(&self, spec: &QuerySpec) -> bool {
        self.entries.iter().any(|(s, _)| s == spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CostModel};
    use qram_core::Memory;

    fn compile(spec: QuerySpec) -> CompiledQuery {
        Compiler::new(CostModel::default(), 0).compile(spec, &Memory::ones(spec.address_width()))
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = CircuitCache::new(2);
        let a = QuerySpec::new(0, 1);
        let b = QuerySpec::new(0, 2);
        cache.get_or_insert_with(a, || compile(a));
        cache.get_or_insert_with(a, || compile(a));
        cache.get_or_insert_with(b, || compile(b));
        cache.get_or_insert_with(a, || compile(a));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn least_recently_used_is_evicted() {
        let mut cache = CircuitCache::new(2);
        let a = QuerySpec::new(0, 1);
        let b = QuerySpec::new(0, 2);
        let c = QuerySpec::new(1, 1);
        cache.get_or_insert_with(a, || compile(a));
        cache.get_or_insert_with(b, || compile(b));
        cache.get_or_insert_with(a, || compile(a)); // refresh a: b is now LRU
        cache.get_or_insert_with(c, || compile(c)); // evicts b
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.keys(), vec![a, c]);
        // b must recompile (miss), a must not.
        cache.get_or_insert_with(a, || unreachable!("a was refreshed, not evicted"));
        cache.get_or_insert_with(b, || compile(b));
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn distinct_architectures_get_distinct_keys() {
        // Every architecture family at n = 3 is its own cache entry:
        // no family ever serves another's requests from the cache.
        let specs: Vec<QuerySpec> = crate::mixed_arch_specs(3);
        let mut cache = CircuitCache::new(specs.len());
        for &spec in &specs {
            cache.get_or_insert_with(spec, || compile(spec));
        }
        // Second pass: all hits, nothing recompiles.
        for &spec in &specs {
            let (compiled, hit) =
                cache.fetch(spec, || unreachable!("resident architecture must hit"));
            assert!(hit, "{:?}", spec.arch);
            assert_eq!(compiled.spec, spec);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, specs.len() as u64);
        assert_eq!(stats.hits, specs.len() as u64);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn miss_compiles_exactly_once_and_shares_the_arc() {
        let mut cache = CircuitCache::new(1);
        let spec = QuerySpec::new(0, 1);
        let first = cache.get_or_insert_with(spec, || compile(spec));
        let second = cache.get_or_insert_with(spec, || unreachable!("second lookup must hit"));
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = CircuitCache::new(0);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert!(CircuitCache::new(1).is_empty());
        assert_eq!(CircuitCache::new(3).capacity(), 3);
    }

    #[test]
    fn capacity_one_thrashes_but_stays_correct() {
        let mut cache = CircuitCache::new(1);
        let a = QuerySpec::new(0, 1);
        let b = QuerySpec::new(0, 2);
        // Alternating specs under capacity 1: every lookup after the
        // first two misses and evicts — the pathological LRU workload.
        for round in 0..3 {
            let (compiled_a, hit) = cache.fetch(a, || compile(a));
            assert!(!hit, "round {round}");
            assert_eq!(compiled_a.circuit.address().len(), a.address_width());
            let (_, hit) = cache.fetch(b, || compile(b));
            assert!(!hit, "round {round}");
            assert_eq!(cache.len(), 1);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 0);
        // Every miss but the very first displaced a resident entry.
        assert_eq!(stats.evictions, 5);
        assert_eq!(cache.keys(), vec![b]);
    }

    #[test]
    fn repeated_same_key_inserts_never_evict_or_recompile() {
        let mut cache = CircuitCache::new(1);
        let spec = QuerySpec::new(0, 1);
        let first = cache.get_or_insert_with(spec, || compile(spec));
        for _ in 0..10 {
            let (again, hit) = cache.fetch(spec, || unreachable!("resident key must hit"));
            assert!(hit);
            assert!(Arc::ptr_eq(&first, &again));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (10, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_artifact_is_never_cached() {
        use qram_verify::{Finding, VerifyError};
        let mut cache = CircuitCache::new(2);
        let spec = QuerySpec::new(0, 1);
        // A compile whose artifact fails static verification: the error
        // propagates, the lookup invariant holds, and nothing poisons
        // the cache.
        let err = cache
            .try_fetch(spec, || {
                Err::<CompiledQuery, VerifyError>(VerifyError {
                    findings: vec![Finding::AncillaLeak {
                        qubit: 3,
                        register: "work".into(),
                        pending: 1,
                    }],
                })
            })
            .unwrap_err();
        assert_eq!(err.findings.len(), 1);
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (1, 0, 1));
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        // A later lookup of the same spec recompiles cleanly: a fresh
        // miss that inserts and serves.
        let (compiled, hit) = cache
            .try_fetch(spec, || Ok::<_, VerifyError>(compile(spec)))
            .unwrap();
        assert!(!hit);
        assert_eq!(compiled.spec, spec);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (2, 0, 2));
    }

    #[test]
    fn residency_probe_never_perturbs_recency_or_counters() {
        let mut cache = CircuitCache::new(2);
        let a = QuerySpec::new(0, 1);
        let b = QuerySpec::new(0, 2);
        let c = QuerySpec::new(1, 1);
        cache.get_or_insert_with(a, || compile(a));
        cache.get_or_insert_with(b, || compile(b));
        assert!(cache.contains(&a) && cache.contains(&b));
        assert!(!cache.contains(&c));
        // Probing `a` ten times must not refresh it: `a` is still the
        // LRU entry and the next insert evicts it.
        for _ in 0..10 {
            assert!(cache.contains(&a));
        }
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits), (2, 0), "probes are free");
        cache.get_or_insert_with(c, || compile(c));
        assert!(!cache.contains(&a), "a stayed LRU despite the probes");
        assert_eq!(cache.keys(), vec![b, c]);
    }

    #[test]
    fn lookups_always_equal_hits_plus_misses() {
        let mut cache = CircuitCache::new(2);
        let specs = [
            QuerySpec::new(0, 1),
            QuerySpec::new(0, 2),
            QuerySpec::new(1, 1),
        ];
        // A mixed hit/miss/eviction sequence; the invariant must hold
        // after every single lookup.
        for i in [0usize, 0, 1, 2, 1, 0, 2, 2, 1, 0] {
            let spec = specs[i];
            cache.get_or_insert_with(spec, || compile(spec));
            let stats = cache.stats();
            assert_eq!(stats.lookups, stats.hits + stats.misses);
            assert!(stats.evictions <= stats.misses);
        }
        assert_eq!(cache.stats().lookups, 10);
    }
}
