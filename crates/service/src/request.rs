//! The query-serving vocabulary: what a client asks for and what it gets
//! back.

use qram_core::{ArchSpec, DataEncoding, Optimizations, QueryArchitecture};
use qram_sim::FidelityEstimate;

use crate::Ticks;

/// The compilation profile of a query — everything that determines which
/// compiled circuit can serve it.
///
/// A spec is an [`ArchSpec`] (architecture family + parameters): the
/// service is **architecture-polymorphic**, serving any of the five
/// implementations in `qram-core` through one pipeline. Two requests are
/// *batch-compatible* exactly when their specs are equal: the scheduler
/// groups the admission queue by spec and the compiled
/// [`crate::CompiledQuery`] is shared (and cached) per spec. The
/// *address* is deliberately not part of the spec — one circuit serves
/// every address of its memory.
///
/// ```
/// use qram_core::ArchSpec;
/// use qram_service::QuerySpec;
/// // The migration shim: `new(k, m)` still names the virtual QRAM…
/// let spec = QuerySpec::new(1, 2);
/// assert_eq!(spec.address_width(), 3);
/// assert_eq!(spec.architecture().name(), "virtual(k=1,m=2,ALL)");
/// // …while any architecture is one constructor away.
/// let bb = QuerySpec::of(ArchSpec::BucketBrigade { k: 1, m: 2 });
/// assert_eq!(bb.architecture().name(), "sqc+bb(k=1,m=2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuerySpec {
    /// The architecture (family + parameters) compiling this spec.
    pub arch: ArchSpec,
}

impl QuerySpec {
    /// A spec for the `(k, m)` virtual QRAM with all optimizations and
    /// bit encoding.
    ///
    /// This is the pre-`ArchSpec` constructor, kept as a thin
    /// `Virtual`-defaulting shim so existing callers keep compiling;
    /// new code naming a non-default architecture uses
    /// [`QuerySpec::of`].
    pub fn new(k: usize, m: usize) -> Self {
        QuerySpec::of(ArchSpec::virtual_all(k, m))
    }

    /// A spec for an explicit architecture.
    pub fn of(arch: ArchSpec) -> Self {
        QuerySpec { arch }
    }

    /// Overrides the optimization set, failing on any architecture
    /// without optimization switches (everything but the virtual QRAM).
    pub fn try_with_optimizations(
        mut self,
        opts: Optimizations,
    ) -> Result<Self, SpecOverrideError> {
        match &mut self.arch {
            ArchSpec::Virtual { opts: slot, .. } => *slot = opts,
            other => {
                return Err(SpecOverrideError {
                    family: other.family(),
                    switch: "optimization",
                })
            }
        }
        Ok(self)
    }

    /// Overrides the data encoding, failing on any architecture without
    /// encoding switches (everything but the virtual QRAM).
    pub fn try_with_encoding(mut self, encoding: DataEncoding) -> Result<Self, SpecOverrideError> {
        match &mut self.arch {
            ArchSpec::Virtual { encoding: slot, .. } => *slot = encoding,
            other => {
                return Err(SpecOverrideError {
                    family: other.family(),
                    switch: "data-encoding",
                })
            }
        }
        Ok(self)
    }

    /// Overrides the optimization set.
    ///
    /// # Panics
    ///
    /// Panics unless the spec names the virtual QRAM — no other
    /// architecture has optimization switches.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_with_optimizations`, which reports non-virtual specs as an error"
    )]
    pub fn with_optimizations(self, opts: Optimizations) -> Self {
        match self.try_with_optimizations(opts) {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Overrides the data encoding.
    ///
    /// # Panics
    ///
    /// Panics unless the spec names the virtual QRAM — no other
    /// architecture has encoding switches.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_with_encoding`, which reports non-virtual specs as an error"
    )]
    pub fn with_encoding(self, encoding: DataEncoding) -> Self {
        match self.try_with_encoding(encoding) {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total address width `n` the spec serves.
    pub fn address_width(&self) -> usize {
        self.arch.address_width()
    }

    /// The architecture this spec compiles under.
    pub fn architecture(&self) -> Box<dyn QueryArchitecture> {
        self.arch.instantiate()
    }
}

impl From<ArchSpec> for QuerySpec {
    fn from(arch: ArchSpec) -> Self {
        QuerySpec::of(arch)
    }
}

/// A spec-builder override applied to an architecture that has no such
/// switch — returned by [`QuerySpec::try_with_optimizations`] and
/// [`QuerySpec::try_with_encoding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecOverrideError {
    /// Family tag of the architecture that rejected the override.
    pub family: &'static str,
    /// Which switch was overridden (`"optimization"`/`"data-encoding"`).
    pub switch: &'static str,
}

impl std::fmt::Display for SpecOverrideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} has no {} switches", self.family, self.switch)
    }
}

impl std::error::Error for SpecOverrideError {}

/// The client (algorithm/user) a request is served on behalf of.
///
/// Tenants exist for the *fleet* front door: per-tenant fair queueing
/// and per-tenant accounting. A bare [`crate::QramService`] ignores the
/// field entirely — it prices and schedules requests identically for
/// every tenant, which is what makes a 1-shard fleet bit-identical to a
/// bare service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// The service-level-objective class a request is admitted under.
///
/// The class never changes *how* a request executes — only what the
/// fleet front door does under overload: deadline-priority shedding
/// drops [`Batch`](SloClass::Batch) work first, then
/// [`BestEffort`](SloClass::BestEffort), and keeps
/// [`Interactive`](SloClass::Interactive) requests (most-urgent-deadline
/// first) until nothing else is left to drop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Latency-sensitive traffic with a per-request deadline (ticks
    /// after arrival by which the answer should complete).
    Interactive {
        /// Relative completion deadline on the virtual clock.
        deadline: Ticks,
    },
    /// Throughput traffic: first to go under overload.
    Batch,
    /// No objective stated — kept ahead of batch, shed before
    /// interactive. The default class.
    #[default]
    BestEffort,
}

impl SloClass {
    /// Stable label used in reports and JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            SloClass::Interactive { .. } => "interactive",
            SloClass::Batch => "batch",
            SloClass::BestEffort => "best_effort",
        }
    }

    /// Retention rank under deadline-priority shedding: lower ranks are
    /// shed first (`Batch` < `BestEffort` < `Interactive`).
    pub fn shed_rank(&self) -> u8 {
        match self {
            SloClass::Batch => 0,
            SloClass::BestEffort => 1,
            SloClass::Interactive { .. } => 2,
        }
    }

    /// The relative deadline, when the class carries one.
    pub fn deadline(&self) -> Option<Ticks> {
        match self {
            SloClass::Interactive { deadline } => Some(*deadline),
            _ => None,
        }
    }
}

/// One admitted query: a memory address to read through a [`QuerySpec`],
/// stamped with its arrival instant on the virtual clock.
///
/// The `id` is assigned by the service at admission (monotonic per
/// service) and doubles as the request's deterministic seed component:
/// the executor derives the request's fault-sampling stream purely from
/// `(service seed, id)`, which is what makes batched results bit-identical
/// for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRequest {
    /// Service-assigned request id (admission order).
    pub id: u64,
    /// The memory address to read.
    pub address: u64,
    /// The compilation profile serving this request.
    pub spec: QuerySpec,
    /// Arrival instant on the virtual clock; latency is
    /// measured from here.
    pub arrival: Ticks,
    /// The client the request is served on behalf of (fleet fair
    /// queueing and accounting; ignored by a bare service).
    pub tenant: TenantId,
    /// The SLO class the request was admitted under (fleet shedding
    /// policy; ignored by a bare service).
    pub slo: SloClass,
}

/// The virtual-clock latency breakdown of one served request.
///
/// All three components are measured on the service's discrete-event
/// clock ([`Ticks`] = virtual ns) so they are deterministic — percentiles
/// computed from them are a property of the *workload and cost model*,
/// never of the simulation host. The parts partition the request's whole
/// life: [`total`](Latency::total) is exactly `completed − arrival`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Latency {
    /// Ticks spent waiting — in the admission queue until the batch
    /// fired, plus stalled behind earlier work for a free execution unit.
    pub queue_wait: Ticks,
    /// Ticks spent compiling the batch's circuit (0 on a cache hit —
    /// the whole point of the compiled-circuit cache).
    pub compile: Ticks,
    /// Ticks executing the query on its execution unit.
    pub execute: Ticks,
}

impl Latency {
    /// End-to-end latency: `queue_wait + compile + execute`.
    pub fn total(&self) -> Ticks {
        self.queue_wait + self.compile + self.execute
    }
}

/// The served answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The request this answers.
    pub id: u64,
    /// The address that was read.
    pub address: u64,
    /// The compilation profile that served the request (what per-
    /// architecture report breakdowns group on).
    pub spec: QuerySpec,
    /// The classical readout `x_address` (the bus bit of a noise-free
    /// classical-address query).
    pub value: bool,
    /// Monte-Carlo estimate of the query fidelity under the service's
    /// noise model, reduced to the address + bus registers. Empty
    /// (`shots == 0`) when the service runs noiseless.
    pub fidelity: FidelityEstimate,
    /// Arrival instant on the virtual clock (copied from the request).
    pub arrival: Ticks,
    /// Completion instant on the virtual clock
    /// (`arrival + latency.total()`).
    pub completed: Ticks,
    /// Where the request's virtual time went.
    pub latency: Latency,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_compose() {
        let spec = QuerySpec::new(2, 3)
            .try_with_optimizations(Optimizations::OPT2)
            .unwrap()
            .try_with_encoding(DataEncoding::FusedBit)
            .unwrap();
        assert_eq!(spec.address_width(), 5);
        assert_eq!(
            spec.arch,
            ArchSpec::Virtual {
                k: 2,
                m: 3,
                opts: Optimizations::OPT2,
                encoding: DataEncoding::FusedBit,
            }
        );
        assert_eq!(spec.architecture().name(), "virtual(k=2,m=3,OPT2,fused)");
    }

    #[test]
    fn shim_defaults_to_the_fully_optimized_virtual_qram() {
        assert_eq!(QuerySpec::new(1, 2).arch, ArchSpec::virtual_all(1, 2));
        assert_eq!(
            QuerySpec::from(ArchSpec::Sqc { n: 3 }),
            QuerySpec::of(ArchSpec::Sqc { n: 3 })
        );
    }

    #[test]
    fn non_virtual_specs_reject_optimization_overrides() {
        let err = QuerySpec::of(ArchSpec::Sqc { n: 3 })
            .try_with_optimizations(Optimizations::RAW)
            .unwrap_err();
        assert_eq!(err.family, "sqc");
        assert_eq!(err.to_string(), "sqc has no optimization switches");
    }

    #[test]
    fn non_virtual_specs_reject_encoding_overrides() {
        let err = QuerySpec::of(ArchSpec::Fanout { m: 3 })
            .try_with_encoding(DataEncoding::DualRail)
            .unwrap_err();
        assert_eq!(err.family, "fanout");
        assert_eq!(err.to_string(), "fanout has no data-encoding switches");
    }

    #[test]
    fn fallible_overrides_succeed_on_virtual_specs() {
        // Regression for the panicking builders: the fallible path must
        // apply the override exactly as the legacy builder did.
        let spec = QuerySpec::new(1, 2)
            .try_with_optimizations(Optimizations::OPT1)
            .unwrap();
        assert_eq!(
            spec.arch,
            ArchSpec::Virtual {
                k: 1,
                m: 2,
                opts: Optimizations::OPT1,
                encoding: DataEncoding::Bit,
            }
        );
    }

    #[test]
    #[should_panic(expected = "no optimization switches")]
    #[allow(deprecated)] // pins the legacy panicking alias for one release
    fn deprecated_optimization_alias_still_panics() {
        let _ = QuerySpec::of(ArchSpec::Sqc { n: 3 }).with_optimizations(Optimizations::RAW);
    }

    #[test]
    #[should_panic(expected = "no data-encoding switches")]
    #[allow(deprecated)] // pins the legacy panicking alias for one release
    fn deprecated_encoding_alias_still_panics() {
        let _ = QuerySpec::of(ArchSpec::Fanout { m: 3 }).with_encoding(DataEncoding::DualRail);
    }

    #[test]
    fn slo_classes_shed_batch_first_and_default_to_best_effort() {
        assert!(SloClass::Batch.shed_rank() < SloClass::BestEffort.shed_rank());
        assert!(
            SloClass::BestEffort.shed_rank() < SloClass::Interactive { deadline: 1 }.shed_rank()
        );
        assert_eq!(SloClass::default(), SloClass::BestEffort);
        assert_eq!(SloClass::Interactive { deadline: 5 }.deadline(), Some(5));
        assert_eq!(SloClass::Batch.deadline(), None);
        assert_eq!(SloClass::Interactive { deadline: 5 }.label(), "interactive");
        assert_eq!(TenantId::default(), TenantId(0));
        assert_eq!(TenantId(3).to_string(), "tenant3");
    }

    #[test]
    fn latency_parts_partition_the_total() {
        let latency = Latency {
            queue_wait: 300,
            compile: 50,
            execute: 120,
        };
        assert_eq!(latency.total(), 470);
        assert_eq!(Latency::default().total(), 0);
    }

    #[test]
    fn specs_hash_on_the_whole_arch_spec() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(QuerySpec::new(1, 2));
        set.insert(QuerySpec::new(2, 1));
        set.insert(
            QuerySpec::new(1, 2)
                .try_with_optimizations(Optimizations::RAW)
                .unwrap(),
        );
        set.insert(
            QuerySpec::new(1, 2)
                .try_with_encoding(DataEncoding::DualRail)
                .unwrap(),
        );
        set.insert(QuerySpec::of(ArchSpec::BucketBrigade { k: 1, m: 2 }));
        set.insert(QuerySpec::of(ArchSpec::SelectSwap { k: 1, m: 2 }));
        set.insert(QuerySpec::new(1, 2)); // duplicate
        assert_eq!(set.len(), 6);
    }
}
