//! The query-serving vocabulary: what a client asks for and what it gets
//! back.

use qram_core::{DataEncoding, Optimizations, VirtualQram};
use qram_sim::FidelityEstimate;

use crate::Ticks;

/// The compilation profile of a query — everything that determines which
/// compiled circuit can serve it.
///
/// Two requests are *batch-compatible* exactly when their specs are equal:
/// the scheduler groups the admission queue by `(architecture shape,
/// address width, [`Optimizations`], [`DataEncoding`])` and the compiled
/// [`qram_core::QueryCircuit`] is shared (and cached) per spec. The
/// *address* is deliberately not part of the spec — one circuit serves
/// every address of its memory.
///
/// ```
/// use qram_core::QueryArchitecture;
/// use qram_service::QuerySpec;
/// let spec = QuerySpec::new(1, 2);
/// assert_eq!(spec.address_width(), 3);
/// assert_eq!(spec.architecture().name(), "virtual(k=1,m=2,ALL)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuerySpec {
    /// SQC width `k` (number of pages = `2^k`).
    pub k: usize,
    /// QRAM width `m` (physical tree leaves = `2^m`).
    pub m: usize,
    /// The optimization set the circuit is compiled under.
    pub opts: Optimizations,
    /// The data-rail encoding.
    pub encoding: DataEncoding,
}

impl QuerySpec {
    /// A spec for the `(k, m)` virtual QRAM with all optimizations and
    /// bit encoding.
    pub fn new(k: usize, m: usize) -> Self {
        QuerySpec {
            k,
            m,
            opts: Optimizations::ALL,
            encoding: DataEncoding::Bit,
        }
    }

    /// Overrides the optimization set.
    pub fn with_optimizations(mut self, opts: Optimizations) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the data encoding.
    pub fn with_encoding(mut self, encoding: DataEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Total address width `n = k + m` the spec serves.
    pub fn address_width(&self) -> usize {
        self.k + self.m
    }

    /// The architecture this spec compiles under.
    pub fn architecture(&self) -> VirtualQram {
        VirtualQram::new(self.k, self.m)
            .with_optimizations(self.opts)
            .with_encoding(self.encoding)
    }
}

/// One admitted query: a memory address to read through a [`QuerySpec`],
/// stamped with its arrival instant on the virtual clock.
///
/// The `id` is assigned by the service at admission (monotonic per
/// service) and doubles as the request's deterministic seed component:
/// the executor derives the request's fault-sampling stream purely from
/// `(service seed, id)`, which is what makes batched results bit-identical
/// for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRequest {
    /// Service-assigned request id (admission order).
    pub id: u64,
    /// The memory address to read.
    pub address: u64,
    /// The compilation profile serving this request.
    pub spec: QuerySpec,
    /// Arrival instant on the service's virtual clock; latency is
    /// measured from here.
    pub arrival: Ticks,
}

/// The virtual-clock latency breakdown of one served request.
///
/// All three components are measured on the service's discrete-event
/// clock ([`Ticks`] = virtual ns) so they are deterministic — percentiles
/// computed from them are a property of the *workload and cost model*,
/// never of the simulation host. The parts partition the request's whole
/// life: [`total`](Latency::total) is exactly `completed − arrival`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Latency {
    /// Ticks spent waiting — in the admission queue until the batch
    /// fired, plus stalled behind earlier work for a free execution unit.
    pub queue_wait: Ticks,
    /// Ticks spent compiling the batch's circuit (0 on a cache hit —
    /// the whole point of the compiled-circuit cache).
    pub compile: Ticks,
    /// Ticks executing the query on its execution unit.
    pub execute: Ticks,
}

impl Latency {
    /// End-to-end latency: `queue_wait + compile + execute`.
    pub fn total(&self) -> Ticks {
        self.queue_wait + self.compile + self.execute
    }
}

/// The served answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The request this answers.
    pub id: u64,
    /// The address that was read.
    pub address: u64,
    /// The classical readout `x_address` (the bus bit of a noise-free
    /// classical-address query).
    pub value: bool,
    /// Monte-Carlo estimate of the query fidelity under the service's
    /// noise model, reduced to the address + bus registers. Empty
    /// (`shots == 0`) when the service runs noiseless.
    pub fidelity: FidelityEstimate,
    /// Arrival instant on the virtual clock (copied from the request).
    pub arrival: Ticks,
    /// Completion instant on the virtual clock
    /// (`arrival + latency.total()`).
    pub completed: Ticks,
    /// Where the request's virtual time went.
    pub latency: Latency,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_compose() {
        let spec = QuerySpec::new(2, 3)
            .with_optimizations(Optimizations::OPT2)
            .with_encoding(DataEncoding::FusedBit);
        assert_eq!(spec.address_width(), 5);
        assert_eq!(spec.architecture().optimizations(), Optimizations::OPT2);
        assert_eq!(spec.architecture().encoding(), DataEncoding::FusedBit);
    }

    #[test]
    fn latency_parts_partition_the_total() {
        let latency = Latency {
            queue_wait: 300,
            compile: 50,
            execute: 120,
        };
        assert_eq!(latency.total(), 470);
        assert_eq!(Latency::default().total(), 0);
    }

    #[test]
    fn specs_hash_on_all_four_components() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(QuerySpec::new(1, 2));
        set.insert(QuerySpec::new(2, 1));
        set.insert(QuerySpec::new(1, 2).with_optimizations(Optimizations::RAW));
        set.insert(QuerySpec::new(1, 2).with_encoding(DataEncoding::DualRail));
        set.insert(QuerySpec::new(1, 2)); // duplicate
        assert_eq!(set.len(), 4);
    }
}
