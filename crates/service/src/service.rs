//! The query-serving engine: an event-driven pipeline on a virtual
//! clock — bounded admission → deadline-aware batching → circuit cache →
//! work-stealing execution on the sharded shot engine.
//!
//! # The event loop
//!
//! The service is a discrete-event simulation driven by its callers:
//! every [`try_submit_at`](QramService::try_submit_at) and
//! [`poll`](QramService::poll) advances the virtual clock to the given
//! instant, firing — in event order — every batch whose deadline slack
//! expired and harvesting every request whose modeled execution
//! completed. Nothing ever blocks: admission on a full bounded queue
//! resolves to [`Admission::Shed`] (back-pressure) instead of waiting.
//!
//! # Determinism
//!
//! The pipeline produces **bit-identical** [`QueryResult`]s — fidelity
//! estimates *and* latency breakdowns — for any worker count. Like the
//! shot engine underneath, this is structural:
//!
//! * batch firing is a pure function of the admitted request sequence
//!   and the clock instants the pipeline is advanced to
//!   ([`crate::DeadlineBatcher`]);
//! * circuit compilation, cache accounting and virtual-time scheduling
//!   ([`crate::VirtualTimeline`]) happen on the coordinating thread,
//!   before any worker starts;
//! * each request's fault-sampling stream derives purely from
//!   `(service seed, request id)` ([`qram_noise::derive_stream_seed`] +
//!   [`FaultSampler::sample_shot_from`] over the spec's shared trial
//!   table), so the estimate a request receives cannot depend on which
//!   worker stole it;
//! * latency is measured on the virtual clock via the [`CostModel`],
//!   never on host wall time.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread;

use qram_core::Memory;
use qram_noise::{FaultSampler, NoiseModel, PauliChannel, BASE_ERROR_RATE};
use qram_sim::{ShotConfig, ShotStats};
use qram_telemetry::{
    key, AdmissionOutcome, FireReason, MetricsRegistry, NoopRecorder, Recorder, SpanEvent,
    SpanStage, SYNTHETIC_REQUEST_BASE,
};
use qram_verify::VerifyLevel;

use crate::executor::{dispatch, PreparedRequest};
use crate::{
    Admission, AdmissionStats, CacheStats, CircuitCache, Compiler, CostModel, DeadlineBatcher,
    Latency, QueryBatch, QueryRequest, QueryResult, QuerySpec, RejectReason, ReleasePolicy,
    SloClass, TenantId, Ticks, VirtualTimeline,
};

/// Tunables of a [`QramService`].
///
/// ```
/// use qram_service::ServiceConfig;
/// let config = ServiceConfig::default().with_workers(2).with_shots(16);
/// assert_eq!(config.workers, 2);
/// assert_eq!(config.shots, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Executor worker threads; `0` = all available cores. A pure
    /// throughput knob: results are bit-identical for any value.
    pub workers: usize,
    /// Bounded LRU capacity of the compiled-circuit cache (distinct
    /// [`QuerySpec`]s held at once).
    pub cache_capacity: usize,
    /// Maximum requests per batch.
    pub batch_limit: usize,
    /// Monte-Carlo shots per request for the fidelity estimate; `0`
    /// serves noiseless (classical readout only).
    pub shots: usize,
    /// Master seed; each request's fault stream derives from
    /// `(seed, request id)`.
    pub seed: u64,
    /// Threads handed to the shot engine *inside* one request
    /// (`ShotConfig::threads`); keep at 1 when `workers` already
    /// saturates the machine — the two levels multiply, and per-request
    /// work-stealing already balances skew across workers. Raising it
    /// helps only when requests are few and shot counts large.
    pub shot_threads: usize,
    /// Parallel path chunks inside each shot replay
    /// (`ShotConfig::path_chunks`); keep at 1 unless served circuits are
    /// wide (`m ≥ 8`, thousands of paths) and workers leave cores idle.
    /// Results are bit-identical for any value.
    pub path_chunks: usize,
    /// The noise model fidelity estimates are taken under.
    pub noise: NoiseModel,
    /// Bound on in-system requests (pending + executing) for the
    /// non-blocking admission path; offers beyond it are
    /// [shed](Admission::Shed). The closed-loop [`submit`]
    /// (QramService::submit) path models a blocking client and is
    /// exempt.
    pub queue_capacity: usize,
    /// Deadline slack in virtual ns: a pending batch fires at the latest
    /// `deadline` ticks after its oldest member arrived, even if under
    /// the batch limit.
    pub deadline: Ticks,
    /// Work conservation (on by default): fire the oldest underfull
    /// batch immediately whenever the virtual timeline has a free
    /// execution unit — with capacity idle, holding requests for the
    /// deadline buys no amortization and costs pure latency. Applies to
    /// the event-driven paths ([`QramService::try_submit_at`] /
    /// [`QramService::poll`]); the closed-loop
    /// [`submit`](QramService::submit) path admits without advancing
    /// the clock and is batched as before.
    pub work_conserving: bool,
    /// Which pending group a work-conserving release hands a freed
    /// execution unit: strict FIFO over groups
    /// ([`ReleasePolicy::OldestFirst`], the default — the historical
    /// behavior, bit-for-bit), or cost-based cache affinity
    /// ([`ReleasePolicy::CacheAffine`]) preferring the oldest group
    /// whose compiled circuit is cache-resident (zero compile ticks on
    /// the critical path), bounded by an age cap so no group starves.
    /// The policy reads only virtual-time state, so either setting is
    /// bit-identical across worker/shot-thread/path-chunk counts.
    pub release_policy: ReleasePolicy,
    /// The virtual-time cost model latency is measured under.
    pub cost: CostModel,
    /// Run the *deep* `qram-verify` analysis (ancilla lifecycle +
    /// resource certification) on every cache-miss compile, in addition
    /// to the always-on structural checks (gate bounds, operand overlap,
    /// family gate-set legality). Off by default: deep verification
    /// costs an extra pass over the gate list per compile, and CI's
    /// `verify_all` already certifies the whole architecture matrix.
    pub deep_verify: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 8,
            batch_limit: 32,
            shots: 32,
            seed: ShotConfig::DEFAULT_SEED,
            shot_threads: 1,
            path_chunks: 1,
            noise: NoiseModel::per_gate(PauliChannel::depolarizing(BASE_ERROR_RATE)),
            queue_capacity: 256,
            deadline: 20_000,
            work_conserving: true,
            release_policy: ReleasePolicy::OldestFirst,
            cost: CostModel::default(),
            deep_verify: false,
        }
    }
}

impl ServiceConfig {
    /// Overrides the worker count (`0` = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the circuit-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the batch limit.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = limit;
        self
    }

    /// Overrides the per-request shot count.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides the per-request shot-engine thread count.
    pub fn with_shot_threads(mut self, threads: usize) -> Self {
        self.shot_threads = threads;
        self
    }

    /// Overrides the per-shot path-chunk count (`0` = auto, `1` =
    /// serial).
    pub fn with_path_chunks(mut self, path_chunks: usize) -> Self {
        self.path_chunks = path_chunks;
        self
    }

    /// Overrides the bounded-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the batching deadline slack (virtual ns).
    pub fn with_deadline(mut self, deadline: Ticks) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enables or disables work-conserving batch firing.
    pub fn with_work_conserving(mut self, on: bool) -> Self {
        self.work_conserving = on;
        self
    }

    /// Overrides the work-conserving release policy.
    pub fn with_release_policy(mut self, policy: ReleasePolicy) -> Self {
        self.release_policy = policy;
        self
    }

    /// Overrides the virtual-time cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables or disables deep verification of cache-miss compiles.
    pub fn with_deep_verify(mut self, on: bool) -> Self {
        self.deep_verify = on;
        self
    }

    /// The effective executor worker count for `items` work items.
    fn resolved_workers(&self, items: usize) -> usize {
        let hardware = if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, |n| n.get())
        };
        hardware.min(items).max(1)
    }
}

/// Virtual-clock accounting of one fired batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// The batch's compilation profile.
    pub spec: QuerySpec,
    /// Requests served by the batch.
    pub requests: usize,
    /// The instant the batch fired (batch limit reached or deadline
    /// slack exhausted).
    pub fired_at: Ticks,
    /// Virtual compile time charged to the batch (0 on a cache hit).
    pub compile: Ticks,
    /// The instant the batch's last member finished executing.
    pub completed: Ticks,
}

/// Everything one [`QramService::drain`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// One result per returned request, in admission (id) order.
    pub results: Vec<QueryResult>,
    /// Per-batch accounting of every batch fired since the previous
    /// report, in firing order.
    pub batches: Vec<BatchReport>,
    /// Lifetime circuit-cache counters after this drain.
    pub cache: CacheStats,
    /// Lifetime admission counters after this drain.
    pub admission: AdmissionStats,
    /// Worker threads the executor pool resolves to for this report's
    /// result count.
    pub workers: usize,
}

/// One executed request waiting for the virtual clock to pass its
/// completion instant; min-ordered by `(completed, id)`.
#[derive(Debug)]
struct InFlight {
    result: QueryResult,
}

impl InFlight {
    fn key(&self) -> (Ticks, u64) {
        (self.result.completed, self.result.id)
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for InFlight {}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest completion.
        other.key().cmp(&self.key())
    }
}

/// An event-driven QRAM query-serving pipeline over one classical
/// memory, scheduled on a virtual clock.
///
/// Closed-loop clients [`submit`](QramService::submit) queries and
/// [`drain`](QramService::drain) for a full report; open-loop clients
/// [`try_submit_at`](QramService::try_submit_at) timestamped arrivals
/// (taking [`Admission::Shed`] back-pressure on a full queue) and
/// [`poll`](QramService::poll) completed results as virtual time
/// passes.
///
/// ```
/// use qram_core::Memory;
/// use qram_service::{QramService, QuerySpec, ServiceConfig};
///
/// let memory = Memory::from_bits([true, false, false, true, true, true, false, false]);
/// let mut service = QramService::new(memory.clone(), ServiceConfig::default().with_shots(0));
/// let spec = QuerySpec::new(1, 2);
/// for address in 0..8 {
///     service.submit(address, spec);
/// }
/// let report = service.drain();
/// for result in &report.results {
///     assert_eq!(result.value, memory.get(result.address as usize));
///     // Latency is measured on the virtual clock and partitions fully.
///     assert_eq!(result.completed - result.arrival, result.latency.total());
/// }
/// assert_eq!(report.cache.misses, 1); // one spec, compiled once
/// ```
///
/// Open-loop admission with explicit back-pressure:
///
/// ```
/// use qram_core::Memory;
/// use qram_service::{Admission, QramService, QuerySpec, ServiceConfig};
///
/// let memory = Memory::from_bits([true; 8]);
/// let config = ServiceConfig::default().with_shots(0).with_queue_capacity(2);
/// let mut service = QramService::new(memory, config);
/// let spec = QuerySpec::new(1, 2);
/// assert!(service.try_submit_at(0, spec, 0).is_accepted());
/// assert!(service.try_submit_at(1, spec, 0).is_accepted());
/// // The bounded queue is full: the third offer is shed, not queued.
/// assert_eq!(service.try_submit_at(2, spec, 0), Admission::Shed { queue_depth: 2 });
/// let results = service.run_until_idle();
/// assert_eq!(results.len(), 2);
/// ```
#[derive(Debug)]
pub struct QramService<R: Recorder = NoopRecorder> {
    memory: Memory,
    config: ServiceConfig,
    /// The staged `spec → circuit → resources → cost` pipeline run on
    /// every cache miss.
    compiler: Compiler,
    cache: CircuitCache,
    /// One shared fault sampler per spec seen so far: trial locations
    /// depend only on `(circuit, noise, seed)`, so workers replay
    /// per-request streams from it instead of rebuilding.
    samplers: HashMap<QuerySpec, Arc<FaultSampler>>,
    batcher: DeadlineBatcher,
    timeline: VirtualTimeline,
    now: Ticks,
    next_id: u64,
    served: u64,
    /// Always-on service counters (`admission.*`, `service.*`): the
    /// source of truth behind the [`AdmissionStats`] and
    /// [`batch_reports_dropped`](QramService::batch_reports_dropped)
    /// accessor shims.
    metrics: MetricsRegistry,
    /// The optional telemetry sink: spans and stage histograms go here.
    /// The [`NoopRecorder`] default monomorphizes every call to an
    /// empty inline body, so undecorated services pay nothing.
    recorder: R,
    /// Executed requests whose virtual completion lies in the future.
    in_flight: BinaryHeap<InFlight>,
    /// Virtually completed results awaiting the next poll/drain.
    ready: VecDeque<QueryResult>,
    /// Batches fired since they were last taken (by
    /// [`drain`](QramService::drain) or
    /// [`take_batch_reports`](QramService::take_batch_reports)), FIFO,
    /// capped at [`MAX_BATCH_REPORTS`] so a poll-only open-loop client
    /// that never takes them cannot grow the service unboundedly.
    fired_reports: VecDeque<BatchReport>,
}

/// Retained [`BatchReport`]s before the oldest are dropped (see
/// [`QramService::take_batch_reports`]).
pub const MAX_BATCH_REPORTS: usize = 4096;

impl QramService {
    /// A service over `memory` with the given tunables and no telemetry
    /// (the zero-cost [`NoopRecorder`]).
    ///
    /// # Panics
    ///
    /// Panics if `config.queue_capacity == 0` (a pipeline that sheds
    /// every offer serves nothing) — the batch limit, cache capacity and
    /// cost-model units are validated by their own constructors.
    pub fn new(memory: Memory, config: ServiceConfig) -> Self {
        QramService::with_recorder(memory, config, NoopRecorder)
    }
}

impl<R: Recorder> QramService<R> {
    /// A service over `memory` that records telemetry — spans and stage
    /// histograms — into `recorder` as it serves. Everything recorded is
    /// measured on the virtual clock, so the trace and metrics are
    /// bit-identical for any worker/shot-thread/path-chunk count.
    ///
    /// # Panics
    ///
    /// Same contract as [`QramService::new`].
    pub fn with_recorder(memory: Memory, config: ServiceConfig, recorder: R) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        QramService {
            memory,
            config,
            compiler: Compiler::new(config.cost, config.shots),
            cache: CircuitCache::new(config.cache_capacity),
            samplers: HashMap::new(),
            batcher: DeadlineBatcher::new(config.batch_limit, config.deadline),
            timeline: VirtualTimeline::new(config.cost.units),
            now: 0,
            next_id: 0,
            served: 0,
            metrics: MetricsRegistry::new(),
            recorder,
            in_flight: BinaryHeap::new(),
            ready: VecDeque::new(),
            fired_reports: VecDeque::new(),
        }
    }

    /// The attached telemetry recorder (e.g. to export its trace and
    /// metrics after a run).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// A merged snapshot of the always-on service metrics: `admission.*`
    /// and `service.*` counters plus the circuit cache's `cache.*`
    /// counters.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut merged = self.metrics.clone();
        merged.merge_from(self.cache.metrics());
        merged
    }

    /// The served memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The service tunables.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current instant on the virtual clock.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Requests admitted but not yet fired into a batch.
    pub fn pending(&self) -> usize {
        self.batcher.pending()
    }

    /// Requests in the system: pending plus executing (virtually
    /// incomplete). This is what the bounded queue bounds.
    pub fn in_system(&self) -> usize {
        self.batcher.pending() + self.in_flight.len()
    }

    /// Total requests returned to callers over the service's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Lifetime circuit-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Lifetime admission counters — read back from the `admission.*`
    /// keys of the always-on metrics registry.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats::from_metrics(&self.metrics)
    }

    /// Takes the accounting of every batch fired since the last
    /// [`drain`](QramService::drain) or call to this method, in firing
    /// order — the open-loop counterpart of [`ServiceReport::batches`].
    ///
    /// At most [`MAX_BATCH_REPORTS`] are retained between takes; check
    /// [`batch_reports_dropped`](QramService::batch_reports_dropped)
    /// when harvesting infrequently under heavy traffic.
    pub fn take_batch_reports(&mut self) -> Vec<BatchReport> {
        self.fired_reports.drain(..).collect()
    }

    /// Batch reports dropped (oldest first) because more than
    /// [`MAX_BATCH_REPORTS`] accumulated between takes.
    pub fn batch_reports_dropped(&self) -> u64 {
        self.metrics.counter(key::BATCH_REPORTS_DROPPED)
    }

    /// The earliest instant a [`poll`](QramService::poll) returns a new
    /// result (`None` when nothing is executing or ready) — the next
    /// event a closed-feedback client should advance to. Results whose
    /// virtual completion has already passed (harvested internally by
    /// an admission's clock advance) report the current instant.
    pub fn next_completion(&self) -> Option<Ticks> {
        if self.ready.is_empty() {
            self.in_flight.peek().map(|f| f.result.completed)
        } else {
            Some(self.now)
        }
    }

    /// The earliest instant a pending batch fires on deadline slack
    /// (`None` when nothing is pending) — with
    /// [`next_completion`](QramService::next_completion), everything a
    /// closed-feedback driver needs to advance the clock event by event.
    pub fn next_batch_deadline(&self) -> Option<Ticks> {
        self.batcher.next_deadline()
    }

    /// The earliest future instant anything happens on this service's
    /// virtual clock — the min of
    /// [`next_completion`](QramService::next_completion) and
    /// [`next_batch_deadline`](QramService::next_batch_deadline).
    /// Work-conserving releases need no separate entry: a unit frees
    /// exactly at a completion instant, so polling to the returned
    /// instant observes them too. `None` when the pipeline is idle.
    pub fn next_event(&self) -> Option<Ticks> {
        match (self.next_completion(), self.next_batch_deadline()) {
            (Some(c), Some(d)) => Some(c.min(d)),
            (Some(c), None) => Some(c),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    /// Whether `spec`'s compiled circuit is cache-resident, without
    /// touching recency or the lookup counters — the fleet router's
    /// cache-affinity probe for replica tie-breaking.
    pub fn cache_contains(&self, spec: &QuerySpec) -> bool {
        self.cache.contains(spec)
    }

    /// Offers one query arriving at `arrival` on the virtual clock —
    /// the non-blocking open-loop admission path.
    ///
    /// Advances the clock to `arrival` (firing due batches, completing
    /// executed work) and resolves to an [`Admission`]: `Accepted` with
    /// a request id, `Shed` when the bounded queue is full, or
    /// `Rejected` for structurally invalid requests. Arrivals must be
    /// offered in nondecreasing order; an `arrival` earlier than the
    /// clock is clamped to *now* (virtual time never rewinds).
    pub fn try_submit_at(&mut self, address: u64, spec: QuerySpec, arrival: Ticks) -> Admission {
        self.try_submit_tagged_at(
            address,
            spec,
            arrival,
            TenantId::default(),
            SloClass::default(),
        )
    }

    /// [`try_submit_at`](QramService::try_submit_at) with an explicit
    /// tenant and SLO class — the fleet front door's admission hook. The
    /// tags ride along on the admitted [`QueryRequest`] for accounting;
    /// a bare service schedules and prices every class identically, so
    /// tagging never perturbs results.
    pub fn try_submit_tagged_at(
        &mut self,
        address: u64,
        spec: QuerySpec,
        arrival: Ticks,
        tenant: TenantId,
        slo: SloClass,
    ) -> Admission {
        self.advance_to(arrival.max(self.now));
        if spec.address_width() != self.memory.address_width() {
            self.record_terminal(AdmissionOutcome::Rejected);
            return Admission::Rejected(RejectReason::SpecWidthMismatch {
                spec,
                memory_width: self.memory.address_width(),
            });
        }
        if address >= self.memory.len() as u64 {
            self.record_terminal(AdmissionOutcome::Rejected);
            return Admission::Rejected(RejectReason::AddressOutOfRange {
                address,
                cells: self.memory.len(),
            });
        }
        let queue_depth = self.in_system();
        if queue_depth >= self.config.queue_capacity {
            self.record_terminal(AdmissionOutcome::Shed);
            return Admission::Shed { queue_depth };
        }
        let id = self.admit(address, spec, tenant, slo);
        // Work conservation: if the modeled device has a free unit right
        // now, waiting for the batch to fill (or its deadline) is pure
        // latency — release pending work immediately.
        self.conserve_now();
        Admission::Accepted(id)
    }

    /// Counts a shed/rejected offer and records its terminal admission
    /// span, so the trace accounts for every arrival — not only the
    /// completed ones. Terminal spans never consume a request id; they
    /// carry a synthetic `SYNTHETIC_REQUEST_BASE | ordinal` key instead,
    /// keeping accepted requests' ids (and fault streams) untouched.
    fn record_terminal(&mut self, outcome: AdmissionOutcome) {
        let ordinal = self.metrics.counter(key::ADMISSION_SHED)
            + self.metrics.counter(key::ADMISSION_REJECTED);
        let counter = match outcome {
            AdmissionOutcome::Shed => key::ADMISSION_SHED,
            _ => key::ADMISSION_REJECTED,
        };
        self.metrics.add(counter, 1);
        if self.recorder.enabled() {
            self.recorder.span(SpanEvent {
                request: SYNTHETIC_REQUEST_BASE + ordinal,
                start: self.now,
                end: self.now,
                stage: SpanStage::Admission {
                    outcome,
                    queue_depth: self.in_system() as u64,
                },
            });
        }
    }

    /// Admits one query at the current clock instant and returns its
    /// request id — the closed-loop path, modeling a client that blocks
    /// until admitted (and is therefore never shed by the bounded
    /// queue).
    ///
    /// # Panics
    ///
    /// Panics if `spec`'s address width disagrees with the memory or
    /// `address` is out of range; use
    /// [`try_submit_at`](QramService::try_submit_at) for non-panicking
    /// admission.
    pub fn submit(&mut self, address: u64, spec: QuerySpec) -> u64 {
        assert_eq!(
            spec.address_width(),
            self.memory.address_width(),
            "spec address width disagrees with the served memory"
        );
        assert!(
            address < self.memory.len() as u64,
            "address {address} out of range for {} cells",
            self.memory.len()
        );
        self.admit(address, spec, TenantId::default(), SloClass::default())
    }

    /// Admits a validated request and fires its batch if it filled.
    fn admit(&mut self, address: u64, spec: QuerySpec, tenant: TenantId, slo: SloClass) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.metrics.add(key::ADMISSION_ACCEPTED, 1);
        if self.recorder.enabled() {
            self.recorder.span(SpanEvent {
                request: id,
                start: self.now,
                end: self.now,
                stage: SpanStage::Admission {
                    outcome: AdmissionOutcome::Accepted,
                    queue_depth: self.in_system() as u64,
                },
            });
        }
        let request = QueryRequest {
            id,
            address,
            spec,
            arrival: self.now,
            tenant,
            slo,
        };
        // The admitted request joins the queue before anything fires:
        // that instant is the queue-depth high-water candidate.
        self.recorder
            .gauge_max(key::QUEUE_DEPTH_HIGH_WATER, self.in_system() as u64 + 1);
        if let Some(batch) = self.batcher.push(request) {
            self.fire_batches(vec![batch], self.now, FireReason::Full);
        }
        id
    }

    /// Admits a whole `(address, spec)` stream (e.g. from
    /// [`crate::workload::assign_specs`]) at the current clock instant;
    /// returns the number admitted.
    pub fn submit_all(&mut self, stream: impl IntoIterator<Item = (u64, QuerySpec)>) -> usize {
        let mut admitted = 0;
        for (address, spec) in stream {
            self.submit(address, spec);
            admitted += 1;
        }
        admitted
    }

    /// Advances the virtual clock to `until` and returns every result
    /// that completed by then, in completion order.
    pub fn poll(&mut self, until: Ticks) -> Vec<QueryResult> {
        self.advance_to(until.max(self.now));
        self.take_ready()
    }

    /// Fires everything still pending (deadlines waived), runs the
    /// virtual clock until the pipeline is idle, and returns the
    /// remaining results in completion order.
    pub fn run_until_idle(&mut self) -> Vec<QueryResult> {
        let batches = self.batcher.flush();
        self.fire_batches(batches, self.now, FireReason::Drain);
        self.advance_to(self.timeline.idle_at().max(self.now));
        self.take_ready()
    }

    /// Serves everything still in the pipeline and reports: fires all
    /// pending batches (deadlines waived), runs the clock to idle, and
    /// returns every unreturned result in admission order together with
    /// per-batch accounting — the closed-loop counterpart of
    /// [`poll`](QramService::poll).
    pub fn drain(&mut self) -> ServiceReport {
        let batches = self.batcher.flush();
        self.fire_batches(batches, self.now, FireReason::Drain);
        self.advance_to(self.timeline.idle_at().max(self.now));
        let mut results = self.take_ready();
        results.sort_by_key(|r| r.id);
        ServiceReport {
            workers: self.config.resolved_workers(results.len()),
            results,
            batches: self.take_batch_reports(),
            cache: self.cache.stats(),
            admission: self.admission_stats(),
        }
    }

    /// Hands the ready queue to the caller and counts it as served.
    fn take_ready(&mut self) -> Vec<QueryResult> {
        let results: Vec<QueryResult> = self.ready.drain(..).collect();
        self.served += results.len() as u64;
        results
    }

    /// While work-conserving with pending work and a free execution
    /// unit at the current instant, fires the pending group the release
    /// policy selects.
    fn conserve_now(&mut self) {
        while self.config.work_conserving
            && self.batcher.pending() > 0
            && self.timeline.next_free() <= self.now
        {
            let (batch, reason) = self.release_pending().expect("pending group exists");
            self.fire_batches(vec![batch], self.now, reason);
        }
    }

    /// Releases one pending group under the configured
    /// [`ReleasePolicy`], returning it with the fire reason its
    /// [`SpanStage::BatchForm`] span carries (`None` when nothing is
    /// pending).
    ///
    /// `OldestFirst` is the historical strict-FIFO release. Under
    /// `CacheAffine` the freed unit goes to the oldest group whose
    /// compiled circuit is cache-resident — zero compile ticks on the
    /// critical path — *unless* the oldest group has already waited
    /// `age_cap` ticks, in which case it is released regardless of
    /// residency. Both the selection inputs (group arrival order, cache
    /// residency) and the clock are virtual-time state, so the choice is
    /// deterministic across all host-parallelism knobs.
    fn release_pending(&mut self) -> Option<(QueryBatch, FireReason)> {
        let ReleasePolicy::CacheAffine { age_cap } = self.config.release_policy else {
            let batch = self.batcher.fire_oldest()?;
            return Some((batch, FireReason::WorkConserving));
        };
        let heads = self.batcher.group_heads();
        let (_, oldest_arrival) = *heads.first()?;
        let resident = heads.iter().position(|(spec, _)| self.cache.contains(spec));
        if self.now.saturating_sub(oldest_arrival) >= age_cap {
            // Non-starvation bound: the oldest group exhausted its age
            // cap, so it fires even if a younger resident group exists.
            if resident.is_some_and(|pos| pos > 0) {
                self.metrics.add(key::POLICY_AGE_CAP_FORCED, 1);
            }
            let batch = self.batcher.fire_oldest()?;
            return Some((batch, FireReason::WorkConserving));
        }
        match resident {
            // The oldest resident group is not the oldest group: the
            // cache-affine redirect, charged zero compile ticks.
            Some(pos) if pos > 0 => {
                self.metrics.add(key::POLICY_CACHE_AFFINE_FIRES, 1);
                let batch = self.batcher.fire_nth(pos)?;
                Some((batch, FireReason::CacheAffine))
            }
            // Oldest group is resident, or nothing is: plain FIFO.
            _ => {
                let batch = self.batcher.fire_oldest()?;
                Some((batch, FireReason::WorkConserving))
            }
        }
    }

    /// Advances the clock to `t`, firing batches in event order —
    /// deadline expirations interleaved with work-conserving releases
    /// (a unit falling free with work pending) — and harvesting
    /// completed work.
    fn advance_to(&mut self, t: Ticks) {
        loop {
            let deadline = self.batcher.next_deadline().filter(|&d| d <= t);
            let conserve = (self.config.work_conserving && self.batcher.pending() > 0)
                .then(|| self.timeline.next_free().max(self.now))
                .filter(|&w| w <= t);
            let conserving = match (deadline, conserve) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                // On a tie the work-conserving release wins: the due
                // group is also the oldest, and firing it alone keeps
                // later groups batching while the device is busy.
                (Some(d), Some(w)) => w <= d,
            };
            if conserving {
                let at = conserve.expect("conserving event exists");
                self.now = self.now.max(at);
                let (batch, reason) = self.release_pending().expect("pending group exists");
                self.fire_batches(vec![batch], self.now, reason);
            } else {
                let at = deadline.expect("deadline event exists");
                self.now = self.now.max(at);
                let due = self.batcher.fire_due(self.now);
                self.fire_batches(due, self.now, FireReason::Deadline);
            }
        }
        self.now = self.now.max(t);
        while let Some(top) = self.in_flight.peek() {
            if top.result.completed > self.now {
                break;
            }
            let done = self.in_flight.pop().expect("peeked entry exists");
            self.metrics.add(key::SERVICE_COMPLETED, 1);
            self.ready.push_back(done.result);
        }
    }

    /// Fires `batches` at `fire_time`: resolves circuits through the
    /// cache, schedules every member on the virtual timeline, executes
    /// the flattened work list on the work-stealing pool, and parks the
    /// results until their virtual completion.
    fn fire_batches(&mut self, batches: Vec<QueryBatch>, fire_time: Ticks, reason: FireReason) {
        if batches.is_empty() {
            return;
        }
        let enabled = self.recorder.enabled();
        let mut prepared: Vec<PreparedRequest> = Vec::new();
        for batch in batches {
            let spec = batch.spec;
            let group = enabled.then(|| batch.group_key());
            let lead = batch.lead_id();
            let memory = &self.memory;
            let compiler = self.compiler;
            // Every miss is verified before the artifact may enter the
            // cache: structural checks always, the deep pass when
            // configured. A finding here is an internal miscompile — the
            // service cannot serve from a circuit its own analyzer
            // rejects, so it aborts rather than degrade silently.
            let level = if self.config.deep_verify {
                VerifyLevel::Deep
            } else {
                VerifyLevel::Structural
            };
            let (compiled, hit) = self
                .cache
                .try_fetch(spec, || compiler.try_compile(spec, memory, level))
                .unwrap_or_else(|e| panic!("miscompiled artifact for {spec:?}: {e}"));
            if !hit {
                // A miss may have evicted an artifact; drop the evicted
                // specs' samplers too, so the sampler map stays bounded
                // by the cache capacity. Rebuilding a sampler later is
                // deterministic (pure in circuit, noise, seed), so
                // pruning cannot perturb any fault stream.
                let cached = self.cache.keys();
                self.samplers.retain(|s, _| cached.contains(s));
            }
            // Virtual costs come off the artifact's measured resources:
            // compile scales with the architecture's gate count, execute
            // with its lowered depth (per-architecture calibration).
            let compile = if hit { 0 } else { compiled.cost.compile };
            let execute = compiled.cost.execute;
            let ready_at = fire_time + compile;
            self.metrics.add(key::BATCHES_FIRED, 1);
            if let Some(group) = &group {
                self.recorder
                    .record(key::BATCH_SIZE, batch.requests.len() as u64);
                self.recorder.span(SpanEvent {
                    request: lead,
                    start: fire_time,
                    end: fire_time,
                    stage: SpanStage::BatchForm {
                        group: group.clone(),
                        reason,
                        size: batch.requests.len() as u64,
                    },
                });
                self.recorder.span(SpanEvent {
                    request: lead,
                    start: fire_time,
                    end: ready_at,
                    stage: SpanStage::Compile {
                        group: group.clone(),
                        cache_hit: hit,
                        verify: Compiler::verify_tag(level),
                    },
                });
            }
            let config = &self.config;
            let sampler = (self.config.shots > 0).then(|| {
                Arc::clone(self.samplers.entry(spec).or_insert_with(|| {
                    Arc::new(FaultSampler::new(
                        compiled.circuit.circuit(),
                        config.noise,
                        config.seed,
                    ))
                }))
            });
            let requests = batch.requests.len();
            let mut batch_completed = ready_at;
            for request in batch.requests {
                let (unit, start, end) = self.timeline.assign_slot(ready_at, execute);
                // start ≥ ready_at = fire_time + compile ≥ arrival + compile,
                // so the breakdown partitions end − arrival exactly.
                let latency = Latency {
                    queue_wait: start - request.arrival - compile,
                    compile,
                    execute,
                };
                batch_completed = batch_completed.max(end);
                if let Some(group) = &group {
                    self.recorder.span(SpanEvent {
                        request: request.id,
                        start: request.arrival,
                        end: request.arrival + latency.queue_wait,
                        stage: SpanStage::QueueWait {
                            group: group.clone(),
                        },
                    });
                    self.recorder.span(SpanEvent {
                        request: request.id,
                        start,
                        end,
                        stage: SpanStage::Execute {
                            unit: unit as u64,
                            shots: self.config.shots as u64,
                        },
                    });
                    self.recorder
                        .record(key::STAGE_QUEUE_WAIT, latency.queue_wait);
                    self.recorder.record(key::STAGE_COMPILE, latency.compile);
                    self.recorder.record(key::STAGE_EXECUTE, latency.execute);
                    self.recorder
                        .record(key::STAGE_TOTAL, end - request.arrival);
                }
                prepared.push(PreparedRequest {
                    request,
                    compiled: Arc::clone(&compiled),
                    sampler: sampler.clone(),
                    latency,
                    completed: end,
                });
            }
            self.fired_reports.push_back(BatchReport {
                spec,
                requests,
                fired_at: fire_time,
                compile,
                completed: batch_completed,
            });
            if self.fired_reports.len() > MAX_BATCH_REPORTS {
                self.fired_reports.pop_front();
                self.metrics.add(key::BATCH_REPORTS_DROPPED, 1);
            }
        }
        let workers = self.config.resolved_workers(prepared.len());
        let mut sim_stats = ShotStats::default();
        for (result, stats) in dispatch(&prepared, workers, &self.config) {
            sim_stats.merge_from(&stats);
            self.in_flight.push(InFlight { result });
        }
        // Shot-engine counters are merged on the coordinating thread in
        // item order, so the recorder never needs to be Sync.
        sim_stats.record_into(&mut self.recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_noise::derive_stream_seed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memory(n: usize) -> Memory {
        Memory::random(n, &mut StdRng::seed_from_u64(13))
    }

    fn noiseless_config() -> ServiceConfig {
        ServiceConfig::default()
            .with_shots(0)
            .with_workers(1)
            .with_cache_capacity(4)
    }

    #[test]
    fn serves_correct_values_for_every_address() {
        let memory = memory(3);
        let mut service = QramService::new(memory.clone(), noiseless_config());
        let spec = QuerySpec::new(1, 2);
        for address in 0..8u64 {
            service.submit(address, spec);
        }
        let report = service.drain();
        assert_eq!(report.results.len(), 8);
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.address, i as u64);
            assert_eq!(result.value, memory.get(i), "address {i}");
            // The virtual-clock breakdown partitions the total exactly.
            assert_eq!(result.completed - result.arrival, result.latency.total());
        }
        assert_eq!(service.served(), 8);
        assert_eq!(service.pending(), 0);
        assert_eq!(service.admission_stats().accepted, 8);
    }

    #[test]
    fn results_come_back_in_submission_order_despite_spec_grouping() {
        let memory = memory(3);
        let mut service = QramService::new(memory, noiseless_config());
        let a = QuerySpec::new(1, 2);
        let b = QuerySpec::new(2, 1);
        // Interleave specs; batching groups them, results must not.
        let ids: Vec<u64> = (0..6u64)
            .map(|i| service.submit(i, if i % 2 == 0 { a } else { b }))
            .collect();
        let report = service.drain();
        let got: Vec<u64> = report.results.iter().map(|r| r.id).collect();
        assert_eq!(got, ids);
        // Two batches, one per spec.
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].spec, a);
        assert_eq!(report.batches[1].spec, b);
    }

    #[test]
    fn noisy_results_are_bit_identical_across_worker_counts() {
        let mem = memory(4);
        let run = |workers: usize| {
            let config = ServiceConfig::default()
                .with_shots(24)
                .with_seed(17)
                .with_workers(workers)
                .with_batch_limit(3);
            let mut service = QramService::new(mem.clone(), config);
            let specs = [
                QuerySpec::new(1, 3),
                QuerySpec::new(2, 2),
                QuerySpec::new(3, 1),
            ];
            for i in 0..24u64 {
                service.submit(i % 16, specs[(i % 3) as usize]);
            }
            service.drain()
        };
        let serial = run(1);
        for workers in [2, 3, 4, 7] {
            let parallel = run(workers);
            // Results (ids, values, estimates, latency breakdowns) are
            // bit-identical; so is the whole batch accounting — every
            // field of BatchReport is virtual-clock-deterministic.
            assert_eq!(serial.results, parallel.results, "workers = {workers}");
            assert_eq!(serial.batches, parallel.batches);
            assert_eq!(serial.cache, parallel.cache);
            assert_eq!(serial.admission, parallel.admission);
        }
    }

    #[test]
    fn noisy_estimates_depend_on_request_id_not_batch_position() {
        // Two services submit the same address under different queue
        // shapes; the shared request id must receive the same estimate.
        let mem = memory(3);
        let config = ServiceConfig::default().with_shots(16).with_seed(5);
        let spec = QuerySpec::new(1, 2);

        let mut lone = QramService::new(mem.clone(), config);
        lone.submit(3, spec); // id 0
        let lone_result = lone.drain().results[0].clone();

        let mut crowded = QramService::new(mem, config);
        crowded.submit(3, spec); // id 0, now sharing its batch
        for address in 0..6 {
            crowded.submit(address, spec);
        }
        let crowded_result = crowded.drain().results[0].clone();
        assert_eq!(lone_result, crowded_result);
    }

    #[test]
    fn drain_on_empty_queue_is_a_no_op() {
        let mut service = QramService::new(memory(2), noiseless_config());
        let report = service.drain();
        assert!(report.results.is_empty());
        assert!(report.batches.is_empty());
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn cache_is_reused_across_drains() {
        let mut service = QramService::new(memory(3), noiseless_config());
        let spec = QuerySpec::new(1, 2);
        service.submit(0, spec);
        service.drain();
        service.submit(1, spec);
        let report = service.drain();
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.lookups, 2);
    }

    #[test]
    #[should_panic(expected = "address width disagrees")]
    fn mismatched_spec_is_rejected() {
        let mut service = QramService::new(memory(3), noiseless_config());
        service.submit(0, QuerySpec::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_address_is_rejected() {
        let mut service = QramService::new(memory(3), noiseless_config());
        service.submit(8, QuerySpec::new(1, 2));
    }

    #[test]
    fn invalid_open_loop_offers_resolve_to_rejections() {
        let mut service = QramService::new(memory(3), noiseless_config());
        assert!(matches!(
            service.try_submit_at(0, QuerySpec::new(1, 1), 0),
            Admission::Rejected(RejectReason::SpecWidthMismatch { .. })
        ));
        assert!(matches!(
            service.try_submit_at(8, QuerySpec::new(1, 2), 0),
            Admission::Rejected(RejectReason::AddressOutOfRange { .. })
        ));
        assert_eq!(service.admission_stats().rejected, 2);
        assert_eq!(service.admission_stats().accepted, 0);
    }

    #[test]
    fn deadline_fires_underfull_batches_as_the_clock_advances() {
        // Work conservation off: this pins the pure deadline mechanism.
        let config = noiseless_config()
            .with_work_conserving(false)
            .with_deadline(100)
            .with_batch_limit(8);
        let mut service = QramService::new(memory(3), config);
        let spec = QuerySpec::new(1, 2);
        assert!(service.try_submit_at(1, spec, 10).is_accepted());
        assert!(service.try_submit_at(2, spec, 30).is_accepted());
        // Before the oldest member's deadline (10 + 100) nothing fires.
        assert!(service.poll(109).is_empty());
        assert_eq!(service.pending(), 2);
        // At the deadline the underfull batch fires; results complete
        // after compile + execute on the virtual clock.
        let results = service.poll(1_000_000);
        assert_eq!(results.len(), 2);
        assert_eq!(service.pending(), 0);
        for result in &results {
            assert!(result.latency.queue_wait > 0, "waited for the deadline");
            assert_eq!(result.completed - result.arrival, result.latency.total());
        }
        // The batch report records the deadline instant.
        let report = service.drain();
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].fired_at, 110);
        assert_eq!(report.batches[0].requests, 2);
    }

    #[test]
    fn full_queue_sheds_and_recovers() {
        let config = noiseless_config()
            .with_queue_capacity(4)
            .with_batch_limit(2)
            .with_deadline(1_000);
        let mut service = QramService::new(memory(3), config);
        let spec = QuerySpec::new(1, 2);
        // Fill the bounded queue with simultaneous arrivals.
        let mut accepted = 0;
        let mut shed = 0;
        for address in 0..8u64 {
            match service.try_submit_at(address, spec, 0) {
                Admission::Accepted(_) => accepted += 1,
                Admission::Shed { .. } => shed += 1,
                Admission::Rejected(_) => unreachable!(),
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(shed, 4);
        assert_eq!(service.admission_stats().shed, 4);
        // Once the pipeline clears, admission recovers.
        let drained = service.run_until_idle();
        assert_eq!(drained.len(), 4);
        assert!(service.try_submit_at(0, spec, service.now()).is_accepted());
    }

    #[test]
    fn virtual_latency_is_independent_of_real_worker_count() {
        let mem = memory(3);
        let run = |workers: usize| {
            let config = ServiceConfig::default()
                .with_shots(8)
                .with_workers(workers)
                .with_deadline(500)
                .with_batch_limit(4);
            let mut service = QramService::new(mem.clone(), config);
            let spec = QuerySpec::new(1, 2);
            for i in 0..12u64 {
                service.try_submit_at(i % 8, spec, i * 40);
            }
            service.run_until_idle()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 12);
    }

    #[test]
    fn batch_report_buffer_is_bounded_for_poll_only_clients() {
        // An open-loop client that never takes batch reports must not
        // grow the service without bound: the FIFO cap drops the oldest
        // and counts the drops.
        let config = noiseless_config().with_batch_limit(1);
        let mut service = QramService::new(memory(2), config);
        let spec = QuerySpec::new(1, 1);
        let total = MAX_BATCH_REPORTS + 100;
        for i in 0..total {
            service.submit(i as u64 % 4, spec); // fires one batch each
        }
        assert_eq!(service.batch_reports_dropped(), 100);
        let reports = service.take_batch_reports();
        assert_eq!(reports.len(), MAX_BATCH_REPORTS);
        // The retained window is the most recent one.
        assert_eq!(reports.last().unwrap().requests, 1);
        assert!(service.take_batch_reports().is_empty());
    }

    #[test]
    fn max_deadline_slack_never_fires_early() {
        // Ticks::MAX slack = batch-limit-only firing; arrivals at
        // nonzero instants must not overflow into immediate deadlines.
        let config = noiseless_config()
            .with_work_conserving(false)
            .with_deadline(Ticks::MAX)
            .with_batch_limit(4);
        let mut service = QramService::new(memory(3), config);
        let spec = QuerySpec::new(1, 2);
        assert!(service.try_submit_at(1, spec, 5_000).is_accepted());
        assert!(service.poll(1_000_000_000).is_empty());
        assert_eq!(service.pending(), 1);
        let report = service.drain();
        assert_eq!(report.results.len(), 1);
    }

    #[test]
    fn evicted_specs_release_their_samplers() {
        // Two specs thrashing a capacity-1 cache: the sampler map must
        // track evictions instead of holding every spec ever served.
        let config = ServiceConfig::default()
            .with_shots(4)
            .with_workers(1)
            .with_cache_capacity(1)
            .with_batch_limit(2);
        let mut service = QramService::new(memory(3), config);
        let a = QuerySpec::new(1, 2);
        let b = QuerySpec::new(2, 1);
        for round in 0..3u64 {
            service.submit(round % 8, a);
            service.submit((round + 1) % 8, a);
            service.submit(round % 8, b);
            service.submit((round + 1) % 8, b);
        }
        let report = service.drain();
        assert!(report.cache.evictions > 0);
        assert!(
            service.samplers.len() <= service.config.cache_capacity,
            "{} samplers held over capacity {}",
            service.samplers.len(),
            service.config.cache_capacity
        );
        assert_eq!(report.results.len(), 12);
    }

    #[test]
    fn work_conserving_idle_service_fires_on_arrival() {
        // A lone request reaching an idle device must not sit out the
        // batching deadline: with work conservation (the default) it
        // fires the instant it arrives.
        let config = noiseless_config()
            .with_deadline(100_000)
            .with_batch_limit(64);
        let mut service = QramService::new(memory(3), config);
        let spec = QuerySpec::new(1, 2);
        assert!(service.try_submit_at(3, spec, 500).is_accepted());
        assert_eq!(service.pending(), 0, "fired on arrival, not queued");
        let results = service.poll(100_000_000);
        assert_eq!(results.len(), 1);
        // No queueing: latency is exactly compile + execute.
        assert_eq!(results[0].latency.queue_wait, 0);
        assert!(results[0].latency.compile > 0);
        let reports = service.take_batch_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].fired_at, 500);
    }

    #[test]
    fn work_conservation_only_fires_into_free_units() {
        // Two units (default cost model): the first two arrivals fire
        // immediately; the third finds no free unit and batches until
        // one frees up.
        let config = noiseless_config()
            .with_deadline(1_000_000)
            .with_batch_limit(64);
        let mut service = QramService::new(memory(3), config);
        let spec = QuerySpec::new(1, 2);
        for address in 0..3u64 {
            assert!(service.try_submit_at(address, spec, 0).is_accepted());
        }
        // Units are busy with requests 0 and 1; request 2 pends.
        assert_eq!(service.pending(), 1);
        let results = service.poll(1_000_000_000);
        assert_eq!(results.len(), 3);
        // The third request fired when a unit freed — well before the
        // deadline — and charged the stall as queue wait.
        let third = results.iter().find(|r| r.id == 2).expect("id 2 served");
        assert!(third.latency.queue_wait > 0);
        assert!(third.latency.total() < 1_000_000);
    }

    #[test]
    fn cache_affine_redirects_a_freed_unit_to_the_resident_group() {
        // Both units busy serving hot spec H (so H is cache-resident),
        // a cold group C pending ahead of a younger hot group: when the
        // first unit frees, the cache-affine policy hands it to the hot
        // group (zero compile ticks) and only then serves C.
        let config = noiseless_config()
            .with_deadline(1_000_000)
            .with_batch_limit(64)
            .with_release_policy(ReleasePolicy::CacheAffine { age_cap: 500_000 });
        let mut service = QramService::new(memory(3), config);
        let hot = QuerySpec::new(1, 2);
        let cold = QuerySpec::new(2, 1);
        assert!(service.try_submit_at(0, hot, 0).is_accepted()); // unit 0
        assert!(service.try_submit_at(1, hot, 0).is_accepted()); // unit 1
        assert!(service.try_submit_at(2, cold, 0).is_accepted()); // pends (oldest group)
        assert!(service.try_submit_at(3, hot, 0).is_accepted()); // pends (younger, resident)
        assert_eq!(service.pending(), 2);
        let results = service.poll(1_000_000_000);
        assert_eq!(results.len(), 4);
        let reports = service.take_batch_reports();
        // Firing order: the two immediate hot fires, then the redirect
        // to the resident hot group, then the cold group.
        assert_eq!(
            reports.iter().map(|b| b.spec).collect::<Vec<_>>(),
            vec![hot, hot, hot, cold]
        );
        assert_eq!(reports[2].compile, 0, "redirected fire was a cache hit");
        assert!(reports[3].compile > 0, "cold group still pays its compile");
        let metrics = service.metrics_snapshot();
        assert_eq!(metrics.counter(key::POLICY_CACHE_AFFINE_FIRES), 1);
        assert_eq!(metrics.counter(key::POLICY_AGE_CAP_FORCED), 0);
    }

    #[test]
    fn age_cap_forces_the_oldest_group_despite_a_resident_one() {
        // Same shape as above, but with a 1-tick age cap: by the time a
        // unit frees the cold group has exhausted its cap, so it fires
        // first even though the hot group is resident.
        let config = noiseless_config()
            .with_deadline(1_000_000)
            .with_batch_limit(64)
            .with_release_policy(ReleasePolicy::CacheAffine { age_cap: 1 });
        let mut service = QramService::new(memory(3), config);
        let hot = QuerySpec::new(1, 2);
        let cold = QuerySpec::new(2, 1);
        assert!(service.try_submit_at(0, hot, 0).is_accepted());
        assert!(service.try_submit_at(1, hot, 0).is_accepted());
        assert!(service.try_submit_at(2, cold, 0).is_accepted());
        assert!(service.try_submit_at(3, hot, 0).is_accepted());
        let results = service.poll(1_000_000_000);
        assert_eq!(results.len(), 4);
        let reports = service.take_batch_reports();
        assert_eq!(
            reports.iter().map(|b| b.spec).collect::<Vec<_>>(),
            vec![hot, hot, cold, hot]
        );
        let metrics = service.metrics_snapshot();
        assert_eq!(metrics.counter(key::POLICY_CACHE_AFFINE_FIRES), 0);
        assert_eq!(metrics.counter(key::POLICY_AGE_CAP_FORCED), 1);
    }

    #[test]
    fn oldest_first_remains_the_default_release_policy() {
        assert_eq!(
            ServiceConfig::default().release_policy,
            ReleasePolicy::OldestFirst
        );
        // And under it the counters never move, even with the same
        // contended workload the affine tests use.
        let config = noiseless_config()
            .with_deadline(1_000_000)
            .with_batch_limit(64);
        let mut service = QramService::new(memory(3), config);
        let hot = QuerySpec::new(1, 2);
        let cold = QuerySpec::new(2, 1);
        for (address, spec) in [(0, hot), (1, hot), (2, cold), (3, hot)] {
            assert!(service.try_submit_at(address, spec, 0).is_accepted());
        }
        let results = service.poll(1_000_000_000);
        assert_eq!(results.len(), 4);
        let reports = service.take_batch_reports();
        // Strict FIFO: the cold group fires before the younger hot one.
        assert_eq!(
            reports.iter().map(|b| b.spec).collect::<Vec<_>>(),
            vec![hot, hot, cold, hot]
        );
        let metrics = service.metrics_snapshot();
        assert_eq!(metrics.counter(key::POLICY_CACHE_AFFINE_FIRES), 0);
        assert_eq!(metrics.counter(key::POLICY_AGE_CAP_FORCED), 0);
    }

    #[test]
    fn deep_verification_does_not_perturb_serving() {
        // deep_verify only adds analysis on the miss path; every served
        // result — readout, fidelity, latency breakdown — is
        // bit-identical with it on.
        let memory = memory(4);
        let config = ServiceConfig::default()
            .with_shots(8)
            .with_workers(1)
            .with_batch_limit(4);
        let specs = [QuerySpec::new(1, 3), QuerySpec::new(2, 2)];
        let requests: Vec<(u64, QuerySpec)> = (0..12u64)
            .map(|i| (i % 16, specs[(i % 2) as usize]))
            .collect();
        let mut plain = QramService::new(memory.clone(), config);
        plain.submit_all(requests.clone());
        let mut deep = QramService::new(memory, config.with_deep_verify(true));
        deep.submit_all(requests);
        assert_eq!(plain.drain().results, deep.drain().results);
    }

    #[test]
    fn mixed_architectures_serve_through_one_pipeline() {
        let memory = memory(3);
        let config = noiseless_config().with_cache_capacity(8);
        let mut service = QramService::new(memory.clone(), config);
        let specs = crate::mixed_arch_specs(3);
        for &spec in &specs {
            for address in 0..8u64 {
                service.submit(address, spec);
            }
        }
        let report = service.drain();
        assert_eq!(report.results.len(), 40);
        // One distinct cache entry per architecture family.
        assert_eq!(report.cache.misses, specs.len() as u64);
        assert_eq!(report.cache.evictions, 0);
        for result in &report.results {
            // Every architecture answers with the memory ground truth.
            assert_eq!(
                result.value,
                memory.get(result.address as usize),
                "{} at {}",
                result.spec.arch,
                result.address
            );
            // Execute ticks are calibrated per architecture: they match
            // the cost model applied to the measured resources.
            let resources = result.spec.arch.instantiate().resources(&memory);
            assert_eq!(
                result.latency.execute,
                service.config().cost.execute_cost(&resources, 0),
                "{}",
                result.spec.arch
            );
        }
        // The calibration distinguishes the families: at least three
        // distinct execute costs across the five architectures.
        let mut costs: Vec<Ticks> = report.results.iter().map(|r| r.latency.execute).collect();
        costs.sort_unstable();
        costs.dedup();
        assert!(costs.len() >= 3, "execute costs {costs:?}");
    }

    #[test]
    fn request_streams_are_decorrelated() {
        let seeds: Vec<u64> = (0..64).map(|id| derive_stream_seed(2023, id)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
