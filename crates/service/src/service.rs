//! The query-serving engine: admission queue → batch plan → circuit
//! cache → multi-worker execution on the sharded shot engine.
//!
//! # Determinism
//!
//! A drained queue produces **bit-identical** [`QueryResult`]s for any
//! worker count. Like the shot engine underneath, this is structural:
//!
//! * the batch plan is a pure function of the queue contents
//!   ([`crate::plan_batches`]);
//! * circuit compilation and cache accounting happen on the draining
//!   thread, before any worker starts;
//! * each request's fault-sampling stream derives purely from
//!   `(service seed, request id)` ([`qram_noise::derive_stream_seed`] +
//!   [`FaultSampler::sample_shot_from`] over the spec's shared trial
//!   table), so the estimate a request receives cannot depend on which
//!   worker ran it;
//! * every result is scattered back into its submission slot, so the
//!   report's order is submission order regardless of scheduling.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qram_core::{Memory, QueryArchitecture, QueryCircuit};
use qram_noise::{derive_stream_seed, FaultSampler, NoiseModel, PauliChannel, BASE_ERROR_RATE};
use qram_sim::{run_shots, Amplitude, FidelityEstimate, ShotConfig};

use crate::{
    plan_batches, CacheStats, CircuitCache, QueryBatch, QueryRequest, QueryResult, QuerySpec,
};

/// Tunables of a [`QramService`].
///
/// ```
/// use qram_service::ServiceConfig;
/// let config = ServiceConfig::default().with_workers(2).with_shots(16);
/// assert_eq!(config.workers, 2);
/// assert_eq!(config.shots, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Executor worker threads; `0` = all available cores. A pure
    /// throughput knob: results are bit-identical for any value.
    pub workers: usize,
    /// Bounded LRU capacity of the compiled-circuit cache (distinct
    /// [`QuerySpec`]s held at once).
    pub cache_capacity: usize,
    /// Maximum requests per batch.
    pub batch_limit: usize,
    /// Monte-Carlo shots per request for the fidelity estimate; `0`
    /// serves noiseless (classical readout only).
    pub shots: usize,
    /// Master seed; each request's fault stream derives from
    /// `(seed, request id)`.
    pub seed: u64,
    /// Threads handed to the shot engine *inside* one request
    /// (`ShotConfig::threads`); keep at 1 when `workers` already
    /// saturates the machine.
    pub shot_threads: usize,
    /// The noise model fidelity estimates are taken under.
    pub noise: NoiseModel,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 8,
            batch_limit: 32,
            shots: 32,
            seed: ShotConfig::DEFAULT_SEED,
            shot_threads: 1,
            noise: NoiseModel::per_gate(PauliChannel::depolarizing(BASE_ERROR_RATE)),
        }
    }
}

impl ServiceConfig {
    /// Overrides the worker count (`0` = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the circuit-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the batch limit.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = limit;
        self
    }

    /// Overrides the per-request shot count.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The effective executor worker count for `batches` planned batches.
    fn resolved_workers(&self, batches: usize) -> usize {
        let hardware = if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, |n| n.get())
        };
        hardware.min(batches).max(1)
    }
}

/// Execution accounting of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// The batch's compilation profile.
    pub spec: QuerySpec,
    /// Requests served by the batch.
    pub requests: usize,
    /// Wall-clock execution time of the batch on its worker.
    pub duration: Duration,
}

/// Everything one [`QramService::drain`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// One result per drained request, in submission order.
    pub results: Vec<QueryResult>,
    /// Per-batch accounting, in batch-plan order.
    pub batches: Vec<BatchReport>,
    /// Lifetime circuit-cache counters after this drain.
    pub cache: CacheStats,
    /// Worker threads the executor actually used.
    pub workers: usize,
}

/// A batched QRAM query-serving engine over one classical memory.
///
/// Clients [`submit`](QramService::submit) addressed queries tagged with
/// a [`QuerySpec`]; [`drain`](QramService::drain) groups the queue into
/// compatible batches, fetches (or compiles) each batch's circuit
/// through the LRU cache, and executes the batches on a deterministic
/// multi-worker pool.
///
/// ```
/// use qram_core::Memory;
/// use qram_service::{QramService, QuerySpec, ServiceConfig};
///
/// let memory = Memory::from_bits([true, false, false, true, true, true, false, false]);
/// let mut service = QramService::new(memory.clone(), ServiceConfig::default().with_shots(0));
/// let spec = QuerySpec::new(1, 2);
/// for address in 0..8 {
///     service.submit(address, spec);
/// }
/// let report = service.drain();
/// for result in &report.results {
///     assert_eq!(result.value, memory.get(result.address as usize));
/// }
/// assert_eq!(report.cache.misses, 1); // one spec, compiled once
/// ```
#[derive(Debug)]
pub struct QramService {
    memory: Memory,
    config: ServiceConfig,
    queue: Vec<QueryRequest>,
    cache: CircuitCache,
    next_id: u64,
    served: u64,
}

impl QramService {
    /// A service over `memory` with the given tunables.
    pub fn new(memory: Memory, config: ServiceConfig) -> Self {
        QramService {
            memory,
            config,
            queue: Vec::new(),
            cache: CircuitCache::new(config.cache_capacity),
            next_id: 0,
            served: 0,
        }
    }

    /// The served memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The service tunables.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Admits one query and returns its request id.
    ///
    /// # Panics
    ///
    /// Panics if `spec`'s address width disagrees with the memory or
    /// `address` is out of range.
    pub fn submit(&mut self, address: u64, spec: QuerySpec) -> u64 {
        assert_eq!(
            spec.address_width(),
            self.memory.address_width(),
            "spec address width disagrees with the served memory"
        );
        assert!(
            address < self.memory.len() as u64,
            "address {address} out of range for {} cells",
            self.memory.len()
        );
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(QueryRequest { id, address, spec });
        id
    }

    /// Admits a whole `(address, spec)` stream (e.g. from
    /// [`crate::workload::assign_specs`]); returns the number admitted.
    pub fn submit_all(&mut self, stream: impl IntoIterator<Item = (u64, QuerySpec)>) -> usize {
        let before = self.queue.len();
        for (address, spec) in stream {
            self.submit(address, spec);
        }
        self.queue.len() - before
    }

    /// Queued requests awaiting the next drain.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total requests served over the service's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Lifetime circuit-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serves the whole queue: plans batches, resolves circuits through
    /// the cache, executes on the worker pool, and returns results in
    /// submission order.
    pub fn drain(&mut self) -> ServiceReport {
        let queue = std::mem::take(&mut self.queue);
        let plan = plan_batches(&queue, self.config.batch_limit);
        // Compile/fetch single-threaded so cache accounting is a pure
        // function of the submission sequence. The fault sampler's trial
        // locations depend only on (circuit, noise) — constant per spec —
        // so one sampler per distinct spec is walked from the circuit and
        // shared by every batch of that spec; per-request streams come
        // from `sample_shot_from`, so workers never clone or rebuild it.
        // Noiseless serving (shots == 0) never samples: skip the walk.
        let mut samplers: HashMap<QuerySpec, Arc<FaultSampler>> = HashMap::new();
        let prepared: Vec<PreparedBatch> = plan
            .into_iter()
            .map(|batch| {
                let spec = batch.spec;
                let circuit = self
                    .cache
                    .get_or_insert_with(spec, || spec.architecture().build(&self.memory));
                let sampler = (self.config.shots > 0).then(|| {
                    Arc::clone(samplers.entry(spec).or_insert_with(|| {
                        Arc::new(FaultSampler::new(
                            circuit.circuit(),
                            self.config.noise,
                            self.config.seed,
                        ))
                    }))
                });
                PreparedBatch {
                    circuit,
                    sampler,
                    batch,
                }
            })
            .collect();

        let workers = self.config.resolved_workers(prepared.len());
        let mut results: Vec<Option<QueryResult>> = vec![None; queue.len()];
        let mut reports: Vec<Option<BatchReport>> = vec![None; prepared.len()];

        if workers == 1 {
            for (i, entry) in prepared.iter().enumerate() {
                let (slotted, report) = execute_batch(entry, &self.config);
                scatter(&mut results, slotted);
                reports[i] = Some(report);
            }
        } else {
            let config = &self.config;
            let prepared_ref = &prepared;
            let worker_outputs: Vec<_> = thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut slotted = Vec::new();
                            let mut batch_reports = Vec::new();
                            // Round-robin batch assignment: worker w owns
                            // batches w, w + workers, … — purely an
                            // execution schedule, invisible in the output.
                            for (i, entry) in
                                prepared_ref.iter().enumerate().skip(w).step_by(workers)
                            {
                                let (s, report) = execute_batch(entry, config);
                                slotted.extend(s);
                                batch_reports.push((i, report));
                            }
                            (slotted, batch_reports)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("service worker panicked"))
                    .collect()
            });
            for (slotted, batch_reports) in worker_outputs {
                scatter(&mut results, slotted);
                for (i, report) in batch_reports {
                    reports[i] = Some(report);
                }
            }
        }

        self.served += queue.len() as u64;
        ServiceReport {
            results: results
                .into_iter()
                .map(|r| r.expect("every drained request produces a result"))
                .collect(),
            batches: reports
                .into_iter()
                .map(|r| r.expect("every planned batch produces a report"))
                .collect(),
            cache: self.cache.stats(),
            workers,
        }
    }
}

/// One planned batch bundled with its spec's shared compiled circuit
/// and fault sampler.
struct PreparedBatch {
    circuit: Arc<QueryCircuit>,
    /// The spec's shared fault sampler; `None` when serving noiseless
    /// (`shots == 0`), where no fault pattern is ever drawn.
    sampler: Option<Arc<FaultSampler>>,
    batch: QueryBatch,
}

/// Writes worker results into their submission slots.
fn scatter(results: &mut [Option<QueryResult>], slotted: Vec<(usize, QueryResult)>) {
    for (slot, result) in slotted {
        debug_assert!(results[slot].is_none(), "slot {slot} served twice");
        results[slot] = Some(result);
    }
}

/// Executes one batch against its compiled circuit: per request, the
/// classical readout plus a Monte-Carlo fidelity estimate on the shot
/// engine, under the request's own deterministic fault stream.
fn execute_batch(
    entry: &PreparedBatch,
    config: &ServiceConfig,
) -> (Vec<(usize, QueryResult)>, BatchReport) {
    let start = Instant::now();
    let circuit = entry.circuit.as_ref();
    let keep = circuit.output_qubits();
    let results = entry
        .batch
        .requests
        .iter()
        .map(|&(slot, request)| {
            (
                slot,
                execute_one(circuit, entry.sampler.as_deref(), &keep, request, config),
            )
        })
        .collect();
    let report = BatchReport {
        spec: entry.batch.spec,
        requests: entry.batch.len(),
        duration: start.elapsed(),
    };
    (results, report)
}

/// Serves one request.
fn execute_one(
    circuit: &QueryCircuit,
    sampler: Option<&FaultSampler>,
    keep: &[qram_circuit::Qubit],
    request: QueryRequest,
    config: &ServiceConfig,
) -> QueryResult {
    // The served answer is deliberately read off the *circuit* (a full
    // noiseless trajectory through the bus), not `memory.get` — the
    // serving layer answers with what the compiled query actually
    // returns, which is what the correctness tests pin against the
    // memory ground truth.
    let value = circuit
        .query_classical(request.address)
        .expect("compiled query circuits serve every in-range address");
    let fidelity = match sampler {
        // Noiseless serving: fidelity is not estimated, no replay runs.
        None => FidelityEstimate::from_samples(&[]),
        Some(sampler) => {
            // The request's input: the classical basis state at its
            // address; its fault streams derive from (seed, request id).
            let mut amps = vec![Amplitude::ZERO; request.address as usize + 1];
            amps[request.address as usize] = Amplitude::ONE;
            let input = circuit.input_state(Some(&amps));
            let request_master = derive_stream_seed(config.seed, request.id);
            let shot_config = ShotConfig {
                shots: config.shots,
                seed: request_master,
                threads: config.shot_threads,
            };
            run_shots(
                circuit.circuit().gates(),
                &input,
                Some(keep),
                &shot_config,
                &|shot| sampler.sample_shot_from(request_master, shot),
            )
            .expect("compiled query circuits are always simulable")
        }
    };
    QueryResult {
        id: request.id,
        address: request.address,
        value,
        fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memory(n: usize) -> Memory {
        Memory::random(n, &mut StdRng::seed_from_u64(13))
    }

    fn noiseless_config() -> ServiceConfig {
        ServiceConfig::default()
            .with_shots(0)
            .with_workers(1)
            .with_cache_capacity(4)
    }

    #[test]
    fn serves_correct_values_for_every_address() {
        let memory = memory(3);
        let mut service = QramService::new(memory.clone(), noiseless_config());
        let spec = QuerySpec::new(1, 2);
        for address in 0..8u64 {
            service.submit(address, spec);
        }
        let report = service.drain();
        assert_eq!(report.results.len(), 8);
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.address, i as u64);
            assert_eq!(result.value, memory.get(i), "address {i}");
        }
        assert_eq!(service.served(), 8);
        assert_eq!(service.pending(), 0);
    }

    #[test]
    fn results_come_back_in_submission_order_despite_spec_grouping() {
        let memory = memory(3);
        let mut service = QramService::new(memory, noiseless_config());
        let a = QuerySpec::new(1, 2);
        let b = QuerySpec::new(2, 1);
        // Interleave specs; batching groups them, results must not.
        let ids: Vec<u64> = (0..6u64)
            .map(|i| service.submit(i, if i % 2 == 0 { a } else { b }))
            .collect();
        let report = service.drain();
        let got: Vec<u64> = report.results.iter().map(|r| r.id).collect();
        assert_eq!(got, ids);
        // Two batches, one per spec.
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].spec, a);
        assert_eq!(report.batches[1].spec, b);
    }

    #[test]
    fn noisy_results_are_bit_identical_across_worker_counts() {
        let mem = memory(4);
        let run = |workers: usize| {
            let config = ServiceConfig::default()
                .with_shots(24)
                .with_seed(17)
                .with_workers(workers)
                .with_batch_limit(3);
            let mut service = QramService::new(mem.clone(), config);
            let specs = [
                QuerySpec::new(1, 3),
                QuerySpec::new(2, 2),
                QuerySpec::new(3, 1),
            ];
            for i in 0..24u64 {
                service.submit(i % 16, specs[(i % 3) as usize]);
            }
            service.drain()
        };
        let serial = run(1);
        for workers in [2, 3, 4, 7] {
            let parallel = run(workers);
            // Results (ids, values, estimates) are bit-identical.
            assert_eq!(serial.results, parallel.results, "workers = {workers}");
            // The batch plan is identical too (durations aside).
            let shape = |r: &ServiceReport| {
                r.batches
                    .iter()
                    .map(|b| (b.spec, b.requests))
                    .collect::<Vec<_>>()
            };
            assert_eq!(shape(&serial), shape(&parallel));
            assert_eq!(serial.cache, parallel.cache);
        }
    }

    #[test]
    fn noisy_estimates_depend_on_request_id_not_batch_position() {
        // Two services submit the same address under different queue
        // shapes; the shared request id must receive the same estimate.
        let mem = memory(3);
        let config = ServiceConfig::default().with_shots(16).with_seed(5);
        let spec = QuerySpec::new(1, 2);

        let mut lone = QramService::new(mem.clone(), config);
        lone.submit(3, spec); // id 0
        let lone_result = lone.drain().results[0].clone();

        let mut crowded = QramService::new(mem, config);
        crowded.submit(3, spec); // id 0, now sharing its batch
        for address in 0..6 {
            crowded.submit(address, spec);
        }
        let crowded_result = crowded.drain().results[0].clone();
        assert_eq!(lone_result, crowded_result);
    }

    #[test]
    fn drain_on_empty_queue_is_a_no_op() {
        let mut service = QramService::new(memory(2), noiseless_config());
        let report = service.drain();
        assert!(report.results.is_empty());
        assert!(report.batches.is_empty());
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn cache_is_reused_across_drains() {
        let mut service = QramService::new(memory(3), noiseless_config());
        let spec = QuerySpec::new(1, 2);
        service.submit(0, spec);
        service.drain();
        service.submit(1, spec);
        let report = service.drain();
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.cache.hits, 1);
    }

    #[test]
    #[should_panic(expected = "address width disagrees")]
    fn mismatched_spec_is_rejected() {
        let mut service = QramService::new(memory(3), noiseless_config());
        service.submit(0, QuerySpec::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_address_is_rejected() {
        let mut service = QramService::new(memory(3), noiseless_config());
        service.submit(8, QuerySpec::new(1, 2));
    }

    #[test]
    fn request_streams_are_decorrelated() {
        let seeds: Vec<u64> = (0..64).map(|id| derive_stream_seed(2023, id)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
