//! The real executor: a work-stealing per-request dispatch pool over the
//! sharded shot engine.
//!
//! Where the virtual timeline ([`crate::VirtualTimeline`]) *models* when
//! a request runs on the served device, this module actually *computes*
//! each request's answer (classical readout + Monte-Carlo fidelity
//! estimate) on the simulation host. Fired requests — possibly from
//! several batches — are flattened into one work list; `workers` threads
//! pull individual items off a shared atomic cursor, so a thread that
//! drew cheap requests steals the next pending one instead of idling
//! behind a skewed batch (the failure mode of the old
//! round-robin-over-batches pool).
//!
//! # Determinism
//!
//! Results are **bit-identical for any worker count**, structurally:
//! each item's answer is a pure function of `(circuit, noise, service
//! seed, request id)` — the fault stream derives from
//! [`qram_noise::derive_stream_seed`]`(seed, id)` and replays via
//! [`FaultSampler::sample_shot_from`] over the spec's shared trial
//! table — and every worker writes only its item's own slot. Which
//! thread steals which item is invisible in the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use qram_noise::{derive_stream_seed, FaultSampler};
use qram_sim::{run_shots_stats, Amplitude, FidelityEstimate, ShotConfig, ShotStats};

use crate::{CompiledQuery, Latency, QueryRequest, QueryResult, ServiceConfig, Ticks};

/// One fired request, fully resolved for execution: the shared compiled
/// artifact, the spec's shared fault sampler, and the virtual-clock
/// accounting already assigned by the scheduler.
#[derive(Debug, Clone)]
pub(crate) struct PreparedRequest {
    pub request: QueryRequest,
    pub compiled: Arc<CompiledQuery>,
    /// `None` when serving noiseless (`shots == 0`): no fault pattern is
    /// ever drawn.
    pub sampler: Option<Arc<FaultSampler>>,
    pub latency: Latency,
    pub completed: Ticks,
}

/// Executes `prepared` on `workers` threads via work-stealing dispatch;
/// returns `(result, shot-engine stats)` pairs in `prepared` order —
/// the stats ride back to the coordinating thread so telemetry
/// recording never happens off it.
///
/// Noiseless items (`shots == 0`, one classical readout each) always
/// run inline: open-loop serving dispatches per firing event, and
/// spawning a thread scope per microsecond-scale batch would cost more
/// than the work itself. This is purely a scheduling choice — the
/// bit-identity contract holds either way.
pub(crate) fn dispatch(
    prepared: &[PreparedRequest],
    workers: usize,
    config: &ServiceConfig,
) -> Vec<(QueryResult, ShotStats)> {
    let workers = if config.shots == 0 {
        1
    } else {
        workers.clamp(1, prepared.len().max(1))
    };
    if workers == 1 {
        return prepared
            .iter()
            .map(|item| execute_one(item, config))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<(QueryResult, ShotStats)>> = vec![None; prepared.len()];
    let stolen: Vec<Vec<(usize, (QueryResult, ShotStats))>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        // Steal the next pending item; the claim order is
                        // scheduling-dependent, the per-item result is not.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = prepared.get(i) else {
                            return mine;
                        };
                        mine.push((i, execute_one(item, config)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    });
    for (i, result) in stolen.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "item {i} executed twice");
        results[i] = Some(result);
    }
    results
        .into_iter()
        .map(|r| r.expect("every dispatched item produces a result"))
        .collect()
}

/// Serves one request: classical readout off the compiled circuit plus a
/// Monte-Carlo fidelity estimate under the request's own fault stream.
fn execute_one(item: &PreparedRequest, config: &ServiceConfig) -> (QueryResult, ShotStats) {
    let circuit = &item.compiled.circuit;
    let request = item.request;
    // The served answer is deliberately read off the *circuit* (a full
    // noiseless trajectory through the bus), not `memory.get` — the
    // serving layer answers with what the compiled query actually
    // returns, which is what the correctness tests pin against the
    // memory ground truth.
    let value = circuit
        .query_classical(request.address)
        .expect("compiled query circuits serve every in-range address");
    let (fidelity, stats) = match item.sampler.as_deref() {
        // Noiseless serving: fidelity is not estimated, no replay runs.
        None => (FidelityEstimate::from_samples(&[]), ShotStats::default()),
        Some(sampler) => {
            // The request's input: the classical basis state at its
            // address; its fault streams derive from (seed, request id).
            let keep = circuit.output_qubits();
            let mut amps = vec![Amplitude::ZERO; request.address as usize + 1];
            amps[request.address as usize] = Amplitude::ONE;
            let input = circuit.input_state(Some(&amps));
            let request_master = derive_stream_seed(config.seed, request.id);
            let shot_config = ShotConfig {
                shots: config.shots,
                seed: request_master,
                threads: config.shot_threads,
                path_chunks: config.path_chunks,
            };
            run_shots_stats(
                circuit.circuit().gates(),
                &input,
                Some(&keep),
                &shot_config,
                &|shot| sampler.sample_shot_from(request_master, shot),
            )
            .expect("compiled query circuits are always simulable")
        }
    };
    let result = QueryResult {
        id: request.id,
        address: request.address,
        spec: request.spec,
        value,
        fidelity,
        arrival: request.arrival,
        completed: item.completed,
        latency: item.latency,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, QuerySpec};
    use qram_core::Memory;
    use qram_noise::{NoiseModel, PauliChannel, BASE_ERROR_RATE};

    fn prepared(count: usize, shots: usize) -> (Vec<PreparedRequest>, ServiceConfig) {
        let spec = QuerySpec::new(1, 2);
        let memory = Memory::ones(spec.address_width());
        let config = ServiceConfig::default().with_shots(shots).with_seed(11);
        let compiled = Arc::new(Compiler::new(config.cost, shots).compile(spec, &memory));
        let sampler = (shots > 0).then(|| {
            Arc::new(FaultSampler::new(
                compiled.circuit.circuit(),
                NoiseModel::per_gate(PauliChannel::depolarizing(BASE_ERROR_RATE)),
                config.seed,
            ))
        });
        let items = (0..count)
            .map(|i| PreparedRequest {
                request: QueryRequest {
                    id: i as u64,
                    address: (i % 8) as u64,
                    spec,
                    arrival: 0,
                    tenant: crate::TenantId::default(),
                    slo: crate::SloClass::default(),
                },
                compiled: Arc::clone(&compiled),
                sampler: sampler.clone(),
                latency: Latency::default(),
                completed: 0,
            })
            .collect();
        (items, config)
    }

    #[test]
    fn stealing_is_invisible_in_the_output() {
        let (items, config) = prepared(17, 6);
        let serial = dispatch(&items, 1, &config);
        for workers in [2, 3, 5, 16] {
            assert_eq!(serial, dispatch(&items, workers, &config), "{workers}");
        }
        // Results come back in item order with correct readouts, each
        // carrying its own (knob-invariant) shot-engine stats.
        for (i, (r, stats)) in serial.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.value, "Memory::ones reads 1 everywhere");
            assert_eq!(r.fidelity.shots, 6);
            assert_eq!(stats.shots, 6);
        }
    }

    #[test]
    fn worker_count_clamps_to_the_item_count() {
        let (items, config) = prepared(2, 0);
        // More workers than items must not deadlock or drop items.
        let results = dispatch(&items, 64, &config);
        assert_eq!(results.len(), 2);
        assert!(dispatch(&[], 8, &config).is_empty());
    }
}
