//! The batching scheduler: admission queue → compatible batches.
//!
//! Requests are batch-compatible when their [`QuerySpec`]s are equal
//! (same architecture shape, address width, optimization set and data
//! encoding): one compiled circuit serves every request of the batch, so
//! the compile cost — and one circuit-cache lookup — is amortized over
//! the whole batch. Grouping is stable: specs appear in first-arrival
//! order and requests keep their submission order within a spec, which
//! makes the batch plan (and therefore cache accounting) a pure function
//! of the queue contents.

use crate::{QueryRequest, QuerySpec};

/// A maximal run of batch-compatible requests, capped at the scheduler's
/// batch limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    /// The shared compilation profile.
    pub spec: QuerySpec,
    /// The batched requests, tagged with their queue slot (submission
    /// index) so results can be scattered back into submission order.
    pub requests: Vec<(usize, QueryRequest)>,
}

impl QueryBatch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Groups the queue into spec-compatible batches of at most
/// `batch_limit` requests.
///
/// Specs are emitted in first-arrival order; a spec with more than
/// `batch_limit` queued requests yields several consecutive batches.
///
/// # Panics
///
/// Panics if `batch_limit == 0`.
pub fn plan_batches(queue: &[QueryRequest], batch_limit: usize) -> Vec<QueryBatch> {
    assert!(batch_limit > 0, "batch limit must be positive");
    // Group by spec, preserving first-arrival order of specs.
    let mut groups: Vec<(QuerySpec, Vec<(usize, QueryRequest)>)> = Vec::new();
    for (slot, request) in queue.iter().enumerate() {
        match groups.iter_mut().find(|(spec, _)| *spec == request.spec) {
            Some((_, members)) => members.push((slot, *request)),
            None => groups.push((request.spec, vec![(slot, *request)])),
        }
    }
    let mut batches = Vec::new();
    for (spec, members) in groups {
        for chunk in members.chunks(batch_limit) {
            batches.push(QueryBatch {
                spec,
                requests: chunk.to_vec(),
            });
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, spec: QuerySpec) -> QueryRequest {
        QueryRequest {
            id,
            address: id % (1 << spec.address_width()) as u64,
            spec,
        }
    }

    #[test]
    fn groups_by_spec_in_first_arrival_order() {
        let a = QuerySpec::new(0, 2);
        let b = QuerySpec::new(1, 1);
        let queue = vec![
            request(0, a),
            request(1, b),
            request(2, a),
            request(3, b),
            request(4, a),
        ];
        let batches = plan_batches(&queue, 16);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].spec, a);
        assert_eq!(batches[1].spec, b);
        // Submission order within a spec, with the right slots.
        assert_eq!(
            batches[0]
                .requests
                .iter()
                .map(|(s, _)| *s)
                .collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(
            batches[1]
                .requests
                .iter()
                .map(|(r, _)| *r)
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn batch_limit_splits_large_groups() {
        let spec = QuerySpec::new(0, 2);
        let queue: Vec<_> = (0..10).map(|i| request(i, spec)).collect();
        let batches = plan_batches(&queue, 4);
        assert_eq!(
            batches.iter().map(QueryBatch::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert!(batches.iter().all(|b| b.spec == spec && !b.is_empty()));
    }

    #[test]
    fn empty_queue_plans_no_batches() {
        assert!(plan_batches(&[], 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch limit must be positive")]
    fn zero_batch_limit_is_rejected() {
        let _ = plan_batches(&[], 0);
    }
}
