//! The deadline-aware batching scheduler: admitted requests → fired
//! batches.
//!
//! Requests are batch-compatible when their [`QuerySpec`]s are equal
//! (same architecture shape, address width, optimization set and data
//! encoding): one compiled circuit serves every request of the batch, so
//! the compile cost — and one circuit-cache lookup — is amortized over
//! the whole batch.
//!
//! Batching trades latency for that amortization, and the
//! [`DeadlineBatcher`] makes the trade explicit: a pending group fires
//! when it reaches the batch limit (amortization won) **or** when its
//! oldest member's deadline slack is exhausted (latency bound hit) —
//! whichever comes first. A work-conserving service additionally calls
//! [`DeadlineBatcher::fire_oldest`] whenever the modeled device has a
//! free execution unit: with capacity idle, waiting out a deadline buys
//! no amortization. Grouping is stable: specs hold first-arrival
//! order and requests keep their admission order within a spec, which
//! makes the firing sequence (and therefore cache accounting) a pure
//! function of the admitted request sequence and the clock instants at
//! which the pipeline is advanced.

use crate::{QueryRequest, QuerySpec, Ticks};

/// Which pending group a work-conserving release hands a freed
/// execution unit.
///
/// The policy consults only virtual-time state — pending-group arrival
/// order and compiled-circuit cache residency — never host scheduling,
/// so every choice (and therefore every result, trace and digest) stays
/// bit-identical across worker/shot-thread/path-chunk counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Strict FIFO over groups: always the group whose current members
    /// arrived first (the historical behavior, and the default).
    #[default]
    OldestFirst,
    /// Cost-based: prefer the *oldest cache-resident* group — its
    /// compiled circuit is already in the [`crate::CircuitCache`], so
    /// releasing it charges zero compile ticks on the critical path —
    /// over strict FIFO, unless the oldest group has already waited
    /// `age_cap` ticks, in which case it is released regardless of
    /// residency (the non-starvation bound).
    CacheAffine {
        /// Maximum ticks the oldest pending group may be passed over
        /// before it becomes the forced pick. Bounds any group's extra
        /// queue wait under sustained cache-hot load; the batching
        /// deadline still applies independently.
        age_cap: Ticks,
    },
}

impl ReleasePolicy {
    /// Default age cap of [`ReleasePolicy::cache_affine`]: half the
    /// default batching deadline, so the policy's starvation bound is
    /// strictly tighter than the deadline path it rides alongside.
    pub const DEFAULT_AGE_CAP: Ticks = 10_000;

    /// The cache-affine policy at the default age cap.
    pub fn cache_affine() -> Self {
        ReleasePolicy::CacheAffine {
            age_cap: ReleasePolicy::DEFAULT_AGE_CAP,
        }
    }

    /// Stable label for reports (`"oldest-first"` / `"cache-affine"`).
    pub fn label(&self) -> &'static str {
        match self {
            ReleasePolicy::OldestFirst => "oldest-first",
            ReleasePolicy::CacheAffine { .. } => "cache-affine",
        }
    }
}

/// A fired batch: a run of batch-compatible requests released for
/// execution together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    /// The shared compilation profile.
    pub spec: QuerySpec,
    /// The batched requests, in admission order.
    pub requests: Vec<QueryRequest>,
}

impl QueryBatch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival of the batch's oldest member.
    pub fn oldest_arrival(&self) -> Ticks {
        self.requests.first().map_or(0, |r| r.arrival)
    }

    /// The batch's telemetry group key: the architecture name of the
    /// spec the batcher grouped these requests under (specs are the
    /// grouping key, so the name identifies the group uniquely).
    pub fn group_key(&self) -> String {
        self.spec.arch.to_string()
    }

    /// Id of the batch's oldest member (0 for an empty batch) — the
    /// request id batch-level telemetry spans anchor on.
    pub fn lead_id(&self) -> u64 {
        self.requests.first().map_or(0, |r| r.id)
    }
}

/// The deadline-aware batcher: one pending group per in-flight spec.
///
/// * [`push`](DeadlineBatcher::push) admits a request and fires its
///   group the instant it reaches `batch_limit`;
/// * [`next_deadline`](DeadlineBatcher::next_deadline) is the earliest
///   instant at which some group must fire for its oldest member to stay
///   within the slack — the pipeline's next scheduled event;
/// * [`fire_due`](DeadlineBatcher::fire_due) releases every group whose
///   deadline has passed;
/// * [`flush`](DeadlineBatcher::flush) releases everything (closed-loop
///   drain).
#[derive(Debug, Clone)]
pub struct DeadlineBatcher {
    batch_limit: usize,
    deadline: Ticks,
    /// Pending groups in first-arrival order of their current members.
    groups: Vec<(QuerySpec, Vec<QueryRequest>)>,
}

impl DeadlineBatcher {
    /// A batcher firing at `batch_limit` requests or `deadline` ticks of
    /// oldest-member slack, whichever is exhausted first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_limit == 0`.
    pub fn new(batch_limit: usize, deadline: Ticks) -> Self {
        assert!(batch_limit > 0, "batch limit must be positive");
        DeadlineBatcher {
            batch_limit,
            deadline,
            groups: Vec::new(),
        }
    }

    /// Pending (admitted, not yet fired) requests.
    pub fn pending(&self) -> usize {
        self.groups.iter().map(|(_, members)| members.len()).sum()
    }

    /// Admits one request; returns the request's batch if this admission
    /// filled its group to the batch limit.
    pub fn push(&mut self, request: QueryRequest) -> Option<QueryBatch> {
        let pos = match self
            .groups
            .iter_mut()
            .position(|(spec, _)| *spec == request.spec)
        {
            Some(pos) => {
                self.groups[pos].1.push(request);
                pos
            }
            None => {
                self.groups.push((request.spec, vec![request]));
                self.groups.len() - 1
            }
        };
        if self.groups[pos].1.len() >= self.batch_limit {
            let (spec, requests) = self.groups.remove(pos);
            return Some(QueryBatch { spec, requests });
        }
        None
    }

    /// The earliest instant a pending group's oldest member exhausts its
    /// slack (`None` when nothing is pending). Saturating: a slack of
    /// [`Ticks::MAX`] means "never fire on deadline" regardless of
    /// arrival time.
    pub fn next_deadline(&self) -> Option<Ticks> {
        self.groups
            .iter()
            .map(|(_, members)| members[0].arrival.saturating_add(self.deadline))
            .min()
    }

    /// Fires every group whose deadline is at or before `now`, in
    /// first-arrival order.
    pub fn fire_due(&mut self, now: Ticks) -> Vec<QueryBatch> {
        let mut fired = Vec::new();
        let mut kept = Vec::new();
        for (spec, members) in self.groups.drain(..) {
            if members[0].arrival.saturating_add(self.deadline) <= now {
                fired.push(QueryBatch {
                    spec,
                    requests: members,
                });
            } else {
                kept.push((spec, members));
            }
        }
        self.groups = kept;
        fired
    }

    /// Fires the single pending group whose current members arrived
    /// first, regardless of deadline (`None` when nothing is pending) —
    /// the **work-conserving** path: when the modeled device has a free
    /// execution unit, waiting out a deadline buys no amortization, so
    /// the service releases the oldest pending work immediately.
    pub fn fire_oldest(&mut self) -> Option<QueryBatch> {
        self.fire_nth(0)
    }

    /// Fires the pending group at `index` in first-arrival order
    /// (`None` when out of range) — the policy-driven release path:
    /// a [`ReleasePolicy`] picks the index, this method releases it.
    pub fn fire_nth(&mut self, index: usize) -> Option<QueryBatch> {
        if index >= self.groups.len() {
            return None;
        }
        let (spec, requests) = self.groups.remove(index);
        Some(QueryBatch { spec, requests })
    }

    /// `(spec, oldest member arrival)` of every pending group, in
    /// first-arrival order — the read-only view a [`ReleasePolicy`]
    /// selects over.
    pub fn group_heads(&self) -> Vec<(QuerySpec, Ticks)> {
        self.groups
            .iter()
            .map(|(spec, members)| (*spec, members[0].arrival))
            .collect()
    }

    /// Fires every pending group regardless of deadline, in
    /// first-arrival order (the closed-loop drain path).
    pub fn flush(&mut self) -> Vec<QueryBatch> {
        self.groups
            .drain(..)
            .map(|(spec, requests)| QueryBatch { spec, requests })
            .collect()
    }
}

/// Groups a whole queue into spec-compatible batches of at most
/// `batch_limit` requests, as if every request arrived at once and the
/// batcher was flushed — the closed-loop plan, kept as a pure function
/// for tests and one-shot callers.
///
/// Specs are emitted in the order their groups fill or flush; a spec
/// with more than `batch_limit` queued requests yields several batches.
///
/// # Panics
///
/// Panics if `batch_limit == 0`.
pub fn plan_batches(queue: &[QueryRequest], batch_limit: usize) -> Vec<QueryBatch> {
    let mut batcher = DeadlineBatcher::new(batch_limit, Ticks::MAX);
    let mut batches: Vec<QueryBatch> = queue
        .iter()
        .filter_map(|&request| batcher.push(request))
        .collect();
    batches.extend(batcher.flush());
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, spec: QuerySpec) -> QueryRequest {
        at(id, spec, 0)
    }

    fn at(id: u64, spec: QuerySpec, arrival: Ticks) -> QueryRequest {
        QueryRequest {
            id,
            address: id % (1 << spec.address_width()) as u64,
            spec,
            arrival,
            tenant: crate::TenantId::default(),
            slo: crate::SloClass::default(),
        }
    }

    #[test]
    fn groups_by_spec_in_first_arrival_order() {
        let a = QuerySpec::new(0, 2);
        let b = QuerySpec::new(1, 1);
        let queue = vec![
            request(0, a),
            request(1, b),
            request(2, a),
            request(3, b),
            request(4, a),
        ];
        let batches = plan_batches(&queue, 16);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].spec, a);
        assert_eq!(batches[1].spec, b);
        // Admission order within a spec.
        assert_eq!(
            batches[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(
            batches[1].requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn batch_limit_splits_large_groups() {
        let spec = QuerySpec::new(0, 2);
        let queue: Vec<_> = (0..10).map(|i| request(i, spec)).collect();
        let batches = plan_batches(&queue, 4);
        assert_eq!(
            batches.iter().map(QueryBatch::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert!(batches.iter().all(|b| b.spec == spec && !b.is_empty()));
    }

    #[test]
    fn empty_queue_plans_no_batches() {
        assert!(plan_batches(&[], 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch limit must be positive")]
    fn zero_batch_limit_is_rejected() {
        let _ = plan_batches(&[], 0);
    }

    #[test]
    fn batch_limit_one_fires_every_push() {
        // The degenerate no-batching configuration: a fresh group must
        // fire immediately, not linger until its deadline.
        let spec = QuerySpec::new(0, 2);
        let mut batcher = DeadlineBatcher::new(1, 1_000);
        for id in 0..3 {
            let fired = batcher.push(request(id, spec)).expect("fires at once");
            assert_eq!(fired.len(), 1);
            assert_eq!(batcher.pending(), 0);
        }
    }

    #[test]
    fn push_fires_exactly_at_the_limit() {
        let spec = QuerySpec::new(0, 2);
        let mut batcher = DeadlineBatcher::new(3, 1_000);
        assert!(batcher.push(request(0, spec)).is_none());
        assert!(batcher.push(request(1, spec)).is_none());
        let fired = batcher.push(request(2, spec)).expect("fires at limit");
        assert_eq!(fired.len(), 3);
        assert_eq!(batcher.pending(), 0);
        // The group resets: the next request starts a fresh one.
        assert!(batcher.push(request(3, spec)).is_none());
        assert_eq!(batcher.pending(), 1);
    }

    #[test]
    fn deadline_is_the_oldest_members_slack() {
        let a = QuerySpec::new(0, 2);
        let b = QuerySpec::new(1, 1);
        let mut batcher = DeadlineBatcher::new(16, 100);
        assert_eq!(batcher.next_deadline(), None);
        batcher.push(at(0, a, 40));
        batcher.push(at(1, b, 10));
        batcher.push(at(2, a, 90)); // does not move a's deadline
        assert_eq!(batcher.next_deadline(), Some(110));

        // At t = 109 nothing is due; at t = 110 only b fires.
        assert!(batcher.fire_due(109).is_empty());
        let fired = batcher.fire_due(110);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].spec, b);
        assert_eq!(fired[0].oldest_arrival(), 10);
        // a remains pending with its own deadline.
        assert_eq!(batcher.next_deadline(), Some(140));
        assert_eq!(batcher.pending(), 2);

        let rest = batcher.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].requests.len(), 2);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn fire_oldest_releases_groups_in_first_arrival_order() {
        let a = QuerySpec::new(0, 2);
        let b = QuerySpec::new(1, 1);
        let mut batcher = DeadlineBatcher::new(16, 1_000);
        assert!(batcher.fire_oldest().is_none());
        batcher.push(at(0, a, 5));
        batcher.push(at(1, b, 7));
        batcher.push(at(2, a, 9));
        let first = batcher.fire_oldest().expect("a pends");
        assert_eq!(first.spec, a);
        assert_eq!(first.len(), 2);
        let second = batcher.fire_oldest().expect("b pends");
        assert_eq!(second.spec, b);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn fire_nth_releases_an_arbitrary_group_and_keeps_order() {
        let a = QuerySpec::new(0, 2);
        let b = QuerySpec::new(1, 1);
        let c = QuerySpec::new(2, 1);
        let mut batcher = DeadlineBatcher::new(16, 1_000);
        batcher.push(at(0, a, 5));
        batcher.push(at(1, b, 7));
        batcher.push(at(2, c, 9));
        batcher.push(at(3, b, 11));
        assert_eq!(
            batcher.group_heads(),
            vec![(a, 5), (b, 7), (c, 9)],
            "heads carry the oldest member's arrival in first-arrival order"
        );
        // Fire the middle group; the survivors keep their order.
        let fired = batcher.fire_nth(1).expect("b pends");
        assert_eq!(fired.spec, b);
        assert_eq!(fired.len(), 2);
        assert_eq!(batcher.group_heads(), vec![(a, 5), (c, 9)]);
        assert!(batcher.fire_nth(2).is_none(), "out of range");
        assert_eq!(batcher.fire_oldest().expect("a pends").spec, a);
    }

    #[test]
    fn release_policy_labels_and_default() {
        assert_eq!(ReleasePolicy::default(), ReleasePolicy::OldestFirst);
        assert_eq!(ReleasePolicy::OldestFirst.label(), "oldest-first");
        assert_eq!(ReleasePolicy::cache_affine().label(), "cache-affine");
        assert_eq!(
            ReleasePolicy::cache_affine(),
            ReleasePolicy::CacheAffine {
                age_cap: ReleasePolicy::DEFAULT_AGE_CAP
            }
        );
    }

    #[test]
    fn max_slack_disables_deadline_firing_without_overflow() {
        // Ticks::MAX is the "fire on batch limit only" sentinel (used
        // by plan_batches); it must saturate, not wrap, for nonzero
        // arrival times.
        let spec = QuerySpec::new(0, 2);
        let mut batcher = DeadlineBatcher::new(4, Ticks::MAX);
        batcher.push(at(0, spec, 1_000));
        assert_eq!(batcher.next_deadline(), Some(Ticks::MAX));
        assert!(batcher.fire_due(Ticks::MAX - 1).is_empty());
        assert_eq!(batcher.pending(), 1);
    }
}
