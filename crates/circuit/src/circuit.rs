//! The [`Circuit`] container: an ordered list of gates over a fixed qubit
//! count, with validation, census and inversion utilities.

use std::collections::BTreeMap;

use crate::schedule::Schedule;
use crate::{CircuitError, Gate, Qubit};

/// An ordered quantum circuit over `num_qubits` qubits.
///
/// Gates execute in push order; depth is derived by [`Circuit::schedule`].
/// All gates in the QRAM family are self-inverse, so [`Circuit::inverted`]
/// (gates replayed in reverse) is the exact uncomputation of the circuit —
/// the property Algorithm 1 of the paper relies on for its uncompute stages.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// let mut c = Circuit::new(2);
/// c.push(Gate::x(Qubit(0)));
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// let inv = c.inverted();
/// assert_eq!(inv.gates()[0], Gate::cx(Qubit(0), Qubit(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with gate-list capacity reserved.
    pub fn with_capacity(num_qubits: usize, capacity: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::with_capacity(capacity),
        }
    }

    /// Number of qubits the circuit acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the gate references qubits outside the
    /// circuit or repeats a qubit; use [`Circuit::try_push`] for validated
    /// insertion in release builds.
    pub fn push(&mut self, gate: Gate) {
        debug_assert!(self.validate_gate(&gate).is_ok(), "invalid gate: {gate}");
        self.gates.push(gate);
    }

    /// Appends a gate after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the gate touches a qubit
    /// beyond `num_qubits`, or [`CircuitError::DuplicateQubit`] if the gate
    /// repeats a qubit.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        self.validate_gate(&gate)?;
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a scheduling barrier (see [`Gate::Barrier`]).
    pub fn barrier(&mut self) {
        self.gates.push(Gate::Barrier);
    }

    /// Appends all gates of `other` (which must act on a compatible qubit
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit has.
    pub fn extend(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.gates.extend(other.gates.iter().cloned());
    }

    /// The gates in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates, excluding barriers.
    pub fn len(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_barrier()).count()
    }

    /// Whether the circuit contains no physical gates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over physical gates (barriers skipped).
    pub fn iter(&self) -> impl Iterator<Item = &Gate> {
        self.gates.iter().filter(|g| !g.is_barrier())
    }

    /// The exact inverse circuit: gates replayed in reverse order.
    ///
    /// Valid because every gate in the QRAM family is self-inverse.
    pub fn inverted(&self) -> Circuit {
        let gates = self.gates.iter().rev().cloned().collect();
        Circuit {
            num_qubits: self.num_qubits,
            gates,
        }
    }

    /// Greedy ASAP schedule of the circuit (see [`Schedule`]).
    pub fn schedule(&self) -> Schedule {
        Schedule::asap(self)
    }

    /// Census of gate mnemonics → counts (barriers excluded).
    pub fn gate_census(&self) -> BTreeMap<&'static str, usize> {
        let mut census = BTreeMap::new();
        for g in self.iter() {
            *census.entry(g.name()).or_insert(0) += 1;
        }
        census
    }

    /// Summary statistics (gate count, depth, census, ...).
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            num_qubits: self.num_qubits,
            num_gates: self.len(),
            depth: self.schedule().depth(),
            census: self
                .gate_census()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Validates every gate; returns the first error found.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::try_push`], applied to the whole list.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for g in &self.gates {
            self.validate_gate(g)?;
        }
        Ok(())
    }

    fn validate_gate(&self, gate: &Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        let mut sorted: Vec<Qubit> = qs.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(CircuitError::DuplicateQubit { qubit: w[0] });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

/// Summary statistics of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of physical gates.
    pub num_gates: usize,
    /// ASAP depth.
    pub depth: usize,
    /// Mnemonic → count census.
    pub census: BTreeMap<String, usize>,
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} qubits, {} gates, depth {}",
            self.num_qubits, self.num_gates, self.depth
        )?;
        for (name, count) in &self.census {
            write!(f, ", {name}×{count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_census() {
        let mut c = Circuit::new(3);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c.barrier();
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        assert_eq!(c.len(), 4);
        let census = c.gate_census();
        assert_eq!(census["cx"], 2);
        assert_eq!(census["x"], 1);
        assert_eq!(census["ccx"], 1);
        assert!(!census.contains_key("barrier"));
    }

    #[test]
    fn inverted_reverses_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::swap(Qubit(0), Qubit(1)));
        let inv = c.inverted();
        assert_eq!(inv.gates()[0], Gate::swap(Qubit(0), Qubit(1)));
        assert_eq!(inv.gates()[1], Gate::x(Qubit(0)));
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::x(Qubit(5))).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn try_push_rejects_duplicate_qubits() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::cx(Qubit(1), Qubit(1))).unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateQubit { .. }));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::x(Qubit(0)));
        let mut b = Circuit::new(2);
        b.push(Gate::x(Qubit(1)));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_rejects_wider_circuit() {
        let mut a = Circuit::new(1);
        let b = Circuit::new(2);
        a.extend(&b);
    }

    #[test]
    fn stats_display_nonempty() {
        let mut c = Circuit::new(1);
        c.push(Gate::x(Qubit(0)));
        let s = c.stats().to_string();
        assert!(s.contains("1 qubits"));
        assert!(s.contains("x×1"));
    }

    #[test]
    fn validate_whole_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        assert!(c.validate().is_ok());
    }
}
