//! Greedy as-soon-as-possible (ASAP) scheduling of circuits into layers.
//!
//! Depth accounting is central to the paper's claims: pipelined address
//! loading is `O(m)` deep while the naive schedule is `O(m²)` (Sec. 3.2.3),
//! and the select-swap baseline pays a quadratic depth penalty because its
//! swap network cannot pipeline (Sec. 7.1). The ASAP scheduler extracts
//! exactly this parallelism: two gates share a layer iff their qubit
//! supports are disjoint and no earlier gate forces an ordering.
//!
//! [`Gate::Barrier`] forces all subsequent gates into strictly later layers,
//! which is how generators model deliberately *unpipelined* circuits.

use crate::{Circuit, Gate};

/// The result of ASAP-scheduling a circuit: an assignment of every physical
/// gate to a layer (a.k.a. moment), where all gates in a layer act on
/// disjoint qubits.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// let mut c = Circuit::new(4);
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// c.push(Gate::cx(Qubit(2), Qubit(3))); // disjoint — same layer
/// c.push(Gate::cx(Qubit(1), Qubit(2))); // overlaps both — next layer
/// let s = c.schedule();
/// assert_eq!(s.depth(), 2);
/// assert_eq!(s.layers()[0].len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    layers: Vec<Vec<Gate>>,
    num_qubits: usize,
}

impl Schedule {
    /// Schedules `circuit` greedily: each gate lands in the earliest layer
    /// after every other gate that shares one of its qubits (and after any
    /// barrier seen so far).
    pub fn asap(circuit: &Circuit) -> Schedule {
        let num_qubits = circuit.num_qubits();
        // busy[q] = first layer index at which qubit q is free.
        let mut busy: Vec<usize> = vec![0; num_qubits];
        let mut floor = 0usize; // barrier floor
        let mut layers: Vec<Vec<Gate>> = Vec::new();

        for gate in circuit.gates() {
            if gate.is_barrier() {
                floor = layers.len();
                continue;
            }
            let qs = gate.qubits();
            let layer = qs
                .iter()
                .map(|q| busy[q.index()])
                .max()
                .unwrap_or(floor)
                .max(floor);
            if layer >= layers.len() {
                layers.resize_with(layer + 1, Vec::new);
            }
            layers[layer].push(gate.clone());
            for q in qs {
                busy[q.index()] = layer + 1;
            }
        }
        Schedule { layers, num_qubits }
    }

    /// Number of layers — the circuit depth.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layers, in execution order; each layer's gates act on disjoint
    /// qubits.
    pub fn layers(&self) -> &[Vec<Gate>] {
        &self.layers
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of scheduled gates.
    pub fn num_gates(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// The widest layer (maximum gate-level parallelism).
    pub fn max_parallelism(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Verifies the disjoint-support invariant of every layer.
    /// Used by tests and debug assertions.
    pub fn is_valid(&self) -> bool {
        for layer in &self.layers {
            let mut seen = vec![false; self.num_qubits];
            for gate in layer {
                for q in gate.qubits() {
                    if seen[q.index()] {
                        return false;
                    }
                    seen[q.index()] = true;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qubit;

    #[test]
    fn disjoint_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::x(Qubit(1)));
        c.push(Gate::x(Qubit(2)));
        c.push(Gate::x(Qubit(3)));
        let s = c.schedule();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.max_parallelism(), 4);
        assert!(s.is_valid());
    }

    #[test]
    fn chained_gates_serialize() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c.push(Gate::cx(Qubit(2), Qubit(0)));
        let s = c.schedule();
        assert_eq!(s.depth(), 3);
        assert!(s.is_valid());
    }

    #[test]
    fn barrier_forces_new_layer() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(Qubit(0)));
        c.barrier();
        c.push(Gate::x(Qubit(1))); // disjoint, but barrier splits layers
        let s = c.schedule();
        assert_eq!(s.depth(), 2);

        let mut c2 = Circuit::new(2);
        c2.push(Gate::x(Qubit(0)));
        c2.push(Gate::x(Qubit(1)));
        assert_eq!(c2.schedule().depth(), 1);
    }

    #[test]
    fn pipelining_pattern_depth_is_linear() {
        // Model of pipelined address loading: m "balls" each descending m
        // levels of a ladder of qubits, launched one step apart. With ASAP
        // scheduling the total depth is O(m), not O(m²).
        let m = 8usize;
        // ladder qubits 0..=m; ball i occupies rung j via swap(j, j+1).
        let mut c = Circuit::new(m + 1);
        for _ball in 0..m {
            for rung in 0..m {
                c.push(Gate::swap(Qubit(rung as u32), Qubit(rung as u32 + 1)));
            }
        }
        let s = c.schedule();
        // Swaps on rung pairs (j, j+1) conflict with neighbors, so the
        // pipeline advances every 2 layers: depth ≈ 2m + (m-1) ≪ m².
        assert!(s.depth() < m * m, "depth {} not sub-quadratic", s.depth());
        assert!(s.depth() >= 2 * m - 1);
        assert!(s.is_valid());
    }

    #[test]
    fn empty_circuit_depth_zero() {
        let c = Circuit::new(3);
        assert_eq!(c.schedule().depth(), 0);
        assert_eq!(c.schedule().num_gates(), 0);
    }

    #[test]
    fn num_gates_matches_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        c.barrier();
        c.push(Gate::x(Qubit(0)));
        assert_eq!(c.schedule().num_gates(), 2);
    }
}
