//! Clifford+T resource estimation (Table 1 / Table 2 substrate).
//!
//! The paper compares QRAM architectures by qubit count, circuit depth,
//! T count, T depth and Clifford depth (Sec. 7.1). This module prices each
//! high-level gate with the standard fault-tolerant decompositions:
//!
//! * `CCX` (Toffoli): T-count 7, T-depth 3 (Amy–Maslov–Mosca matroid
//!   partitioning), Clifford+T depth 10.
//! * `CSWAP` (Fredkin): `CX · CCX · CX`, depth 12, T-depth 3, T-count 7 —
//!   the constants quoted in Sec. 2.2.1 of the paper.
//! * `MCX` with `c ≥ 3` controls: V-chain over `c − 2` clean ancillae,
//!   `2c − 3` Toffolis.
//! * Everything else (Pauli, `H`, `CX`, `SWAP`, classically-controlled
//!   gates) is Clifford with zero T cost.
//!
//! Depth-like quantities are computed as *weighted critical paths* over the
//! qubit-conflict DAG (the same recurrence as ASAP scheduling, with each
//! gate contributing its decomposition depth instead of 1). The
//! [`crate::decompose`] module provides an exact lowering that tests use to
//! validate these closed-form weights.

use std::collections::BTreeMap;

use crate::{Circuit, Gate};

/// Fault-tolerant price of a single gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCost {
    /// Number of T/T† gates in the decomposition.
    pub t_count: usize,
    /// T-layer depth of the decomposition.
    pub t_depth: usize,
    /// Total Clifford+T depth of the decomposition.
    pub full_depth: usize,
    /// Clifford-only layer depth (`full_depth − t_depth`).
    pub clifford_depth: usize,
    /// Clean ancillae demanded by the decomposition.
    pub ancillas: usize,
}

/// Prices `gate` under the decompositions listed in the module docs.
pub fn cost_of(gate: &Gate) -> GateCost {
    fn clifford(depth: usize) -> GateCost {
        GateCost {
            t_count: 0,
            t_depth: 0,
            full_depth: depth,
            clifford_depth: depth,
            ancillas: 0,
        }
    }
    match gate {
        Gate::Barrier => GateCost::default(),
        Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::H(_) | Gate::ClX(_) => clifford(1),
        Gate::Cx { .. } | Gate::ClCx { .. } => clifford(1),
        // SWAP = 3 CX.
        Gate::Swap(..) | Gate::ClSwap(..) => clifford(3),
        Gate::Ccx { .. } => GateCost {
            t_count: 7,
            t_depth: 3,
            full_depth: 10,
            clifford_depth: 7,
            ancillas: 0,
        },
        // CSWAP = CX · CCX · CX (depth 12, T-depth 3; paper Sec. 2.2.1).
        Gate::Cswap { .. } => GateCost {
            t_count: 7,
            t_depth: 3,
            full_depth: 12,
            clifford_depth: 9,
            ancillas: 0,
        },
        Gate::Mcx { controls, .. } => match controls.len() {
            0 => clifford(1),
            1 => clifford(1),
            2 => GateCost {
                t_count: 7,
                t_depth: 3,
                full_depth: 10,
                clifford_depth: 7,
                ancillas: 0,
            },
            c => {
                // V-chain: 2c−3 Toffolis over c−2 clean ancillae; compute
                // and uncompute halves serialize, so depths scale with the
                // Toffoli count.
                let toffolis = 2 * c - 3;
                GateCost {
                    t_count: 7 * toffolis,
                    t_depth: 3 * toffolis,
                    full_depth: 10 * toffolis,
                    clifford_depth: 7 * toffolis,
                    ancillas: c - 2,
                }
            }
        },
    }
}

/// Aggregate fault-tolerant resource count of a circuit.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// use qram_circuit::resources::ResourceCount;
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::cswap(Qubit(0), Qubit(1), Qubit(2)));
/// let r = ResourceCount::of(&c);
/// assert_eq!(r.t_count, 7);
/// assert_eq!(r.t_depth, 3);
/// assert_eq!(r.lowered_depth, 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceCount {
    /// Qubits of the circuit (ancillae demanded by MCX lowering are
    /// reported separately in [`ResourceCount::mcx_ancillas`]).
    pub num_qubits: usize,
    /// Physical gate count at QRAM-gate granularity.
    pub num_gates: usize,
    /// ASAP depth at QRAM-gate granularity (each gate = 1 layer).
    pub depth: usize,
    /// Total T/T† gates after lowering.
    pub t_count: usize,
    /// T-depth: weighted critical path with per-gate T-depth weights.
    pub t_depth: usize,
    /// Clifford depth: weighted critical path with per-gate Clifford-layer
    /// weights.
    pub clifford_depth: usize,
    /// Full Clifford+T depth: weighted critical path with per-gate
    /// decomposition depth weights.
    pub lowered_depth: usize,
    /// Number of classically-controlled gates (`ClX`/`ClSwap`) — Table 1's
    /// last row.
    pub classically_controlled: usize,
    /// Maximum clean-ancilla demand of any single MCX in the circuit.
    pub mcx_ancillas: usize,
    /// Gate census by mnemonic.
    pub census: BTreeMap<&'static str, usize>,
}

impl ResourceCount {
    /// Prices `circuit` (see module docs for the cost model).
    pub fn of(circuit: &Circuit) -> ResourceCount {
        let n = circuit.num_qubits();
        // Weighted critical paths, one per metric, sharing a single pass.
        let mut busy_unit = vec![0usize; n];
        let mut busy_t = vec![0usize; n];
        let mut busy_cliff = vec![0usize; n];
        let mut busy_full = vec![0usize; n];
        let (mut floor_unit, mut floor_t, mut floor_cliff, mut floor_full) = (0, 0, 0, 0);

        let mut t_count = 0usize;
        let mut classically_controlled = 0usize;
        let mut mcx_ancillas = 0usize;
        let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut num_gates = 0usize;

        let path = |busy: &mut [usize], floor: usize, qs: &[crate::Qubit], w: usize| -> usize {
            let start = qs
                .iter()
                .map(|q| busy[q.index()])
                .max()
                .unwrap_or(floor)
                .max(floor);
            let end = start + w;
            for q in qs {
                busy[q.index()] = end;
            }
            end
        };

        for gate in circuit.gates() {
            if gate.is_barrier() {
                floor_unit = busy_unit
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(floor_unit)
                    .max(floor_unit);
                floor_t = busy_t.iter().copied().max().unwrap_or(floor_t).max(floor_t);
                floor_cliff = busy_cliff
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(floor_cliff)
                    .max(floor_cliff);
                floor_full = busy_full
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(floor_full)
                    .max(floor_full);
                continue;
            }
            let cost = cost_of(gate);
            let qs = gate.qubits();
            num_gates += 1;
            t_count += cost.t_count;
            if gate.is_classically_controlled() {
                classically_controlled += 1;
            }
            mcx_ancillas = mcx_ancillas.max(cost.ancillas);
            *census.entry(gate.name()).or_insert(0) += 1;

            path(&mut busy_unit, floor_unit, &qs, 1);
            path(&mut busy_t, floor_t, &qs, cost.t_depth);
            path(&mut busy_cliff, floor_cliff, &qs, cost.clifford_depth);
            path(&mut busy_full, floor_full, &qs, cost.full_depth);
        }

        ResourceCount {
            num_qubits: n,
            num_gates,
            depth: busy_unit
                .into_iter()
                .max()
                .unwrap_or(floor_unit)
                .max(floor_unit),
            t_count,
            t_depth: busy_t.into_iter().max().unwrap_or(floor_t).max(floor_t),
            clifford_depth: busy_cliff
                .into_iter()
                .max()
                .unwrap_or(floor_cliff)
                .max(floor_cliff),
            lowered_depth: busy_full
                .into_iter()
                .max()
                .unwrap_or(floor_full)
                .max(floor_full),
            classically_controlled,
            mcx_ancillas,
            census,
        }
    }
}

impl std::fmt::Display for ResourceCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qubits={} gates={} depth={} T-count={} T-depth={} Clifford-depth={} cl-ctrl={}",
            self.num_qubits,
            self.num_gates,
            self.depth,
            self.t_count,
            self.t_depth,
            self.clifford_depth,
            self.classically_controlled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qubit;

    #[test]
    fn clifford_gates_cost_no_t() {
        for g in [
            Gate::x(Qubit(0)),
            Gate::cx(Qubit(0), Qubit(1)),
            Gate::swap(Qubit(0), Qubit(1)),
            Gate::ClX(Qubit(0)),
        ] {
            let c = cost_of(&g);
            assert_eq!(c.t_count, 0, "{g}");
            assert_eq!(c.t_depth, 0, "{g}");
        }
    }

    #[test]
    fn toffoli_and_fredkin_match_paper_constants() {
        let ccx = cost_of(&Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        assert_eq!((ccx.t_count, ccx.t_depth), (7, 3));
        let cswap = cost_of(&Gate::cswap(Qubit(0), Qubit(1), Qubit(2)));
        assert_eq!((cswap.t_count, cswap.t_depth, cswap.full_depth), (7, 3, 12));
    }

    #[test]
    fn mcx_scales_linearly_in_controls() {
        let qs: Vec<Qubit> = (0..6).map(Qubit).collect();
        let g = Gate::mcx(qs.clone(), Qubit(6));
        let c = cost_of(&g);
        // 6 controls → 2·6−3 = 9 Toffolis.
        assert_eq!(c.t_count, 63);
        assert_eq!(c.ancillas, 4);
        let small = Gate::mcx([Qubit(0)], Qubit(1));
        assert_eq!(cost_of(&small).t_count, 0); // 1 control = CX
    }

    #[test]
    fn t_depth_uses_critical_path_not_sum() {
        // Two Toffolis on disjoint qubits: T-depth 3, not 6.
        let mut c = Circuit::new(6);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        c.push(Gate::ccx(Qubit(3), Qubit(4), Qubit(5)));
        let r = ResourceCount::of(&c);
        assert_eq!(r.t_depth, 3);
        assert_eq!(r.t_count, 14);
        assert_eq!(r.depth, 1);

        // Chained on shared qubits: depths add.
        let mut c2 = Circuit::new(4);
        c2.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        c2.push(Gate::ccx(Qubit(1), Qubit(2), Qubit(3)));
        let r2 = ResourceCount::of(&c2);
        assert_eq!(r2.t_depth, 6);
        assert_eq!(r2.depth, 2);
    }

    #[test]
    fn classically_controlled_census() {
        let mut c = Circuit::new(2);
        c.push(Gate::ClX(Qubit(0)));
        c.push(Gate::ClSwap(Qubit(0), Qubit(1)));
        c.push(Gate::x(Qubit(0)));
        let r = ResourceCount::of(&c);
        assert_eq!(r.classically_controlled, 2);
        assert_eq!(r.census["clx"], 1);
        assert_eq!(r.census["clswap"], 1);
    }

    #[test]
    fn barrier_advances_all_floors() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(Qubit(0)));
        c.barrier();
        c.push(Gate::x(Qubit(1)));
        let r = ResourceCount::of(&c);
        // Disjoint qubits, but the barrier forces serialization.
        assert_eq!(r.depth, 2);
        assert_eq!(r.lowered_depth, 2);
    }

    #[test]
    fn display_mentions_all_metrics() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        let s = ResourceCount::of(&c).to_string();
        assert!(s.contains("T-count=7"));
        assert!(s.contains("T-depth=3"));
    }
}
