//! Quantum circuit intermediate representation for QRAM architectures.
//!
//! This crate is the substrate every other crate in the workspace builds on.
//! It deliberately restricts its gate set to the family used by quantum
//! random access memory (QRAM) circuits — classical reversible gates
//! (`X`, `CX`, `CCX`, `MCX`, `SWAP`, `CSWAP`), Pauli gates, and
//! classically-controlled gates — because that restriction is what makes
//! QRAM circuits efficiently simulable by the Feynman-path method
//! (see the `qram-sim` crate) and is the gate family of the MICRO '23 paper
//! *Systems Architecture for Quantum Random Access Memory*.
//!
//! The crate provides:
//!
//! * [`Qubit`], [`Register`] and [`QubitAllocator`] — structured qubit
//!   identity management.
//! * [`Gate`] and [`Control`] — the gate algebra, including negative
//!   ("0-controlled") controls.
//! * [`Circuit`] — an ordered gate list with a builder-style API.
//! * [`schedule::Schedule`] — greedy as-soon-as-possible layering used for
//!   depth accounting; barriers model *unpipelined* schedules so the
//!   paper's pipelining optimization (Sec. 3.2.3) can be toggled.
//! * [`resources::ResourceCount`] — gate census and Clifford+T cost model
//!   (T-count, T-depth, Clifford depth) via standard decompositions.
//! * [`decompose`] — lowering of multi-controlled gates to Clifford+T.
//!
//! # Example
//!
//! ```
//! use qram_circuit::{Circuit, Gate, Qubit};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::x(Qubit(0)));
//! c.push(Gate::cx(Qubit(0), Qubit(1)));
//! c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.schedule().depth(), 3); // serial chain on shared qubits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
mod qubit;

pub mod decompose;
pub mod resources;
pub mod schedule;

pub use circuit::{Circuit, CircuitStats};
pub use gate::{Control, Gate};
pub use qubit::{Qubit, QubitAllocator, Register};

/// Errors produced when constructing or validating circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references a qubit index not allocated in the circuit.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A gate uses the same qubit twice (e.g. `CX q0, q0`).
    DuplicateQubit {
        /// The duplicated qubit.
        qubit: Qubit,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {} out of range for circuit with {} qubits",
                qubit.index(),
                num_qubits
            ),
            CircuitError::DuplicateQubit { qubit } => {
                write!(
                    f,
                    "qubit {} used more than once in a single gate",
                    qubit.index()
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}
