//! The QRAM gate algebra.

use crate::Qubit;

/// A (possibly negated) quantum control.
///
/// `value = true` is an ordinary control (the gate fires when the control
/// qubit is |1⟩); `value = false` is a "0-control" (fires on |0⟩), drawn as
/// an open circle in circuit diagrams. The paper's background section calls
/// the latter a `0-CX` gate.
///
/// ```
/// use qram_circuit::{Control, Qubit};
/// let c = Control::on(Qubit(2));
/// assert!(c.value);
/// let n = Control::off(Qubit(2));
/// assert!(!n.value);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: Qubit,
    /// Required control state: `true` fires on |1⟩, `false` on |0⟩.
    pub value: bool,
}

impl Control {
    /// An ordinary (|1⟩-firing) control on `qubit`.
    pub fn on(qubit: Qubit) -> Self {
        Control { qubit, value: true }
    }

    /// A negated (|0⟩-firing) control on `qubit`.
    pub fn off(qubit: Qubit) -> Self {
        Control {
            qubit,
            value: false,
        }
    }
}

/// A gate from the QRAM gate family.
///
/// All gates in this family map computational basis states to computational
/// basis states (up to phase for `Y`/`Z`), which is the property that makes
/// Feynman-path simulation of QRAM circuits efficient (paper Sec. 6.2).
/// `H` is included only for teleportation bookkeeping in the layout crate
/// and is rejected by the path simulator.
///
/// Every gate in the family is self-inverse, so a circuit is uncomputed by
/// replaying its gates in reverse order (see [`crate::Circuit::inverted`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Pauli X (bit flip).
    X(Qubit),
    /// Pauli Y (bit flip and phase flip, `Y = iXZ`).
    Y(Qubit),
    /// Pauli Z (phase flip).
    Z(Qubit),
    /// Hadamard. Only used for teleportation cost accounting; not simulable
    /// by the path simulator.
    H(Qubit),
    /// Controlled X with one (possibly negated) control.
    Cx {
        /// The control.
        control: Control,
        /// The target qubit.
        target: Qubit,
    },
    /// Toffoli (doubly-controlled X) with possibly negated controls.
    Ccx {
        /// The two controls.
        controls: [Control; 2],
        /// The target qubit.
        target: Qubit,
    },
    /// Multi-controlled X with an arbitrary number of controls.
    ///
    /// `Mcx` with zero controls acts as a plain `X`; with one or two
    /// controls it is equivalent to `Cx`/`Ccx` (kept distinct so that
    /// generators can express the paper's MCX unit explicitly).
    Mcx {
        /// The controls (any mix of polarities).
        controls: Vec<Control>,
        /// The target qubit.
        target: Qubit,
    },
    /// Unconditional SWAP of two qubits.
    Swap(Qubit, Qubit),
    /// Controlled SWAP (Fredkin) — the quantum-router workhorse.
    Cswap {
        /// The control.
        control: Control,
        /// First swapped qubit.
        a: Qubit,
        /// Second swapped qubit.
        b: Qubit,
    },
    /// Classically-controlled X: an `X` that is emitted because a classical
    /// memory bit is 1. Tagged distinctly so resource counting can report
    /// the paper's "classically controlled gates" row (Table 1). Gates whose
    /// classical bit is 0 are simply not emitted.
    ClX(Qubit),
    /// Classically-controlled CX — the paper's `Classical-CX[xᵢ, ·]` data
    /// write (Algorithm 1): a quantum CX (typically from a leaf flag onto a
    /// data rail) that is emitted only when the classical memory bit is 1.
    ClCx {
        /// The quantum control (a flag/presence qubit).
        control: Control,
        /// The target qubit.
        target: Qubit,
    },
    /// Classically-controlled SWAP on a dual-rail data node (Fig. 5d).
    ClSwap(Qubit, Qubit),
    /// Scheduling barrier: forces every gate after it into a later layer.
    /// Used to model *unpipelined* address loading (pipelining off,
    /// Sec. 3.2.3). Occupies no qubits and costs no gates.
    Barrier,
}

impl Gate {
    /// Convenience constructor: Pauli X.
    pub fn x(q: Qubit) -> Self {
        Gate::X(q)
    }

    /// Convenience constructor: Pauli Y.
    pub fn y(q: Qubit) -> Self {
        Gate::Y(q)
    }

    /// Convenience constructor: Pauli Z.
    pub fn z(q: Qubit) -> Self {
        Gate::Z(q)
    }

    /// Convenience constructor: CX with an ordinary control.
    pub fn cx(control: Qubit, target: Qubit) -> Self {
        Gate::Cx {
            control: Control::on(control),
            target,
        }
    }

    /// Convenience constructor: CX firing when the control is |0⟩ ("0-CX").
    pub fn cx0(control: Qubit, target: Qubit) -> Self {
        Gate::Cx {
            control: Control::off(control),
            target,
        }
    }

    /// Convenience constructor: Toffoli with ordinary controls.
    pub fn ccx(c1: Qubit, c2: Qubit, target: Qubit) -> Self {
        Gate::Ccx {
            controls: [Control::on(c1), Control::on(c2)],
            target,
        }
    }

    /// Convenience constructor: MCX with ordinary controls.
    pub fn mcx(controls: impl IntoIterator<Item = Qubit>, target: Qubit) -> Self {
        Gate::Mcx {
            controls: controls.into_iter().map(Control::on).collect(),
            target,
        }
    }

    /// Convenience constructor: MCX whose control pattern is the binary
    /// expansion of `pattern` over `controls` (most significant bit first).
    /// This is the paper's "one MCX per memory address" SQC unit: the gate
    /// fires exactly when the control register holds `pattern`.
    pub fn mcx_pattern(controls: &[Qubit], pattern: u64, target: Qubit) -> Self {
        let n = controls.len();
        let controls = controls
            .iter()
            .enumerate()
            .map(|(i, &q)| Control {
                qubit: q,
                value: (pattern >> (n - 1 - i)) & 1 == 1,
            })
            .collect();
        Gate::Mcx { controls, target }
    }

    /// Convenience constructor: SWAP.
    pub fn swap(a: Qubit, b: Qubit) -> Self {
        Gate::Swap(a, b)
    }

    /// Convenience constructor: CSWAP with an ordinary control.
    pub fn cswap(control: Qubit, a: Qubit, b: Qubit) -> Self {
        Gate::Cswap {
            control: Control::on(control),
            a,
            b,
        }
    }

    /// Convenience constructor: CSWAP firing when the control is |0⟩.
    pub fn cswap0(control: Qubit, a: Qubit, b: Qubit) -> Self {
        Gate::Cswap {
            control: Control::off(control),
            a,
            b,
        }
    }

    /// Convenience constructor: classically-controlled CX (the data-write
    /// gate of Algorithm 1, emitted only when the classical bit is 1).
    pub fn clcx(control: Qubit, target: Qubit) -> Self {
        Gate::ClCx {
            control: Control::on(control),
            target,
        }
    }

    /// Every qubit the gate touches (controls first, then targets).
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Gate::X(q) | Gate::Y(q) | Gate::Z(q) | Gate::H(q) | Gate::ClX(q) => vec![*q],
            Gate::Cx { control, target } | Gate::ClCx { control, target } => {
                vec![control.qubit, *target]
            }
            Gate::Ccx { controls, target } => {
                vec![controls[0].qubit, controls[1].qubit, *target]
            }
            Gate::Mcx { controls, target } => {
                let mut qs: Vec<Qubit> = controls.iter().map(|c| c.qubit).collect();
                qs.push(*target);
                qs
            }
            Gate::Swap(a, b) | Gate::ClSwap(a, b) => vec![*a, *b],
            Gate::Cswap { control, a, b } => vec![control.qubit, *a, *b],
            Gate::Barrier => Vec::new(),
        }
    }

    /// Number of qubits the gate touches.
    pub fn arity(&self) -> usize {
        match self {
            Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::H(_) | Gate::ClX(_) => 1,
            Gate::Cx { .. } | Gate::ClCx { .. } | Gate::Swap(..) | Gate::ClSwap(..) => 2,
            Gate::Ccx { .. } | Gate::Cswap { .. } => 3,
            Gate::Mcx { controls, .. } => controls.len() + 1,
            Gate::Barrier => 0,
        }
    }

    /// Whether this gate is tagged as classically controlled (paper Table 1
    /// counts these separately).
    pub fn is_classically_controlled(&self) -> bool {
        matches!(self, Gate::ClX(_) | Gate::ClCx { .. } | Gate::ClSwap(..))
    }

    /// Whether this is a scheduling barrier rather than a physical gate.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Gate::Barrier)
    }

    /// Short mnemonic used in debug dumps and gate censuses.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::Cx { .. } => "cx",
            Gate::Ccx { .. } => "ccx",
            Gate::Mcx { .. } => "mcx",
            Gate::Swap(..) => "swap",
            Gate::Cswap { .. } => "cswap",
            Gate::ClX(_) => "clx",
            Gate::ClCx { .. } => "clcx",
            Gate::ClSwap(..) => "clswap",
            Gate::Barrier => "barrier",
        }
    }
}

impl std::fmt::Display for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn ctrl(f: &mut std::fmt::Formatter<'_>, c: &Control) -> std::fmt::Result {
            if c.value {
                write!(f, "{}", c.qubit)
            } else {
                write!(f, "!{}", c.qubit)
            }
        }
        match self {
            Gate::X(q) => write!(f, "x {q}"),
            Gate::Y(q) => write!(f, "y {q}"),
            Gate::Z(q) => write!(f, "z {q}"),
            Gate::H(q) => write!(f, "h {q}"),
            Gate::ClX(q) => write!(f, "clx {q}"),
            Gate::ClCx { control, target } => {
                write!(f, "clcx ")?;
                ctrl(f, control)?;
                write!(f, ", {target}")
            }
            Gate::ClSwap(a, b) => write!(f, "clswap {a}, {b}"),
            Gate::Swap(a, b) => write!(f, "swap {a}, {b}"),
            Gate::Cx { control, target } => {
                write!(f, "cx ")?;
                ctrl(f, control)?;
                write!(f, ", {target}")
            }
            Gate::Ccx { controls, target } => {
                write!(f, "ccx ")?;
                ctrl(f, &controls[0])?;
                write!(f, ", ")?;
                ctrl(f, &controls[1])?;
                write!(f, ", {target}")
            }
            Gate::Mcx { controls, target } => {
                write!(f, "mcx ")?;
                for c in controls {
                    ctrl(f, c)?;
                    write!(f, ", ")?;
                }
                write!(f, "{target}")
            }
            Gate::Cswap { control, a, b } => {
                write!(f, "cswap ")?;
                ctrl(f, control)?;
                write!(f, ", {a}, {b}")
            }
            Gate::Barrier => write!(f, "barrier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_arity_agree() {
        let gates = vec![
            Gate::x(Qubit(0)),
            Gate::cx(Qubit(0), Qubit(1)),
            Gate::ccx(Qubit(0), Qubit(1), Qubit(2)),
            Gate::mcx([Qubit(0), Qubit(1), Qubit(2)], Qubit(3)),
            Gate::swap(Qubit(0), Qubit(1)),
            Gate::cswap(Qubit(0), Qubit(1), Qubit(2)),
            Gate::ClX(Qubit(0)),
            Gate::ClSwap(Qubit(0), Qubit(1)),
        ];
        for g in gates {
            assert_eq!(g.qubits().len(), g.arity(), "gate {g}");
        }
    }

    #[test]
    fn mcx_pattern_sets_polarities_msb_first() {
        let qs = [Qubit(0), Qubit(1), Qubit(2)];
        // pattern 0b101: q0 fires on 1, q1 on 0, q2 on 1.
        let g = Gate::mcx_pattern(&qs, 0b101, Qubit(3));
        if let Gate::Mcx { controls, .. } = &g {
            assert_eq!(controls[0], Control::on(Qubit(0)));
            assert_eq!(controls[1], Control::off(Qubit(1)));
            assert_eq!(controls[2], Control::on(Qubit(2)));
        } else {
            panic!("expected MCX");
        }
    }

    #[test]
    fn classically_controlled_tagging() {
        assert!(Gate::ClX(Qubit(0)).is_classically_controlled());
        assert!(Gate::ClSwap(Qubit(0), Qubit(1)).is_classically_controlled());
        assert!(!Gate::x(Qubit(0)).is_classically_controlled());
    }

    #[test]
    fn barrier_has_no_support() {
        assert!(Gate::Barrier.qubits().is_empty());
        assert!(Gate::Barrier.is_barrier());
        assert_eq!(Gate::Barrier.arity(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::cx0(Qubit(1), Qubit(2)).to_string(), "cx !q1, q2");
        assert_eq!(
            Gate::cswap(Qubit(0), Qubit(1), Qubit(2)).to_string(),
            "cswap q0, q1, q2"
        );
    }
}
