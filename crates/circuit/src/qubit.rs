//! Qubit identifiers and structured register allocation.

/// A logical qubit identified by a dense index.
///
/// `Qubit` is a plain newtype over `u32`; circuits address qubits by index
/// and the allocator hands out contiguous blocks. The public field keeps
/// literal construction ergonomic in tests and examples (`Qubit(3)`).
///
/// ```
/// use qram_circuit::Qubit;
/// let q = Qubit(7);
/// assert_eq!(q.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub u32);

impl Qubit {
    /// The dense index of this qubit.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

/// A contiguous block of qubits with a role label.
///
/// QRAM circuits are built from many structurally distinct registers
/// (address qubits, routers, wires, data nodes, bus, ...). A `Register`
/// records the block and its human-readable role so that simulators,
/// mappers and debug output can recover structure from a flat index space.
///
/// ```
/// use qram_circuit::{QubitAllocator, Qubit};
/// let mut alloc = QubitAllocator::new();
/// let addr = alloc.register("address", 3);
/// assert_eq!(addr.len(), 3);
/// assert_eq!(addr.get(1), Qubit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Register {
    name: String,
    start: u32,
    len: u32,
}

impl Register {
    /// Creates a register spanning `len` qubits starting at `start`.
    pub fn new(name: impl Into<String>, start: u32, len: u32) -> Self {
        Register {
            name: name.into(),
            start,
            len,
        }
    }

    /// The role label given at allocation time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits in the register.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the register is empty (zero qubits).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th qubit of the register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Qubit {
        assert!(
            i < self.len as usize,
            "register index {i} out of range (len {})",
            self.len
        );
        Qubit(self.start + i as u32)
    }

    /// Iterator over the qubits of the register in index order.
    pub fn iter(&self) -> impl Iterator<Item = Qubit> + '_ {
        (self.start..self.start + self.len).map(Qubit)
    }

    /// Whether `q` belongs to this register.
    pub fn contains(&self, q: Qubit) -> bool {
        q.0 >= self.start && q.0 < self.start + self.len
    }
}

/// Hands out contiguous qubit index blocks and remembers their roles.
///
/// The allocator is append-only: registers are never freed. QRAM circuit
/// generators allocate all structural registers up front, then build gates
/// against them.
#[derive(Debug, Clone, Default)]
pub struct QubitAllocator {
    next: u32,
    registers: Vec<Register>,
}

impl QubitAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a named register of `len` qubits and returns it.
    pub fn register(&mut self, name: impl Into<String>, len: usize) -> Register {
        let reg = Register::new(name, self.next, len as u32);
        self.next += len as u32;
        self.registers.push(reg.clone());
        reg
    }

    /// Allocates a single anonymous ancilla qubit.
    pub fn ancilla(&mut self) -> Qubit {
        self.register("ancilla", 1).get(0)
    }

    /// Total number of qubits allocated so far.
    pub fn num_qubits(&self) -> usize {
        self.next as usize
    }

    /// All registers allocated so far, in allocation order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Looks up the register containing `q`, if any.
    pub fn register_of(&self, q: Qubit) -> Option<&Register> {
        self.registers.iter().find(|r| r.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_are_contiguous_and_disjoint() {
        let mut alloc = QubitAllocator::new();
        let a = alloc.register("a", 3);
        let b = alloc.register("b", 2);
        assert_eq!(
            a.iter().map(Qubit::index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(b.iter().map(Qubit::index).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(alloc.num_qubits(), 5);
        assert!(a.contains(Qubit(2)));
        assert!(!a.contains(Qubit(3)));
    }

    #[test]
    fn register_of_finds_owner() {
        let mut alloc = QubitAllocator::new();
        alloc.register("addr", 4);
        let data = alloc.register("data", 4);
        assert_eq!(alloc.register_of(Qubit(5)).unwrap().name(), "data");
        assert_eq!(alloc.register_of(Qubit(0)).unwrap().name(), "addr");
        assert!(alloc.register_of(Qubit(99)).is_none());
        assert_eq!(data.get(1), Qubit(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_get_bounds_checked() {
        let r = Register::new("r", 0, 2);
        let _ = r.get(2);
    }

    #[test]
    fn empty_register() {
        let r = Register::new("r", 5, 0);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn ancilla_allocates_one() {
        let mut alloc = QubitAllocator::new();
        let q = alloc.ancilla();
        assert_eq!(q, Qubit(0));
        assert_eq!(alloc.num_qubits(), 1);
    }

    #[test]
    fn qubit_display_and_from() {
        assert_eq!(Qubit::from(4u32).to_string(), "q4");
    }
}
