//! Exact lowering of the QRAM gate family to Clifford+T.
//!
//! [`crate::resources`] prices gates with closed-form weights; this module
//! performs the actual decomposition so tests (and curious users) can audit
//! those weights gate by gate. The lowered IR is *not* fed to the path
//! simulator — `H`/`T` leave the classical-reversible family — it exists
//! purely for fault-tolerant cost accounting, mirroring how the paper
//! quotes Clifford+T resources (Table 2) while simulating at the
//! reversible-gate level.

use crate::{Circuit, Control, Gate, Qubit};

/// A gate in the Clifford+T instruction set `{H, S, S†, T, T†, CX, X}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CliffordTGate {
    /// Hadamard.
    H(Qubit),
    /// Phase gate S.
    S(Qubit),
    /// Inverse phase gate S†.
    Sdg(Qubit),
    /// T gate (π/8 rotation) — the expensive, magic-state-consuming gate.
    T(Qubit),
    /// Inverse T gate.
    Tdg(Qubit),
    /// Controlled-X (positive control only; polarities are lowered away).
    Cx(Qubit, Qubit),
    /// Pauli X.
    X(Qubit),
    /// Pauli Z.
    Z(Qubit),
}

impl CliffordTGate {
    /// Qubits the gate touches.
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            CliffordTGate::H(q)
            | CliffordTGate::S(q)
            | CliffordTGate::Sdg(q)
            | CliffordTGate::T(q)
            | CliffordTGate::Tdg(q)
            | CliffordTGate::X(q)
            | CliffordTGate::Z(q) => vec![*q],
            CliffordTGate::Cx(c, t) => vec![*c, *t],
        }
    }

    /// Whether this is a T or T† gate.
    pub fn is_t(&self) -> bool {
        matches!(self, CliffordTGate::T(_) | CliffordTGate::Tdg(_))
    }
}

/// A circuit lowered to the Clifford+T instruction set.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// use qram_circuit::decompose::lower;
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
/// let low = lower(&c);
/// assert_eq!(low.t_count(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredCircuit {
    gates: Vec<CliffordTGate>,
    num_qubits: usize,
}

impl LoweredCircuit {
    /// The lowered gate sequence.
    pub fn gates(&self) -> &[CliffordTGate] {
        &self.gates
    }

    /// Qubit count including ancillae introduced by MCX lowering.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of T/T† gates.
    pub fn t_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_t()).count()
    }

    /// ASAP depth of the lowered circuit.
    pub fn depth(&self) -> usize {
        self.layered().len()
    }

    /// T-depth: number of ASAP layers containing at least one T/T† gate.
    pub fn t_depth(&self) -> usize {
        self.layered()
            .iter()
            .filter(|layer| layer.iter().any(|g| g.is_t()))
            .count()
    }

    fn layered(&self) -> Vec<Vec<CliffordTGate>> {
        let mut busy = vec![0usize; self.num_qubits];
        let mut layers: Vec<Vec<CliffordTGate>> = Vec::new();
        for g in &self.gates {
            let qs = g.qubits();
            let layer = qs.iter().map(|q| busy[q.index()]).max().unwrap_or(0);
            if layer >= layers.len() {
                layers.resize_with(layer + 1, Vec::new);
            }
            layers[layer].push(*g);
            for q in qs {
                busy[q.index()] = layer + 1;
            }
        }
        layers
    }
}

/// Lowers a circuit to Clifford+T.
///
/// MCX gates with `c ≥ 3` controls are lowered by the V-chain construction
/// and allocate `c − 2` fresh ancillae each (appended past the original
/// qubit space; reused across gates).
pub fn lower(circuit: &Circuit) -> LoweredCircuit {
    let mut out = Vec::new();
    let base = circuit.num_qubits();
    let mut max_anc = 0usize;
    for gate in circuit.iter() {
        max_anc = max_anc.max(crate::resources::cost_of(gate).ancillas);
    }
    let num_qubits = base + max_anc;
    let anc: Vec<Qubit> = (0..max_anc).map(|i| Qubit((base + i) as u32)).collect();

    for gate in circuit.iter() {
        lower_gate(gate, &anc, &mut out);
    }
    LoweredCircuit {
        gates: out,
        num_qubits,
    }
}

fn lower_gate(gate: &Gate, anc: &[Qubit], out: &mut Vec<CliffordTGate>) {
    match gate {
        Gate::Barrier => {}
        Gate::X(q) | Gate::ClX(q) => out.push(CliffordTGate::X(*q)),
        Gate::Z(q) => out.push(CliffordTGate::Z(*q)),
        Gate::Y(q) => {
            // Y = Z · X up to global phase.
            out.push(CliffordTGate::Z(*q));
            out.push(CliffordTGate::X(*q));
        }
        Gate::H(q) => out.push(CliffordTGate::H(*q)),
        Gate::Cx { control, target } | Gate::ClCx { control, target } => {
            with_polarity(&[*control], out, |out| {
                out.push(CliffordTGate::Cx(control.qubit, *target));
            });
        }
        Gate::Swap(a, b) | Gate::ClSwap(a, b) => {
            out.push(CliffordTGate::Cx(*a, *b));
            out.push(CliffordTGate::Cx(*b, *a));
            out.push(CliffordTGate::Cx(*a, *b));
        }
        Gate::Ccx { controls, target } => {
            with_polarity(controls, out, |out| {
                toffoli(controls[0].qubit, controls[1].qubit, *target, out);
            });
        }
        Gate::Cswap { control, a, b } => {
            with_polarity(&[*control], out, |out| {
                // CSWAP = CX(b→a) · CCX(c,a→b) · CX(b→a).
                out.push(CliffordTGate::Cx(*b, *a));
                toffoli(control.qubit, *a, *b, out);
                out.push(CliffordTGate::Cx(*b, *a));
            });
        }
        Gate::Mcx { controls, target } => {
            with_polarity(controls, out, |out| match controls.len() {
                0 => out.push(CliffordTGate::X(*target)),
                1 => out.push(CliffordTGate::Cx(controls[0].qubit, *target)),
                2 => toffoli(controls[0].qubit, controls[1].qubit, *target, out),
                c => {
                    // V-chain: anc[0] = c0·c1, anc[i] = anc[i-1]·c(i+1), ...
                    let needed = c - 2;
                    assert!(anc.len() >= needed, "lowering requires {needed} ancillae");
                    toffoli(controls[0].qubit, controls[1].qubit, anc[0], out);
                    for i in 1..needed {
                        toffoli(anc[i - 1], controls[i + 1].qubit, anc[i], out);
                    }
                    toffoli(anc[needed - 1], controls[c - 1].qubit, *target, out);
                    for i in (1..needed).rev() {
                        toffoli(anc[i - 1], controls[i + 1].qubit, anc[i], out);
                    }
                    toffoli(controls[0].qubit, controls[1].qubit, anc[0], out);
                }
            });
        }
    }
}

/// Wraps `body` with X gates on every negated control (standard polarity
/// lowering).
fn with_polarity(
    controls: &[Control],
    out: &mut Vec<CliffordTGate>,
    body: impl FnOnce(&mut Vec<CliffordTGate>),
) {
    for c in controls.iter().filter(|c| !c.value) {
        out.push(CliffordTGate::X(c.qubit));
    }
    body(out);
    for c in controls.iter().filter(|c| !c.value) {
        out.push(CliffordTGate::X(c.qubit));
    }
}

/// Textbook 7-T Toffoli decomposition (Nielsen & Chuang Fig. 4.9).
fn toffoli(c1: Qubit, c2: Qubit, t: Qubit, out: &mut Vec<CliffordTGate>) {
    use CliffordTGate::*;
    out.extend([
        H(t),
        Cx(c2, t),
        Tdg(t),
        Cx(c1, t),
        T(t),
        Cx(c2, t),
        Tdg(t),
        Cx(c1, t),
        T(c2),
        T(t),
        H(t),
        Cx(c1, c2),
        T(c1),
        Tdg(c2),
        Cx(c1, c2),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_lowering_matches_cost_model() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(2)));
        let low = lower(&c);
        assert_eq!(low.t_count(), 7);
        assert!(low.t_depth() <= 5, "t-depth {} too deep", low.t_depth());
        assert!(low.depth() >= 10);
    }

    #[test]
    fn cswap_lowering_t_count() {
        let mut c = Circuit::new(3);
        c.push(Gate::cswap(Qubit(0), Qubit(1), Qubit(2)));
        let low = lower(&c);
        assert_eq!(low.t_count(), 7);
        assert_eq!(low.num_qubits(), 3); // no ancillae
    }

    #[test]
    fn mcx_vchain_t_count_and_ancillae() {
        let mut c = Circuit::new(5);
        c.push(Gate::mcx(
            [Qubit(0), Qubit(1), Qubit(2), Qubit(3)],
            Qubit(4),
        ));
        let low = lower(&c);
        // 4 controls → 2·4−3 = 5 Toffolis → 35 T.
        assert_eq!(low.t_count(), 35);
        assert_eq!(low.num_qubits(), 5 + 2);
        assert_eq!(
            low.t_count(),
            crate::resources::cost_of(&c.gates()[0]).t_count
        );
    }

    #[test]
    fn negative_controls_add_x_conjugation() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx0(Qubit(0), Qubit(1)));
        let low = lower(&c);
        assert_eq!(low.gates().len(), 3);
        assert_eq!(low.gates()[0], CliffordTGate::X(Qubit(0)));
        assert_eq!(low.gates()[2], CliffordTGate::X(Qubit(0)));
    }

    #[test]
    fn swap_is_three_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::swap(Qubit(0), Qubit(1)));
        let low = lower(&c);
        assert_eq!(low.gates().len(), 3);
        assert_eq!(low.t_count(), 0);
    }

    #[test]
    fn mcx_small_arities_degrade_gracefully() {
        let mut c = Circuit::new(3);
        c.push(Gate::mcx([Qubit(0)], Qubit(1)));
        c.push(Gate::mcx([Qubit(0), Qubit(1)], Qubit(2)));
        let low = lower(&c);
        assert_eq!(low.t_count(), 7); // only the 2-control MCX costs T
    }

    #[test]
    fn ancillae_are_reused_across_gates() {
        let mut c = Circuit::new(5);
        c.push(Gate::mcx([Qubit(0), Qubit(1), Qubit(2)], Qubit(3)));
        c.push(Gate::mcx([Qubit(0), Qubit(1), Qubit(2)], Qubit(4)));
        let low = lower(&c);
        // Both MCX-3 gates need 1 ancilla; they share it.
        assert_eq!(low.num_qubits(), 6);
    }
}
