//! Circuit execution over path states, with Pauli fault injection.
//!
//! A *fault* is a Pauli error attached to a circuit location: either before
//! any gate executes (`gate_index == 0`) or immediately **after** the gate
//! at `gate_index − 1`. A [`FaultPlan`] is the complete fault pattern of one
//! Monte-Carlo shot; running the same circuit under different plans gives
//! the trajectory samples the paper averages in its fidelity plots
//! (Sec. 6.3).
//!
//! Because every gate in the classical-reversible + Pauli family maps each
//! path independently (paths never interact during execution, only in the
//! final overlap reductions), a whole run factorizes over disjoint path
//! ranges: [`run_with_faults_chunked`] splits the state's slab into
//! contiguous chunks and executes the full gate/fault sequence on each
//! chunk in parallel under [`std::thread::scope`]. The result is
//! *bit-identical* to the serial run — each path's bit and amplitude
//! operations are the same instruction sequence regardless of which chunk
//! it lands in, and the slab order is preserved.

use std::thread;

use qram_circuit::{Control, Gate, Qubit};

use crate::state::{PathBits, PathsMut};
use crate::{PathState, SimError};

/// A single-qubit Pauli error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All three Paulis, in `X, Y, Z` order.
    pub const ALL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Applies this Pauli to `qubit` of `state`.
    pub fn apply(self, state: &mut PathState, qubit: Qubit) {
        match self {
            Pauli::X => state.apply_x(qubit),
            Pauli::Y => state.apply_y(qubit),
            Pauli::Z => state.apply_z(qubit),
        }
    }
}

impl std::fmt::Display for Pauli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pauli::X => write!(f, "X"),
            Pauli::Y => write!(f, "Y"),
            Pauli::Z => write!(f, "Z"),
        }
    }
}

/// A Pauli error at a circuit location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The fault fires after `gate_index` gates have executed
    /// (0 = before the first gate).
    pub gate_index: usize,
    /// The afflicted qubit.
    pub qubit: Qubit,
    /// Which Pauli error occurs.
    pub pauli: Pauli,
}

impl Fault {
    /// Convenience constructor.
    pub fn new(gate_index: usize, qubit: Qubit, pauli: Pauli) -> Self {
        Fault {
            gate_index,
            qubit,
            pauli,
        }
    }
}

/// The complete fault pattern of one noisy shot: a list of [`Fault`]s,
/// sorted by location at execution time.
///
/// ```
/// use qram_sim::{Fault, FaultPlan, Pauli};
/// use qram_circuit::Qubit;
///
/// let mut plan = FaultPlan::new();
/// plan.push(Fault::new(2, Qubit(0), Pauli::Z));
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (noise-free) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan has no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The faults grouped by `gate_index`, sorted ascending.
    fn sorted(&self) -> Vec<Fault> {
        let mut sorted = self.faults.clone();
        sorted.sort_by_key(|f| f.gate_index);
        sorted
    }
}

impl FromIterator<Fault> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultPlan {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultPlan {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

/// Runs `gates` over `state` without noise.
///
/// # Errors
///
/// Returns [`SimError::NonReversibleGate`] on `H` and
/// [`SimError::QubitOutOfRange`] if any gate references a qubit past the
/// state's qubit count.
pub fn run(gates: &[Gate], state: &mut PathState) -> Result<(), SimError> {
    run_with_faults(gates, state, &FaultPlan::new())
}

/// Runs `gates` over `state`, injecting the faults of `plan` at their
/// locations (fault at `gate_index = i` fires after `i` gates executed).
///
/// Barriers are scheduling pseudo-gates: they occupy a gate index (so fault
/// locations stay aligned with generator output) but perform no action.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with_faults(
    gates: &[Gate],
    state: &mut PathState,
    plan: &FaultPlan,
) -> Result<(), SimError> {
    let faults = plan.sorted();
    let num_qubits = state.num_qubits();
    run_plan_on(gates, &mut state.as_paths_mut(), &faults, num_qubits)
}

/// Like [`run_with_faults`], but executes the gate/fault sequence over
/// `chunks` disjoint path ranges in parallel (scoped threads, no external
/// dependencies). `chunks` is clamped to the path count; `chunks <= 1`
/// falls back to the serial path.
///
/// The result is **bit-identical** to [`run_with_faults`]: paths never
/// interact during execution, so each path undergoes the exact same
/// floating-point operation sequence in either mode, and the slab order
/// is preserved.
///
/// # Errors
///
/// Same conditions as [`run`], detected by a state-free pre-validation
/// pass that reports the first error in serial execution order.
pub fn run_with_faults_chunked(
    gates: &[Gate],
    state: &mut PathState,
    plan: &FaultPlan,
    chunks: usize,
) -> Result<(), SimError> {
    let chunks = chunks.clamp(1, state.num_paths().max(1));
    if chunks <= 1 {
        return run_with_faults(gates, state, plan);
    }
    let num_qubits = state.num_qubits();
    // Surface the first error (in serial execution order) before any
    // worker touches the slab; afterwards per-chunk runs cannot fail.
    validate(gates, plan, num_qubits)?;
    let faults = plan.sorted();
    let views = state.chunk_views(chunks);
    thread::scope(|scope| {
        let handles: Vec<_> = views
            .into_iter()
            .map(|mut view| {
                let faults = &faults;
                scope.spawn(move || run_plan_on(gates, &mut view, faults, num_qubits))
            })
            .collect();
        for handle in handles {
            handle.join().expect("path chunk panicked")?;
        }
        Ok(())
    })
}

/// Runs `gates` without noise over `chunks` parallel path ranges; see
/// [`run_with_faults_chunked`].
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_chunked(gates: &[Gate], state: &mut PathState, chunks: usize) -> Result<(), SimError> {
    run_with_faults_chunked(gates, state, &FaultPlan::new(), chunks)
}

/// Executes the full gate/fault sequence over one slab view. `faults`
/// must already be location-sorted ([`FaultPlan::sorted`]).
fn run_plan_on(
    gates: &[Gate],
    view: &mut PathsMut<'_>,
    faults: &[Fault],
    num_qubits: usize,
) -> Result<(), SimError> {
    let mut next_fault = 0usize;

    let fire =
        |idx: usize, view: &mut PathsMut<'_>, next_fault: &mut usize| -> Result<(), SimError> {
            while *next_fault < faults.len() && faults[*next_fault].gate_index <= idx {
                let f = faults[*next_fault];
                if f.qubit.index() >= num_qubits {
                    return Err(SimError::QubitOutOfRange {
                        index: f.qubit.index(),
                        num_qubits,
                    });
                }
                match f.pauli {
                    Pauli::X => view.apply_x(f.qubit.index()),
                    Pauli::Y => view.apply_y(f.qubit.index()),
                    Pauli::Z => view.apply_z(f.qubit.index()),
                }
                *next_fault += 1;
            }
            Ok(())
        };

    for (i, gate) in gates.iter().enumerate() {
        fire(i, view, &mut next_fault)?;
        apply_gate_on(gate, view, num_qubits)?;
    }
    fire(gates.len(), view, &mut next_fault)?;
    Ok(())
}

/// State-free validation of a run: walks the serial execution order
/// (fault fire before gate, final fire after the last gate) checking
/// qubit bounds and gate-family legality, and reports the first error
/// exactly where the serial executor would.
///
/// Faults located past the end of the circuit (`gate_index >
/// gates.len()`) never fire and are deliberately *not* validated,
/// matching the serial executor.
fn validate(gates: &[Gate], plan: &FaultPlan, num_qubits: usize) -> Result<(), SimError> {
    let faults = plan.sorted();
    let mut next_fault = 0usize;
    let check_fire = |idx: usize, next_fault: &mut usize| -> Result<(), SimError> {
        while *next_fault < faults.len() && faults[*next_fault].gate_index <= idx {
            let f = faults[*next_fault];
            if f.qubit.index() >= num_qubits {
                return Err(SimError::QubitOutOfRange {
                    index: f.qubit.index(),
                    num_qubits,
                });
            }
            *next_fault += 1;
        }
        Ok(())
    };
    for (i, gate) in gates.iter().enumerate() {
        check_fire(i, &mut next_fault)?;
        validate_gate(gate, num_qubits)?;
    }
    check_fire(gates.len(), &mut next_fault)
}

/// The state-free half of [`apply_gate_on`]'s error checks: qubit bounds
/// first (matching the executor's check order), then gate-family
/// legality.
fn validate_gate(gate: &Gate, num_qubits: usize) -> Result<(), SimError> {
    for q in gate.qubits() {
        if q.index() >= num_qubits {
            return Err(SimError::QubitOutOfRange {
                index: q.index(),
                num_qubits,
            });
        }
    }
    if matches!(gate, Gate::H(_)) {
        return Err(SimError::NonReversibleGate { gate: "h" });
    }
    Ok(())
}

/// Applies one gate to a slab view.
///
/// # Errors
///
/// Returns [`SimError::NonReversibleGate`] for `H`,
/// [`SimError::QubitOutOfRange`] for bad qubit indices (bounds are
/// checked before family legality, so `validate_gate` mirrors the order).
fn apply_gate_on(gate: &Gate, view: &mut PathsMut<'_>, num_qubits: usize) -> Result<(), SimError> {
    for q in gate.qubits() {
        if q.index() >= num_qubits {
            return Err(SimError::QubitOutOfRange {
                index: q.index(),
                num_qubits,
            });
        }
    }
    #[inline]
    fn ctrl_active(bits: &PathBits<'_>, c: &Control) -> bool {
        bits.get(c.qubit.index()) == c.value
    }
    match gate {
        Gate::Barrier => {}
        Gate::H(_) => return Err(SimError::NonReversibleGate { gate: "h" }),
        Gate::X(q) | Gate::ClX(q) => view.apply_x(q.index()),
        Gate::Y(q) => view.apply_y(q.index()),
        Gate::Z(q) => view.apply_z(q.index()),
        Gate::Cx { control, target } | Gate::ClCx { control, target } => {
            let (c, t) = (*control, target.index());
            view.permute_paths(|bits| {
                if ctrl_active(bits, &c) {
                    bits.flip(t);
                }
            });
        }
        Gate::Ccx { controls, target } => {
            let (cs, t) = (*controls, target.index());
            view.permute_paths(|bits| {
                if ctrl_active(bits, &cs[0]) && ctrl_active(bits, &cs[1]) {
                    bits.flip(t);
                }
            });
        }
        Gate::Mcx { controls, target } => {
            let cs = controls.clone();
            let t = target.index();
            view.permute_paths(|bits| {
                if cs.iter().all(|c| ctrl_active(bits, c)) {
                    bits.flip(t);
                }
            });
        }
        Gate::Swap(a, b) | Gate::ClSwap(a, b) => {
            let (a, b) = (a.index(), b.index());
            view.permute_paths(|bits| bits.swap_bits(a, b));
        }
        Gate::Cswap { control, a, b } => {
            let (c, a, b) = (*control, a.index(), b.index());
            view.permute_paths(|bits| {
                if ctrl_active(bits, &c) {
                    bits.swap_bits(a, b);
                }
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::Circuit;

    fn basis(value: u64, n: usize) -> PathState {
        PathState::basis_state(crate::BitString::from_u64(value, n))
    }

    #[test]
    fn cx_truth_table() {
        for (input, expected) in [(0b00, 0b00), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            // qubit 0 is the low bit of `input`.
            let mut s = basis(input, 2);
            run(&[Gate::cx(Qubit(0), Qubit(1))], &mut s).unwrap();
            let want = basis(expected, 2);
            assert!(
                (s.fidelity(&want) - 1.0).abs() < 1e-12,
                "input {input:#04b}"
            );
        }
    }

    #[test]
    fn zero_controlled_cx_fires_on_zero() {
        let mut s = basis(0b00, 2);
        run(&[Gate::cx0(Qubit(0), Qubit(1))], &mut s).unwrap();
        assert!((s.fidelity(&basis(0b10, 2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccx_truth_table() {
        for input in 0u64..8 {
            let mut s = basis(input, 3);
            run(&[Gate::ccx(Qubit(0), Qubit(1), Qubit(2))], &mut s).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (s.fidelity(&basis(expected, 3)) - 1.0).abs() < 1e-12,
                "input {input:#05b}"
            );
        }
    }

    #[test]
    fn cswap_routes_conditionally() {
        // control = qubit 0; swap qubits 1,2.
        for input in 0u64..8 {
            let mut s = basis(input, 3);
            run(&[Gate::cswap(Qubit(0), Qubit(1), Qubit(2))], &mut s).unwrap();
            let expected = if input & 1 == 1 {
                let b1 = (input >> 1) & 1;
                let b2 = (input >> 2) & 1;
                (input & 1) | (b2 << 1) | (b1 << 2)
            } else {
                input
            };
            assert!(
                (s.fidelity(&basis(expected, 3)) - 1.0).abs() < 1e-12,
                "input {input:#05b}"
            );
        }
    }

    #[test]
    fn mcx_pattern_selects_one_address() {
        // 2-bit address register (MSB = q0), target = q2. The pattern gate
        // for address 0b10 must flip the target only for that branch.
        let addr = [Qubit(0), Qubit(1)];
        let gate = Gate::mcx_pattern(&addr, 0b10, Qubit(2));
        let mut s = PathState::uniform_over(3, &addr);
        run(&[gate], &mut s).unwrap();
        for (bits, _) in s.iter() {
            let a = bits.read_msb_first(&[0, 1]);
            let t = bits.get(2);
            assert_eq!(t, a == 0b10, "address {a:#04b}");
        }
    }

    #[test]
    fn h_is_rejected() {
        let mut s = PathState::computational_basis(1);
        let err = run(&[Gate::H(Qubit(0))], &mut s).unwrap_err();
        assert_eq!(err, SimError::NonReversibleGate { gate: "h" });
    }

    #[test]
    fn out_of_range_qubit_is_rejected() {
        let mut s = PathState::computational_basis(1);
        let err = run(&[Gate::x(Qubit(3))], &mut s).unwrap_err();
        assert!(matches!(err, SimError::QubitOutOfRange { index: 3, .. }));
    }

    #[test]
    fn faults_fire_at_their_location() {
        // X fault before the CX control changes the CX outcome; after, it
        // does not.
        let gates = [Gate::cx(Qubit(0), Qubit(1))];

        let mut before = PathState::computational_basis(2);
        let plan: FaultPlan = [Fault::new(0, Qubit(0), Pauli::X)].into_iter().collect();
        run_with_faults(&gates, &mut before, &plan).unwrap();
        // Fault flips control to 1 → CX fires → |11⟩.
        assert!((before.fidelity(&basis(0b11, 2)) - 1.0).abs() < 1e-12);

        let mut after = PathState::computational_basis(2);
        let plan: FaultPlan = [Fault::new(1, Qubit(0), Pauli::X)].into_iter().collect();
        run_with_faults(&gates, &mut after, &plan).unwrap();
        // CX saw control 0 → only the fault's flip remains → |01⟩... i.e. bit0 = 1.
        assert!((after.fidelity(&basis(0b01, 2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_fault_on_zero_branch_is_harmless() {
        // Z on a qubit in |0⟩ is the identity: fidelity stays 1.
        let gates = [Gate::cx(Qubit(0), Qubit(1))];
        let mut ideal = PathState::computational_basis(2);
        run(&gates, &mut ideal).unwrap();

        let mut noisy = PathState::computational_basis(2);
        let plan: FaultPlan = [Fault::new(0, Qubit(1), Pauli::Z)].into_iter().collect();
        run_with_faults(&gates, &mut noisy, &plan).unwrap();
        assert!((noisy.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_is_inert_but_occupies_an_index() {
        let mut c = Circuit::new(1);
        c.barrier();
        c.push(Gate::x(Qubit(0)));
        // A fault at index 1 fires after the barrier, before the X.
        let plan: FaultPlan = [Fault::new(1, Qubit(0), Pauli::X)].into_iter().collect();
        let mut s = PathState::computational_basis(1);
        run_with_faults(c.gates(), &mut s, &plan).unwrap();
        // X fault + X gate = identity.
        assert!((s.fidelity(&PathState::computational_basis(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_count_is_preserved_by_reversible_gates() {
        let addr = [Qubit(0), Qubit(1), Qubit(2)];
        let mut s = PathState::uniform_over(5, &addr);
        let gates = [
            Gate::cx(Qubit(0), Qubit(3)),
            Gate::ccx(Qubit(1), Qubit(2), Qubit(4)),
            Gate::cswap(Qubit(0), Qubit(3), Qubit(4)),
            Gate::swap(Qubit(3), Qubit(4)),
            Gate::x(Qubit(3)),
        ];
        run(&gates, &mut s).unwrap();
        assert_eq!(s.num_paths(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunked_run_matches_serial_bit_for_bit() {
        let addr = [Qubit(0), Qubit(1), Qubit(2)];
        let gates = [
            Gate::cx(Qubit(0), Qubit(3)),
            Gate::ccx(Qubit(1), Qubit(2), Qubit(4)),
            Gate::cswap(Qubit(0), Qubit(3), Qubit(4)),
            Gate::swap(Qubit(3), Qubit(4)),
            Gate::x(Qubit(3)),
        ];
        let plan: FaultPlan = [
            Fault::new(1, Qubit(2), Pauli::Y),
            Fault::new(3, Qubit(0), Pauli::Z),
            Fault::new(5, Qubit(4), Pauli::X),
        ]
        .into_iter()
        .collect();
        let input = PathState::uniform_over(5, &addr);
        let mut serial = input.clone();
        run_with_faults(&gates, &mut serial, &plan).unwrap();
        for chunks in [1usize, 2, 3, 4, 7, 16] {
            let mut chunked = input.clone();
            run_with_faults_chunked(&gates, &mut chunked, &plan, chunks).unwrap();
            // Bit-identical including slab order, not merely equal as sets.
            let a: Vec<_> = chunked.iter().collect();
            let b: Vec<_> = serial.iter().collect();
            assert_eq!(a, b, "chunks={chunks}");
        }
    }

    #[test]
    fn chunked_error_semantics_match_serial() {
        let input = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        // (gates, plan) cases that each fail at a different point of the
        // serial execution order.
        let h_gate = vec![Gate::cx(Qubit(0), Qubit(1)), Gate::H(Qubit(2))];
        let bad_gate = vec![Gate::x(Qubit(7))];
        let bad_fault_gates = vec![Gate::cx(Qubit(0), Qubit(1))];
        let bad_fault: FaultPlan = [Fault::new(1, Qubit(9), Pauli::X)].into_iter().collect();
        let cases: Vec<(&[Gate], FaultPlan)> = vec![
            (&h_gate, FaultPlan::new()),
            (&bad_gate, FaultPlan::new()),
            (&bad_fault_gates, bad_fault),
        ];
        for (gates, plan) in cases {
            let mut serial = input.clone();
            let serial_err = run_with_faults(gates, &mut serial, &plan).unwrap_err();
            let mut chunked = input.clone();
            let chunked_err = run_with_faults_chunked(gates, &mut chunked, &plan, 3).unwrap_err();
            assert_eq!(serial_err, chunked_err);
        }
    }

    #[test]
    fn faults_past_circuit_end_never_fire_nor_validate() {
        // A fault located beyond the final fire point (gate_index >
        // gates.len()) is dead: the serial engine never validates it, so
        // the chunked pre-validation must not either.
        let gates = [Gate::x(Qubit(0))];
        let plan: FaultPlan = [Fault::new(2, Qubit(40), Pauli::X)].into_iter().collect();
        let mut serial = PathState::computational_basis(1);
        run_with_faults(&gates, &mut serial, &plan).unwrap();
        let mut chunked = PathState::uniform_over(1, &[Qubit(0)]);
        run_with_faults_chunked(&gates, &mut chunked, &plan, 2).unwrap();
    }

    #[test]
    fn run_chunked_noiseless_matches_run() {
        let addr = [Qubit(0), Qubit(1)];
        let gates = [
            Gate::cx(Qubit(0), Qubit(2)),
            Gate::cswap(Qubit(1), Qubit(2), Qubit(3)),
        ];
        let input = PathState::uniform_over(4, &addr);
        let mut serial = input.clone();
        run(&gates, &mut serial).unwrap();
        let mut chunked = input.clone();
        run_chunked(&gates, &mut chunked, 4).unwrap();
        let a: Vec<_> = chunked.iter().collect();
        let b: Vec<_> = serial.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uncompute_by_inversion_restores_input() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(Qubit(0), Qubit(2)));
        c.push(Gate::cswap(Qubit(1), Qubit(2), Qubit(3)));
        c.push(Gate::ccx(Qubit(0), Qubit(1), Qubit(3)));

        let input = PathState::uniform_over(4, &[Qubit(0), Qubit(1)]);
        let mut s = input.clone();
        run(c.gates(), &mut s).unwrap();
        run(c.inverted().gates(), &mut s).unwrap();
        assert!((s.fidelity(&input) - 1.0).abs() < 1e-12);
    }
}
