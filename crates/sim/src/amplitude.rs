//! Minimal complex amplitude arithmetic.
//!
//! The workspace keeps its dependency surface to the allowed crate set, so
//! complex numbers are implemented here rather than pulled from
//! `num-complex`. Only the operations the path simulator needs exist:
//! addition, multiplication, conjugation, modulus, and the four phases
//! `±1, ±i` that Pauli errors introduce.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex amplitude `re + i·im`.
///
/// ```
/// use qram_sim::Amplitude;
/// let a = Amplitude::new(0.6, 0.0);
/// let b = Amplitude::new(0.0, 0.8);
/// assert!(((a * b).norm_sqr() - 0.2304).abs() < 1e-12);
/// assert_eq!(a + b, Amplitude::new(0.6, 0.8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Amplitude {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Amplitude {
    /// The additive identity.
    pub const ZERO: Amplitude = Amplitude { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Amplitude = Amplitude { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Amplitude = Amplitude { re: 0.0, im: 1.0 };

    /// Creates an amplitude from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Amplitude { re, im }
    }

    /// A real amplitude.
    pub const fn real(re: f64) -> Self {
        Amplitude { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Amplitude {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|a|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|a|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Amplitude {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplies by `i` (the phase a `Y` error applies to |0⟩ → |1⟩).
    pub fn mul_i(self) -> Self {
        Amplitude {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `−i`.
    pub fn mul_neg_i(self) -> Self {
        Amplitude {
            re: self.im,
            im: -self.re,
        }
    }

    /// Whether the amplitude is negligible at tolerance `eps`.
    pub fn is_negligible(self, eps: f64) -> bool {
        self.norm_sqr() < eps * eps
    }
}

impl Add for Amplitude {
    type Output = Amplitude;
    fn add(self, rhs: Amplitude) -> Amplitude {
        Amplitude {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Amplitude {
    fn add_assign(&mut self, rhs: Amplitude) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Amplitude {
    type Output = Amplitude;
    fn sub(self, rhs: Amplitude) -> Amplitude {
        Amplitude {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Amplitude {
    type Output = Amplitude;
    fn mul(self, rhs: Amplitude) -> Amplitude {
        Amplitude {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Amplitude {
    fn mul_assign(&mut self, rhs: Amplitude) {
        *self = *self * rhs;
    }
}

impl Neg for Amplitude {
    type Output = Amplitude;
    fn neg(self) -> Amplitude {
        Amplitude {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl std::fmt::Display for Amplitude {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Amplitude::I * Amplitude::I, -Amplitude::ONE);
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let a = Amplitude::new(0.3, -0.7);
        assert_eq!(a.mul_i(), a * Amplitude::I);
        assert_eq!(a.mul_neg_i(), a * -Amplitude::I);
    }

    #[test]
    fn conj_and_norm() {
        let a = Amplitude::new(3.0, 4.0);
        assert_eq!(a.conj(), Amplitude::new(3.0, -4.0));
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!(((a * a.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn negligible_threshold() {
        assert!(Amplitude::new(1e-12, 0.0).is_negligible(1e-9));
        assert!(!Amplitude::new(1e-6, 0.0).is_negligible(1e-9));
    }

    #[test]
    fn display_both_signs() {
        assert_eq!(Amplitude::new(1.0, -1.0).to_string(), "1.000000-1.000000i");
        assert_eq!(Amplitude::new(0.5, 0.25).to_string(), "0.500000+0.250000i");
    }
}
