//! Feynman-path simulation of QRAM circuits (paper Sec. 6.2).
//!
//! QRAM circuits are built from a small, fixed set of *classical
//! reversible* gates (`X`, `CX`, `CCX`, `MCX`, `SWAP`, `CSWAP`, and their
//! classically-controlled variants). None of these gates maps a single
//! computational basis state to a superposition, so a quantum state that
//! starts as a superposition of `A` basis states ("paths") remains a
//! superposition of exactly `A` basis states for the whole circuit — the
//! storage cost is constant in circuit depth and *independent of qubit
//! count*. Pauli errors preserve the property too: `X` permutes basis
//! states, `Z` flips signs, `Y` does both (with a phase `±i`).
//!
//! This is the insight that lets the paper simulate noisy QRAM circuits
//! with hundreds of qubits in megabytes of memory, and this crate is a
//! general-purpose Rust implementation of that simulator: arbitrary input
//! superpositions, arbitrary memory contents, arbitrary Pauli fault
//! patterns.
//!
//! * [`BitString`] — a packed basis state.
//! * [`Amplitude`] — a complex amplitude.
//! * [`PathState`] — a sparse superposition stored as a flat slab:
//!   contiguous packed-bit and amplitude arrays, one entry per path.
//! * [`run`] / [`run_with_faults`] — circuit execution with optional
//!   Pauli fault injection at arbitrary circuit locations.
//! * [`run_chunked`] / [`run_with_faults_chunked`] — the same execution
//!   parallelized over disjoint path ranges of the slab, bit-identical
//!   to the serial run for any chunk count.
//! * [`monte_carlo_fidelity`] / [`run_shots`] — the paper's shot harness:
//!   average `|⟨ψ_ideal|ψ_shot⟩|²` over sampled fault patterns, executed
//!   on a sharded parallel engine whose estimates are bit-identical for
//!   any `(threads, path_chunks)` pair ([`ShotConfig`]).
//!
//! # Example
//!
//! ```
//! use qram_circuit::{Circuit, Gate, Qubit};
//! use qram_sim::{PathState, run};
//!
//! // CX copies a classical bit.
//! let mut c = Circuit::new(2);
//! c.push(Gate::cx(Qubit(0), Qubit(1)));
//!
//! let mut state = PathState::computational_basis(2);
//! state.apply_x(Qubit(0)); // prepare qubit 0 in |1⟩
//! run(c.gates(), &mut state).unwrap();
//! assert_eq!(state.num_paths(), 1);
//! assert!(state.probability_of_one(Qubit(1)) > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amplitude;
mod bitstring;
mod engine;
mod executor;
mod shots;
mod state;

pub use amplitude::Amplitude;
pub use bitstring::BitString;
pub use engine::{run_shots, run_shots_recorded, run_shots_stats, ShotConfig, ShotStats};
pub use executor::{
    run, run_chunked, run_with_faults, run_with_faults_chunked, Fault, FaultPlan, Pauli,
};
pub use shots::{
    monte_carlo_fidelity, monte_carlo_fidelity_with, monte_carlo_reduced_fidelity,
    monte_carlo_reduced_fidelity_with, FidelityEstimate,
};
pub use state::{PathBits, PathState};

/// Errors produced by the path simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The circuit contains a gate outside the classical-reversible family
    /// (e.g. `H`), which the Feynman-path method cannot simulate.
    NonReversibleGate {
        /// Mnemonic of the offending gate.
        gate: &'static str,
    },
    /// A gate or fault references a qubit beyond the state's qubit count.
    QubitOutOfRange {
        /// Index of the offending qubit.
        index: usize,
        /// Number of qubits in the state.
        num_qubits: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NonReversibleGate { gate } => {
                write!(
                    f,
                    "gate `{gate}` is outside the classical-reversible family"
                )
            }
            SimError::QubitOutOfRange { index, num_qubits } => {
                write!(f, "qubit {index} out of range for {num_qubits}-qubit state")
            }
        }
    }
}

impl std::error::Error for SimError {}
