//! Monte-Carlo shot harness (paper Sec. 6.3).
//!
//! One *shot* = one sampled Pauli fault pattern; the noisy circuit runs as
//! a pure trajectory and its overlap with the ideal output is the shot's
//! query fidelity `|⟨ψ_ideal|ψ_shot⟩|²`. Averaging over shots estimates the
//! channel fidelity — exact in expectation for Pauli channels, which is why
//! the paper's simulator can quote fidelities without density matrices.

use qram_circuit::Gate;

use crate::{run_shots, FaultPlan, PathState, ShotConfig, SimError};

/// A Monte-Carlo fidelity estimate: mean over shots with a standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityEstimate {
    /// Mean fidelity over the shots.
    pub mean: f64,
    /// Standard error of the mean (`σ/√shots`); 0 for a single shot.
    pub std_error: f64,
    /// Number of shots taken.
    pub shots: usize,
}

impl FidelityEstimate {
    /// Folds a sequence of per-shot fidelities into an estimate.
    pub fn from_samples(samples: &[f64]) -> FidelityEstimate {
        let shots = samples.len();
        if shots == 0 {
            return FidelityEstimate {
                mean: 0.0,
                std_error: 0.0,
                shots: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / shots as f64;
        let var = if shots > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (shots - 1) as f64
        } else {
            0.0
        };
        FidelityEstimate {
            mean,
            std_error: (var / shots as f64).sqrt(),
            shots,
        }
    }
}

impl std::fmt::Display for FidelityEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({} shots)",
            self.mean, self.std_error, self.shots
        )
    }
}

/// Estimates the query fidelity of `gates` on `input` under a noise process
/// described by `sample_plan`, which is called once per shot with the shot
/// index and must return that shot's fault pattern (a pure function of the
/// index — samplers derive an independent RNG stream per shot).
///
/// The ideal output is computed once (fault-free run); each shot replays
/// the circuit under its sampled plan and contributes
/// `|⟨ψ_ideal|ψ_shot⟩|²`. Shots run on the sharded parallel engine with
/// automatic thread count; results are bit-identical for any thread count
/// (see [`run_shots`]). Use [`monte_carlo_fidelity_with`] to control the
/// shot/thread configuration explicitly.
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// use qram_sim::{monte_carlo_fidelity, FaultPlan, PathState};
///
/// # fn main() -> Result<(), qram_sim::SimError> {
/// let mut c = Circuit::new(2);
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// let input = PathState::uniform_over(2, &[Qubit(0)]);
/// // Noise-free sampler: fidelity is exactly 1.
/// let est = monte_carlo_fidelity(c.gates(), &input, 16, |_| FaultPlan::new())?;
/// assert!((est.mean - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_fidelity(
    gates: &[Gate],
    input: &PathState,
    shots: usize,
    sample_plan: impl Fn(u64) -> FaultPlan + Sync,
) -> Result<FidelityEstimate, SimError> {
    run_shots(gates, input, None, &ShotConfig::new(shots), &sample_plan)
}

/// Like [`monte_carlo_fidelity`], but with an explicit [`ShotConfig`]
/// controlling shot count and worker threads.
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot.
pub fn monte_carlo_fidelity_with(
    gates: &[Gate],
    input: &PathState,
    config: &ShotConfig,
    sample_plan: impl Fn(u64) -> FaultPlan + Sync,
) -> Result<FidelityEstimate, SimError> {
    run_shots(gates, input, None, config, &sample_plan)
}

/// Like [`monte_carlo_fidelity`], but each shot's fidelity is computed on
/// the reduced state over `keep` (typically the address and bus registers),
/// tracing out the QRAM tree — the fidelity notion under which
/// bucket-brigade QRAM is resilient to generic noise.
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot.
pub fn monte_carlo_reduced_fidelity(
    gates: &[Gate],
    input: &PathState,
    keep: &[qram_circuit::Qubit],
    shots: usize,
    sample_plan: impl Fn(u64) -> FaultPlan + Sync,
) -> Result<FidelityEstimate, SimError> {
    run_shots(
        gates,
        input,
        Some(keep),
        &ShotConfig::new(shots),
        &sample_plan,
    )
}

/// Like [`monte_carlo_reduced_fidelity`], but with an explicit
/// [`ShotConfig`] controlling shot count and worker threads.
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot.
pub fn monte_carlo_reduced_fidelity_with(
    gates: &[Gate],
    input: &PathState,
    keep: &[qram_circuit::Qubit],
    config: &ShotConfig,
    sample_plan: impl Fn(u64) -> FaultPlan + Sync,
) -> Result<FidelityEstimate, SimError> {
    run_shots(gates, input, Some(keep), config, &sample_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, Pauli};
    use qram_circuit::{Circuit, Qubit};

    #[test]
    fn estimate_statistics() {
        let est = FidelityEstimate::from_samples(&[1.0, 0.0, 1.0, 0.0]);
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert!(est.std_error > 0.0);
        assert_eq!(est.shots, 4);

        let empty = FidelityEstimate::from_samples(&[]);
        assert_eq!(empty.shots, 0);

        let single = FidelityEstimate::from_samples(&[0.7]);
        assert_eq!(single.std_error, 0.0);
    }

    #[test]
    fn deterministic_x_fault_kills_fidelity() {
        // X on the single qubit of an empty circuit: ⟨0|1⟩ = 0.
        let c = Circuit::new(1);
        let input = PathState::computational_basis(1);
        let est = monte_carlo_fidelity(c.gates(), &input, 8, |_| {
            [Fault::new(0, Qubit(0), Pauli::X)].into_iter().collect()
        })
        .unwrap();
        assert!(est.mean < 1e-12);
    }

    #[test]
    fn alternating_faults_average() {
        let c = Circuit::new(1);
        let input = PathState::computational_basis(1);
        let est = monte_carlo_fidelity(c.gates(), &input, 10, |shot| {
            if shot % 2 == 0 {
                FaultPlan::new()
            } else {
                [Fault::new(0, Qubit(0), Pauli::X)].into_iter().collect()
            }
        })
        .unwrap();
        assert!((est.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_shots() {
        let est = FidelityEstimate::from_samples(&[1.0, 1.0]);
        assert!(est.to_string().contains("2 shots"));
    }
}
