//! Packed computational-basis states.

/// A fixed-length bit vector representing one computational basis state.
///
/// Bit `i` corresponds to qubit `i` (`1` = |1⟩). Bits are packed into `u64`
/// words; QRAM simulations at `m = 8` use ~1000 qubits, i.e. 16 words per
/// path, so cloning paths stays cheap.
///
/// ```
/// use qram_sim::BitString;
/// let mut b = BitString::zeros(70);
/// b.set(69, true);
/// b.flip(3);
/// assert!(b.get(69) && b.get(3) && !b.get(4));
/// assert_eq!(b.count_ones(), 2);
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl Clone for BitString {
    fn clone(&self) -> Self {
        BitString {
            words: self.words.clone(),
            len: self.len,
        }
    }

    /// Allocation-reusing overwrite: the existing word buffer is rewritten
    /// in place when its capacity suffices (the hot reset path of the
    /// Monte-Carlo shot engine's scratch states).
    fn clone_from(&mut self, source: &Self) {
        self.words.clear();
        self.words.extend_from_slice(&source.words);
        self.len = source.len;
    }
}

impl BitString {
    /// The all-zero basis state on `len` qubits.
    pub fn zeros(len: usize) -> Self {
        BitString {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a basis state from the low `len` bits of `value`
    /// (bit `i` of `value` → qubit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `len < 64` and `value` has bits above `len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        if len < 64 {
            assert!(
                value >> len == 0,
                "value {value} does not fit in {len} bits"
            );
        }
        let mut b = BitString::zeros(len.max(1));
        b.words[0] = value;
        b.len = len;
        b
    }

    /// Builds a basis state from a bit iterator (qubit 0 first).
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut b = BitString::zeros(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            b.set(i, v);
        }
        b
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string has zero qubits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Swaps bits `i` and `j`.
    #[inline]
    pub fn swap_bits(&mut self, i: usize, j: usize) {
        let (bi, bj) = (self.get(i), self.get(j));
        if bi != bj {
            self.flip(i);
            self.flip(j);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Interprets qubits `qubits[0..]` as an unsigned integer with
    /// `qubits[0]` as the **most significant** bit — the address register
    /// convention used by the QRAM generators.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 qubits are requested or any index is out of
    /// range.
    pub fn read_msb_first(&self, qubits: &[usize]) -> u64 {
        assert!(
            qubits.len() <= 64,
            "cannot read more than 64 bits into a u64"
        );
        let mut v = 0u64;
        for &q in qubits {
            v = (v << 1) | self.get(q) as u64;
        }
        v
    }

    /// Writes the unsigned integer `value` into `qubits` with `qubits[0]`
    /// as the most significant bit.
    pub fn write_msb_first(&mut self, qubits: &[usize], value: u64) {
        let n = qubits.len();
        assert!(n <= 64);
        for (i, &q) in qubits.iter().enumerate() {
            self.set(q, (value >> (n - 1 - i)) & 1 == 1);
        }
    }

    /// Iterates over bits (qubit 0 first).
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The packed word buffer (at least `len.div_ceil(64)` words).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a basis state from packed words (the `PathState` slab
    /// layout): exactly `len.div_ceil(64)` words, bit `i` of the string at
    /// word `i / 64`, bit `i % 64`.
    pub(crate) fn from_words(words: &[u64], len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        BitString {
            words: words.to_vec(),
            len,
        }
    }
}

impl std::fmt::Display for BitString {
    /// Renders qubit 0 leftmost, e.g. `|0110⟩`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "|")?;
        for i in 0..self.len {
            write!(f, "{}", self.get(i) as u8)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip_across_word_boundary() {
        let mut b = BitString::zeros(130);
        for i in [0, 63, 64, 127, 128, 129] {
            assert!(!b.get(i));
            b.flip(i);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 6);
        b.set(64, false);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn from_u64_round_trips() {
        let b = BitString::from_u64(0b1011, 4);
        assert!(b.get(0) && b.get(1) && !b.get(2) && b.get(3));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_overflow() {
        let _ = BitString::from_u64(0b10000, 4);
    }

    #[test]
    fn swap_bits_exchanges_values() {
        let mut b = BitString::from_bits([true, false, false]);
        b.swap_bits(0, 2);
        assert_eq!(b, BitString::from_bits([false, false, true]));
        // Swapping equal bits is a no-op.
        b.swap_bits(0, 1);
        assert_eq!(b, BitString::from_bits([false, false, true]));
    }

    #[test]
    fn msb_first_round_trip() {
        let mut b = BitString::zeros(8);
        let regs = [2usize, 4, 6];
        b.write_msb_first(&regs, 0b101);
        assert!(b.get(2) && !b.get(4) && b.get(6));
        assert_eq!(b.read_msb_first(&regs), 0b101);
    }

    #[test]
    fn display_qubit_zero_leftmost() {
        let b = BitString::from_bits([true, false, true]);
        assert_eq!(b.to_string(), "|101⟩");
    }

    #[test]
    fn hash_and_eq_agree() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(BitString::from_u64(5, 8));
        assert!(set.contains(&BitString::from_u64(5, 8)));
        assert!(!set.contains(&BitString::from_u64(6, 8)));
    }
}
