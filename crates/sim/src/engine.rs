//! Sharded, deterministic parallel Monte-Carlo shot engine.
//!
//! The engine splits a run of `shots` trajectories into per-thread
//! *shards* executed under [`std::thread::scope`] — no work stealing, no
//! external dependencies. Determinism across thread counts is structural,
//! not accidental:
//!
//! * the sampler contract is `Fn(shot) -> FaultPlan`: every shot's fault
//!   pattern is a pure function of the shot index (samplers derive an
//!   independent RNG stream per shot), so the pattern a shot receives
//!   cannot depend on which shard runs it;
//! * every shot writes its fidelity into `samples[shot]`, and the final
//!   [`FidelityEstimate`] folds that vector in index order — the same
//!   floating-point reduction regardless of sharding.
//!
//! Together these make the estimate **bit-identical** for any `threads`
//! value, which is what lets `--threads` be a pure throughput knob in the
//! reproduction binaries.
//!
//! Each shard additionally reuses one scratch [`PathState`], resetting it
//! from the input via the allocation-reusing [`Clone::clone_from`] instead
//! of cloning a fresh state per shot — the per-shot allocation the serial
//! harness used to pay.

use std::num::NonZeroUsize;
use std::thread;

use qram_circuit::{Gate, Qubit};

use crate::{run_with_faults, FaultPlan, FidelityEstimate, PathState, SimError};

/// Configuration of one Monte-Carlo fidelity run.
///
/// `seed` is not consumed by the engine itself — shot randomness lives in
/// the sampler closure — but rides along so one value can be threaded
/// from a CLI flag through sampler construction and into the engine
/// (see `qram-bench`).
///
/// ```
/// use qram_sim::ShotConfig;
/// let config = ShotConfig::new(1024).with_seed(7).with_threads(4);
/// assert_eq!(config.shots, 1024);
/// assert_eq!(config.resolved_threads(), 4);
/// // threads = 0 resolves to the machine's available parallelism.
/// assert!(ShotConfig::new(8).resolved_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotConfig {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Master RNG seed for the fault sampler (not used by the engine).
    pub seed: u64,
    /// Worker threads; `0` means all available cores.
    pub threads: usize,
}

impl ShotConfig {
    /// The default master seed (the paper's venue year).
    pub const DEFAULT_SEED: u64 = 2023;

    /// A config with the default seed and automatic thread count.
    pub fn new(shots: usize) -> Self {
        ShotConfig {
            shots,
            seed: Self::DEFAULT_SEED,
            threads: 0,
        }
    }

    /// A single-threaded config (the serial reference path).
    pub fn serial(shots: usize) -> Self {
        ShotConfig::new(shots).with_threads(1)
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective worker count: `threads`, or the machine's available
    /// parallelism when `threads == 0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

impl Default for ShotConfig {
    fn default() -> Self {
        ShotConfig::new(0)
    }
}

/// Runs `config.shots` noisy trajectories of `gates` on `input` and
/// estimates the fidelity against the noise-free run — over the full
/// state, or reduced to `keep` when given (see
/// [`PathState::reduced_fidelity`]).
///
/// `sample_plan` is called exactly once per shot with the shot index and
/// must return that shot's fault pattern; it must be a pure function of
/// the index (up to its own captured seed) for the determinism guarantee
/// to hold. Shots whose plan is empty short-circuit to fidelity 1 without
/// replaying the circuit.
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot
/// (by lowest shard; all shards run to completion or error independently).
pub fn run_shots(
    gates: &[Gate],
    input: &PathState,
    keep: Option<&[Qubit]>,
    config: &ShotConfig,
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
) -> Result<FidelityEstimate, SimError> {
    let mut ideal = input.clone();
    run_with_faults(gates, &mut ideal, &FaultPlan::new())?;

    let shots = config.shots;
    if shots == 0 {
        return Ok(FidelityEstimate::from_samples(&[]));
    }
    let threads = config.resolved_threads().min(shots).max(1);
    let mut samples = vec![0.0f64; shots];

    if threads == 1 {
        run_shard(gates, input, &ideal, keep, 0, &mut samples, sample_plan)?;
    } else {
        // Contiguous sharding: shard `i` owns shots [i·chunk, (i+1)·chunk).
        // Shot indices are global, so the shard boundaries never influence
        // which plan a shot receives.
        let chunk = shots.div_ceil(threads);
        let ideal_ref = &ideal;
        let results: Vec<Result<(), SimError>> = thread::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, out)| {
                    scope.spawn(move || {
                        run_shard(
                            gates,
                            input,
                            ideal_ref,
                            keep,
                            (i * chunk) as u64,
                            out,
                            sample_plan,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shot shard panicked"))
                .collect()
        });
        for result in results {
            result?;
        }
    }
    Ok(FidelityEstimate::from_samples(&samples))
}

/// Runs one shard's contiguous shot range, writing fidelities into `out`.
fn run_shard(
    gates: &[Gate],
    input: &PathState,
    ideal: &PathState,
    keep: Option<&[Qubit]>,
    first_shot: u64,
    out: &mut [f64],
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
) -> Result<(), SimError> {
    // One scratch state per shard, reset (not reallocated) per shot.
    let mut scratch = PathState::zero_vector(input.num_qubits());
    for (i, slot) in out.iter_mut().enumerate() {
        let plan = sample_plan(first_shot + i as u64);
        if plan.is_empty() {
            // Fault-free shot: fidelity is exactly 1; skip the replay.
            *slot = 1.0;
            continue;
        }
        scratch.clone_from(input);
        run_with_faults(gates, &mut scratch, &plan)?;
        *slot = match keep {
            None => ideal.fidelity(&scratch),
            Some(keep) => ideal.reduced_fidelity(&scratch, keep),
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, Pauli};
    use qram_circuit::{Circuit, Qubit};

    /// A cheap deterministic per-shot sampler: X-faults qubit 0 on shots
    /// whose mixed index hashes odd, Z-faults every third shot.
    fn pseudo_random_plan(shot: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let h = shot.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        if h % 2 == 1 {
            plan.push(Fault::new(0, Qubit(0), Pauli::X));
        }
        if shot.is_multiple_of(3) {
            plan.push(Fault::new(1, Qubit(1), Pauli::Z));
        }
        plan
    }

    fn test_circuit() -> (Circuit, PathState) {
        let mut c = Circuit::new(3);
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(1)));
        c.push(qram_circuit::Gate::cx(Qubit(1), Qubit(2)));
        let input = PathState::uniform_over(3, &[Qubit(0)]);
        (c, input)
    }

    #[test]
    fn identical_estimates_across_thread_counts() {
        let (c, input) = test_circuit();
        let mut estimates = Vec::new();
        for threads in [1usize, 2, 3, 4, 7] {
            let config = ShotConfig::new(64).with_threads(threads);
            let est = run_shots(c.gates(), &input, None, &config, &pseudo_random_plan).unwrap();
            estimates.push(est);
        }
        for est in &estimates[1..] {
            // Bit-identical, not approximately equal.
            assert_eq!(est, &estimates[0]);
        }
    }

    #[test]
    fn reduced_estimates_identical_across_thread_counts() {
        // Compute–uncompute via the ancilla (qubit 2) so the ideal output
        // leaves it clean — reduced fidelity needs a clean reference.
        let mut c = Circuit::new(3);
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        c.push(qram_circuit::Gate::cx(Qubit(2), Qubit(1)));
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        let input = PathState::uniform_over(3, &[Qubit(0)]);
        let keep = [Qubit(0), Qubit(1)];
        let one = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::serial(48),
            &pseudo_random_plan,
        )
        .unwrap();
        let four = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::new(48).with_threads(4),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn zero_shots_yields_empty_estimate() {
        let (c, input) = test_circuit();
        let est = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(0),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(est.shots, 0);
    }

    #[test]
    fn more_threads_than_shots_is_fine() {
        let (c, input) = test_circuit();
        let est = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(3).with_threads(16),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(est.shots, 3);
    }

    #[test]
    fn errors_propagate_from_worker_shards() {
        let (c, input) = test_circuit();
        // Fault on a qubit beyond the state: every noisy shot errors.
        let bad_plan =
            |_: u64| -> FaultPlan { [Fault::new(0, Qubit(40), Pauli::X)].into_iter().collect() };
        let err = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(16).with_threads(4),
            &bad_plan,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::QubitOutOfRange { .. }));
    }

    #[test]
    fn serial_config_constructor() {
        let config = ShotConfig::serial(10);
        assert_eq!(config.threads, 1);
        assert_eq!(config.resolved_threads(), 1);
        assert_eq!(config.seed, ShotConfig::DEFAULT_SEED);
    }
}
