//! Sharded, deterministic parallel Monte-Carlo shot engine with
//! two-level parallelism: threads across *shots*, chunks across *paths*.
//!
//! The engine splits a run of `shots` trajectories into per-thread
//! *shards* executed under [`std::thread::scope`] — no work stealing, no
//! external dependencies. Determinism across thread counts is structural,
//! not accidental:
//!
//! * the sampler contract is `Fn(shot) -> FaultPlan`: every shot's fault
//!   pattern is a pure function of the shot index (samplers derive an
//!   independent RNG stream per shot), so the pattern a shot receives
//!   cannot depend on which shard runs it;
//! * every shot writes its fidelity into `samples[shot]`, and the final
//!   [`FidelityEstimate`] folds that vector in index order — the same
//!   floating-point reduction regardless of sharding;
//! * within a shot, the path-parallel executor
//!   ([`crate::run_with_faults_chunked`]) is bit-identical to the serial
//!   one because paths never interact during gate application — chunking
//!   changes which thread transforms a path, never the operations applied
//!   to it, and the overlap reductions always run serially over the
//!   reassembled slab in global path order.
//!
//! Together these make the estimate **bit-identical** for any
//! `(threads, path_chunks)` pair, which is what lets `--threads` and
//! `--path-chunks` be pure throughput knobs in the reproduction binaries.
//!
//! The two levels compose without oversubscription: when either knob is
//! `0` (auto), the resolution divides the machine's available parallelism
//! by the other knob, so `threads × path_chunks` never exceeds the core
//! count unless both are pinned explicitly. Spend threads on shots
//! (cheap, embarrassingly parallel) when `shots ≥ cores`; spend them on
//! paths when individual shots are wide (`m ≥ 8`, thousands of paths) and
//! shots are few.
//!
//! Each shard additionally reuses one scratch [`PathState`], resetting it
//! from the input via the allocation-reusing [`Clone::clone_from`] instead
//! of cloning a fresh state per shot — the per-shot allocation the serial
//! harness used to pay.

use std::num::NonZeroUsize;
use std::thread;

use qram_circuit::{Gate, Qubit};

use crate::{
    run_with_faults, run_with_faults_chunked, FaultPlan, FidelityEstimate, PathState, SimError,
};

fn available_cores() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Configuration of one Monte-Carlo fidelity run.
///
/// `seed` is not consumed by the engine itself — shot randomness lives in
/// the sampler closure — but rides along so one value can be threaded
/// from a CLI flag through sampler construction and into the engine
/// (see `qram-bench`).
///
/// ```
/// use qram_sim::ShotConfig;
/// let config = ShotConfig::new(1024).with_seed(7).with_threads(4);
/// assert_eq!(config.shots, 1024);
/// assert_eq!(config.resolved_threads(), 4);
/// // Path chunking defaults to 1 (serial within a shot).
/// assert_eq!(config.resolved_path_chunks(), 1);
/// // threads = 0 resolves to the machine's available parallelism.
/// assert!(ShotConfig::new(8).resolved_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotConfig {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Master RNG seed for the fault sampler (not used by the engine).
    pub seed: u64,
    /// Worker threads across shots; `0` means auto (available cores
    /// divided by the path-chunk count).
    pub threads: usize,
    /// Parallel path chunks within each shot; `1` (the default) keeps the
    /// per-shot gate loop serial, `0` means auto (available cores divided
    /// by the thread count). Results are bit-identical for any value.
    pub path_chunks: usize,
}

impl ShotConfig {
    /// The default master seed (the paper's venue year).
    pub const DEFAULT_SEED: u64 = 2023;

    /// A config with the default seed, automatic thread count, and serial
    /// per-shot execution (`path_chunks = 1`).
    pub fn new(shots: usize) -> Self {
        ShotConfig {
            shots,
            seed: Self::DEFAULT_SEED,
            threads: 0,
            path_chunks: 1,
        }
    }

    /// A single-threaded config (the serial reference path).
    pub fn serial(shots: usize) -> Self {
        ShotConfig::new(shots).with_threads(1)
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-shot path-chunk count (`0` = auto, `1` =
    /// serial). Results are bit-identical for any value.
    pub fn with_path_chunks(mut self, path_chunks: usize) -> Self {
        self.path_chunks = path_chunks;
        self
    }

    /// The effective worker count: `threads`, or — when `threads == 0` —
    /// the machine's available parallelism divided by the pinned
    /// path-chunk count, so the two levels compose without
    /// oversubscribing the cores.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            (available_cores() / self.path_chunks.max(1)).max(1)
        }
    }

    /// The effective per-shot path-chunk count: `path_chunks`, or — when
    /// `path_chunks == 0` — the machine's available parallelism divided
    /// by the resolved thread count.
    pub fn resolved_path_chunks(&self) -> usize {
        if self.path_chunks > 0 {
            self.path_chunks
        } else {
            (available_cores() / self.resolved_threads()).max(1)
        }
    }
}

impl Default for ShotConfig {
    fn default() -> Self {
        ShotConfig::new(0)
    }
}

/// Work counters accumulated by a shot run, summed over all shards.
///
/// Every field is **knob-invariant**: fault plans are pure functions of
/// the shot index, so which shots replay (and how many faults/gates
/// they touch) cannot depend on `(threads, path_chunks)` — the stats,
/// like the estimate, are bit-identical across the whole parallelism
/// matrix. Being plain `u64` sums, shard-local stats merge exactly in
/// any order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShotStats {
    /// Shots sampled.
    pub shots: u64,
    /// Shots whose fault plan was non-empty and replayed the circuit.
    pub replayed: u64,
    /// Total faults injected across all replayed shots.
    pub faults: u64,
    /// Gate applications performed by replayed shots
    /// (`replayed shots × circuit length`).
    pub gate_applications: u64,
}

impl ShotStats {
    /// Adds another shard's counters into this one.
    pub fn merge_from(&mut self, other: &ShotStats) {
        self.shots += other.shots;
        self.replayed += other.replayed;
        self.faults += other.faults;
        self.gate_applications += other.gate_applications;
    }

    /// Feeds the counters into a telemetry [`Recorder`].
    ///
    /// [`Recorder`]: qram_telemetry::Recorder
    pub fn record_into(&self, recorder: &mut impl qram_telemetry::Recorder) {
        recorder.add(qram_telemetry::key::SIM_SHOTS, self.shots);
        recorder.add(qram_telemetry::key::SIM_REPLAYED, self.replayed);
        recorder.add(qram_telemetry::key::SIM_FAULTS, self.faults);
        recorder.add(qram_telemetry::key::SIM_GATES, self.gate_applications);
    }
}

/// Runs `config.shots` noisy trajectories of `gates` on `input` and
/// estimates the fidelity against the noise-free run — over the full
/// state, or reduced to `keep` when given (see
/// [`PathState::reduced_fidelity`]).
///
/// `sample_plan` is called exactly once per shot with the shot index and
/// must return that shot's fault pattern; it must be a pure function of
/// the index (up to its own captured seed) for the determinism guarantee
/// to hold. Shots whose plan is empty short-circuit to fidelity 1 without
/// replaying the circuit.
///
/// The estimate is bit-identical for every `(threads, path_chunks)`
/// combination: shot sharding only re-partitions which thread runs a
/// shot, and path chunking only re-partitions which thread transforms a
/// path (see [`crate::run_with_faults_chunked`]).
///
/// # Errors
///
/// Propagates the first simulation error from the ideal run or any shot
/// (by lowest shard; all shards run to completion or error independently).
pub fn run_shots(
    gates: &[Gate],
    input: &PathState,
    keep: Option<&[Qubit]>,
    config: &ShotConfig,
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
) -> Result<FidelityEstimate, SimError> {
    run_shots_stats(gates, input, keep, config, sample_plan).map(|(estimate, _)| estimate)
}

/// [`run_shots`] with per-shard work counters: returns the estimate
/// together with the [`ShotStats`] summed over all shards (in shard
/// order, though `u64` addition makes the order immaterial).
///
/// The stats are bit-identical across `(threads, path_chunks)` for the
/// same reason the estimate is — see [`ShotStats`].
///
/// # Errors
///
/// Same contract as [`run_shots`].
pub fn run_shots_stats(
    gates: &[Gate],
    input: &PathState,
    keep: Option<&[Qubit]>,
    config: &ShotConfig,
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
) -> Result<(FidelityEstimate, ShotStats), SimError> {
    let path_chunks = config.resolved_path_chunks();
    let mut ideal = input.clone();
    run_with_faults_chunked(gates, &mut ideal, &FaultPlan::new(), path_chunks)?;

    let shots = config.shots;
    if shots == 0 {
        return Ok((FidelityEstimate::from_samples(&[]), ShotStats::default()));
    }
    let threads = config.resolved_threads().min(shots).max(1);
    let mut samples = vec![0.0f64; shots];
    let mut stats = ShotStats::default();

    if threads == 1 {
        stats = run_shard(
            gates,
            input,
            &ideal,
            keep,
            0,
            path_chunks,
            &mut samples,
            sample_plan,
        )?;
    } else {
        // Contiguous sharding: shard `i` owns shots [i·chunk, (i+1)·chunk).
        // Shot indices are global, so the shard boundaries never influence
        // which plan a shot receives.
        let chunk = shots.div_ceil(threads);
        let ideal_ref = &ideal;
        let results: Vec<Result<ShotStats, SimError>> = thread::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, out)| {
                    scope.spawn(move || {
                        run_shard(
                            gates,
                            input,
                            ideal_ref,
                            keep,
                            (i * chunk) as u64,
                            path_chunks,
                            out,
                            sample_plan,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shot shard panicked"))
                .collect()
        });
        for result in results {
            stats.merge_from(&result?);
        }
    }
    Ok((FidelityEstimate::from_samples(&samples), stats))
}

/// [`run_shots_stats`] that feeds the counters straight into a
/// telemetry [`Recorder`](qram_telemetry::Recorder) — the engine-side
/// end of the instrumentation thread running through the service.
///
/// # Errors
///
/// Same contract as [`run_shots`]; nothing is recorded on error.
pub fn run_shots_recorded(
    gates: &[Gate],
    input: &PathState,
    keep: Option<&[Qubit]>,
    config: &ShotConfig,
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
    recorder: &mut impl qram_telemetry::Recorder,
) -> Result<FidelityEstimate, SimError> {
    let (estimate, stats) = run_shots_stats(gates, input, keep, config, sample_plan)?;
    stats.record_into(recorder);
    Ok(estimate)
}

/// Runs one shard's contiguous shot range, writing fidelities into `out`.
///
/// Each noisy shot replays the circuit over `path_chunks` parallel path
/// ranges of the scratch slab; the overlap reduction then runs serially
/// over the whole slab, so the sample value is bit-identical to the
/// serial engine's.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    gates: &[Gate],
    input: &PathState,
    ideal: &PathState,
    keep: Option<&[Qubit]>,
    first_shot: u64,
    path_chunks: usize,
    out: &mut [f64],
    sample_plan: &(impl Fn(u64) -> FaultPlan + Sync),
) -> Result<ShotStats, SimError> {
    // One scratch state per shard, reset (not reallocated) per shot.
    let mut scratch = PathState::zero_vector(input.num_qubits());
    let mut stats = ShotStats::default();
    for (i, slot) in out.iter_mut().enumerate() {
        let plan = sample_plan(first_shot + i as u64);
        stats.shots += 1;
        if plan.is_empty() {
            // Fault-free shot: fidelity is exactly 1; skip the replay.
            *slot = 1.0;
            continue;
        }
        stats.replayed += 1;
        stats.faults += plan.len() as u64;
        stats.gate_applications += gates.len() as u64;
        scratch.clone_from(input);
        if path_chunks > 1 {
            run_with_faults_chunked(gates, &mut scratch, &plan, path_chunks)?;
        } else {
            run_with_faults(gates, &mut scratch, &plan)?;
        }
        *slot = match keep {
            None => ideal.fidelity(&scratch),
            Some(keep) => ideal.reduced_fidelity(&scratch, keep),
        };
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, Pauli};
    use qram_circuit::{Circuit, Qubit};

    /// A cheap deterministic per-shot sampler: X-faults qubit 0 on shots
    /// whose mixed index hashes odd, Z-faults every third shot.
    fn pseudo_random_plan(shot: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let h = shot.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        if h % 2 == 1 {
            plan.push(Fault::new(0, Qubit(0), Pauli::X));
        }
        if shot.is_multiple_of(3) {
            plan.push(Fault::new(1, Qubit(1), Pauli::Z));
        }
        plan
    }

    fn test_circuit() -> (Circuit, PathState) {
        let mut c = Circuit::new(3);
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(1)));
        c.push(qram_circuit::Gate::cx(Qubit(1), Qubit(2)));
        let input = PathState::uniform_over(3, &[Qubit(0)]);
        (c, input)
    }

    #[test]
    fn identical_estimates_across_thread_counts() {
        let (c, input) = test_circuit();
        let mut estimates = Vec::new();
        for threads in [1usize, 2, 3, 4, 7] {
            let config = ShotConfig::new(64).with_threads(threads);
            let est = run_shots(c.gates(), &input, None, &config, &pseudo_random_plan).unwrap();
            estimates.push(est);
        }
        for est in &estimates[1..] {
            // Bit-identical, not approximately equal.
            assert_eq!(est, &estimates[0]);
        }
    }

    #[test]
    fn reduced_estimates_identical_across_thread_counts() {
        // Compute–uncompute via the ancilla (qubit 2) so the ideal output
        // leaves it clean — reduced fidelity needs a clean reference.
        let mut c = Circuit::new(3);
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        c.push(qram_circuit::Gate::cx(Qubit(2), Qubit(1)));
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        let input = PathState::uniform_over(3, &[Qubit(0)]);
        let keep = [Qubit(0), Qubit(1)];
        let one = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::serial(48),
            &pseudo_random_plan,
        )
        .unwrap();
        let four = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::new(48).with_threads(4),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn identical_estimates_across_thread_and_chunk_matrix() {
        let (c, input) = test_circuit();
        let reference = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(64).with_threads(1).with_path_chunks(1),
            &pseudo_random_plan,
        )
        .unwrap();
        for threads in [1usize, 2, 4] {
            for chunks in [0usize, 1, 2, 4] {
                let config = ShotConfig::new(64)
                    .with_threads(threads)
                    .with_path_chunks(chunks);
                let est = run_shots(c.gates(), &input, None, &config, &pseudo_random_plan).unwrap();
                // Bit-identical, not approximately equal.
                assert_eq!(est, reference, "threads={threads} chunks={chunks}");
            }
        }
    }

    #[test]
    fn reduced_estimates_identical_across_chunk_counts() {
        let mut c = Circuit::new(3);
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        c.push(qram_circuit::Gate::cx(Qubit(2), Qubit(1)));
        c.push(qram_circuit::Gate::cx(Qubit(0), Qubit(2)));
        let input = PathState::uniform_over(3, &[Qubit(0)]);
        let keep = [Qubit(0), Qubit(1)];
        let serial = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::serial(48),
            &pseudo_random_plan,
        )
        .unwrap();
        let chunked = run_shots(
            c.gates(),
            &input,
            Some(&keep),
            &ShotConfig::new(48).with_threads(2).with_path_chunks(2),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(serial, chunked);
    }

    #[test]
    fn auto_resolution_never_oversubscribes() {
        // Pinning one knob and leaving the other on auto must keep
        // threads × chunks within the core count.
        let cores = super::available_cores();
        let auto_chunks = ShotConfig::new(8).with_threads(2).with_path_chunks(0);
        assert!(auto_chunks.resolved_path_chunks() * 2 <= cores.max(2));
        let auto_threads = ShotConfig::new(8).with_threads(0).with_path_chunks(2);
        assert!(auto_threads.resolved_threads() * 2 <= cores.max(2));
        // Both auto: threads fill the machine, chunks stay serial.
        let both = ShotConfig::new(8).with_threads(0).with_path_chunks(0);
        assert_eq!(both.resolved_threads(), cores);
        assert_eq!(both.resolved_path_chunks(), 1);
    }

    #[test]
    fn errors_propagate_from_chunked_shots() {
        let (c, input) = test_circuit();
        let bad_plan =
            |_: u64| -> FaultPlan { [Fault::new(0, Qubit(40), Pauli::X)].into_iter().collect() };
        let err = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(8).with_threads(2).with_path_chunks(2),
            &bad_plan,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::QubitOutOfRange { .. }));
    }

    #[test]
    fn zero_shots_yields_empty_estimate() {
        let (c, input) = test_circuit();
        let est = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(0),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(est.shots, 0);
    }

    #[test]
    fn more_threads_than_shots_is_fine() {
        let (c, input) = test_circuit();
        let est = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(3).with_threads(16),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(est.shots, 3);
    }

    #[test]
    fn errors_propagate_from_worker_shards() {
        let (c, input) = test_circuit();
        // Fault on a qubit beyond the state: every noisy shot errors.
        let bad_plan =
            |_: u64| -> FaultPlan { [Fault::new(0, Qubit(40), Pauli::X)].into_iter().collect() };
        let err = run_shots(
            c.gates(),
            &input,
            None,
            &ShotConfig::new(16).with_threads(4),
            &bad_plan,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::QubitOutOfRange { .. }));
    }

    #[test]
    fn shot_stats_identical_across_thread_and_chunk_matrix() {
        let (c, input) = test_circuit();
        let (_, reference) = run_shots_stats(
            c.gates(),
            &input,
            None,
            &ShotConfig::serial(64),
            &pseudo_random_plan,
        )
        .unwrap();
        assert_eq!(reference.shots, 64);
        assert!(reference.replayed > 0);
        assert!(reference.faults >= reference.replayed);
        assert_eq!(
            reference.gate_applications,
            reference.replayed * c.gates().len() as u64
        );
        for threads in [2usize, 4, 7] {
            for chunks in [1usize, 2, 4] {
                let config = ShotConfig::new(64)
                    .with_threads(threads)
                    .with_path_chunks(chunks);
                let (_, stats) =
                    run_shots_stats(c.gates(), &input, None, &config, &pseudo_random_plan).unwrap();
                assert_eq!(stats, reference, "threads={threads} chunks={chunks}");
            }
        }
    }

    #[test]
    fn recorded_run_feeds_counters() {
        let (c, input) = test_circuit();
        let mut recorder = qram_telemetry::TelemetryRecorder::new();
        let config = ShotConfig::new(32).with_threads(2);
        let est = run_shots_recorded(
            c.gates(),
            &input,
            None,
            &config,
            &pseudo_random_plan,
            &mut recorder,
        )
        .unwrap();
        assert_eq!(est.shots, 32);
        let metrics = recorder.metrics();
        assert_eq!(metrics.counter(qram_telemetry::key::SIM_SHOTS), 32);
        assert!(metrics.counter(qram_telemetry::key::SIM_REPLAYED) > 0);
        assert!(
            metrics.counter(qram_telemetry::key::SIM_FAULTS)
                >= metrics.counter(qram_telemetry::key::SIM_REPLAYED)
        );
    }

    #[test]
    fn serial_config_constructor() {
        let config = ShotConfig::serial(10);
        assert_eq!(config.threads, 1);
        assert_eq!(config.resolved_threads(), 1);
        assert_eq!(config.seed, ShotConfig::DEFAULT_SEED);
    }
}
