//! Sparse superpositions over computational basis states, stored as a
//! flat data-oriented slab.

use std::collections::{BTreeMap, HashMap};

use qram_circuit::Qubit;

use crate::{Amplitude, BitString};

/// Amplitudes below this squared-modulus threshold are pruned.
const PRUNE_EPS: f64 = 1e-14;

/// Reads bit `i` from a packed word slice.
#[inline]
fn word_get(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Writes bit `i` of a packed word slice.
#[inline]
fn word_set(words: &mut [u64], i: usize, v: bool) {
    let mask = 1u64 << (i % 64);
    if v {
        words[i / 64] |= mask;
    } else {
        words[i / 64] &= !mask;
    }
}

/// Flips bit `i` of a packed word slice.
#[inline]
fn word_flip(words: &mut [u64], i: usize) {
    words[i / 64] ^= 1u64 << (i % 64);
}

/// Packs the bits of `words` selected by `idx` (in order) into a fresh
/// word vector — the substring-extraction primitive of the reduced
/// fidelity.
fn extract_bits(words: &[u64], idx: &[usize]) -> Vec<u64> {
    let mut out = vec![0u64; idx.len().div_ceil(64)];
    for (k, &i) in idx.iter().enumerate() {
        if word_get(words, i) {
            out[k / 64] |= 1u64 << (k % 64);
        }
    }
    out
}

/// A mutable view of one path's packed bits inside a [`PathState`] slab.
///
/// This is the argument type of [`PathState::permute_paths`] closures: it
/// exposes the same bit-level operations as [`BitString`] (`get`, `set`,
/// `flip`, `swap_bits`, MSB-first register reads/writes) but borrows the
/// path's words in place — the hot loop of the simulator touches no heap.
#[derive(Debug)]
pub struct PathBits<'a> {
    words: &'a mut [u64],
    len: usize,
}

impl PathBits<'_> {
    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the path has zero qubits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        word_get(self.words, i)
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        word_set(self.words, i, v);
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        word_flip(self.words, i);
    }

    /// Swaps bits `i` and `j`.
    #[inline]
    pub fn swap_bits(&mut self, i: usize, j: usize) {
        let (bi, bj) = (self.get(i), self.get(j));
        if bi != bj {
            self.flip(i);
            self.flip(j);
        }
    }

    /// Interprets `qubits` as an unsigned integer with `qubits[0]` as the
    /// **most significant** bit (the address-register convention).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 qubits are requested or any index is out of
    /// range.
    pub fn read_msb_first(&self, qubits: &[usize]) -> u64 {
        assert!(
            qubits.len() <= 64,
            "cannot read more than 64 bits into a u64"
        );
        let mut v = 0u64;
        for &q in qubits {
            v = (v << 1) | self.get(q) as u64;
        }
        v
    }

    /// Writes the unsigned integer `value` into `qubits` with `qubits[0]`
    /// as the most significant bit.
    pub fn write_msb_first(&mut self, qubits: &[usize], value: u64) {
        let n = qubits.len();
        assert!(n <= 64);
        for (i, &q) in qubits.iter().enumerate() {
            self.set(q, (value >> (n - 1 - i)) & 1 == 1);
        }
    }
}

/// A mutable view over a contiguous range of paths in a [`PathState`]
/// slab — the unit of work of the path-parallel executor. Views of
/// disjoint path ranges borrow disjoint slices, so chunked gate
/// application needs no locking and no `unsafe`.
#[derive(Debug)]
pub(crate) struct PathsMut<'a> {
    words: &'a mut [u64],
    amps: &'a mut [Amplitude],
    stride: usize,
    num_qubits: usize,
}

impl PathsMut<'_> {
    /// The hot iteration idiom: `chunks_exact_mut` walks the word slab
    /// one path at a time without per-path index arithmetic or bounds
    /// checks. A zero-qubit state has `stride == 0` (which
    /// `chunks_exact_mut` rejects), but then there is no bit any gate
    /// could legally touch, so the traversal is a no-op.
    #[inline]
    fn each_path(&mut self, mut f: impl FnMut(&mut [u64], &mut Amplitude)) {
        if self.stride == 0 {
            return;
        }
        for (words, amp) in self
            .words
            .chunks_exact_mut(self.stride)
            .zip(self.amps.iter_mut())
        {
            f(words, amp);
        }
    }

    /// Applies `X` on qubit `i`: flips the bit in every path.
    pub(crate) fn apply_x(&mut self, i: usize) {
        self.each_path(|words, _| word_flip(words, i));
    }

    /// Applies `Z` on qubit `i`: negates the amplitude of every path with
    /// the bit set.
    pub(crate) fn apply_z(&mut self, i: usize) {
        self.each_path(|words, amp| {
            if word_get(words, i) {
                *amp = -*amp;
            }
        });
    }

    /// Applies `Y = iXZ` on qubit `i`.
    pub(crate) fn apply_y(&mut self, i: usize) {
        self.each_path(|words, amp| {
            let was_one = word_get(words, i);
            word_flip(words, i);
            *amp = if was_one {
                amp.mul_neg_i()
            } else {
                amp.mul_i()
            };
        });
    }

    /// Applies a bit-level permutation `f` to every path in the view.
    pub(crate) fn permute_paths(&mut self, mut f: impl FnMut(&mut PathBits<'_>)) {
        let num_qubits = self.num_qubits;
        self.each_path(|words, _| {
            let mut bits = PathBits {
                words,
                len: num_qubits,
            };
            f(&mut bits);
        });
    }
}

/// A sparse quantum state: a set of basis states ("Feynman paths") with
/// complex amplitudes, stored structure-of-arrays.
///
/// Path `i` lives at `words[i·stride .. (i+1)·stride]` (its packed basis
/// state) and `amps[i]` (its amplitude) — two contiguous slabs instead of
/// per-path heap objects, so gate application streams linearly through
/// memory and the slab can be split into disjoint per-chunk views for the
/// path-parallel executor (`run_with_faults_chunked`).
///
/// Classical reversible gates permute basis states in place; Pauli `Z`
/// errors flip amplitude signs; `X` errors flip bits. No operation in the
/// QRAM gate family increases the number of paths, which is the storage
/// property the paper's simulator exploits (Sec. 6.2): memory is
/// `O(paths · qubits)`, independent of circuit depth.
///
/// ```
/// use qram_sim::PathState;
/// use qram_circuit::Qubit;
///
/// // Uniform superposition over a 2-bit address register (qubits 0-1),
/// // with 2 more work qubits.
/// let state = PathState::uniform_over(4, &[Qubit(0), Qubit(1)]);
/// assert_eq!(state.num_paths(), 4);
/// assert!((state.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct PathState {
    /// Packed basis states, `stride` words per path. Uniqueness of paths
    /// is an invariant: constructors deduplicate, and every mutation in
    /// the classical-reversible + Pauli family is injective on basis
    /// states.
    words: Vec<u64>,
    /// One amplitude per path; `amps.len()` is the path count.
    amps: Vec<Amplitude>,
    /// Words per path: `num_qubits.div_ceil(64)`.
    stride: usize,
    num_qubits: usize,
}

fn stride_for(num_qubits: usize) -> usize {
    num_qubits.div_ceil(64)
}

impl PathState {
    /// The all-zeros computational basis state |0…0⟩ on `num_qubits` qubits.
    pub fn computational_basis(num_qubits: usize) -> Self {
        let stride = stride_for(num_qubits);
        PathState {
            words: vec![0; stride],
            amps: vec![Amplitude::ONE],
            stride,
            num_qubits,
        }
    }

    /// A single basis state given by `bits`.
    pub fn basis_state(bits: BitString) -> Self {
        let num_qubits = bits.len();
        let stride = stride_for(num_qubits);
        PathState {
            words: bits.words()[..stride].to_vec(),
            amps: vec![Amplitude::ONE],
            stride,
            num_qubits,
        }
    }

    /// An empty (zero-vector) state; useful as an accumulator.
    pub fn zero_vector(num_qubits: usize) -> Self {
        PathState {
            words: Vec::new(),
            amps: Vec::new(),
            stride: stride_for(num_qubits),
            num_qubits,
        }
    }

    /// Builds a state from explicit `(basis state, amplitude)` pairs.
    /// Duplicate basis states accumulate; negligible amplitudes are
    /// dropped. The amplitudes are used as given (not normalized). Paths
    /// are stored in sorted basis-state order, so the construction is
    /// fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any basis state's length differs from `num_qubits`.
    pub fn from_parts(
        num_qubits: usize,
        entries: impl IntoIterator<Item = (BitString, Amplitude)>,
    ) -> Self {
        let stride = stride_for(num_qubits);
        // An ordered map keyed by the packed words: accumulation and the
        // resulting path order are independent of input order up to
        // floating-point addition order of true duplicates.
        let mut map: BTreeMap<Vec<u64>, Amplitude> = BTreeMap::new();
        for (bits, amp) in entries {
            assert_eq!(bits.len(), num_qubits, "basis state width mismatch");
            *map.entry(bits.words()[..stride].to_vec())
                .or_insert(Amplitude::ZERO) += amp;
        }
        let mut state = PathState::zero_vector(num_qubits);
        for (key, amp) in map {
            if amp.is_negligible(PRUNE_EPS) {
                continue;
            }
            state.words.extend_from_slice(&key);
            state.amps.push(amp);
        }
        state
    }

    /// A uniform superposition over all values of `register` (MSB-first),
    /// with all other qubits in |0⟩. This is the canonical QRAM query input
    /// `Σᵢ |i⟩/√N`.
    ///
    /// # Panics
    ///
    /// Panics if the register is longer than 32 qubits (2³² paths would not
    /// fit in memory) or any qubit is out of range.
    pub fn uniform_over(num_qubits: usize, register: &[Qubit]) -> Self {
        assert!(
            register.len() <= 32,
            "refusing to enumerate 2^{} paths",
            register.len()
        );
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        for &i in &indices {
            assert!(i < num_qubits, "qubit {i} out of range");
        }
        let n = 1u64 << register.len();
        let amp = Amplitude::real(1.0 / (n as f64).sqrt());
        let stride = stride_for(num_qubits);
        let mut state = PathState {
            words: vec![0u64; stride * n as usize],
            amps: vec![amp; n as usize],
            stride,
            num_qubits,
        };
        for v in 0..n {
            let p = v as usize;
            let mut bits = PathBits {
                words: &mut state.words[p * stride..(p + 1) * stride],
                len: num_qubits,
            };
            bits.write_msb_first(&indices, v);
        }
        state
    }

    /// A weighted superposition over values of `register` (MSB-first):
    /// `Σᵥ amplitudes[v] |v⟩`, other qubits |0⟩. Amplitudes are used as
    /// given (not normalized); entries with negligible amplitude are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() > 2^register.len()`.
    pub fn superposition_over(
        num_qubits: usize,
        register: &[Qubit],
        amplitudes: &[Amplitude],
    ) -> Self {
        assert!(
            (amplitudes.len() as u128) <= 1u128 << register.len(),
            "{} amplitudes do not fit in a {}-qubit register",
            amplitudes.len(),
            register.len()
        );
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        let stride = stride_for(num_qubits);
        let mut state = PathState::zero_vector(num_qubits);
        for (v, &amp) in amplitudes.iter().enumerate() {
            if amp.is_negligible(PRUNE_EPS) {
                continue;
            }
            let start = state.words.len();
            state.words.resize(start + stride, 0);
            let mut bits = PathBits {
                words: &mut state.words[start..],
                len: num_qubits,
            };
            bits.write_msb_first(&indices, v as u64);
            state.amps.push(amp);
        }
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of live paths (basis states with non-negligible amplitude).
    pub fn num_paths(&self) -> usize {
        self.amps.len()
    }

    /// The packed words of path `p`.
    #[inline]
    fn path_words(&self, p: usize) -> &[u64] {
        &self.words[p * self.stride..(p + 1) * self.stride]
    }

    /// A mutable view over the whole slab.
    pub(crate) fn as_paths_mut(&mut self) -> PathsMut<'_> {
        PathsMut {
            words: &mut self.words,
            amps: &mut self.amps,
            stride: self.stride,
            num_qubits: self.num_qubits,
        }
    }

    /// Splits the slab into `chunks` disjoint contiguous views of
    /// near-equal path count (the last view may be smaller; empty
    /// trailing views are dropped). Used by the path-parallel executor.
    pub(crate) fn chunk_views(&mut self, chunks: usize) -> Vec<PathsMut<'_>> {
        let paths = self.amps.len();
        let chunks = chunks.clamp(1, paths.max(1));
        let per = paths.div_ceil(chunks).max(1);
        let mut views = Vec::with_capacity(chunks);
        let stride = self.stride;
        let num_qubits = self.num_qubits;
        let mut words_rest: &mut [u64] = &mut self.words;
        let mut amps_rest: &mut [Amplitude] = &mut self.amps;
        while !amps_rest.is_empty() {
            let take = per.min(amps_rest.len());
            let (w, wr) = words_rest.split_at_mut(take * stride);
            let (a, ar) = amps_rest.split_at_mut(take);
            words_rest = wr;
            amps_rest = ar;
            views.push(PathsMut {
                words: w,
                amps: a,
                stride,
                num_qubits,
            });
        }
        views
    }

    /// Iterator over `(basis state, amplitude)` pairs in slab order.
    /// Basis states are materialized per item — intended for inspection
    /// and tests, not hot loops.
    pub fn iter(&self) -> impl Iterator<Item = (BitString, Amplitude)> + '_ {
        (0..self.num_paths()).map(|p| {
            (
                BitString::from_words(self.path_words(p), self.num_qubits),
                self.amps[p],
            )
        })
    }

    /// The amplitude of `bits` (zero if absent). O(paths) — intended for
    /// tests and small inspections; bulk overlaps use
    /// [`PathState::inner_product`].
    pub fn amplitude(&self, bits: &BitString) -> Amplitude {
        if bits.len() != self.num_qubits {
            return Amplitude::ZERO;
        }
        let key = &bits.words()[..self.stride];
        (0..self.num_paths())
            .find(|&p| self.path_words(p) == key)
            .map(|p| self.amps[p])
            .unwrap_or(Amplitude::ZERO)
    }

    /// Squared norm `Σ|α|²` (1.0 for any state produced by unitary
    /// evolution of a normalized input).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`. States over different qubit counts
    /// are orthogonal by convention (zero overlap).
    pub fn inner_product(&self, other: &PathState) -> Amplitude {
        if self.num_qubits != other.num_qubits {
            return Amplitude::ZERO;
        }
        // Index the larger state once, then stream the smaller one in slab
        // order. Only lookups touch the hash map — no hash iteration.
        let (small, large, conj_small) = if self.num_paths() <= other.num_paths() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let index: HashMap<&[u64], Amplitude> = (0..large.num_paths())
            .map(|p| (large.path_words(p), large.amps[p]))
            .collect();
        let mut acc = Amplitude::ZERO;
        for p in 0..small.num_paths() {
            let amp = small.amps[p];
            let other_amp = index
                .get(small.path_words(p))
                .copied()
                .unwrap_or(Amplitude::ZERO);
            if conj_small {
                // ⟨self|other⟩ = Σ conj(self) · other
                acc += amp.conj() * other_amp;
            } else {
                acc += other_amp.conj() * amp;
            }
        }
        acc
    }

    /// Query fidelity `|⟨self|other⟩|²` (paper Sec. 5 definition).
    pub fn fidelity(&self, other: &PathState) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Query fidelity of `other` against `self` after tracing out every
    /// qubit not in `keep`: `F = ⟨self_keep| Tr_rest(|other⟩⟨other|) |self_keep⟩`.
    ///
    /// QRAM query fidelity is a property of the address and bus registers;
    /// the router tree is an ancilla. A noisy shot can leave the tree in a
    /// corrupted-but-*unentangled* configuration that costs no query
    /// fidelity (the mechanism behind bucket-brigade's resilience), which
    /// full-state overlap misses. `self` plays the role of the ideal
    /// output, whose non-kept qubits must be a basis state on every path
    /// (true for any uncomputed query circuit); group-by-ancilla overlap
    /// then computes the reduced fidelity exactly:
    /// `F = Σ_z |⟨self_keep| ⊗ ⟨z| other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts, a kept qubit
    /// index is out of range, or `self`'s non-kept qubits are not in a
    /// constant basis state across its paths (i.e. `self` has dirty or
    /// entangled ancillas — the reduction is only defined against a
    /// clean reference).
    pub fn reduced_fidelity(&self, other: &PathState, keep: &[Qubit]) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit counts differ");
        let keep_idx: Vec<usize> = keep.iter().map(|q| q.index()).collect();
        for &i in &keep_idx {
            assert!(i < self.num_qubits, "kept qubit {i} out of range");
        }
        let mut kept_mask = vec![false; self.num_qubits];
        for &i in &keep_idx {
            kept_mask[i] = true;
        }
        let rest_idx: Vec<usize> = (0..self.num_qubits).filter(|&i| !kept_mask[i]).collect();

        // Ideal amplitudes keyed by the kept-qubit substring; the rest
        // substring must be constant or the reduction is ill-defined.
        // The map is lookup-only after construction.
        let mut ideal: HashMap<Vec<u64>, Amplitude> = HashMap::with_capacity(self.num_paths());
        let mut ideal_rest: Option<Vec<u64>> = None;
        for p in 0..self.num_paths() {
            let words = self.path_words(p);
            let rest = extract_bits(words, &rest_idx);
            match &ideal_rest {
                None => ideal_rest = Some(rest),
                Some(expected) => assert_eq!(
                    expected, &rest,
                    "reference state has entangled non-kept qubits"
                ),
            }
            *ideal
                .entry(extract_bits(words, &keep_idx))
                .or_insert(Amplitude::ZERO) += self.amps[p];
        }

        // Group the noisy paths by their traced-out substring and overlap
        // each group with the ideal kept-state. An ordered map keeps the
        // accumulation and final sum in deterministic (sorted) order.
        let mut groups: BTreeMap<Vec<u64>, Amplitude> = BTreeMap::new();
        for p in 0..other.num_paths() {
            let words = other.path_words(p);
            let kept = extract_bits(words, &keep_idx);
            if let Some(ideal_amp) = ideal.get(&kept) {
                let z = extract_bits(words, &rest_idx);
                *groups.entry(z).or_insert(Amplitude::ZERO) += ideal_amp.conj() * other.amps[p];
            }
        }
        groups.values().map(|a| a.norm_sqr()).sum()
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_of_one(&self, qubit: Qubit) -> f64 {
        let i = qubit.index();
        (0..self.num_paths())
            .filter(|&p| word_get(self.path_words(p), i))
            .map(|p| self.amps[p].norm_sqr())
            .sum()
    }

    /// Applies `X` on `qubit`: flips the bit in every path.
    pub fn apply_x(&mut self, qubit: Qubit) {
        self.as_paths_mut().apply_x(qubit.index());
    }

    /// Applies `Z` on `qubit`: negates the amplitude of every path with the
    /// bit set.
    pub fn apply_z(&mut self, qubit: Qubit) {
        self.as_paths_mut().apply_z(qubit.index());
    }

    /// Applies `Y = iXZ` on `qubit`: flips the bit and multiplies by
    /// `+i` (|0⟩→|1⟩) or `−i` (|1⟩→|0⟩).
    pub fn apply_y(&mut self, qubit: Qubit) {
        self.as_paths_mut().apply_y(qubit.index());
    }

    /// Applies a bit-level permutation `f` to every path **in place** —
    /// the hot loop of the simulator: no hashing, no allocation.
    ///
    /// `f` must be injective on the live paths (true for every reversible
    /// gate; checked in debug builds). For non-injective maps use
    /// [`PathState::from_parts`] to rebuild with accumulation.
    pub fn permute_paths(&mut self, f: impl FnMut(&mut PathBits<'_>)) {
        self.as_paths_mut().permute_paths(f);
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::with_capacity(self.num_paths());
            for p in 0..self.num_paths() {
                debug_assert!(
                    seen.insert(self.path_words(p)),
                    "permute_paths closure merged paths"
                );
            }
        }
    }

    /// Scales every amplitude by `1/norm` so the state is normalized.
    /// No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let s = 1.0 / n;
            for amp in &mut self.amps {
                *amp = amp.scale(s);
            }
        }
    }

    /// Whether every path holds |0⟩ on all of `qubits` (e.g. ancillas
    /// cleanly returned after uncomputation). Unlike
    /// [`PathState::classical_value`] this has no 64-qubit limit.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn is_zero_on(&self, qubits: &[Qubit]) -> bool {
        (0..self.num_paths()).all(|p| {
            let words = self.path_words(p);
            qubits.iter().all(|q| !word_get(words, q.index()))
        })
    }

    /// Reads the value of `register` (MSB-first) on every path; returns
    /// `Some(value)` only if all paths agree (i.e. the register is
    /// classical/unentangled in the computational basis).
    pub fn classical_value(&self, register: &[Qubit]) -> Option<u64> {
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        let mut value = None;
        for p in 0..self.num_paths() {
            let words = self.path_words(p);
            let mut v = 0u64;
            for &i in &indices {
                v = (v << 1) | word_get(words, i) as u64;
            }
            match value {
                None => value = Some(v),
                Some(prev) if prev != v => return None,
                _ => {}
            }
        }
        value
    }
}

impl Clone for PathState {
    fn clone(&self) -> Self {
        PathState {
            words: self.words.clone(),
            amps: self.amps.clone(),
            stride: self.stride,
            num_qubits: self.num_qubits,
        }
    }

    /// Allocation-reusing overwrite: the word and amplitude slabs are
    /// rewritten in place when their capacity suffices. This is the
    /// per-shot reset of the Monte-Carlo shot engine, which would
    /// otherwise clone the input state afresh for every shot.
    fn clone_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.stride = source.stride;
        self.words.clear();
        self.words.extend_from_slice(&source.words);
        self.amps.clear();
        self.amps.extend_from_slice(&source.amps);
    }
}

impl PartialEq for PathState {
    /// Exact structural equality (same path set, bit-identical
    /// amplitudes, order-insensitive). For tolerance-based comparison use
    /// [`PathState::fidelity`].
    fn eq(&self, other: &Self) -> bool {
        if self.num_qubits != other.num_qubits || self.num_paths() != other.num_paths() {
            return false;
        }
        let index: HashMap<&[u64], Amplitude> = (0..other.num_paths())
            .map(|p| (other.path_words(p), other.amps[p]))
            .collect();
        (0..self.num_paths()).all(|p| index.get(self.path_words(p)) == Some(&self.amps[p]))
    }
}

impl std::fmt::Display for PathState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<(BitString, Amplitude)> = self.iter().collect();
        entries.sort_by_key(|(b, _)| b.to_string());
        write!(f, "{} paths over {} qubits", entries.len(), self.num_qubits)?;
        for (bits, amp) in entries.iter().take(8) {
            write!(f, "\n  {amp} {bits}")?;
        }
        if entries.len() > 8 {
            write!(f, "\n  … {} more", entries.len() - 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_superposition_is_normalized() {
        let s = PathState::uniform_over(5, &[Qubit(0), Qubit(1), Qubit(2)]);
        assert_eq!(s.num_paths(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_then_x_is_identity() {
        let mut s = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let orig = s.clone();
        s.apply_x(Qubit(2));
        s.apply_x(Qubit(2));
        assert!((s.fidelity(&orig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_flips_sign_on_set_paths() {
        let mut s = PathState::uniform_over(1, &[Qubit(0)]);
        s.apply_z(Qubit(0));
        let plus = PathState::uniform_over(1, &[Qubit(0)]);
        // ⟨+|−⟩ = 0.
        assert!(s.fidelity(&plus) < 1e-12);
    }

    #[test]
    fn y_is_ixz() {
        // Y|0⟩ = i|1⟩; Y|1⟩ = −i|0⟩.
        let mut s0 = PathState::computational_basis(1);
        s0.apply_y(Qubit(0));
        assert_eq!(s0.amplitude(&BitString::from_u64(1, 1)), Amplitude::I);

        let mut s1 = PathState::basis_state(BitString::from_u64(1, 1));
        s1.apply_y(Qubit(0));
        assert_eq!(
            s1.amplitude(&BitString::from_u64(0, 1)),
            Amplitude::new(0.0, -1.0)
        );
    }

    #[test]
    fn y_twice_is_identity() {
        let mut s = PathState::uniform_over(2, &[Qubit(0)]);
        let orig = s.clone();
        s.apply_y(Qubit(1));
        s.apply_y(Qubit(1));
        assert!((s.fidelity(&orig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_is_conjugate_symmetric() {
        let a = PathState::uniform_over(2, &[Qubit(0), Qubit(1)]);
        let mut b = a.clone();
        b.apply_z(Qubit(0));
        b.apply_y(Qubit(1));
        let ab = a.inner_product(&b);
        let ba = b.inner_product(&a);
        assert!((ab.re - ba.re).abs() < 1e-12);
        assert!((ab.im + ba.im).abs() < 1e-12);
    }

    #[test]
    fn classical_value_detects_agreement() {
        let s = PathState::computational_basis(4);
        assert_eq!(s.classical_value(&[Qubit(0), Qubit(1)]), Some(0));
        let sup = PathState::uniform_over(4, &[Qubit(0)]);
        assert_eq!(sup.classical_value(&[Qubit(0)]), None);
        assert_eq!(sup.classical_value(&[Qubit(2), Qubit(3)]), Some(0));
    }

    #[test]
    fn probability_of_one() {
        let mut s = PathState::uniform_over(2, &[Qubit(0)]);
        assert!((s.probability_of_one(Qubit(0)) - 0.5).abs() < 1e-12);
        s.apply_x(Qubit(1));
        assert!((s.probability_of_one(Qubit(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_prunes_cancellations() {
        // Two entries with opposite amplitudes on the same string cancel
        // and are pruned at construction.
        let s = PathState::from_parts(
            1,
            [
                (BitString::from_u64(0, 1), Amplitude::real(0.5)),
                (BitString::from_u64(0, 1), Amplitude::real(-0.5)),
            ],
        );
        assert_eq!(s.num_paths(), 0);
    }

    #[test]
    fn from_parts_orders_paths_deterministically() {
        // Identical path sets given in different input orders produce the
        // same slab order (sorted by packed words).
        let entries = |rev: bool| {
            let mut v = vec![
                (BitString::from_u64(2, 3), Amplitude::real(0.5)),
                (BitString::from_u64(5, 3), Amplitude::real(0.5)),
                (BitString::from_u64(1, 3), Amplitude::real(0.5)),
            ];
            if rev {
                v.reverse();
            }
            v
        };
        let a = PathState::from_parts(3, entries(false));
        let b = PathState::from_parts(3, entries(true));
        let pairs_a: Vec<_> = a.iter().collect();
        let pairs_b: Vec<_> = b.iter().collect();
        assert_eq!(pairs_a, pairs_b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "merged paths")]
    fn permute_paths_rejects_non_injective_maps() {
        let mut s = PathState::uniform_over(1, &[Qubit(0)]);
        s.permute_paths(|bits| bits.set(0, false));
    }

    #[test]
    fn superposition_over_skips_zero_amplitudes() {
        let amps = [
            Amplitude::real(1.0),
            Amplitude::ZERO,
            Amplitude::ZERO,
            Amplitude::ZERO,
        ];
        let s = PathState::superposition_over(2, &[Qubit(0), Qubit(1)], &amps);
        assert_eq!(s.num_paths(), 1);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let amps = [Amplitude::real(3.0), Amplitude::real(4.0)];
        let mut s = PathState::superposition_over(1, &[Qubit(0)], &amps);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_fidelity_matches_full_when_ancillas_clean() {
        // Kept = all qubits → reduced fidelity equals full fidelity.
        let ideal = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let mut noisy = ideal.clone();
        noisy.apply_z(Qubit(0));
        let all = [Qubit(0), Qubit(1), Qubit(2)];
        let full = ideal.fidelity(&noisy);
        let reduced = ideal.reduced_fidelity(&noisy, &all);
        assert!((full - reduced).abs() < 1e-12);
    }

    #[test]
    fn unentangled_ancilla_flip_costs_nothing_reduced() {
        // An X on a traced-out ancilla leaves the kept state intact.
        let ideal = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let mut noisy = ideal.clone();
        noisy.apply_x(Qubit(2));
        assert!(ideal.fidelity(&noisy) < 1e-12); // full overlap destroyed
        let reduced = ideal.reduced_fidelity(&noisy, &[Qubit(0), Qubit(1)]);
        assert!((reduced - 1.0).abs() < 1e-12); // reduced state untouched
    }

    #[test]
    fn entangled_ancilla_decoheres_reduced_state() {
        // Flip the ancilla on half the branches: the kept register
        // decoheres into an even mixture → fidelity 1/2... specifically
        // |⟨+|0⟩|² + |⟨+|1⟩|² branch overlap = 0.25 + 0.25.
        let ideal = PathState::uniform_over(2, &[Qubit(0)]);
        let mut noisy = ideal.clone();
        // CX-like corruption: ancilla 1 on the |1⟩ branch only.
        noisy.permute_paths(|bits| {
            if bits.get(0) {
                bits.flip(1);
            }
        });
        let reduced = ideal.reduced_fidelity(&noisy, &[Qubit(0)]);
        assert!((reduced - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clone_from_reuses_allocations_and_matches_clone() {
        let src = PathState::uniform_over(70, &[Qubit(0), Qubit(1), Qubit(69)]);
        let mut dst = PathState::zero_vector(70);
        // Warm the buffers once, then reset from a mutated copy.
        dst.clone_from(&src);
        let words_cap = dst.words.capacity();
        let amps_cap = dst.amps.capacity();
        let mut mutated = src.clone();
        mutated.apply_y(Qubit(5));
        dst.clone_from(&mutated);
        assert_eq!(dst, mutated);
        assert_eq!(dst.words.capacity(), words_cap);
        assert_eq!(dst.amps.capacity(), amps_cap);
    }

    #[test]
    fn chunk_views_cover_all_paths_disjointly() {
        let mut s = PathState::uniform_over(4, &[Qubit(0), Qubit(1), Qubit(2)]);
        for chunks in [1usize, 2, 3, 5, 8, 13] {
            let views = s.chunk_views(chunks);
            let total: usize = views.iter().map(|v| v.amps.len()).sum();
            assert_eq!(total, 8, "chunks={chunks}");
            assert!(views.len() <= chunks.max(1));
            assert!(views.iter().all(|v| !v.amps.is_empty()));
        }
    }

    #[test]
    fn chunked_views_apply_gates_like_the_whole_slab() {
        let mut chunked = PathState::uniform_over(5, &[Qubit(0), Qubit(1), Qubit(2)]);
        let mut serial = chunked.clone();
        serial.apply_y(Qubit(1));
        serial.permute_paths(|bits| {
            if bits.get(0) {
                bits.flip(3);
            }
        });
        for view in &mut chunked.chunk_views(3) {
            view.apply_y(1);
            view.permute_paths(|bits| {
                if bits.get(0) {
                    bits.flip(3);
                }
            });
        }
        // Bit-identical, including slab order.
        let a: Vec<_> = chunked.iter().collect();
        let b: Vec<_> = serial.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_qubit_state_is_well_formed() {
        let s = PathState::computational_basis(0);
        assert_eq!(s.num_paths(), 1);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.classical_value(&[]), Some(0));
    }

    #[test]
    fn display_truncates() {
        let s = PathState::uniform_over(4, &[Qubit(0), Qubit(1), Qubit(2), Qubit(3)]);
        let text = s.to_string();
        assert!(text.contains("16 paths"));
        assert!(text.contains("more"));
    }
}
