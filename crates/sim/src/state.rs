//! Sparse superpositions over computational basis states.

use std::collections::HashMap;

use qram_circuit::Qubit;

use crate::{Amplitude, BitString};

/// Amplitudes below this squared-modulus threshold are pruned.
const PRUNE_EPS: f64 = 1e-14;

/// A sparse quantum state: a map from basis states ("Feynman paths") to
/// complex amplitudes.
///
/// Classical reversible gates permute the keys of the map; Pauli `Z` errors
/// flip amplitude signs; `X` errors flip bits. No operation in the QRAM gate
/// family increases the number of paths, which is the storage property the
/// paper's simulator exploits (Sec. 6.2): memory is `O(paths · qubits)`,
/// independent of circuit depth.
///
/// ```
/// use qram_sim::PathState;
/// use qram_circuit::Qubit;
///
/// // Uniform superposition over a 2-bit address register (qubits 0-1),
/// // with 2 more work qubits.
/// let state = PathState::uniform_over(4, &[Qubit(0), Qubit(1)]);
/// assert_eq!(state.num_paths(), 4);
/// assert!((state.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct PathState {
    /// Unique basis states with their amplitudes. Uniqueness is an
    /// invariant: constructors deduplicate, and every mutation in the
    /// classical-reversible + Pauli family is injective on basis states.
    paths: Vec<(BitString, Amplitude)>,
    num_qubits: usize,
}

impl PathState {
    /// The all-zeros computational basis state |0…0⟩ on `num_qubits` qubits.
    pub fn computational_basis(num_qubits: usize) -> Self {
        PathState {
            paths: vec![(BitString::zeros(num_qubits), Amplitude::ONE)],
            num_qubits,
        }
    }

    /// A single basis state given by `bits`.
    pub fn basis_state(bits: BitString) -> Self {
        let num_qubits = bits.len();
        PathState {
            paths: vec![(bits, Amplitude::ONE)],
            num_qubits,
        }
    }

    /// An empty (zero-vector) state; useful as an accumulator.
    pub fn zero_vector(num_qubits: usize) -> Self {
        PathState {
            paths: Vec::new(),
            num_qubits,
        }
    }

    /// Builds a state from explicit `(basis state, amplitude)` pairs.
    /// Duplicate basis states accumulate; negligible amplitudes are
    /// dropped. The amplitudes are used as given (not normalized).
    ///
    /// # Panics
    ///
    /// Panics if any basis state's length differs from `num_qubits`.
    pub fn from_parts(
        num_qubits: usize,
        entries: impl IntoIterator<Item = (BitString, Amplitude)>,
    ) -> Self {
        let mut map: HashMap<BitString, Amplitude> = HashMap::new();
        for (bits, amp) in entries {
            assert_eq!(bits.len(), num_qubits, "basis state width mismatch");
            *map.entry(bits).or_insert(Amplitude::ZERO) += amp;
        }
        let paths = map
            .into_iter()
            .filter(|(_, a)| !a.is_negligible(PRUNE_EPS))
            .collect();
        PathState { paths, num_qubits }
    }

    /// A uniform superposition over all values of `register` (MSB-first),
    /// with all other qubits in |0⟩. This is the canonical QRAM query input
    /// `Σᵢ |i⟩/√N`.
    ///
    /// # Panics
    ///
    /// Panics if the register is longer than 32 qubits (2³² paths would not
    /// fit in memory) or any qubit is out of range.
    pub fn uniform_over(num_qubits: usize, register: &[Qubit]) -> Self {
        assert!(
            register.len() <= 32,
            "refusing to enumerate 2^{} paths",
            register.len()
        );
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        for &i in &indices {
            assert!(i < num_qubits, "qubit {i} out of range");
        }
        let n = 1u64 << register.len();
        let amp = Amplitude::real(1.0 / (n as f64).sqrt());
        let mut paths = Vec::with_capacity(n as usize);
        for v in 0..n {
            let mut bits = BitString::zeros(num_qubits);
            bits.write_msb_first(&indices, v);
            paths.push((bits, amp));
        }
        PathState { paths, num_qubits }
    }

    /// A weighted superposition over values of `register` (MSB-first):
    /// `Σᵥ amplitudes[v] |v⟩`, other qubits |0⟩. Amplitudes are used as
    /// given (not normalized); entries with negligible amplitude are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() > 2^register.len()`.
    pub fn superposition_over(
        num_qubits: usize,
        register: &[Qubit],
        amplitudes: &[Amplitude],
    ) -> Self {
        assert!(
            (amplitudes.len() as u128) <= 1u128 << register.len(),
            "{} amplitudes do not fit in a {}-qubit register",
            amplitudes.len(),
            register.len()
        );
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        let mut paths = Vec::with_capacity(amplitudes.len());
        for (v, &amp) in amplitudes.iter().enumerate() {
            if amp.is_negligible(PRUNE_EPS) {
                continue;
            }
            let mut bits = BitString::zeros(num_qubits);
            bits.write_msb_first(&indices, v as u64);
            paths.push((bits, amp));
        }
        PathState { paths, num_qubits }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of live paths (basis states with non-negligible amplitude).
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Iterator over `(basis state, amplitude)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&BitString, &Amplitude)> {
        self.paths.iter().map(|(b, a)| (b, a))
    }

    /// The amplitude of `bits` (zero if absent). O(paths) — intended for
    /// tests and small inspections; bulk overlaps use
    /// [`PathState::inner_product`].
    pub fn amplitude(&self, bits: &BitString) -> Amplitude {
        self.paths
            .iter()
            .find(|(b, _)| b == bits)
            .map(|(_, a)| *a)
            .unwrap_or(Amplitude::ZERO)
    }

    /// Squared norm `Σ|α|²` (1.0 for any state produced by unitary
    /// evolution of a normalized input).
    pub fn norm_sqr(&self) -> f64 {
        self.paths.iter().map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &PathState) -> Amplitude {
        // Index the larger state once, then stream the smaller one.
        let (small, large, conj_small) = if self.paths.len() <= other.paths.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let index: HashMap<&BitString, Amplitude> =
            large.paths.iter().map(|(b, a)| (b, *a)).collect();
        let mut acc = Amplitude::ZERO;
        for (bits, amp) in small.iter() {
            let other_amp = index.get(bits).copied().unwrap_or(Amplitude::ZERO);
            if conj_small {
                // ⟨self|other⟩ = Σ conj(self) · other
                acc += amp.conj() * other_amp;
            } else {
                acc += other_amp.conj() * *amp;
            }
        }
        acc
    }

    /// Query fidelity `|⟨self|other⟩|²` (paper Sec. 5 definition).
    pub fn fidelity(&self, other: &PathState) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Query fidelity of `other` against `self` after tracing out every
    /// qubit not in `keep`: `F = ⟨self_keep| Tr_rest(|other⟩⟨other|) |self_keep⟩`.
    ///
    /// QRAM query fidelity is a property of the address and bus registers;
    /// the router tree is an ancilla. A noisy shot can leave the tree in a
    /// corrupted-but-*unentangled* configuration that costs no query
    /// fidelity (the mechanism behind bucket-brigade's resilience), which
    /// full-state overlap misses. `self` plays the role of the ideal
    /// output, whose non-kept qubits must be a basis state on every path
    /// (true for any uncomputed query circuit); group-by-ancilla overlap
    /// then computes the reduced fidelity exactly:
    /// `F = Σ_z |⟨self_keep| ⊗ ⟨z| other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts, a kept qubit
    /// index is out of range, or `self`'s non-kept qubits are not in a
    /// constant basis state across its paths (i.e. `self` has dirty or
    /// entangled ancillas — the reduction is only defined against a
    /// clean reference).
    pub fn reduced_fidelity(&self, other: &PathState, keep: &[Qubit]) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit counts differ");
        let keep_idx: Vec<usize> = keep.iter().map(|q| q.index()).collect();
        for &i in &keep_idx {
            assert!(i < self.num_qubits, "kept qubit {i} out of range");
        }
        let mut kept_mask = vec![false; self.num_qubits];
        for &i in &keep_idx {
            kept_mask[i] = true;
        }
        let rest_idx: Vec<usize> = (0..self.num_qubits).filter(|&i| !kept_mask[i]).collect();

        // Ideal amplitudes keyed by the kept-qubit substring; the rest
        // substring must be constant or the reduction is ill-defined.
        let extract = |bits: &BitString, idx: &[usize]| -> BitString {
            BitString::from_bits(idx.iter().map(|&i| bits.get(i)))
        };
        let mut ideal: HashMap<BitString, Amplitude> = HashMap::with_capacity(self.num_paths());
        let mut ideal_rest: Option<BitString> = None;
        for (bits, amp) in self.iter() {
            let rest = extract(bits, &rest_idx);
            match &ideal_rest {
                None => ideal_rest = Some(rest),
                Some(expected) => assert_eq!(
                    expected, &rest,
                    "reference state has entangled non-kept qubits"
                ),
            }
            *ideal
                .entry(extract(bits, &keep_idx))
                .or_insert(Amplitude::ZERO) += *amp;
        }

        // Group the noisy paths by their traced-out substring and overlap
        // each group with the ideal kept-state.
        let mut groups: HashMap<BitString, Amplitude> = HashMap::new();
        for (bits, amp) in other.iter() {
            let kept = extract(bits, &keep_idx);
            if let Some(ideal_amp) = ideal.get(&kept) {
                let z = extract(bits, &rest_idx);
                *groups.entry(z).or_insert(Amplitude::ZERO) += ideal_amp.conj() * *amp;
            }
        }
        groups.values().map(|a| a.norm_sqr()).sum()
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_of_one(&self, qubit: Qubit) -> f64 {
        let i = qubit.index();
        self.paths
            .iter()
            .filter(|(bits, _)| bits.get(i))
            .map(|(_, amp)| amp.norm_sqr())
            .sum()
    }

    /// Applies `X` on `qubit`: flips the bit in every path.
    pub fn apply_x(&mut self, qubit: Qubit) {
        let i = qubit.index();
        for (bits, _) in &mut self.paths {
            bits.flip(i);
        }
    }

    /// Applies `Z` on `qubit`: negates the amplitude of every path with the
    /// bit set.
    pub fn apply_z(&mut self, qubit: Qubit) {
        let i = qubit.index();
        for (bits, amp) in &mut self.paths {
            if bits.get(i) {
                *amp = -*amp;
            }
        }
    }

    /// Applies `Y = iXZ` on `qubit`: flips the bit and multiplies by
    /// `+i` (|0⟩→|1⟩) or `−i` (|1⟩→|0⟩).
    pub fn apply_y(&mut self, qubit: Qubit) {
        let i = qubit.index();
        for (bits, amp) in &mut self.paths {
            let was_one = bits.get(i);
            bits.flip(i);
            *amp = if was_one {
                amp.mul_neg_i()
            } else {
                amp.mul_i()
            };
        }
    }

    /// Applies a bit-level permutation `f` to every path **in place** —
    /// the hot loop of the simulator: no hashing, no allocation.
    ///
    /// `f` must be injective on the live paths (true for every reversible
    /// gate; checked in debug builds). For non-injective maps use
    /// [`PathState::from_parts`] to rebuild with accumulation.
    pub fn permute_paths(&mut self, mut f: impl FnMut(&mut BitString)) {
        for (bits, _) in &mut self.paths {
            f(bits);
        }
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::with_capacity(self.paths.len());
            for (bits, _) in &self.paths {
                debug_assert!(seen.insert(bits), "permute_paths closure merged paths");
            }
        }
    }

    /// Scales every amplitude by `1/norm` so the state is normalized.
    /// No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let s = 1.0 / n;
            for (_, amp) in &mut self.paths {
                *amp = amp.scale(s);
            }
        }
    }

    /// Whether every path holds |0⟩ on all of `qubits` (e.g. ancillas
    /// cleanly returned after uncomputation). Unlike
    /// [`PathState::classical_value`] this has no 64-qubit limit.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn is_zero_on(&self, qubits: &[Qubit]) -> bool {
        self.paths
            .iter()
            .all(|(bits, _)| qubits.iter().all(|q| !bits.get(q.index())))
    }

    /// Reads the value of `register` (MSB-first) on every path; returns
    /// `Some(value)` only if all paths agree (i.e. the register is
    /// classical/unentangled in the computational basis).
    pub fn classical_value(&self, register: &[Qubit]) -> Option<u64> {
        let indices: Vec<usize> = register.iter().map(|q| q.index()).collect();
        let mut value = None;
        for (bits, _) in self.iter() {
            let v = bits.read_msb_first(&indices);
            match value {
                None => value = Some(v),
                Some(prev) if prev != v => return None,
                _ => {}
            }
        }
        value
    }
}

impl Clone for PathState {
    fn clone(&self) -> Self {
        PathState {
            paths: self.paths.clone(),
            num_qubits: self.num_qubits,
        }
    }

    /// Allocation-reusing overwrite: existing path slots and their bit-word
    /// buffers are rewritten in place. This is the per-shot reset of the
    /// Monte-Carlo shot engine, which would otherwise clone the input state
    /// afresh for every shot.
    fn clone_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.paths.truncate(source.paths.len());
        for ((bits, amp), (src_bits, src_amp)) in self.paths.iter_mut().zip(&source.paths) {
            bits.clone_from(src_bits);
            *amp = *src_amp;
        }
        let have = self.paths.len();
        self.paths.extend(source.paths[have..].iter().cloned());
    }
}

impl PartialEq for PathState {
    /// Exact structural equality (same path set, bit-identical
    /// amplitudes, order-insensitive). For tolerance-based comparison use
    /// [`PathState::fidelity`].
    fn eq(&self, other: &Self) -> bool {
        if self.num_qubits != other.num_qubits || self.paths.len() != other.paths.len() {
            return false;
        }
        let index: HashMap<&BitString, Amplitude> =
            other.paths.iter().map(|(b, a)| (b, *a)).collect();
        self.paths.iter().all(|(b, a)| index.get(b) == Some(a))
    }
}

impl std::fmt::Display for PathState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<_> = self.paths.iter().collect();
        entries.sort_by_key(|a| a.0.to_string());
        write!(f, "{} paths over {} qubits", entries.len(), self.num_qubits)?;
        for (bits, amp) in entries.iter().take(8) {
            write!(f, "\n  {amp} {bits}")?;
        }
        if entries.len() > 8 {
            write!(f, "\n  … {} more", entries.len() - 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_superposition_is_normalized() {
        let s = PathState::uniform_over(5, &[Qubit(0), Qubit(1), Qubit(2)]);
        assert_eq!(s.num_paths(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_then_x_is_identity() {
        let mut s = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let orig = s.clone();
        s.apply_x(Qubit(2));
        s.apply_x(Qubit(2));
        assert!((s.fidelity(&orig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_flips_sign_on_set_paths() {
        let mut s = PathState::uniform_over(1, &[Qubit(0)]);
        s.apply_z(Qubit(0));
        let plus = PathState::uniform_over(1, &[Qubit(0)]);
        // ⟨+|−⟩ = 0.
        assert!(s.fidelity(&plus) < 1e-12);
    }

    #[test]
    fn y_is_ixz() {
        // Y|0⟩ = i|1⟩; Y|1⟩ = −i|0⟩.
        let mut s0 = PathState::computational_basis(1);
        s0.apply_y(Qubit(0));
        assert_eq!(s0.amplitude(&BitString::from_u64(1, 1)), Amplitude::I);

        let mut s1 = PathState::basis_state(BitString::from_u64(1, 1));
        s1.apply_y(Qubit(0));
        assert_eq!(
            s1.amplitude(&BitString::from_u64(0, 1)),
            Amplitude::new(0.0, -1.0)
        );
    }

    #[test]
    fn y_twice_is_identity() {
        let mut s = PathState::uniform_over(2, &[Qubit(0)]);
        let orig = s.clone();
        s.apply_y(Qubit(1));
        s.apply_y(Qubit(1));
        assert!((s.fidelity(&orig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_is_conjugate_symmetric() {
        let a = PathState::uniform_over(2, &[Qubit(0), Qubit(1)]);
        let mut b = a.clone();
        b.apply_z(Qubit(0));
        b.apply_y(Qubit(1));
        let ab = a.inner_product(&b);
        let ba = b.inner_product(&a);
        assert!((ab.re - ba.re).abs() < 1e-12);
        assert!((ab.im + ba.im).abs() < 1e-12);
    }

    #[test]
    fn classical_value_detects_agreement() {
        let s = PathState::computational_basis(4);
        assert_eq!(s.classical_value(&[Qubit(0), Qubit(1)]), Some(0));
        let sup = PathState::uniform_over(4, &[Qubit(0)]);
        assert_eq!(sup.classical_value(&[Qubit(0)]), None);
        assert_eq!(sup.classical_value(&[Qubit(2), Qubit(3)]), Some(0));
    }

    #[test]
    fn probability_of_one() {
        let mut s = PathState::uniform_over(2, &[Qubit(0)]);
        assert!((s.probability_of_one(Qubit(0)) - 0.5).abs() < 1e-12);
        s.apply_x(Qubit(1));
        assert!((s.probability_of_one(Qubit(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_prunes_cancellations() {
        // Two entries with opposite amplitudes on the same string cancel
        // and are pruned at construction.
        let s = PathState::from_parts(
            1,
            [
                (BitString::from_u64(0, 1), Amplitude::real(0.5)),
                (BitString::from_u64(0, 1), Amplitude::real(-0.5)),
            ],
        );
        assert_eq!(s.num_paths(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "merged paths")]
    fn permute_paths_rejects_non_injective_maps() {
        let mut s = PathState::uniform_over(1, &[Qubit(0)]);
        s.permute_paths(|bits| bits.set(0, false));
    }

    #[test]
    fn superposition_over_skips_zero_amplitudes() {
        let amps = [
            Amplitude::real(1.0),
            Amplitude::ZERO,
            Amplitude::ZERO,
            Amplitude::ZERO,
        ];
        let s = PathState::superposition_over(2, &[Qubit(0), Qubit(1)], &amps);
        assert_eq!(s.num_paths(), 1);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let amps = [Amplitude::real(3.0), Amplitude::real(4.0)];
        let mut s = PathState::superposition_over(1, &[Qubit(0)], &amps);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_fidelity_matches_full_when_ancillas_clean() {
        // Kept = all qubits → reduced fidelity equals full fidelity.
        let ideal = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let mut noisy = ideal.clone();
        noisy.apply_z(Qubit(0));
        let all = [Qubit(0), Qubit(1), Qubit(2)];
        let full = ideal.fidelity(&noisy);
        let reduced = ideal.reduced_fidelity(&noisy, &all);
        assert!((full - reduced).abs() < 1e-12);
    }

    #[test]
    fn unentangled_ancilla_flip_costs_nothing_reduced() {
        // An X on a traced-out ancilla leaves the kept state intact.
        let ideal = PathState::uniform_over(3, &[Qubit(0), Qubit(1)]);
        let mut noisy = ideal.clone();
        noisy.apply_x(Qubit(2));
        assert!(ideal.fidelity(&noisy) < 1e-12); // full overlap destroyed
        let reduced = ideal.reduced_fidelity(&noisy, &[Qubit(0), Qubit(1)]);
        assert!((reduced - 1.0).abs() < 1e-12); // reduced state untouched
    }

    #[test]
    fn entangled_ancilla_decoheres_reduced_state() {
        // Flip the ancilla on half the branches: the kept register
        // decoheres into an even mixture → fidelity 1/2... specifically
        // |⟨+|0⟩|² + |⟨+|1⟩|² branch overlap = 0.25 + 0.25.
        let ideal = PathState::uniform_over(2, &[Qubit(0)]);
        let mut noisy = ideal.clone();
        // CX-like corruption: ancilla 1 on the |1⟩ branch only.
        noisy.permute_paths(|bits| {
            if bits.get(0) {
                bits.flip(1);
            }
        });
        let reduced = ideal.reduced_fidelity(&noisy, &[Qubit(0)]);
        assert!((reduced - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_truncates() {
        let s = PathState::uniform_over(4, &[Qubit(0), Qubit(1), Qubit(2), Qubit(3)]);
        let text = s.to_string();
        assert!(text.contains("16 paths"));
        assert!(text.contains("more"));
    }
}
