//! Shared command-line parsing for the experiment binaries.
//!
//! Every table/figure binary accepts the same flag set, parsed here once
//! instead of being copy-pasted per binary:
//!
//! * `--full` — paper-scale sweep instead of the quick default;
//! * `--shots N` — Monte-Carlo shots per data point;
//! * `--seed N` — master RNG seed (default 2023, the paper's venue year);
//! * `--threads N` — shot-engine worker threads across shots (`0` = auto,
//!   the default);
//! * `--path-chunks N` — parallel path chunks inside each shot (`1` =
//!   serial, the default; `0` = auto). Results are bit-identical for any
//!   `(threads, path-chunks)` pair; see [`qram_sim::run_shots`].

use qram_sim::ShotConfig;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Paper-scale sweep instead of the quick default.
    pub full: bool,
    /// Monte-Carlo shots per data point (`None` = binary's default).
    pub shots: Option<usize>,
    /// Master RNG seed (default 2023, the paper's venue year).
    pub seed: u64,
    /// Shot-engine worker threads across shots (`0` = auto).
    pub threads: usize,
    /// Parallel path chunks inside each shot (`1` = serial, `0` = auto).
    pub path_chunks: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            full: false,
            shots: None,
            seed: ShotConfig::DEFAULT_SEED,
            threads: 0,
            path_chunks: 1,
        }
    }
}

impl RunOptions {
    /// Parses the shared flag set from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses the shared flag set from an explicit argument list
    /// (exposed separately from [`RunOptions::from_args`] for tests).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = RunOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--shots" => {
                    let v = args.next().expect("--shots requires a value");
                    opts.shots = Some(v.parse().expect("--shots expects an integer"));
                }
                "--seed" => {
                    let v = args.next().expect("--seed requires a value");
                    opts.seed = v.parse().expect("--seed expects an integer");
                }
                "--threads" => {
                    let v = args.next().expect("--threads requires a value");
                    opts.threads = v.parse().expect("--threads expects an integer");
                }
                "--path-chunks" => {
                    let v = args.next().expect("--path-chunks requires a value");
                    opts.path_chunks = v.parse().expect("--path-chunks expects an integer");
                }
                other => panic!(
                    "unknown flag `{other}` (expected --full, --shots N, --seed N, --threads N, \
                     --path-chunks N)"
                ),
            }
        }
        opts
    }

    /// The shot count to use given a binary default.
    pub fn shots_or(&self, default: usize) -> usize {
        self.shots.unwrap_or(default)
    }

    /// The shot-engine configuration these options select, given the
    /// binary's default shot count.
    pub fn shot_config(&self, default_shots: usize) -> ShotConfig {
        ShotConfig {
            shots: self.shots_or(default_shots),
            seed: self.seed,
            threads: self.threads,
            path_chunks: self.path_chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunOptions {
        RunOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]);
        assert_eq!(opts, RunOptions::default());
        assert_eq!(opts.seed, 2023);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.path_chunks, 1);
        assert_eq!(opts.shots_or(128), 128);
    }

    #[test]
    fn parses_all_flags() {
        let opts = parse(&[
            "--full",
            "--shots",
            "64",
            "--seed",
            "7",
            "--threads",
            "4",
            "--path-chunks",
            "2",
        ]);
        assert!(opts.full);
        assert_eq!(opts.shots, Some(64));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.path_chunks, 2);
        assert_eq!(opts.shots_or(128), 64);
    }

    #[test]
    fn shot_config_threads_everything_through() {
        let opts = parse(&[
            "--shots",
            "32",
            "--seed",
            "9",
            "--threads",
            "2",
            "--path-chunks",
            "4",
        ]);
        let config = opts.shot_config(100);
        assert_eq!(config.shots, 32);
        assert_eq!(config.seed, 9);
        assert_eq!(config.threads, 2);
        assert_eq!(config.path_chunks, 4);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        parse(&["--fast"]);
    }

    #[test]
    #[should_panic(expected = "--threads expects an integer")]
    fn rejects_malformed_threads() {
        parse(&["--threads", "many"]);
    }
}
