//! Fig. 11 — virtual-QRAM fidelity over the (m, k) design grid under Z
//! and X noise, at error-reduction factors εr ∈ {1, 10, 100}.
//!
//! Expected shape: fidelity decays exponentially faster along the SQC
//! width `k` than along the QRAM width `m` (under Z noise) — every Pauli
//! error in the SQC stage is fatal, while the tree enjoys Z locality.

use qram_bench::{architecture_fidelity, experiment_memory, print_row, FidelityKind, RunOptions};
use qram_core::VirtualQram;
use qram_noise::{ErrorReductionFactor, NoiseModel, PauliChannel, BASE_ERROR_RATE};

fn main() {
    let opts = RunOptions::from_args();
    let (max_m, max_k) = if opts.full { (6, 3) } else { (4, 2) };
    let config = opts.shot_config(if opts.full { 512 } else { 128 });

    println!("# Fig. 11: virtual QRAM fidelity over the (m, k) grid");
    println!("# shots = {}", config.shots);
    print_row(&["channel", "er", "m", "k", "fidelity", "stderr"].map(String::from));

    for (label, channel) in [
        ("Z", PauliChannel::phase_flip(BASE_ERROR_RATE)),
        ("X", PauliChannel::bit_flip(BASE_ERROR_RATE)),
    ] {
        for er in [1.0, 10.0, 100.0] {
            let er = ErrorReductionFactor(er);
            for m in 1..=max_m {
                for k in 0..=max_k {
                    let memory = experiment_memory(k + m, opts.seed ^ ((k * 97 + m) as u64));
                    let arch = VirtualQram::new(k, m);
                    let model = NoiseModel::per_gate(channel).reduced_by(er);
                    let est =
                        architecture_fidelity(&arch, &memory, model, FidelityKind::Full, config);
                    print_row(&[
                        label.to_string(),
                        format!("{}", er.0),
                        m.to_string(),
                        k.to_string(),
                        format!("{:.4}", est.mean),
                        format!("{:.4}", est.std_error),
                    ]);
                }
            }
        }
    }
}
