//! Eq. 7 — the asymmetric surface-code prescription of Sec. 5.2
//! (extension experiment; the paper states the rule without a table).
//!
//! For each `(k, m)` shape and physical error rate, prints the
//! code-distance gap `dx − dz` that balances the X and Z query-fidelity
//! bounds, the chosen rectangular code, its logical rates, the balanced
//! fidelity floors, and the per-patch physical qubit overhead versus a
//! square code of equivalent X protection.

use qram_bench::{print_row, RunOptions};
use qram_qec::{
    balanced_code, balanced_code_tree, distance_gap, distance_gap_tree, virtual_x_fidelity_bound,
    virtual_z_fidelity_bound, TYPICAL_THRESHOLD,
};

fn main() {
    let opts = RunOptions::from_args();
    let shapes: &[(usize, usize)] = if opts.full {
        &[(0, 2), (1, 2), (2, 4), (3, 5), (2, 6), (4, 8), (6, 10)]
    } else {
        &[(0, 2), (1, 3), (2, 4), (2, 6)]
    };

    println!("# Eq. 7: rectangular surface-code prescription for virtual QRAM routers");
    println!("# threshold = {TYPICAL_THRESHOLD}");
    print_row(
        &[
            "k",
            "m",
            "p",
            "gap_eq7",
            "gap_tree",
            "code",
            "p_xl",
            "p_zl",
            "F_Z",
            "F_X",
            "patch_qubits",
        ]
        .map(String::from),
    );
    for &(k, m) in shapes {
        for p in [1e-3, 3e-3] {
            let gap7 = distance_gap(k, m, p, TYPICAL_THRESHOLD);
            let gap_tree = distance_gap_tree(k, m, p, TYPICAL_THRESHOLD);
            // Balance using the gap implied by the bounds as implemented
            // (see qram-qec docs: Eq. 7's printed form under-protects X
            // once the 2^m tree term dominates).
            let code = balanced_code_tree(k, m, p, TYPICAL_THRESHOLD, 5);
            let (pxl, pzl) = (
                code.logical_x_rate(p, TYPICAL_THRESHOLD),
                code.logical_z_rate(p, TYPICAL_THRESHOLD),
            );
            print_row(&[
                k.to_string(),
                m.to_string(),
                format!("{p:.0e}"),
                format!("{gap7:.2}"),
                format!("{gap_tree:.2}"),
                code.to_string(),
                format!("{pxl:.2e}"),
                format!("{pzl:.2e}"),
                format!("{:.6}", virtual_z_fidelity_bound(pzl, m, k)),
                format!("{:.6}", virtual_x_fidelity_bound(pxl, m, k)),
                code.physical_qubits().to_string(),
            ]);
        }
    }
    let _ = balanced_code; // Eq. 7's literal form remains available in the API
}
