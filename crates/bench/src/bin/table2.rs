//! Table 2 — resource comparison of SQC+BB, SQC+SS and the virtual QRAM.
//!
//! Prints measured qubit count, circuit depth, T count, T depth and
//! Clifford depth for the three hybrid architectures across `(k, m)`
//! shapes (all-ones memory = the worst case that pins the formulas), and
//! the paper's asymptotic table for comparison.
//!
//! Expected shape: our QRAM matches SQC+BB's `O(m·2^k)` depth while
//! cutting its `O((2^m + k)·2^k)` T count to `O(2^m + k·2^k)` (load-once
//! vs load-multiple-times), and beats SQC+SS's `O(m²·2^k)` depth.

use qram_bench::{print_row, RunOptions};
use qram_core::{
    table2_asymptotics, BucketBrigadeQram, Memory, QueryArchitecture, SelectSwapQram, VirtualQram,
};

fn main() {
    let opts = RunOptions::from_args();
    let shapes: &[(usize, usize)] = if opts.full {
        &[(1, 2), (1, 4), (2, 3), (2, 4), (3, 3), (3, 4), (2, 6)]
    } else {
        &[(1, 2), (1, 3), (2, 2), (2, 3)]
    };

    println!("# Table 2: architecture comparison (measured, all-ones memory)");
    print_row(
        &[
            "k",
            "m",
            "architecture",
            "qubits",
            "depth",
            "T_count",
            "T_depth",
            "Clifford_depth",
        ]
        .map(String::from),
    );
    for &(k, m) in shapes {
        let memory = Memory::ones(k + m);
        let archs: [Box<dyn QueryArchitecture>; 3] = [
            Box::new(BucketBrigadeQram::new(k, m)),
            Box::new(SelectSwapQram::new(k, m)),
            Box::new(VirtualQram::new(k, m)),
        ];
        for arch in archs {
            let r = arch.build(&memory).resources();
            print_row(&[
                k.to_string(),
                m.to_string(),
                arch.name(),
                r.num_qubits.to_string(),
                r.depth.to_string(),
                r.t_count.to_string(),
                r.t_depth.to_string(),
                r.clifford_depth.to_string(),
            ]);
        }
    }

    println!();
    println!("# Paper's asymptotic rows (Table 2):");
    for row in table2_asymptotics() {
        print_row(&row.map(String::from));
    }
}
