//! Fig. 8 — extra operation depth after mapping QRAM to a 2D
//! nearest-neighbor grid, swap-based vs teleportation-based routing.
//!
//! Expected shape: swap-based overhead grows exponentially in the QRAM
//! width `m` (the root edges of the H-tree span `Θ(√M)` cells), while
//! teleportation-based overhead stays linear — the crossover is at
//! `m ≈ 2`.

use qram_bench::{print_row, RunOptions};
use qram_layout::{routing_overhead_sweep, HTreeEmbedding};

fn main() {
    let opts = RunOptions::from_args();
    let max_m = if opts.full { 10 } else { 9 };

    println!("# Fig. 8: extra operation depth under 2D mapping (H-tree embedding)");
    print_row(
        &[
            "m",
            "swap_extra_depth",
            "teleport_extra_depth",
            "grid",
            "unused_frac",
        ]
        .map(String::from),
    );
    for row in routing_overhead_sweep(max_m) {
        let e = HTreeEmbedding::new(row.m);
        print_row(&[
            row.m.to_string(),
            row.swap_depth.to_string(),
            row.teleport_depth.to_string(),
            format!("{}x{}", e.rows(), e.cols()),
            format!("{:.3}", e.unused_fraction()),
        ]);
    }

    // The capacity-16 example of Fig. 6c, drawn.
    println!();
    println!("# Fig. 6c: capacity-16 H-tree embedding (R router, D data, · routing)");
    print!("{}", HTreeEmbedding::new(4));
}
