//! `serve_bench` — drives the `qram-service` query-serving subsystem
//! with a generated workload and reports throughput and latency
//! percentiles into the repo's `BENCH_*.json` pipeline.
//!
//! ```text
//! cargo run --release -p qram-bench --bin serve_bench -- \
//!     --workload zipfian --requests 1000 --shots 8 --seed 7 --threads 2
//! ```
//!
//! Flags (shared flags match the other experiment binaries):
//!
//! * `--full` — paper-scale run (larger memory and request count);
//! * `--shots N` — Monte-Carlo shots per request (0 = noiseless serving);
//! * `--seed N` — service master seed (per-request streams derive from it);
//! * `--threads N` — executor workers (`0` = all cores). A pure
//!   throughput knob: results are bit-identical for any value;
//! * `--workload NAME` — `uniform`, `zipfian` (default), `scan`, `grover`;
//! * `--requests N` — requests to serve (default 256, `--full` 1024);
//! * `--width N` — memory address width `n` (default 4, `--full` 6);
//! * `--theta X` — zipf exponent (default 0.99);
//! * `--batch N` — scheduler batch limit (default 32);
//! * `--out FILE` — summary path (default `<repo root>/BENCH_SERVE.json`).
//!
//! The summary records the workload, cache hit/miss/eviction counters,
//! overall throughput (requests/s) and the p50/p90/p99/max per-request
//! latencies (a request's latency is its batch's execution time).

use std::path::PathBuf;
use std::time::Instant;

use qram_bench::report::{find_repo_root, percentile};
use qram_bench::{experiment_memory, print_row};
use qram_core::{DataEncoding, Optimizations};
use qram_service::{assign_specs, QramService, QuerySpec, ServiceConfig, Workload};

struct Args {
    full: bool,
    shots: Option<usize>,
    seed: u64,
    threads: usize,
    workload: String,
    requests: Option<usize>,
    width: Option<usize>,
    theta: f64,
    batch: usize,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        full: false,
        shots: None,
        seed: 2023,
        threads: 0,
        workload: "zipfian".into(),
        requests: None,
        width: None,
        theta: 0.99,
        batch: 32,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => parsed.full = true,
            "--shots" => parsed.shots = Some(value("--shots", &mut args).parse().expect("--shots")),
            "--seed" => parsed.seed = value("--seed", &mut args).parse().expect("--seed"),
            "--threads" => {
                parsed.threads = value("--threads", &mut args).parse().expect("--threads")
            }
            "--workload" => parsed.workload = value("--workload", &mut args),
            "--requests" => {
                parsed.requests = Some(value("--requests", &mut args).parse().expect("--requests"))
            }
            "--width" => parsed.width = Some(value("--width", &mut args).parse().expect("--width")),
            "--theta" => parsed.theta = value("--theta", &mut args).parse().expect("--theta"),
            "--batch" => parsed.batch = value("--batch", &mut args).parse().expect("--batch"),
            "--out" => parsed.out = Some(PathBuf::from(value("--out", &mut args))),
            other => panic!(
                "unknown flag `{other}` (expected --full, --shots N, --seed N, --threads N, \
                 --workload NAME, --requests N, --width N, --theta X, --batch N, --out FILE)"
            ),
        }
    }
    parsed
}

/// The hot circuit shapes the workload cycles over: a realistic
/// deployment serves a handful of compiled configurations.
fn hot_specs(n: usize) -> Vec<QuerySpec> {
    let mut specs = vec![QuerySpec::new(1, n - 1)];
    if n >= 3 {
        specs.push(QuerySpec::new(2, n - 2));
        specs.push(QuerySpec::new(1, n - 1).with_encoding(DataEncoding::FusedBit));
        specs.push(QuerySpec::new(2, n - 2).with_optimizations(Optimizations::OPT2));
    }
    specs
}

fn build_workload(args: &Args, n: usize) -> Workload {
    match args.workload.as_str() {
        "uniform" => Workload::Uniform {
            address_width: n,
            seed: args.seed,
        },
        "zipfian" => Workload::Zipfian {
            address_width: n,
            theta: args.theta,
            seed: args.seed,
        },
        "scan" => Workload::SequentialScan { address_width: n },
        "grover" => Workload::GroverTrace {
            address_width: n,
            target: (1 << n) / 2,
        },
        other => panic!("unknown workload `{other}` (expected uniform, zipfian, scan, grover)"),
    }
}

fn main() {
    let args = parse_args();
    let n = args.width.unwrap_or(if args.full { 6 } else { 4 });
    let requests = args.requests.unwrap_or(if args.full { 1024 } else { 256 });
    let shots = args.shots.unwrap_or(if args.full { 32 } else { 8 });

    let memory = experiment_memory(n, args.seed);
    let workload = build_workload(&args, n);
    let specs = hot_specs(n);
    let config = ServiceConfig::default()
        .with_workers(args.threads)
        .with_shots(shots)
        .with_seed(args.seed)
        .with_batch_limit(args.batch);
    let mut service = QramService::new(memory, config);
    service.submit_all(assign_specs(&workload, &specs, requests));

    let start = Instant::now();
    let report = service.drain();
    let elapsed = start.elapsed();

    // A request's latency is its batch's execution time.
    let latencies_ns: Vec<f64> = report
        .batches
        .iter()
        .flat_map(|b| std::iter::repeat_n(b.duration.as_nanos() as f64, b.requests))
        .collect();
    let throughput = report.results.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    let mean_fidelity = if report.results.is_empty() {
        0.0
    } else {
        report.results.iter().map(|r| r.fidelity.mean).sum::<f64>() / report.results.len() as f64
    };
    let (p50, p90, p99) = (
        percentile(&latencies_ns, 50.0),
        percentile(&latencies_ns, 90.0),
        percentile(&latencies_ns, 99.0),
    );
    let max_ns = latencies_ns.iter().copied().fold(0.0f64, f64::max);

    println!(
        "# serve_bench: {} x {} over n={n} ({} hot specs, batch <= {}, {} shots, {} workers)",
        report.results.len(),
        workload.name(),
        specs.len(),
        args.batch,
        shots,
        report.workers,
    );
    print_row(&["metric", "value"].map(String::from));
    print_row(&["requests".into(), report.results.len().to_string()]);
    print_row(&["batches".into(), report.batches.len().to_string()]);
    print_row(&["throughput_rps".into(), format!("{throughput:.1}")]);
    print_row(&["latency_p50_us".into(), format!("{:.1}", p50 / 1e3)]);
    print_row(&["latency_p90_us".into(), format!("{:.1}", p90 / 1e3)]);
    print_row(&["latency_p99_us".into(), format!("{:.1}", p99 / 1e3)]);
    print_row(&["cache_hits".into(), report.cache.hits.to_string()]);
    print_row(&["cache_misses".into(), report.cache.misses.to_string()]);
    print_row(&["cache_evictions".into(), report.cache.evictions.to_string()]);
    print_row(&[
        "cache_hit_rate".into(),
        format!("{:.3}", report.cache.hit_rate()),
    ]);
    print_row(&["mean_fidelity".into(), format!("{mean_fidelity:.4}")]);

    let out_path = args.out.unwrap_or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_repo_root(&d))
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_SERVE.json")
    });
    let json = format!(
        "{{\n  \"schema\": \"qram-bench/serve-summary/v1\",\n  \"workload\": \"{}\",\n  \
         \"address_width\": {n},\n  \"requests\": {},\n  \"batches\": {},\n  \"specs\": {},\n  \
         \"shots\": {shots},\n  \"seed\": {},\n  \"workers\": {},\n  \
         \"throughput_rps\": {throughput:.1},\n  \"latency_ns\": {{\"p50\": {p50:.0}, \
         \"p90\": {p90:.0}, \"p99\": {p99:.0}, \"max\": {max_ns:.0}}},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n  \
         \"mean_fidelity\": {mean_fidelity:.6}\n}}\n",
        workload.name(),
        report.results.len(),
        report.batches.len(),
        specs.len(),
        args.seed,
        report.workers,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.hit_rate(),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("# summary written to {}", out_path.display()),
        Err(e) => {
            eprintln!("serve_bench: cannot write {}: {e}", out_path.display());
            std::process::exit(2);
        }
    }
}
