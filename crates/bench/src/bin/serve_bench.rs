//! `serve_bench` — drives the `qram-service` event-driven serving
//! pipeline with a generated workload and reports throughput and
//! virtual-clock latency percentiles into the repo's `BENCH_*.json`
//! pipeline.
//!
//! ```text
//! # closed loop: submit everything, drain, report
//! cargo run --release -p qram-bench --bin serve_bench -- \
//!     --workload zipfian --requests 1000 --shots 8 --seed 7 --threads 2
//! # open loop: Poisson arrivals swept over offered-load multipliers
//! cargo run --release -p qram-bench --bin serve_bench -- \
//!     --mode open --arrivals poisson --load 0.5,1.0,2.0 --threads 2
//! ```
//!
//! Flags (shared flags match the other experiment binaries):
//!
//! * `--full` — paper-scale run (larger memory and request count);
//! * `--arch NAME` — architecture(s) to serve: `virtual` (default),
//!   `sqc`, `fanout`, `bb` (bucket-brigade), `ss` (select-swap), or
//!   `mix` (one spec per family — a mixed-architecture workload through
//!   one service instance, each family at the `(k, m)` split the
//!   offline `qram-plan` capacity planner picks under
//!   `--qubit-budget`). The summary carries a per-architecture
//!   throughput/latency/cache breakdown;
//! * `--shots N` — Monte-Carlo shots per request (0 = noiseless serving);
//! * `--seed N` — service master seed (per-request streams derive from it);
//! * `--threads N` — real executor workers (`0` = all cores). A pure
//!   throughput knob: results — latency breakdowns included — are
//!   bit-identical for any value (the printed `results_digest` proves it);
//! * `--shot-threads N` — threads the shot engine uses *inside* one
//!   request (default 1). Multiplies with `--threads`; keep at 1 unless
//!   requests are few and shot counts large, since per-request
//!   work-stealing already fills the workers;
//! * `--path-chunks N` — path-slab chunks the simulator splits each
//!   shot's path set into (default 1; `0` = auto). Multiplies with both
//!   thread knobs; keep at 1 unless circuits are wide (`--width` 8+).
//!   Like the thread knobs it is a pure throughput knob — results are
//!   bit-identical for any value;
//! * `--mode closed|open` — closed-loop drain (default) or open-loop
//!   arrival-process sweep;
//! * `--workload NAME` — `uniform`, `zipfian` (default), `scan`, `grover`;
//! * `--arrivals NAME` — open-loop arrival process: `poisson` (default)
//!   or `bursty` (MMPP-2 at the same average load);
//! * `--load LIST` — open-loop offered-load multipliers of the modeled
//!   capacity (default `0.5,1.0,2.0`; >1 = overload);
//! * `--spec-skew X` — assign specs zipf(θ = X)-skewed instead of
//!   round-robin (0 = round-robin), stressing LRU eviction;
//! * `--requests N` — requests to serve (default 256, `--full` 1024);
//! * `--width N` — memory address width `n` (default 4, `--full` 6);
//! * `--theta X` — zipf exponent of the *address* stream (default 0.99);
//! * `--batch N` — scheduler batch limit (default 32);
//! * `--cache N` — compiled-circuit cache capacity (default 8). Set it
//!   below the hot-spec count to stress eviction — where the release
//!   policies actually diverge;
//! * `--queue N` — bounded-queue capacity for open-loop admission
//!   (default 64; offers beyond it are shed);
//! * `--deadline T` — batching deadline slack in virtual ns (default
//!   20000);
//! * `--release-policy NAME` — which pending group a freed execution
//!   unit serves: `oldest-first` (default, strict FIFO) or
//!   `cache-affine` (prefer the oldest *cache-resident* group — zero
//!   compile ticks — bounded by the policy's age cap so no group
//!   starves). A scheduling knob on the virtual clock: results remain
//!   bit-identical across `--threads`/`--shot-threads`/`--path-chunks`
//!   for either policy. Open mode additionally emits a
//!   `policy_compare` block running *both* policies head-to-head on
//!   identical arrivals at the swept load nearest the modeled capacity
//!   (schema v6);
//! * `--qubit-budget Q` — physical qubit budget handed to the capacity
//!   planner for `--arch mix` (0 = unconstrained, the default);
//! * `--fleet N` — open-loop only: serve through a
//!   [`qram_fleet::FleetController`] over `N` shards instead of one
//!   bare service (0 = bare, the default). Arrivals are tagged with
//!   deterministic tenants and SLO classes, routed by consistent
//!   hashing with cache-affine replica tie-breaking, and shed at the
//!   front door by `--shed-policy`. The summary grows `fleet`,
//!   `per_shard`, `per_tenant`, `per_slo`, and `slo_compare` sections
//!   (schema v6), the latter running deadline-priority vs tail-drop on
//!   byte-identical arrivals at the highest swept load;
//! * `--tenants T` — fleet tenants to spread arrivals over (default 3);
//! * `--front-capacity N` — fleet front-door queue bound (default 1024);
//! * `--shed-policy NAME` — front-door overflow policy: `tail-drop` or
//!   `deadline-priority` (default — trim zombies, then batch, then
//!   best-effort, keep live interactive work last);
//! * `--replication N` — rendezvous replica candidates per unpinned
//!   spec (default 2, clamped to the fleet size);
//! * `--pin-planned` — pin the capacity planner's family split to
//!   dedicated shards round-robin (uses `--qubit-budget`);
//! * `--slo-deadline T` — interactive-class deadline in virtual ns
//!   (default 60000);
//! * `--out FILE` — summary path (default `<repo root>/BENCH_SERVE.json`);
//! * `--trace-out FILE` — also export the full telemetry trace (the
//!   canonically-ordered span log plus the metrics registry) as JSON.
//!
//! Latency is measured on the service's **virtual clock** (one tick =
//! one modeled ns), so percentiles include queueing delay, decompose
//! into `queue_wait`/`compile`/`execute`, and are bit-identical across
//! `--threads` values — wall-clock throughput of the simulation host is
//! reported separately. Every run records through a
//! `qram_telemetry::TelemetryRecorder`; the printed `trace_digest` and
//! `telemetry_digest` lines are bit-identical across `--threads`,
//! `--shot-threads` and `--path-chunks` (CI diffs them).

use std::path::PathBuf;

use qram_bench::report::{
    find_repo_root, fnv1a_64, percentile, serve_arch_json, serve_sweep_json, ServeArchPoint,
    ServeLoadPoint,
};
use qram_bench::{experiment_memory, print_row};
use qram_core::{ArchSpec, DataEncoding, Memory, Optimizations};
use qram_fleet::{FleetConfig, FleetController, FleetResult, ShedPolicy};
use qram_plan::{planned_families, UNLIMITED_BUDGET};
use qram_service::{
    assign_specs_with, Admission, ArrivalProcess, BatchReport, QramService, QueryResult, QuerySpec,
    ReleasePolicy, ServiceConfig, SloClass, SpecMix, TenantId, Ticks, Workload,
};
use qram_telemetry::{host_wall, key, MetricsRegistry, TelemetryRecorder};

struct Args {
    full: bool,
    arch: String,
    shots: Option<usize>,
    seed: u64,
    threads: usize,
    shot_threads: usize,
    path_chunks: usize,
    mode: String,
    workload: String,
    arrivals: String,
    loads: Vec<f64>,
    spec_skew: f64,
    requests: Option<usize>,
    width: Option<usize>,
    theta: f64,
    batch: usize,
    cache: usize,
    queue: usize,
    deadline: Ticks,
    release_policy: String,
    qubit_budget: usize,
    fleet: usize,
    tenants: u32,
    front_capacity: usize,
    shed_policy: String,
    replication: usize,
    pin_planned: bool,
    slo_deadline: Ticks,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        full: false,
        arch: "virtual".into(),
        shots: None,
        seed: 2023,
        threads: 0,
        shot_threads: 1,
        path_chunks: 1,
        mode: "closed".into(),
        workload: "zipfian".into(),
        arrivals: "poisson".into(),
        loads: vec![0.5, 1.0, 2.0],
        spec_skew: 0.0,
        requests: None,
        width: None,
        theta: 0.99,
        batch: 32,
        cache: 8,
        queue: 64,
        deadline: 20_000,
        release_policy: "oldest-first".into(),
        qubit_budget: UNLIMITED_BUDGET,
        fleet: 0,
        tenants: 3,
        front_capacity: 1024,
        shed_policy: "deadline-priority".into(),
        replication: 2,
        pin_planned: false,
        slo_deadline: 60_000,
        out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => parsed.full = true,
            "--arch" => parsed.arch = value("--arch", &mut args),
            "--shots" => parsed.shots = Some(value("--shots", &mut args).parse().expect("--shots")),
            "--seed" => parsed.seed = value("--seed", &mut args).parse().expect("--seed"),
            "--threads" => {
                parsed.threads = value("--threads", &mut args).parse().expect("--threads")
            }
            "--shot-threads" => {
                parsed.shot_threads = value("--shot-threads", &mut args)
                    .parse()
                    .expect("--shot-threads")
            }
            "--path-chunks" => {
                parsed.path_chunks = value("--path-chunks", &mut args)
                    .parse()
                    .expect("--path-chunks")
            }
            "--mode" => parsed.mode = value("--mode", &mut args),
            "--workload" => parsed.workload = value("--workload", &mut args),
            "--arrivals" => parsed.arrivals = value("--arrivals", &mut args),
            "--load" => {
                parsed.loads = value("--load", &mut args)
                    .split(',')
                    .map(|x| x.trim().parse().expect("--load"))
                    .collect();
                assert!(!parsed.loads.is_empty(), "--load needs at least one value");
            }
            "--spec-skew" => {
                parsed.spec_skew = value("--spec-skew", &mut args)
                    .parse()
                    .expect("--spec-skew")
            }
            "--requests" => {
                parsed.requests = Some(value("--requests", &mut args).parse().expect("--requests"))
            }
            "--width" => parsed.width = Some(value("--width", &mut args).parse().expect("--width")),
            "--theta" => parsed.theta = value("--theta", &mut args).parse().expect("--theta"),
            "--batch" => parsed.batch = value("--batch", &mut args).parse().expect("--batch"),
            "--cache" => parsed.cache = value("--cache", &mut args).parse().expect("--cache"),
            "--queue" => parsed.queue = value("--queue", &mut args).parse().expect("--queue"),
            "--deadline" => {
                parsed.deadline = value("--deadline", &mut args).parse().expect("--deadline")
            }
            "--release-policy" => parsed.release_policy = value("--release-policy", &mut args),
            "--qubit-budget" => {
                let budget: usize = value("--qubit-budget", &mut args)
                    .parse()
                    .expect("--qubit-budget");
                parsed.qubit_budget = if budget == 0 {
                    UNLIMITED_BUDGET
                } else {
                    budget
                };
            }
            "--fleet" => parsed.fleet = value("--fleet", &mut args).parse().expect("--fleet"),
            "--tenants" => {
                parsed.tenants = value("--tenants", &mut args).parse().expect("--tenants");
                assert!(parsed.tenants > 0, "--tenants needs at least one tenant");
            }
            "--front-capacity" => {
                parsed.front_capacity = value("--front-capacity", &mut args)
                    .parse()
                    .expect("--front-capacity")
            }
            "--shed-policy" => parsed.shed_policy = value("--shed-policy", &mut args),
            "--replication" => {
                parsed.replication = value("--replication", &mut args)
                    .parse()
                    .expect("--replication")
            }
            "--pin-planned" => parsed.pin_planned = true,
            "--slo-deadline" => {
                parsed.slo_deadline = value("--slo-deadline", &mut args)
                    .parse()
                    .expect("--slo-deadline")
            }
            "--out" => parsed.out = Some(PathBuf::from(value("--out", &mut args))),
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(value("--trace-out", &mut args)))
            }
            other => panic!(
                "unknown flag `{other}` (expected --full, --arch NAME, --shots N, --seed N, \
                 --threads N, --shot-threads N, --path-chunks N, --mode closed|open, \
                 --workload NAME, \
                 --arrivals NAME, --load LIST, --spec-skew X, --requests N, --width N, \
                 --theta X, --batch N, --cache N, --queue N, --deadline T, \
                 --release-policy oldest-first|cache-affine, --qubit-budget Q, \
                 --fleet N, --tenants T, --front-capacity N, \
                 --shed-policy tail-drop|deadline-priority, --replication N, --pin-planned, \
                 --slo-deadline T, --out FILE, --trace-out FILE)"
            ),
        }
    }
    parsed
}

/// The hot circuit shapes the workload cycles over for the selected
/// `--arch`: a realistic deployment serves a handful of compiled
/// configurations, and `mix` serves one per architecture family through
/// the same pipeline — the *planned* representative from the offline
/// `(k, m)` capacity planner under `--qubit-budget`, not the legacy
/// `k = 1` hard-coding, so the cross-family comparison is a fair fight.
fn hot_specs(arch: &str, n: usize, qubit_budget: usize) -> Vec<QuerySpec> {
    match arch {
        "virtual" => {
            let mut specs = vec![QuerySpec::new(1, n - 1)];
            if n >= 3 {
                specs.push(QuerySpec::new(2, n - 2));
                specs.push(
                    QuerySpec::new(1, n - 1)
                        .try_with_encoding(DataEncoding::FusedBit)
                        .expect("FusedBit applies to the virtual family"),
                );
                specs.push(
                    QuerySpec::new(2, n - 2)
                        .try_with_optimizations(Optimizations::OPT2)
                        .expect("OPT2 applies to the virtual family"),
                );
            }
            specs
        }
        "sqc" => vec![QuerySpec::of(ArchSpec::Sqc { n })],
        "fanout" => vec![QuerySpec::of(ArchSpec::Fanout { m: n })],
        "bb" => {
            let mut specs = vec![QuerySpec::of(ArchSpec::BucketBrigade { k: 1, m: n - 1 })];
            if n >= 3 {
                specs.push(QuerySpec::of(ArchSpec::BucketBrigade { k: 2, m: n - 2 }));
            }
            specs
        }
        "ss" => {
            let mut specs = vec![QuerySpec::of(ArchSpec::SelectSwap { k: 1, m: n - 1 })];
            if n >= 3 {
                specs.push(QuerySpec::of(ArchSpec::SelectSwap { k: 2, m: n - 2 }));
            }
            specs
        }
        "mix" => {
            let planned = planned_families(n, qubit_budget);
            assert!(
                !planned.is_empty(),
                "--qubit-budget {qubit_budget} fits no family at n = {n}; raise the budget"
            );
            planned.into_iter().map(QuerySpec::of).collect()
        }
        other => panic!("unknown --arch `{other}` (expected virtual, sqc, fanout, bb, ss, mix)"),
    }
}

fn build_workload(args: &Args, n: usize) -> Workload {
    match args.workload.as_str() {
        "uniform" => Workload::Uniform {
            address_width: n,
            seed: args.seed,
        },
        "zipfian" => Workload::Zipfian {
            address_width: n,
            theta: args.theta,
            seed: args.seed,
        },
        "scan" => Workload::SequentialScan { address_width: n },
        "grover" => Workload::GroverTrace {
            address_width: n,
            target: (1 << n) / 2,
        },
        other => panic!("unknown workload `{other}` (expected uniform, zipfian, scan, grover)"),
    }
}

/// The arrival process at a mean inter-arrival gap of `mean_gap` virtual
/// ns. `bursty` blends a 4x-fast burst state with a matching slow state
/// so the *average* load equals the Poisson stream's.
fn build_arrivals(args: &Args, mean_gap: f64) -> ArrivalProcess {
    match args.arrivals.as_str() {
        "poisson" => ArrivalProcess::Poisson {
            mean_gap,
            seed: args.seed ^ 0x5eed,
        },
        "bursty" => ArrivalProcess::Bursty {
            mean_fast_gap: mean_gap / 4.0,
            mean_slow_gap: mean_gap * 7.0 / 4.0,
            mean_dwell: 32.0,
            seed: args.seed ^ 0x5eed,
        },
        other => panic!("unknown arrival process `{other}` (expected poisson, bursty)"),
    }
}

fn spec_mix(args: &Args) -> SpecMix {
    if args.spec_skew > 0.0 {
        SpecMix::Zipfian {
            theta: args.spec_skew,
            seed: args.seed ^ 0x51ce,
        }
    } else {
        SpecMix::RoundRobin
    }
}

fn release_policy(args: &Args) -> ReleasePolicy {
    match args.release_policy.as_str() {
        "oldest-first" => ReleasePolicy::OldestFirst,
        "cache-affine" => ReleasePolicy::cache_affine(),
        other => panic!("unknown --release-policy `{other}` (expected oldest-first, cache-affine)"),
    }
}

/// The age cap a policy enforces (0 for strict FIFO, which needs none).
fn policy_age_cap(policy: ReleasePolicy) -> Ticks {
    match policy {
        ReleasePolicy::OldestFirst => 0,
        ReleasePolicy::CacheAffine { age_cap } => age_cap,
    }
}

fn service_config(args: &Args, shots: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(args.threads)
        .with_shots(shots)
        .with_seed(args.seed)
        .with_batch_limit(args.batch)
        .with_shot_threads(args.shot_threads)
        .with_path_chunks(args.path_chunks)
        .with_cache_capacity(args.cache)
        .with_queue_capacity(args.queue)
        .with_deadline(args.deadline)
        .with_release_policy(release_policy(args))
}

/// Digest of everything deterministic about a result set: ids,
/// addresses, serving architectures, values, virtual timestamps,
/// latency breakdowns, and the fidelity estimates bit by bit. Equal
/// digests across `--threads` values certify the executor's
/// bit-identity — including for mixed-architecture workloads.
fn results_digest(results: &[QueryResult]) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(results.len() * 96);
    for r in results {
        bytes.extend(r.id.to_le_bytes());
        bytes.extend(r.address.to_le_bytes());
        bytes.extend(r.spec.arch.family().as_bytes());
        bytes.push(r.value as u8);
        bytes.extend(r.arrival.to_le_bytes());
        bytes.extend(r.completed.to_le_bytes());
        bytes.extend(r.latency.queue_wait.to_le_bytes());
        bytes.extend(r.latency.compile.to_le_bytes());
        bytes.extend(r.latency.execute.to_le_bytes());
        bytes.extend(r.fidelity.mean.to_le_bytes());
        bytes.extend((r.fidelity.shots as u64).to_le_bytes());
    }
    fnv1a_64(bytes)
}

/// Virtual end-to-end latency percentiles `[p50, p90, p99, max]` in ns.
fn latency_percentiles(results: &[QueryResult]) -> [f64; 4] {
    let totals: Vec<f64> = results.iter().map(|r| r.latency.total() as f64).collect();
    let max = totals.iter().copied().fold(0.0f64, f64::max);
    [
        percentile(&totals, 50.0),
        percentile(&totals, 90.0),
        percentile(&totals, 99.0),
        max,
    ]
}

fn mean(values: impl Iterator<Item = f64>, count: usize) -> f64 {
    if count == 0 {
        return 0.0;
    }
    values.sum::<f64>() / count as f64
}

/// Slices one or more runs per architecture family: requests,
/// throughput and latency from the results, batch-level cache behavior
/// from the batch reports (a batch that charged compile ticks was a
/// cache miss).
///
/// Each `(results, batches)` pair is an independent run with its own
/// virtual clock (open mode sweeps one per load point), so throughput
/// sums each run's span rather than overlapping their clocks — the
/// union's `max(completed) − min(arrival)` would divide every run's
/// requests by roughly one run's window and report impossible rates.
fn arch_breakdown(runs: &[(&[QueryResult], &[BatchReport])]) -> Vec<ServeArchPoint> {
    let mut families: Vec<&'static str> = Vec::new();
    for (results, _) in runs {
        for r in *results {
            let family = r.spec.arch.family();
            if !families.contains(&family) {
                families.push(family);
            }
        }
    }
    families
        .into_iter()
        .map(|family| {
            let mut requests = 0usize;
            let mut span = 0u64;
            let mut totals: Vec<f64> = Vec::new();
            let mut executes: Vec<f64> = Vec::new();
            let mut fired = 0usize;
            let mut compiled = 0usize;
            for (results, batches) in runs {
                let slice: Vec<&QueryResult> = results
                    .iter()
                    .filter(|r| r.spec.arch.family() == family)
                    .collect();
                if !slice.is_empty() {
                    let first_arrival = slice.iter().map(|r| r.arrival).min().unwrap_or(0);
                    let last_completed = slice.iter().map(|r| r.completed).max().unwrap_or(0);
                    span += last_completed.saturating_sub(first_arrival).max(1);
                }
                requests += slice.len();
                totals.extend(slice.iter().map(|r| r.latency.total() as f64));
                executes.extend(slice.iter().map(|r| r.latency.execute as f64));
                fired += batches
                    .iter()
                    .filter(|b| b.spec.arch.family() == family)
                    .count();
                compiled += batches
                    .iter()
                    .filter(|b| b.spec.arch.family() == family && b.compile > 0)
                    .count();
            }
            let max = totals.iter().copied().fold(0.0f64, f64::max);
            ServeArchPoint {
                arch: family.into(),
                requests,
                virtual_rps: requests as f64 * 1e9 / span.max(1) as f64,
                latency_ns: [
                    percentile(&totals, 50.0),
                    percentile(&totals, 90.0),
                    percentile(&totals, 99.0),
                    max,
                ],
                mean_execute_ns: mean(executes.iter().copied(), executes.len()),
                batches: fired,
                compiled,
            }
        })
        .collect()
}

/// The fixed context of an open-loop sweep (everything but the load
/// multiplier).
struct OpenSweep<'a> {
    args: &'a Args,
    memory: &'a Memory,
    workload: &'a Workload,
    specs: &'a [QuerySpec],
    shots: usize,
    requests: usize,
    capacity_rps: f64,
}

/// One open-loop operating point's full output: the condensed summary
/// point, raw results and batch reports, the point's recorder (span log
/// + recorder-side metrics), and its merged metrics registry.
struct OpenPointRun {
    point: ServeLoadPoint,
    results: Vec<QueryResult>,
    batch_reports: Vec<BatchReport>,
    recorder: TelemetryRecorder,
    telemetry: MetricsRegistry,
}

/// Runs one open-loop operating point under `policy` and condenses it.
/// The arrival stream and spec assignment depend only on `(args,
/// load_factor)`, so two policies at the same point serve *identical*
/// arrivals — the policy-compare block relies on this.
fn run_open_point(sweep: &OpenSweep<'_>, load_factor: f64, policy: ReleasePolicy) -> OpenPointRun {
    let OpenSweep {
        args,
        memory,
        workload,
        specs,
        shots,
        requests,
        capacity_rps,
    } = *sweep;
    let offered_rps = capacity_rps * load_factor;
    let mean_gap = 1e9 / offered_rps;
    let arrivals = build_arrivals(args, mean_gap).arrivals(requests);
    let submissions = assign_specs_with(workload, specs, spec_mix(args), requests);

    let mut service = QramService::with_recorder(
        memory.clone(),
        service_config(args, shots).with_release_policy(policy),
        TelemetryRecorder::new(),
    );
    for (&arrival, &(address, spec)) in arrivals.iter().zip(&submissions) {
        match service.try_submit_at(address, spec, arrival) {
            Admission::Accepted(_) | Admission::Shed { .. } => {}
            Admission::Rejected(reason) => panic!("generated workload rejected: {reason}"),
        }
    }
    let results = service.run_until_idle();
    let batch_reports = service.take_batch_reports();

    let first_arrival = arrivals.first().copied().unwrap_or(0);
    let last_completed = results.iter().map(|r| r.completed).max().unwrap_or(0);
    let span = last_completed.saturating_sub(first_arrival).max(1) as f64;
    let completed = results.len();
    let point = ServeLoadPoint {
        offered_rps,
        load_factor,
        offered: requests,
        completed,
        shed: service.admission_stats().shed,
        achieved_rps: completed as f64 * 1e9 / span,
        latency_ns: latency_percentiles(&results),
        mean_queue_wait_ns: mean(
            results.iter().map(|r| r.latency.queue_wait as f64),
            completed,
        ),
        mean_compile_ns: mean(results.iter().map(|r| r.latency.compile as f64), completed),
        mean_execute_ns: mean(results.iter().map(|r| r.latency.execute as f64), completed),
        cache_hit_rate: service.cache_stats().hit_rate(),
    };
    let mut telemetry = service.metrics_snapshot();
    telemetry.merge_from(service.recorder().metrics());
    OpenPointRun {
        point,
        results,
        batch_reports,
        recorder: service.recorder().clone(),
        telemetry,
    }
}

/// The flat `telemetry` section of the v5 summary: stage-histogram
/// percentiles, admission flow conservation, release-policy counters,
/// and the trace/metrics digests. Every key is globally unique within
/// the summary so the first-occurrence field parser in
/// `qram_bench::report` reads them without structural JSON parsing.
fn telemetry_json(telemetry: &MetricsRegistry, trace_digest: u64) -> String {
    let p = |name: &str, q: f64| telemetry.histogram(name).map_or(0, |h| h.percentile(q));
    let c = |name: &str| telemetry.counter(name);
    let arrivals = c(key::ADMISSION_ACCEPTED) + c(key::ADMISSION_SHED) + c(key::ADMISSION_REJECTED);
    format!(
        "{{\n    \"trace_digest\": \"{trace_digest:016x}\",\n    \
         \"telemetry_digest\": \"{:016x}\",\n    \
         \"arrivals\": {arrivals},\n    \"accepted\": {},\n    \"shed\": {},\n    \
         \"rejected\": {},\n    \"completed\": {},\n    \"batches_fired\": {},\n    \
         \"queue_depth_high_water\": {},\n    \
         \"stage_queue_wait_p50_ns\": {},\n    \"stage_queue_wait_p99_ns\": {},\n    \
         \"stage_compile_p50_ns\": {},\n    \"stage_compile_p99_ns\": {},\n    \
         \"stage_execute_p50_ns\": {},\n    \"stage_execute_p99_ns\": {},\n    \
         \"stage_total_p50_ns\": {},\n    \"stage_total_p90_ns\": {},\n    \
         \"stage_total_p99_ns\": {},\n    \"batch_size_p50\": {},\n    \
         \"policy_cache_affine_fires\": {},\n    \"policy_age_cap_forced\": {},\n    \
         \"sim_shots\": {},\n    \"sim_gate_applications\": {}\n  }}",
        telemetry.digest(),
        c(key::ADMISSION_ACCEPTED),
        c(key::ADMISSION_SHED),
        c(key::ADMISSION_REJECTED),
        c(key::SERVICE_COMPLETED),
        c(key::BATCHES_FIRED),
        telemetry.gauge(key::QUEUE_DEPTH_HIGH_WATER),
        p(key::STAGE_QUEUE_WAIT, 50.0),
        p(key::STAGE_QUEUE_WAIT, 99.0),
        p(key::STAGE_COMPILE, 50.0),
        p(key::STAGE_COMPILE, 99.0),
        p(key::STAGE_EXECUTE, 50.0),
        p(key::STAGE_EXECUTE, 99.0),
        p(key::STAGE_TOTAL, 50.0),
        p(key::STAGE_TOTAL, 90.0),
        p(key::STAGE_TOTAL, 99.0),
        p(key::BATCH_SIZE, 50.0),
        c(key::POLICY_CACHE_AFFINE_FIRES),
        c(key::POLICY_AGE_CAP_FORCED),
        c(key::SIM_SHOTS),
        c(key::SIM_GATES),
    )
}

/// Prints the human-readable stage breakdown plus the digest lines CI
/// diffs across parallelism settings.
fn print_telemetry(telemetry: &MetricsRegistry, trace_digest: u64) {
    let p = |name: &str, q: f64| telemetry.histogram(name).map_or(0, |h| h.percentile(q));
    print_row(&[
        "stage_queue_wait_us".into(),
        format!(
            "p50 {:.1}, p99 {:.1}",
            p(key::STAGE_QUEUE_WAIT, 50.0) as f64 / 1e3,
            p(key::STAGE_QUEUE_WAIT, 99.0) as f64 / 1e3
        ),
    ]);
    print_row(&[
        "stage_compile_us".into(),
        format!(
            "p50 {:.1}, p99 {:.1}",
            p(key::STAGE_COMPILE, 50.0) as f64 / 1e3,
            p(key::STAGE_COMPILE, 99.0) as f64 / 1e3
        ),
    ]);
    print_row(&[
        "stage_execute_us".into(),
        format!(
            "p50 {:.1}, p99 {:.1}",
            p(key::STAGE_EXECUTE, 50.0) as f64 / 1e3,
            p(key::STAGE_EXECUTE, 99.0) as f64 / 1e3
        ),
    ]);
    print_row(&[
        "queue_depth_high_water".into(),
        telemetry.gauge(key::QUEUE_DEPTH_HIGH_WATER).to_string(),
    ]);
    println!("# trace_digest: {trace_digest:016x}");
    println!("# telemetry_digest: {:016x}", telemetry.digest());
}

/// Writes the full trace export: per-section canonical span logs plus
/// the merged metrics registry.
fn write_trace(
    path: &PathBuf,
    mode: &str,
    sections: &[(String, &TelemetryRecorder)],
    merged: &MetricsRegistry,
    trace_digest: u64,
) {
    let mut body = format!(
        "{{\n  \"schema\": \"qram-bench/trace/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"trace_digest\": \"{trace_digest:016x}\",\n  \
         \"telemetry_digest\": \"{:016x}\",\n  \"sections\": [",
        merged.digest()
    );
    let rendered: Vec<String> = sections
        .iter()
        .map(|(label, recorder)| {
            format!(
                "\n    {{\n      \"label\": \"{label}\",\n      \"trace_digest\": \"{:016x}\",\n      \"spans\":\n{}\n    }}",
                recorder.trace_digest(),
                recorder.tracer().to_json("      ")
            )
        })
        .collect();
    body.push_str(&rendered.join(","));
    body.push_str("\n  ],\n  \"metrics\":\n");
    body.push_str(&merged.to_json("  "));
    body.push_str("\n}\n");
    match std::fs::write(path, &body) {
        Ok(()) => println!("# trace written to {}", path.display()),
        Err(e) => {
            eprintln!("serve_bench: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn write_summary(out: Option<PathBuf>, json: &str) {
    let out_path = out.unwrap_or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_repo_root(&d))
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_SERVE.json")
    });
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("# summary written to {}", out_path.display()),
        Err(e) => {
            eprintln!("serve_bench: cannot write {}: {e}", out_path.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let n = args.width.unwrap_or(if args.full { 6 } else { 4 });
    let requests = args.requests.unwrap_or(if args.full { 1024 } else { 256 });
    let shots = args.shots.unwrap_or(if args.full { 32 } else { 8 });

    let memory = experiment_memory(n, args.seed);
    let workload = build_workload(&args, n);
    let specs = hot_specs(&args.arch, n, args.qubit_budget);
    match args.mode.as_str() {
        "closed" => {
            assert!(
                args.fleet == 0,
                "--fleet requires --mode open (the fleet controller is an open-loop front door)"
            );
            run_closed(&args, &memory, &workload, &specs, shots, requests)
        }
        "open" if args.fleet > 0 => {
            run_open_fleet(&args, &memory, &workload, &specs, shots, requests)
        }
        "open" => run_open(&args, &memory, &workload, &specs, shots, requests),
        other => panic!("unknown mode `{other}` (expected closed, open)"),
    }
}

/// Closed loop: every request is queued up front (a blocking client
/// population), then the pipeline drains to idle.
fn run_closed(
    args: &Args,
    memory: &Memory,
    workload: &Workload,
    specs: &[QuerySpec],
    shots: usize,
    requests: usize,
) {
    let mut service = QramService::with_recorder(
        memory.clone(),
        service_config(args, shots),
        TelemetryRecorder::new(),
    );
    service.submit_all(assign_specs_with(workload, specs, spec_mix(args), requests));

    let start = host_wall();
    let report = service.drain();
    let wall = start.elapsed();

    let latency = latency_percentiles(&report.results);
    let wall_rps = report.results.len() as f64 / wall.as_secs_f64().max(1e-9);
    let virtual_span = report
        .results
        .iter()
        .map(|r| r.completed)
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let virtual_rps = report.results.len() as f64 * 1e9 / virtual_span;
    let count = report.results.len();
    let mean_fidelity = mean(report.results.iter().map(|r| r.fidelity.mean), count);
    let mean_queue_wait = mean(
        report.results.iter().map(|r| r.latency.queue_wait as f64),
        count,
    );
    let digest = results_digest(&report.results);
    let mut telemetry = service.metrics_snapshot();
    telemetry.merge_from(service.recorder().metrics());
    let trace_digest = service.recorder().trace_digest();

    let per_arch = arch_breakdown(&[(&report.results[..], &report.batches[..])]);

    println!(
        "# serve_bench closed: {} x {} over n={} (arch {}, {} hot specs, batch <= {}, {} shots, {} workers x {} shot-threads)",
        count,
        workload.name(),
        memory.address_width(),
        args.arch,
        specs.len(),
        args.batch,
        shots,
        report.workers,
        args.shot_threads,
    );
    print_row(&["metric", "value"].map(String::from));
    print_row(&["requests".into(), count.to_string()]);
    print_row(&["batches".into(), report.batches.len().to_string()]);
    print_row(&[
        "release_policy".into(),
        release_policy(args).label().to_string(),
    ]);
    print_row(&["virtual_rps".into(), format!("{virtual_rps:.1}")]);
    print_row(&["wall_rps".into(), format!("{wall_rps:.1}")]);
    print_row(&["latency_p50_us".into(), format!("{:.1}", latency[0] / 1e3)]);
    print_row(&["latency_p90_us".into(), format!("{:.1}", latency[1] / 1e3)]);
    print_row(&["latency_p99_us".into(), format!("{:.1}", latency[2] / 1e3)]);
    print_row(&[
        "mean_queue_wait_us".into(),
        format!("{:.1}", mean_queue_wait / 1e3),
    ]);
    print_row(&["cache_hits".into(), report.cache.hits.to_string()]);
    print_row(&["cache_misses".into(), report.cache.misses.to_string()]);
    print_row(&["cache_evictions".into(), report.cache.evictions.to_string()]);
    print_row(&[
        "cache_hit_rate".into(),
        format!("{:.3}", report.cache.hit_rate()),
    ]);
    print_row(&["mean_fidelity".into(), format!("{mean_fidelity:.4}")]);
    for point in &per_arch {
        print_row(&[
            format!("arch[{}]", point.arch),
            format!(
                "{} reqs, p50 {:.1} us, exec {:.1} us, batch hit {:.2}",
                point.requests,
                point.latency_ns[0] / 1e3,
                point.mean_execute_ns / 1e3,
                point.batch_hit_rate()
            ),
        ]);
    }
    print_telemetry(&telemetry, trace_digest);
    println!("# results_digest: {digest:016x}");

    let json = format!(
        "{{\n  \"schema\": \"qram-bench/serve-summary/v6\",\n  \"mode\": \"closed\",\n  \
         \"arch\": \"{}\",\n  \
         \"workload\": \"{}\",\n  \"spec_mix\": \"{}\",\n  \"address_width\": {},\n  \
         \"requests\": {count},\n  \"batches\": {},\n  \"specs\": {},\n  \"shots\": {shots},\n  \
         \"seed\": {},\n  \"shot_threads\": {},\n  \"path_chunks\": {},\n  \
         \"release_policy\": \"{}\",\n  \"age_cap_ns\": {},\n  \"qubit_budget\": {},\n  \
         \"results_digest\": \"{digest:016x}\",\n  \
         \"virtual_rps\": {virtual_rps:.1},\n  \"wall_rps\": {wall_rps:.1},\n  \
         \"latency_ns\": {{\"p50\": {:.0}, \"p90\": {:.0}, \"p99\": {:.0}, \"max\": {:.0}}},\n  \
         \"mean_queue_wait_ns\": {mean_queue_wait:.1},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n  \
         \"mean_fidelity\": {mean_fidelity:.6},\n  \
         \"telemetry\": {},\n  \
         \"per_arch\": {}\n}}\n",
        args.arch,
        workload.name(),
        mix_name(args),
        memory.address_width(),
        report.batches.len(),
        specs.len(),
        args.seed,
        args.shot_threads,
        args.path_chunks,
        release_policy(args).label(),
        policy_age_cap(release_policy(args)),
        budget_field(args),
        latency[0],
        latency[1],
        latency[2],
        latency[3],
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.hit_rate(),
        telemetry_json(&telemetry, trace_digest),
        serve_arch_json(&per_arch),
    );
    write_summary(args.out.clone(), &json);
    if let Some(path) = &args.trace_out {
        let sections = [("closed".to_string(), service.recorder())];
        write_trace(path, "closed", &sections, &telemetry, trace_digest);
    }
}

/// Open loop: arrivals at fixed offered rates, swept across load
/// multipliers of the modeled capacity.
fn run_open(
    args: &Args,
    memory: &Memory,
    workload: &Workload,
    specs: &[QuerySpec],
    shots: usize,
    requests: usize,
) {
    // The modeled capacity: virtual execution units over the mean
    // per-request execute cost of the hot specs, each priced from its
    // architecture's measured resources.
    let cost = service_config(args, shots).cost;
    let mean_execute = specs
        .iter()
        .map(|spec| cost.execute_cost(&spec.arch.instantiate().resources(memory), shots))
        .sum::<u64>() as f64
        / specs.len() as f64;
    let capacity_rps = cost.capacity_rps(mean_execute.round() as u64);

    println!(
        "# serve_bench open: {} x {} + {} arrivals over n={} (arch {}, {} hot specs, {} shots, queue {}, deadline {} ns, capacity {:.0} rps)",
        requests,
        workload.name(),
        args.arrivals,
        memory.address_width(),
        args.arch,
        specs.len(),
        shots,
        args.queue,
        args.deadline,
        capacity_rps,
    );
    print_row(
        &[
            "load",
            "offered",
            "completed",
            "shed",
            "rps",
            "p50_us",
            "p99_us",
            "qwait_us",
            "hit_rate",
        ]
        .map(String::from),
    );
    let sweep = OpenSweep {
        args,
        memory,
        workload,
        specs,
        shots,
        requests,
        capacity_rps,
    };
    let mut points = Vec::new();
    let mut digest_bytes: Vec<u8> = Vec::new();
    let mut trace_digest_bytes: Vec<u8> = Vec::new();
    let mut merged_telemetry = MetricsRegistry::new();
    let mut point_runs: Vec<OpenPointRun> = Vec::new();
    for &load_factor in &args.loads {
        let run = run_open_point(&sweep, load_factor, release_policy(args));
        let point = &run.point;
        print_row(&[
            format!("{load_factor:.2}"),
            point.offered.to_string(),
            point.completed.to_string(),
            point.shed.to_string(),
            format!("{:.0}", point.achieved_rps),
            format!("{:.1}", point.latency_ns[0] / 1e3),
            format!("{:.1}", point.latency_ns[2] / 1e3),
            format!("{:.1}", point.mean_queue_wait_ns / 1e3),
            format!("{:.3}", point.cache_hit_rate),
        ]);
        digest_bytes.extend(results_digest(&run.results).to_le_bytes());
        trace_digest_bytes.extend(run.recorder.trace_digest().to_le_bytes());
        merged_telemetry.merge_from(&run.telemetry);
        points.push(run.point.clone());
        point_runs.push(run);
    }
    let digest = fnv1a_64(digest_bytes);
    // Each operating point runs its own service (its own virtual
    // clock), so the sweep's trace digest chains the per-point span-log
    // digests in sweep order rather than merging incomparable clocks.
    let trace_digest = fnv1a_64(trace_digest_bytes);
    print_telemetry(&merged_telemetry, trace_digest);
    println!("# results_digest: {digest:016x}");
    // The per-architecture slice aggregates every operating point (the
    // sweep itself stays the per-point view); each point keeps its own
    // virtual-clock span so the aggregate throughput stays physical.
    let runs: Vec<(&[QueryResult], &[BatchReport])> = point_runs
        .iter()
        .map(|r| (&r.results[..], &r.batch_reports[..]))
        .collect();
    let per_arch = arch_breakdown(&runs);

    // Head-to-head release-policy comparison at the swept load nearest
    // the modeled capacity (load 1.0): below it queues barely form, far
    // above it every pending group ages past the cap and cache-affine
    // correctly degenerates to FIFO — the capacity point is where the
    // policies actually diverge. Both policies serve *identical*
    // arrivals (`run_open_point` derives the stream purely from the
    // flags and the load factor), so every delta below is the dispatch
    // policy's doing.
    let compare_load = args
        .loads
        .iter()
        .copied()
        .min_by(|a, b| {
            (a - 1.0)
                .abs()
                .partial_cmp(&(b - 1.0).abs())
                .expect("load factors are finite")
        })
        .expect("--load is non-empty");
    let oldest = run_open_point(&sweep, compare_load, ReleasePolicy::OldestFirst);
    let affine = run_open_point(&sweep, compare_load, ReleasePolicy::cache_affine());
    print_row(&[
        "policy_p50_us".into(),
        format!(
            "oldest-first {:.1} vs cache-affine {:.1} @ load {compare_load:.2}",
            oldest.point.latency_ns[0] / 1e3,
            affine.point.latency_ns[0] / 1e3
        ),
    ]);
    print_row(&[
        "policy_mean_compile_us".into(),
        format!(
            "oldest-first {:.1} vs cache-affine {:.1}",
            oldest.point.mean_compile_ns / 1e3,
            affine.point.mean_compile_ns / 1e3
        ),
    ]);
    let policy_compare = format!(
        "{{\n    \"compare_load\": {compare_load:.2},\n    \
         \"p50_oldest_first_ns\": {:.0},\n    \"p99_oldest_first_ns\": {:.0},\n    \
         \"mean_compile_oldest_first_ns\": {:.1},\n    \
         \"mean_queue_wait_oldest_first_ns\": {:.1},\n    \
         \"digest_oldest_first\": \"{:016x}\",\n    \
         \"p50_cache_affine_ns\": {:.0},\n    \"p99_cache_affine_ns\": {:.0},\n    \
         \"mean_compile_cache_affine_ns\": {:.1},\n    \
         \"mean_queue_wait_cache_affine_ns\": {:.1},\n    \
         \"digest_cache_affine\": \"{:016x}\",\n    \
         \"compare_cache_affine_fires\": {},\n    \"compare_age_cap_forced\": {}\n  }}",
        oldest.point.latency_ns[0],
        oldest.point.latency_ns[2],
        oldest.point.mean_compile_ns,
        oldest.point.mean_queue_wait_ns,
        results_digest(&oldest.results),
        affine.point.latency_ns[0],
        affine.point.latency_ns[2],
        affine.point.mean_compile_ns,
        affine.point.mean_queue_wait_ns,
        results_digest(&affine.results),
        affine.telemetry.counter(key::POLICY_CACHE_AFFINE_FIRES),
        affine.telemetry.counter(key::POLICY_AGE_CAP_FORCED),
    );

    let json = format!(
        "{{\n  \"schema\": \"qram-bench/serve-summary/v6\",\n  \"mode\": \"open\",\n  \
         \"arch\": \"{}\",\n  \
         \"workload\": \"{}\",\n  \"arrivals\": \"{}\",\n  \"spec_mix\": \"{}\",\n  \
         \"address_width\": {},\n  \"requests_per_point\": {requests},\n  \"specs\": {},\n  \
         \"shots\": {shots},\n  \"seed\": {},\n  \"shot_threads\": {},\n  \
         \"path_chunks\": {},\n  \"queue_capacity\": {},\n  \"deadline_ns\": {},\n  \"batch_limit\": {},\n  \
         \"release_policy\": \"{}\",\n  \"age_cap_ns\": {},\n  \"qubit_budget\": {},\n  \
         \"capacity_rps\": {capacity_rps:.1},\n  \"results_digest\": \"{digest:016x}\",\n  \
         \"telemetry\": {},\n  \
         \"policy_compare\": {policy_compare},\n  \
         \"sweep\": {},\n  \"per_arch\": {}\n}}\n",
        args.arch,
        workload.name(),
        args.arrivals,
        mix_name(args),
        memory.address_width(),
        specs.len(),
        args.seed,
        args.shot_threads,
        args.path_chunks,
        args.queue,
        args.deadline,
        args.batch,
        release_policy(args).label(),
        policy_age_cap(release_policy(args)),
        budget_field(args),
        telemetry_json(&merged_telemetry, trace_digest),
        serve_sweep_json(&points),
        serve_arch_json(&per_arch),
    );
    write_summary(args.out.clone(), &json);
    if let Some(path) = &args.trace_out {
        let sections: Vec<(String, &TelemetryRecorder)> = point_runs
            .iter()
            .zip(&args.loads)
            .map(|(run, load)| (format!("load={load:.2}"), &run.recorder))
            .collect();
        write_trace(path, "open", &sections, &merged_telemetry, trace_digest);
    }
}

/// The front-door overflow policy selected by `--shed-policy`.
fn shed_policy(args: &Args) -> ShedPolicy {
    match args.shed_policy.as_str() {
        "tail-drop" => ShedPolicy::TailDrop,
        "deadline-priority" => ShedPolicy::DeadlinePriority,
        other => panic!("unknown --shed-policy `{other}` (expected tail-drop, deadline-priority)"),
    }
}

/// The fleet topology selected by the flags: `--fleet` shards each
/// running the bare service configuration, fronted by a
/// `--front-capacity` door under `--shed-policy`.
fn fleet_config(args: &Args, shots: usize) -> FleetConfig {
    let mut config = FleetConfig::default()
        .with_shards(args.fleet)
        .with_shard_base(service_config(args, shots))
        .with_front_capacity(args.front_capacity)
        .with_shed_policy(shed_policy(args))
        .with_replication(args.replication);
    if args.pin_planned {
        config = config.with_planned_pins(args.qubit_budget);
    }
    config
}

/// Deterministic tenant for the `index`-th offer: an FNV mix of the
/// index and the master seed, so the tenant stream is reproducible but
/// decorrelated from the round-robin SLO-class cycle below.
fn tenant_for(index: u64, tenants: u32, seed: u64) -> TenantId {
    let mut bytes = index.to_le_bytes().to_vec();
    bytes.extend_from_slice(&seed.to_le_bytes());
    TenantId((fnv1a_64(bytes) % tenants as u64) as u32)
}

/// Deterministic SLO class for the `index`-th offer: 25% interactive
/// (under the `--slo-deadline` budget), 50% batch, 25% best-effort.
fn slo_for(index: u64, deadline: Ticks) -> SloClass {
    match index % 4 {
        0 => SloClass::Interactive { deadline },
        3 => SloClass::BestEffort,
        _ => SloClass::Batch,
    }
}

/// Digest of everything deterministic about a fleet result set: the
/// fleet-level placement and queueing context on top of each
/// shard-level result's own deterministic fields.
fn fleet_results_digest(results: &[FleetResult]) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(results.len() * 96);
    for r in results {
        bytes.extend(r.seq.to_le_bytes());
        bytes.extend((r.shard as u64).to_le_bytes());
        bytes.extend(r.tenant.0.to_le_bytes());
        bytes.extend(r.slo.label().as_bytes());
        bytes.extend(r.front_wait.to_le_bytes());
        bytes.extend(r.result.address.to_le_bytes());
        bytes.extend(r.result.spec.arch.family().as_bytes());
        bytes.push(r.result.value as u8);
        bytes.extend(r.result.completed.to_le_bytes());
        bytes.extend(r.result.latency.queue_wait.to_le_bytes());
        bytes.extend(r.result.latency.compile.to_le_bytes());
        bytes.extend(r.result.latency.execute.to_le_bytes());
    }
    fnv1a_64(bytes)
}

/// Door-to-completion p99 of the interactive class (0 when the point
/// completed no interactive requests).
fn interactive_p99(results: &[FleetResult]) -> f64 {
    let totals: Vec<f64> = results
        .iter()
        .filter(|r| matches!(r.slo, SloClass::Interactive { .. }))
        .map(|r| r.total_latency() as f64)
        .collect();
    percentile(&totals, 99.0)
}

/// One fleet operating point's full output: the condensed summary point
/// (latencies are door-to-completion, front wait included), raw fleet
/// results, the front-door recorder, the merged fleet+shard metrics,
/// the fleet trace digest, and the per-tenant / per-SLO / per-shard
/// tallies.
struct FleetPointRun {
    point: ServeLoadPoint,
    results: Vec<FleetResult>,
    recorder: TelemetryRecorder,
    telemetry: MetricsRegistry,
    trace_digest: u64,
    per_tenant: Vec<(u32, u64, u64)>,
    per_class: Vec<(&'static str, u64, u64, u64, u64)>,
    per_shard: Vec<(usize, u64, u64, u64)>,
}

/// Runs one fleet operating point under `policy` and condenses it. Like
/// [`run_open_point`], the arrival stream, spec assignment, and
/// tenant/SLO tagging depend only on `(args, load_factor)`, so two shed
/// policies at the same point serve *byte-identical* offered streams —
/// the `slo_compare` block relies on this.
fn run_fleet_point(sweep: &OpenSweep<'_>, load_factor: f64, policy: ShedPolicy) -> FleetPointRun {
    let OpenSweep {
        args,
        memory,
        workload,
        specs,
        shots,
        requests,
        capacity_rps,
    } = *sweep;
    let offered_rps = capacity_rps * load_factor;
    let mean_gap = 1e9 / offered_rps;
    let arrivals = build_arrivals(args, mean_gap).arrivals(requests);
    let submissions = assign_specs_with(workload, specs, spec_mix(args), requests);

    let mut fleet = FleetController::with_telemetry(
        memory.clone(),
        fleet_config(args, shots).with_shed_policy(policy),
    );
    for (i, (&arrival, &(address, spec))) in arrivals.iter().zip(&submissions).enumerate() {
        let tenant = tenant_for(i as u64, args.tenants, args.seed);
        let slo = slo_for(i as u64, args.slo_deadline);
        fleet.submit_at(address, spec, arrival, tenant, slo);
    }
    let results = fleet.run_until_idle();

    let first_arrival = arrivals.first().copied().unwrap_or(0);
    let last_completed = results
        .iter()
        .map(|r| r.result.completed)
        .max()
        .unwrap_or(0);
    let span = last_completed.saturating_sub(first_arrival).max(1) as f64;
    let completed = results.len();
    let totals: Vec<f64> = results.iter().map(|r| r.total_latency() as f64).collect();
    let max = totals.iter().copied().fold(0.0f64, f64::max);
    let (hits, misses) = fleet.shards().iter().fold((0u64, 0u64), |(h, m), shard| {
        let c = shard.cache_stats();
        (h + c.hits, m + c.misses)
    });
    let stats = fleet.stats();
    let point = ServeLoadPoint {
        offered_rps,
        load_factor,
        offered: requests,
        completed,
        shed: stats.shed,
        achieved_rps: completed as f64 * 1e9 / span,
        latency_ns: [
            percentile(&totals, 50.0),
            percentile(&totals, 90.0),
            percentile(&totals, 99.0),
            max,
        ],
        mean_queue_wait_ns: mean(
            results
                .iter()
                .map(|r| (r.front_wait + r.result.latency.queue_wait) as f64),
            completed,
        ),
        mean_compile_ns: mean(
            results.iter().map(|r| r.result.latency.compile as f64),
            completed,
        ),
        mean_execute_ns: mean(
            results.iter().map(|r| r.result.latency.execute as f64),
            completed,
        ),
        cache_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    };
    let per_tenant: Vec<(u32, u64, u64)> = stats
        .per_tenant
        .iter()
        .map(|(t, s)| (t.0, s.completed, s.shed))
        .collect();
    let per_class: Vec<(&'static str, u64, u64, u64, u64)> = stats
        .per_class
        .iter()
        .map(|(&label, s)| {
            (
                label,
                s.completed,
                s.shed,
                s.deadline_met,
                s.deadline_missed,
            )
        })
        .collect();
    let per_shard: Vec<(usize, u64, u64, u64)> = fleet
        .shards()
        .iter()
        .enumerate()
        .map(|(sid, shard)| {
            let on_shard = results.iter().filter(|r| r.shard == sid).count() as u64;
            let c = shard.cache_stats();
            (sid, on_shard, c.hits, c.misses)
        })
        .collect();

    let mut telemetry = fleet.metrics_snapshot();
    for shard in fleet.shards() {
        telemetry.merge_from(shard.recorder().metrics());
    }
    telemetry.merge_from(fleet.recorder().metrics());
    let trace_digest = fleet.trace_digest();
    FleetPointRun {
        point,
        recorder: fleet.recorder().clone(),
        telemetry,
        trace_digest,
        per_tenant,
        per_class,
        per_shard,
        results,
    }
}

/// The shed tally a point recorded for `label`, 0 when the class never
/// appeared.
fn class_shed(per_class: &[(&'static str, u64, u64, u64, u64)], label: &str) -> u64 {
    per_class
        .iter()
        .find(|(l, ..)| *l == label)
        .map(|&(_, _, shed, _, _)| shed)
        .unwrap_or(0)
}

/// Open loop through the fleet front door: the bare open sweep's
/// arrival machinery, served by a sharded [`FleetController`] with
/// deterministic tenant/SLO tagging, plus a deadline-priority vs
/// tail-drop head-to-head on byte-identical arrivals at the highest
/// swept load.
fn run_open_fleet(
    args: &Args,
    memory: &Memory,
    workload: &Workload,
    specs: &[QuerySpec],
    shots: usize,
    requests: usize,
) {
    // The modeled capacity: the bare per-shard capacity (execution
    // units over mean execute cost) times the shard count.
    let cost = service_config(args, shots).cost;
    let mean_execute = specs
        .iter()
        .map(|spec| cost.execute_cost(&spec.arch.instantiate().resources(memory), shots))
        .sum::<u64>() as f64
        / specs.len() as f64;
    let capacity_rps = cost.capacity_rps(mean_execute.round() as u64) * args.fleet as f64;

    println!(
        "# serve_bench fleet: {} shards x {} requests/point, {} tenants, shed {}, replication {}, n={} (arch {}, {} hot specs, {} shots, front {}, capacity {:.0} rps)",
        args.fleet,
        requests,
        args.tenants,
        args.shed_policy,
        args.replication,
        memory.address_width(),
        args.arch,
        specs.len(),
        shots,
        args.front_capacity,
        capacity_rps,
    );
    print_row(
        &[
            "load",
            "offered",
            "completed",
            "shed",
            "rps",
            "p50_us",
            "p99_us",
            "qwait_us",
            "hit_rate",
        ]
        .map(String::from),
    );
    let sweep = OpenSweep {
        args,
        memory,
        workload,
        specs,
        shots,
        requests,
        capacity_rps,
    };
    let mut points = Vec::new();
    let mut digest_bytes: Vec<u8> = Vec::new();
    let mut trace_digest_bytes: Vec<u8> = Vec::new();
    let mut merged_telemetry = MetricsRegistry::new();
    let mut all_totals: Vec<f64> = Vec::new();
    let mut agg_tenant: std::collections::BTreeMap<u32, (u64, u64)> = Default::default();
    let mut agg_class: std::collections::BTreeMap<&'static str, (u64, u64, u64, u64)> =
        Default::default();
    let mut agg_shard: std::collections::BTreeMap<usize, (u64, u64, u64)> = Default::default();
    let mut offered_total = 0usize;
    let mut shed_total = 0u64;
    let mut arch_runs: Vec<Vec<QueryResult>> = Vec::new();
    let mut recorders: Vec<(String, TelemetryRecorder)> = Vec::new();
    for &load_factor in &args.loads {
        let run = run_fleet_point(&sweep, load_factor, shed_policy(args));
        let point = &run.point;
        print_row(&[
            format!("{load_factor:.2}"),
            point.offered.to_string(),
            point.completed.to_string(),
            point.shed.to_string(),
            format!("{:.0}", point.achieved_rps),
            format!("{:.1}", point.latency_ns[0] / 1e3),
            format!("{:.1}", point.latency_ns[2] / 1e3),
            format!("{:.1}", point.mean_queue_wait_ns / 1e3),
            format!("{:.3}", point.cache_hit_rate),
        ]);
        digest_bytes.extend(fleet_results_digest(&run.results).to_le_bytes());
        trace_digest_bytes.extend(run.trace_digest.to_le_bytes());
        merged_telemetry.merge_from(&run.telemetry);
        all_totals.extend(run.results.iter().map(|r| r.total_latency() as f64));
        for &(t, completed, shed) in &run.per_tenant {
            let e = agg_tenant.entry(t).or_default();
            e.0 += completed;
            e.1 += shed;
        }
        for &(label, completed, shed, met, missed) in &run.per_class {
            let e = agg_class.entry(label).or_default();
            e.0 += completed;
            e.1 += shed;
            e.2 += met;
            e.3 += missed;
        }
        for &(sid, completed, hits, misses) in &run.per_shard {
            let e = agg_shard.entry(sid).or_default();
            e.0 += completed;
            e.1 += hits;
            e.2 += misses;
        }
        offered_total += point.offered;
        shed_total += point.shed;
        if args.trace_out.is_some() {
            recorders.push((format!("load={load_factor:.2}"), run.recorder));
        }
        arch_runs.push(run.results.iter().map(|r| r.result.clone()).collect());
        points.push(run.point.clone());
    }
    let digest = fnv1a_64(digest_bytes);
    // As in the bare open sweep, each point runs its own virtual clock,
    // so the sweep digest chains the per-point fleet trace digests.
    let trace_digest = fnv1a_64(trace_digest_bytes);
    let fleet_p50 = percentile(&all_totals, 50.0);
    let fleet_p99 = percentile(&all_totals, 99.0);
    let completed_total = all_totals.len();
    print_telemetry(&merged_telemetry, trace_digest);
    println!("# results_digest: {digest:016x}");
    print_row(&[
        "fleet_door_to_done_us".into(),
        format!("p50 {:.1}, p99 {:.1}", fleet_p50 / 1e3, fleet_p99 / 1e3),
    ]);
    for (&t, &(completed, shed)) in &agg_tenant {
        print_row(&[
            format!("tenant[{t}]"),
            format!("{completed} completed, {shed} shed"),
        ]);
    }
    for (&label, &(completed, shed, met, missed)) in &agg_class {
        print_row(&[
            format!("slo[{label}]"),
            format!(
                "{completed} completed, {shed} shed, deadline {met}/{}",
                met + missed
            ),
        ]);
    }
    let empty_batches: Vec<BatchReport> = Vec::new();
    let runs: Vec<(&[QueryResult], &[BatchReport])> = arch_runs
        .iter()
        .map(|r| (&r[..], &empty_batches[..]))
        .collect();
    let per_arch = arch_breakdown(&runs);

    // SLO head-to-head at the *highest* swept load — overload is where
    // the shed policies actually diverge. Both runs serve byte-identical
    // offered streams; every delta is the front-door policy's doing.
    let compare_load = args.loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let dp = run_fleet_point(&sweep, compare_load, ShedPolicy::DeadlinePriority);
    let td = run_fleet_point(&sweep, compare_load, ShedPolicy::TailDrop);
    let dp_p99 = interactive_p99(&dp.results);
    let td_p99 = interactive_p99(&td.results);
    print_row(&[
        "slo_interactive_p99_us".into(),
        format!(
            "deadline-priority {:.1} vs tail-drop {:.1} @ load {compare_load:.2}",
            dp_p99 / 1e3,
            td_p99 / 1e3
        ),
    ]);
    let slo_compare = format!(
        "{{\n    \"slo_compare_load\": {compare_load:.2},\n    \
         \"interactive_p99_deadline_priority_ns\": {dp_p99:.0},\n    \
         \"interactive_p99_tail_drop_ns\": {td_p99:.0},\n    \
         \"interactive_shed_deadline_priority\": {},\n    \
         \"interactive_shed_tail_drop\": {},\n    \
         \"batch_shed_deadline_priority\": {},\n    \
         \"batch_shed_tail_drop\": {},\n    \
         \"best_effort_shed_deadline_priority\": {},\n    \
         \"best_effort_shed_tail_drop\": {},\n    \
         \"digest_deadline_priority\": \"{:016x}\",\n    \
         \"digest_tail_drop\": \"{:016x}\"\n  }}",
        class_shed(&dp.per_class, "interactive"),
        class_shed(&td.per_class, "interactive"),
        class_shed(&dp.per_class, "batch"),
        class_shed(&td.per_class, "batch"),
        class_shed(&dp.per_class, "best_effort"),
        class_shed(&td.per_class, "best_effort"),
        fleet_results_digest(&dp.results),
        fleet_results_digest(&td.results),
    );

    let fleet_section = format!(
        "{{\n    \"fleet_shards\": {},\n    \"fleet_tenants\": {},\n    \
         \"fleet_front_capacity\": {},\n    \"fleet_shed_policy\": \"{}\",\n    \
         \"fleet_replication\": {},\n    \"fleet_pin_planned\": {},\n    \
         \"fleet_slo_deadline_ns\": {},\n    \
         \"fleet_offered\": {offered_total},\n    \"fleet_completed\": {completed_total},\n    \
         \"fleet_shed\": {shed_total},\n    \
         \"fleet_routed\": {},\n    \"fleet_pinned_routes\": {},\n    \
         \"fleet_replica_cache_wins\": {},\n    \"fleet_front_depth_high_water\": {},\n    \
         \"fleet_p50_ns\": {fleet_p50:.0},\n    \"fleet_p99_ns\": {fleet_p99:.0}\n  }}",
        args.fleet,
        args.tenants,
        args.front_capacity,
        shed_policy(args).label(),
        args.replication,
        args.pin_planned,
        args.slo_deadline,
        merged_telemetry.counter(key::FLEET_ROUTED),
        merged_telemetry.counter(key::FLEET_PINNED_ROUTES),
        merged_telemetry.counter(key::FLEET_REPLICA_CACHE_WINS),
        merged_telemetry.gauge(key::FLEET_FRONT_DEPTH_HIGH_WATER),
    );
    let per_shard_json = agg_shard
        .iter()
        .map(|(&sid, &(completed, hits, misses))| {
            format!(
                "\n    {{\"shard\": {sid}, \"completed\": {completed}, \
                 \"cache_hits\": {hits}, \"cache_misses\": {misses}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let per_tenant_json = agg_tenant
        .iter()
        .map(|(&t, &(completed, shed))| {
            format!("\n    {{\"tenant\": {t}, \"completed\": {completed}, \"shed\": {shed}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    let per_slo_json = agg_class
        .iter()
        .map(|(&label, &(completed, shed, met, missed))| {
            format!(
                "\n    {{\"slo\": \"{label}\", \"completed\": {completed}, \"shed\": {shed}, \
                 \"deadline_met\": {met}, \"deadline_missed\": {missed}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let json = format!(
        "{{\n  \"schema\": \"qram-bench/serve-summary/v6\",\n  \"mode\": \"open\",\n  \
         \"arch\": \"{}\",\n  \
         \"workload\": \"{}\",\n  \"arrivals\": \"{}\",\n  \"spec_mix\": \"{}\",\n  \
         \"address_width\": {},\n  \"requests_per_point\": {requests},\n  \"specs\": {},\n  \
         \"shots\": {shots},\n  \"seed\": {},\n  \"shot_threads\": {},\n  \
         \"path_chunks\": {},\n  \"queue_capacity\": {},\n  \"deadline_ns\": {},\n  \"batch_limit\": {},\n  \
         \"release_policy\": \"{}\",\n  \"age_cap_ns\": {},\n  \"qubit_budget\": {},\n  \
         \"capacity_rps\": {capacity_rps:.1},\n  \"results_digest\": \"{digest:016x}\",\n  \
         \"fleet\": {fleet_section},\n  \
         \"telemetry\": {},\n  \
         \"slo_compare\": {slo_compare},\n  \
         \"sweep\": {},\n  \
         \"per_shard\": [{per_shard_json}\n  ],\n  \
         \"per_tenant\": [{per_tenant_json}\n  ],\n  \
         \"per_slo\": [{per_slo_json}\n  ],\n  \
         \"per_arch\": {}\n}}\n",
        args.arch,
        workload.name(),
        args.arrivals,
        mix_name(args),
        memory.address_width(),
        specs.len(),
        args.seed,
        args.shot_threads,
        args.path_chunks,
        args.queue,
        args.deadline,
        args.batch,
        release_policy(args).label(),
        policy_age_cap(release_policy(args)),
        budget_field(args),
        telemetry_json(&merged_telemetry, trace_digest),
        serve_sweep_json(&points),
        serve_arch_json(&per_arch),
    );
    write_summary(args.out.clone(), &json);
    if let Some(path) = &args.trace_out {
        let sections: Vec<(String, &TelemetryRecorder)> = recorders
            .iter()
            .map(|(label, recorder)| (label.clone(), recorder))
            .collect();
        write_trace(path, "open", &sections, &merged_telemetry, trace_digest);
    }
}

/// The `qubit_budget` summary field: the CLI's "0 means unlimited"
/// convention, round-tripped.
fn budget_field(args: &Args) -> usize {
    if args.qubit_budget == UNLIMITED_BUDGET {
        0
    } else {
        args.qubit_budget
    }
}

fn mix_name(args: &Args) -> String {
    if args.spec_skew > 0.0 {
        format!("zipfian({:.2})", args.spec_skew)
    } else {
        "round_robin".into()
    }
}
