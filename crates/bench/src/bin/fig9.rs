//! Fig. 9 — query fidelity vs architecture under Pauli X and Z noise at
//! `ε = 10⁻³` (qubit-per-step error model — the model in which the
//! Sec. 5.1 bounds are stated; Sec. 6.3 notes the gate-based model agrees
//! up to constants).
//!
//! Select-Swap uses its canonical balanced internal split
//! (`k = ⌊m/2⌋`). Fidelity is reduced over address + bus (the tree is an
//! ancilla), the notion under which bucket brigade resists generic noise.
//!
//! Expected shape: under Z noise, our QRAM and bucket brigade decay
//! polynomially in `m` while select-swap falls away; under X noise only
//! bucket brigade's infidelity stays `O(εm²)` — ours and select-swap's
//! grow with the tree size. The X-channel crossover between BB and the
//! rest emerges at `m ≥ 7` (run with `--full`); below that, circuit-size
//! constants dominate.

use qram_bench::{architecture_fidelity, experiment_memory, print_row, FidelityKind, RunOptions};
use qram_core::{BucketBrigadeQram, QueryArchitecture, SelectSwapQram, VirtualQram};
use qram_noise::{NoiseModel, PauliChannel, BASE_ERROR_RATE};

fn main() {
    let opts = RunOptions::from_args();
    let max_m = if opts.full { 8 } else { 6 };
    let config = opts.shot_config(if opts.full { 1024 } else { 200 });

    println!("# Fig. 9: fidelity vs architecture, qubit-per-step Pauli noise, eps = 1e-3");
    println!(
        "# shots = {}; fidelity reduced over address+bus (tree traced out)",
        config.shots
    );
    print_row(&["m", "architecture", "channel", "fidelity", "stderr"].map(String::from));

    for m in 1..=max_m {
        let memory = experiment_memory(m, opts.seed ^ m as u64);
        let archs: [Box<dyn QueryArchitecture>; 3] = [
            Box::new(VirtualQram::new(0, m)),
            Box::new(BucketBrigadeQram::new(0, m)),
            Box::new(SelectSwapQram::new(m / 2, m - m / 2)),
        ];
        for arch in &archs {
            for (label, channel) in [
                ("Z", PauliChannel::phase_flip(BASE_ERROR_RATE)),
                ("X", PauliChannel::bit_flip(BASE_ERROR_RATE)),
            ] {
                let est = architecture_fidelity(
                    arch.as_ref(),
                    &memory,
                    NoiseModel::qubit_per_step(channel),
                    FidelityKind::Reduced,
                    config,
                );
                print_row(&[
                    m.to_string(),
                    arch.name(),
                    label.to_string(),
                    format!("{:.4}", est.mean),
                    format!("{:.4}", est.std_error),
                ]);
            }
        }
    }
}
