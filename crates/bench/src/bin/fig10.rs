//! Fig. 10 — virtual-QRAM fidelity vs error-reduction factor εr, under
//! the phase-flip (left panel) and bit-flip (right panel) channels.
//!
//! Expected shape: at equal εr, phase-flip fidelity is far above
//! bit-flip fidelity (the Z-bias resilience of Sec. 5.1), the gap widens
//! with `m`, and both approach 1 as εr → 1000.

use qram_bench::{
    architecture_fidelity, default_er_sweep, experiment_memory, print_row, FidelityKind, RunOptions,
};
use qram_core::VirtualQram;
use qram_noise::{NoiseModel, PauliChannel, BASE_ERROR_RATE};

fn main() {
    let opts = RunOptions::from_args();
    let max_m = if opts.full { 6 } else { 4 };
    let config = opts.shot_config(if opts.full { 1024 } else { 200 });
    let sweep = default_er_sweep(opts.full);

    println!("# Fig. 10: virtual QRAM fidelity vs error reduction factor (k = 0)");
    println!(
        "# base error rate = {BASE_ERROR_RATE}; shots = {}",
        config.shots
    );
    print_row(&["channel", "m", "er", "fidelity", "stderr"].map(String::from));

    for (label, channel) in [
        ("phase_flip", PauliChannel::phase_flip(BASE_ERROR_RATE)),
        ("bit_flip", PauliChannel::bit_flip(BASE_ERROR_RATE)),
    ] {
        for m in 1..=max_m {
            let memory = experiment_memory(m, opts.seed ^ (m as u64) << 4);
            let arch = VirtualQram::new(0, m);
            for &er in &sweep {
                let model = NoiseModel::per_gate(channel).reduced_by(er);
                let est = architecture_fidelity(&arch, &memory, model, FidelityKind::Full, config);
                print_row(&[
                    label.to_string(),
                    m.to_string(),
                    format!("{:.3}", er.0),
                    format!("{:.4}", est.mean),
                    format!("{:.4}", est.std_error),
                ]);
            }
        }
    }
}
