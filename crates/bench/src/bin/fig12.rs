//! Fig. 12 / Appendix A — small-scale virtual QRAM on synthetic IBMQ
//! device models: SWAP-routing counts plus fidelity vs error-reduction
//! factor.
//!
//! Substitution note (DESIGN.md §5): the paper pulls calibration noise
//! from IBM's `ibm_perth` / `ibmq_guadalupe` backends at run time and
//! routes with Qiskit's SABRE. Offline, we encode the published coupling
//! maps with uniform rates at the paper's `ε₀ = 10⁻³` baseline and route
//! with `sabre_lite`; the inserted-SWAP overhead is folded into the
//! 2-qubit error budget (each SWAP = 3 CX of extra exposure).
//!
//! Expected shape: εr = 10 gives usable fidelity; εr ≥ 100 pushes the
//! query above 0.98 (the paper's headline Appendix A claim).

use qram_bench::{default_er_sweep, experiment_memory, print_row, RunOptions};
use qram_circuit::decompose::{lower, CliffordTGate};
use qram_core::{DataEncoding, QueryArchitecture, VirtualQram};
use qram_layout::{route, route_with_chosen_layout, CouplingGraph};
use qram_noise::{ibm_perth, ibmq_guadalupe, DeviceModel, ErrorReductionFactor, FaultSampler};
use qram_sim::monte_carlo_fidelity_with;

/// Scales a device model's 2-qubit channel by the routed/unrouted CX
/// ratio, charging the SWAP overhead to every 2-qubit gate.
fn routing_penalty(device: &DeviceModel, arch: &VirtualQram, seed: u64) -> (usize, f64) {
    let memory = experiment_memory(arch.address_width(), seed);
    let query = arch.build(&memory);
    let lowered = lower(query.circuit());
    let topo = CouplingGraph::new(device.num_qubits(), device.coupling().to_vec());
    // Trial both initial layouts and keep the cheaper routing, as
    // transpilers do.
    let identity = route(&lowered, &topo).expect("device has enough qubits");
    let chosen = route_with_chosen_layout(&lowered, &topo).expect("device has enough qubits");
    let routed = if chosen.swap_count() <= identity.swap_count() {
        chosen
    } else {
        identity
    };
    let base_cx = lowered
        .gates()
        .iter()
        .filter(|g| matches!(g, CliffordTGate::Cx(..)))
        .count();
    let factor = (base_cx + 3 * routed.swap_count()) as f64 / base_cx.max(1) as f64;
    (routed.swap_count(), factor)
}

fn main() {
    let opts = RunOptions::from_args();
    let config = opts.shot_config(200); // the paper's Appendix A shot count
    let sweep = default_er_sweep(opts.full);

    println!("# Fig. 12: virtual QRAM on synthetic IBMQ device models");
    println!(
        "# shots = {}; SWAP counts from sabre_lite routing",
        config.shots
    );
    print_row(&["device", "m", "k", "swaps", "er", "fidelity", "stderr"].map(String::from));

    let configs: Vec<(DeviceModel, usize, usize)> = vec![
        (ibm_perth(), 1, 0),
        (ibm_perth(), 1, 1),
        (ibmq_guadalupe(), 2, 0),
        (ibmq_guadalupe(), 2, 1),
    ];

    for (device, m, k) in configs {
        // Fused data rails squeeze the instance onto the 7/16-qubit chips.
        let arch = VirtualQram::new(k, m).with_encoding(DataEncoding::FusedBit);
        let (swaps, penalty) = routing_penalty(&device, &arch, opts.seed);
        let memory = experiment_memory(k + m, opts.seed);
        let query = arch.build(&memory);
        let input = query.input_state(None);
        for &er in &sweep {
            // Device sampler with the routing penalty folded into εr.
            let effective = ErrorReductionFactor(er.0 / penalty);
            let sampler =
                FaultSampler::for_device(query.circuit(), &device, effective, config.seed);
            let est = monte_carlo_fidelity_with(query.circuit().gates(), &input, &config, |shot| {
                sampler.sample_shot(shot)
            })
            .expect("simulable");
            print_row(&[
                device.name().to_string(),
                m.to_string(),
                k.to_string(),
                swaps.to_string(),
                format!("{:.3}", er.0),
                format!("{:.4}", est.mean),
                format!("{:.4}", est.std_error),
            ]);
        }
    }
}
