//! Condenses `cargo bench` JSON results into the repo-level
//! `BENCH_2.json` summary and applies the CI bench-regression gate.
//!
//! Run after `cargo bench -p qram-bench` (the vendored criterion stub
//! writes one JSON file per benchmark to `<target>/bench/`):
//!
//! ```text
//! cargo run -p qram-bench --bin bench_report            # summary only
//! cargo run -p qram-bench --bin bench_report -- --check # + regression gate
//! ```
//!
//! Flags:
//!
//! * `--out FILE` — summary path (default `<repo root>/BENCH_2.json`);
//! * `--baseline-file FILE` — checked-in baseline (default
//!   `<repo root>/.github/bench-baseline.json`);
//! * `--check` — exit non-zero if the shot-engine serial/sharded speedup
//!   regressed more than the baseline's tolerance. Skips gracefully when
//!   there is no baseline, no shot-engine result, or only one core.

use std::path::PathBuf;
use std::process::ExitCode;

use qram_bench::report::{
    apply_gate, bench_results_dir, find_repo_root, load_records, parse_baseline,
    shot_engine_summary, summary_json, GateOutcome,
};

struct Args {
    out: Option<PathBuf>,
    baseline_file: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut baseline_file = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--baseline-file" => {
                baseline_file = Some(PathBuf::from(
                    args.next().expect("--baseline-file requires a path"),
                ))
            }
            "--check" => check = true,
            other => panic!(
                "unknown flag `{other}` (expected --out FILE, --baseline-file FILE, --check)"
            ),
        }
    }
    Args {
        out,
        baseline_file,
        check,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let repo_root = std::env::current_dir()
        .ok()
        .and_then(|d| find_repo_root(&d));

    let Some(results_dir) = bench_results_dir() else {
        eprintln!("bench_report: could not locate the bench results directory");
        return ExitCode::from(2);
    };
    let records = load_records(&results_dir);
    if records.is_empty() {
        eprintln!(
            "bench_report: no results in {} — run `cargo bench -p qram-bench` first",
            results_dir.display()
        );
        return ExitCode::from(2);
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shot_engine = shot_engine_summary(&records);
    let summary = summary_json(&records, shot_engine.as_ref(), threads);

    let out_path = args.out.unwrap_or_else(|| {
        repo_root
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_2.json")
    });
    if let Err(e) = std::fs::write(&out_path, &summary) {
        eprintln!("bench_report: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!(
        "bench_report: {} benches summarised into {}",
        records.len(),
        out_path.display()
    );
    if let Some(s) = &shot_engine {
        println!(
            "bench_report: shot_engine serial {:.0} ns / sharded {:.0} ns → {:.2}x speedup ({threads} threads)",
            s.serial_ns, s.sharded_ns, s.speedup
        );
    }

    if !args.check {
        return ExitCode::SUCCESS;
    }

    let baseline_path = args.baseline_file.unwrap_or_else(|| {
        repo_root
            .unwrap_or_else(|| PathBuf::from("."))
            .join(".github")
            .join("bench-baseline.json")
    });
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|json| parse_baseline(&json));
    match apply_gate(shot_engine.as_ref(), baseline.as_ref(), threads) {
        GateOutcome::Pass { speedup, floor } => {
            println!("bench_report: gate PASS — speedup {speedup:.2}x ≥ floor {floor:.2}x");
            ExitCode::SUCCESS
        }
        GateOutcome::Fail { speedup, floor } => {
            eprintln!(
                "bench_report: gate FAIL — shot-engine speedup {speedup:.2}x regressed below \
                 the baseline floor {floor:.2}x ({})",
                baseline_path.display()
            );
            ExitCode::FAILURE
        }
        GateOutcome::Skip(reason) => {
            println!("bench_report: gate SKIPPED — {reason}");
            ExitCode::SUCCESS
        }
    }
}
