//! Condenses `cargo bench` JSON results into the repo-level
//! `BENCH_2.json` summary and applies the CI bench-regression gate.
//!
//! Run after `cargo bench -p qram-bench` (the vendored criterion stub
//! writes one JSON file per benchmark to `<target>/bench/`):
//!
//! ```text
//! cargo run -p qram-bench --bin bench_report            # summary only
//! cargo run -p qram-bench --bin bench_report -- --check # + regression gate
//! ```
//!
//! Flags:
//!
//! * `--out FILE` — summary path (default `<repo root>/BENCH_2.json`);
//! * `--baseline-file FILE` — checked-in baseline (default
//!   `<repo root>/.github/bench-baseline.json`);
//! * `--check` — exit non-zero if the shot-engine serial/sharded speedup
//!   or the path-engine serial/chunked speedup regressed more than the
//!   baseline's tolerance. Each gate skips gracefully when there is no
//!   baseline (or the baseline lacks its reference), no matching bench
//!   result, or only one core.
//! * `--abs-baseline NAME` — also compare every bench's absolute mean
//!   against the `--save-baseline NAME` snapshot under
//!   `<target>/bench/baselines/NAME` (default name `ci`). Regressions
//!   beyond `--abs-tolerance` (default 0.5 = +50%) are warnings, or gate
//!   failures under `--check`. Skips gracefully when no snapshot exists —
//!   locally that makes the comparison warn-only/opt-in, while CI caches
//!   a per-runner snapshot and passes `--check`.
//! * `--refresh-abs-baseline` — after the comparison, rewrite the
//!   `--abs-baseline` snapshot as the *min-ratchet* merge of the current
//!   results and the stored snapshot (per bench, the faster mean wins).
//!   A plain copy-forward would let gradual regressions — each within
//!   tolerance — walk the baseline upward run over run; the ratchet pins
//!   the best mean observed until the snapshot is deleted.

use std::path::PathBuf;
use std::process::ExitCode;

use qram_bench::report::{
    apply_fleet_slo_gate, apply_gate, apply_path_gate, baseline_snapshot_dir, bench_results_dir,
    compare_against_baseline, find_repo_root, load_records, merge_baseline_records, parse_baseline,
    path_engine_summary, serve_fleet_headline, serve_policy_headline, serve_summary_headline,
    serve_telemetry_headline, shot_engine_summary, summary_json, write_baseline_snapshot,
    GateOutcome,
};

struct Args {
    out: Option<PathBuf>,
    baseline_file: Option<PathBuf>,
    abs_baseline: String,
    abs_tolerance: f64,
    refresh_abs_baseline: bool,
    check: bool,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut baseline_file = None;
    let mut abs_baseline = String::from("ci");
    let mut abs_tolerance = 0.5;
    let mut refresh_abs_baseline = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--baseline-file" => {
                baseline_file = Some(PathBuf::from(
                    args.next().expect("--baseline-file requires a path"),
                ))
            }
            "--abs-baseline" => abs_baseline = args.next().expect("--abs-baseline requires a name"),
            "--abs-tolerance" => {
                abs_tolerance = args
                    .next()
                    .expect("--abs-tolerance requires a value")
                    .parse()
                    .expect("--abs-tolerance expects a number")
            }
            "--refresh-abs-baseline" => refresh_abs_baseline = true,
            "--check" => check = true,
            other => panic!(
                "unknown flag `{other}` (expected --out FILE, --baseline-file FILE, \
                 --abs-baseline NAME, --abs-tolerance X, --refresh-abs-baseline, --check)"
            ),
        }
    }
    Args {
        out,
        baseline_file,
        abs_baseline,
        abs_tolerance,
        refresh_abs_baseline,
        check,
    }
}

/// Applies the per-bench absolute regression comparison against the
/// `--save-baseline` snapshot. Returns whether the gate (under `--check`)
/// should fail.
fn apply_abs_comparison(records: &[qram_bench::report::BenchRecord], args: &Args) -> bool {
    let snapshot = baseline_snapshot_dir(&args.abs_baseline);
    let baseline_records = match &snapshot {
        Some(dir) if dir.is_dir() => load_records(dir),
        _ => Vec::new(),
    };
    if baseline_records.is_empty() {
        println!(
            "bench_report: absolute comparison SKIPPED — no `{}` snapshot (run \
             `cargo bench -p qram-bench -- --save-baseline {}` to create one)",
            args.abs_baseline, args.abs_baseline
        );
        return false;
    }
    let regressions = compare_against_baseline(records, &baseline_records, args.abs_tolerance);
    if regressions.is_empty() {
        println!(
            "bench_report: absolute comparison vs '{}' — {} benches within +{:.0}%",
            args.abs_baseline,
            baseline_records.len(),
            args.abs_tolerance * 100.0
        );
        return false;
    }
    for r in &regressions {
        eprintln!(
            "bench_report: {} `{}` regressed {:.2}x ({:.0} ns -> {:.0} ns, tolerance +{:.0}%)",
            if args.check { "FAIL" } else { "warning:" },
            r.name,
            r.ratio,
            r.baseline_ns,
            r.current_ns,
            args.abs_tolerance * 100.0
        );
    }
    args.check
}

fn main() -> ExitCode {
    let args = parse_args();
    let repo_root = std::env::current_dir()
        .ok()
        .and_then(|d| find_repo_root(&d));

    let Some(results_dir) = bench_results_dir() else {
        eprintln!("bench_report: could not locate the bench results directory");
        return ExitCode::from(2);
    };
    let records = load_records(&results_dir);
    if records.is_empty() {
        eprintln!(
            "bench_report: no results in {} — run `cargo bench -p qram-bench` first",
            results_dir.display()
        );
        return ExitCode::from(2);
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shot_engine = shot_engine_summary(&records);
    let path_engine = path_engine_summary(&records);
    let summary = summary_json(
        &records,
        shot_engine.as_ref(),
        path_engine.as_ref(),
        threads,
    );

    let out_path = args.out.clone().unwrap_or_else(|| {
        repo_root
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_2.json")
    });
    if let Err(e) = std::fs::write(&out_path, &summary) {
        eprintln!("bench_report: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!(
        "bench_report: {} benches summarised into {}",
        records.len(),
        out_path.display()
    );
    if let Some(s) = &shot_engine {
        println!(
            "bench_report: shot_engine serial {:.0} ns / sharded {:.0} ns → {:.2}x speedup ({threads} threads)",
            s.serial_ns, s.sharded_ns, s.speedup
        );
    }
    if let Some(p) = &path_engine {
        println!(
            "bench_report: path_engine serial {:.0} ns / chunked {:.0} ns → {:.2}x speedup ({threads} threads)",
            p.serial_ns, p.chunked_ns, p.speedup
        );
    }

    // Surface the serving summary alongside the micro-bench one when a
    // serve_bench run left it behind. Tolerant across schema
    // generations (v2 summaries predate the `arch` field) and never a
    // gate: an absent or unreadable summary is only noted.
    let serve_path = repo_root
        .clone()
        .unwrap_or_else(|| PathBuf::from("."))
        .join("BENCH_SERVE.json");
    let serve_json = std::fs::read_to_string(&serve_path).ok();
    match &serve_json {
        Some(json) => match serve_summary_headline(json) {
            Some(headline) => {
                println!("bench_report: serve summary — {headline}");
                // v4+ summaries carry a telemetry section; print its
                // stage breakdown too (older summaries just skip it).
                if let Some(stages) = serve_telemetry_headline(json) {
                    println!("bench_report: serve telemetry — {stages}");
                }
                // v5+ summaries name their release policy and, in open
                // mode, the head-to-head policy deltas (older summaries
                // just skip the line).
                if let Some(policy) = serve_policy_headline(json) {
                    println!("bench_report: serve policy — {policy}");
                }
                // v6+ fleet runs carry the sharded-front-door sections
                // (bare runs just skip the line).
                if let Some(fleet) = serve_fleet_headline(json) {
                    println!("bench_report: serve fleet — {fleet}");
                }
            }
            None => println!(
                "bench_report: {} is not a recognized serve summary (ignored)",
                serve_path.display()
            ),
        },
        None => println!("bench_report: no serve summary at {}", serve_path.display()),
    }

    let abs_failed = apply_abs_comparison(&records, &args);

    // Refresh runs regardless of gate outcome: the min-ratchet merge
    // never adopts a slower mean, so a regressing run cannot poison the
    // stored snapshot.
    if args.refresh_abs_baseline {
        let Some(dir) = baseline_snapshot_dir(&args.abs_baseline) else {
            eprintln!("bench_report: could not locate the baseline snapshot directory");
            return ExitCode::from(2);
        };
        let stored = if dir.is_dir() {
            load_records(&dir)
        } else {
            Vec::new()
        };
        let merged = merge_baseline_records(&records, &stored);
        if let Err(e) = write_baseline_snapshot(&dir, &merged) {
            eprintln!("bench_report: cannot refresh {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        println!(
            "bench_report: absolute baseline '{}' refreshed ({} benches, min-ratchet)",
            args.abs_baseline,
            merged.len()
        );
    }

    if !args.check {
        return ExitCode::SUCCESS;
    }
    if abs_failed {
        eprintln!("bench_report: gate FAIL — absolute per-bench regression(s) above");
        return ExitCode::FAILURE;
    }

    let baseline_path = args.baseline_file.clone().unwrap_or_else(|| {
        repo_root
            .unwrap_or_else(|| PathBuf::from("."))
            .join(".github")
            .join("bench-baseline.json")
    });
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|json| parse_baseline(&json));
    let mut failed = false;
    for (label, outcome) in [
        (
            "shot-engine",
            apply_gate(shot_engine.as_ref(), baseline.as_ref(), threads),
        ),
        (
            "path-engine",
            apply_path_gate(path_engine.as_ref(), baseline.as_ref(), threads),
        ),
        ("fleet-slo", apply_fleet_slo_gate(serve_json.as_deref())),
    ] {
        match outcome {
            GateOutcome::Pass { speedup, floor } => {
                println!(
                    "bench_report: {label} gate PASS — speedup {speedup:.2}x ≥ floor {floor:.2}x"
                );
            }
            GateOutcome::Fail { speedup, floor } => {
                eprintln!(
                    "bench_report: {label} gate FAIL — speedup {speedup:.2}x regressed below \
                     the baseline floor {floor:.2}x ({})",
                    baseline_path.display()
                );
                failed = true;
            }
            GateOutcome::Skip(reason) => {
                println!("bench_report: {label} gate SKIPPED — {reason}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
