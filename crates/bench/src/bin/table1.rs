//! Table 1 — resource improvements from the three key optimizations.
//!
//! For each `(k, m)` shape, prints qubit count, scheduled circuit depth
//! and classically-controlled gate count of the generated virtual-QRAM
//! circuit under RAW / OPT1 / OPT2 / OPT3 / ALL, over a random memory
//! (classically-controlled counts are data-dependent; random data is the
//! paper's average case).
//!
//! Expected shape (paper Table 1): OPT1 drops the qubit coefficient from
//! 6·2^m to 4·2^m, OPT3 removes the m² loading-depth term, OPT2 halves
//! the classically-controlled count.

use qram_bench::{experiment_memory, print_row, RunOptions};
use qram_core::{Optimizations, QueryArchitecture, VirtualQram, VirtualQramModel};

fn main() {
    let opts = RunOptions::from_args();
    let shapes: &[(usize, usize)] = if opts.full {
        &[(0, 4), (1, 4), (2, 4), (1, 6), (2, 6), (3, 5)]
    } else {
        &[(0, 3), (1, 3), (2, 3), (1, 4)]
    };
    let variants = [
        ("RAW", Optimizations::RAW),
        ("OPT1", Optimizations::OPT1),
        ("OPT2", Optimizations::OPT2),
        ("OPT3", Optimizations::OPT3),
        ("ALL", Optimizations::ALL),
    ];

    println!("# Table 1: optimization breakdown (measured on generated circuits)");
    println!("# paper: qubits 6·2^m+k → 4·2^m+k (OPT1); depth m²+(m+1)·2^k → m+(m+1)·2^k (OPT3);");
    println!("#        classically-controlled gates halved (OPT2)");
    print_row(
        &[
            "k",
            "m",
            "variant",
            "qubits",
            "qubits(model)",
            "depth",
            "cl_ctrl",
            "cl_ctrl(model)",
        ]
        .map(String::from),
    );
    for &(k, m) in shapes {
        let memory = experiment_memory(k + m, opts.seed ^ ((k * 31 + m) as u64));
        for (name, variant) in variants {
            let arch = VirtualQram::new(k, m).with_optimizations(variant);
            let query = arch.build(&memory);
            let resources = query.resources();
            let model = VirtualQramModel::new(k, m, variant);
            print_row(&[
                k.to_string(),
                m.to_string(),
                name.to_string(),
                resources.num_qubits.to_string(),
                model.qubits().to_string(),
                resources.depth.to_string(),
                resources.classically_controlled.to_string(),
                model.classically_controlled(&memory).to_string(),
            ]);
        }
    }
}
