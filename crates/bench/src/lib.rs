//! Shared harness code for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §3 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — optimization breakdown |
//! | `table2` | Table 2 — architecture resource comparison |
//! | `fig8`   | Fig. 8 — 2D mapping overhead, swap vs teleportation |
//! | `fig9`   | Fig. 9 — fidelity vs architecture under X/Z noise |
//! | `fig10`  | Fig. 10 — fidelity vs error-reduction factor |
//! | `fig11`  | Fig. 11 — fidelity over the (m, k) grid |
//! | `fig12`  | Fig. 12 / App. A — synthetic IBMQ device models |
//! | `qec_table` | Eq. 7 — asymmetric surface-code prescription |
//!
//! Binaries print tab-separated rows to stdout so results can be piped
//! into a plotting tool; `--full` switches from the quick default sweep
//! to the paper-scale one; `--shots N` overrides the shot count.

use qram_core::{Memory, QueryArchitecture};
use qram_noise::{ErrorReductionFactor, FaultSampler, NoiseModel};
use qram_sim::{monte_carlo_fidelity, monte_carlo_reduced_fidelity, FidelityEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Paper-scale sweep instead of the quick default.
    pub full: bool,
    /// Monte-Carlo shots per data point (`None` = binary's default).
    pub shots: Option<usize>,
    /// RNG seed (default 2023, the paper's venue year).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            full: false,
            shots: None,
            seed: 2023,
        }
    }
}

impl RunOptions {
    /// Parses `--full`, `--shots N` and `--seed N` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--shots" => {
                    let v = args.next().expect("--shots requires a value");
                    opts.shots = Some(v.parse().expect("--shots expects an integer"));
                }
                "--seed" => {
                    let v = args.next().expect("--seed requires a value");
                    opts.seed = v.parse().expect("--seed expects an integer");
                }
                other => panic!("unknown flag `{other}` (expected --full, --shots N, --seed N)"),
            }
        }
        opts
    }

    /// The shot count to use given a binary default.
    pub fn shots_or(&self, default: usize) -> usize {
        self.shots.unwrap_or(default)
    }
}

/// Which fidelity notion an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityKind {
    /// Full-state overlap `|⟨ψ_ideal|ψ_shot⟩|²` (paper Sec. 5 definition).
    Full,
    /// Reduced to the address + bus registers (traces out the tree) —
    /// the notion under which bucket brigade resists generic noise.
    Reduced,
}

/// Runs the Monte-Carlo fidelity experiment for one architecture on one
/// memory under one noise model.
///
/// # Panics
///
/// Panics if the simulation rejects the circuit (cannot happen for the
/// generators in this workspace).
pub fn architecture_fidelity(
    arch: &dyn QueryArchitecture,
    memory: &Memory,
    model: NoiseModel,
    kind: FidelityKind,
    shots: usize,
    seed: u64,
) -> FidelityEstimate {
    let query = arch.build(memory);
    let input = query.input_state(None);
    let mut sampler = FaultSampler::new(query.circuit(), model, StdRng::seed_from_u64(seed));
    match kind {
        FidelityKind::Full => {
            monte_carlo_fidelity(query.circuit().gates(), &input, shots, |_| sampler.sample())
                .expect("generated circuits are always simulable")
        }
        FidelityKind::Reduced => monte_carlo_reduced_fidelity(
            query.circuit().gates(),
            &input,
            &query.output_qubits(),
            shots,
            |_| sampler.sample(),
        )
        .expect("generated circuits are always simulable"),
    }
}

/// A deterministic pseudo-random memory for experiment reproducibility.
pub fn experiment_memory(address_width: usize, seed: u64) -> Memory {
    Memory::random(address_width, &mut StdRng::seed_from_u64(seed))
}

/// The εr sweep of Figs. 10 and 12 (log-spaced over 0.1 … 1000).
pub fn default_er_sweep(full: bool) -> Vec<ErrorReductionFactor> {
    if full {
        ErrorReductionFactor::sweep(-1, 3, 2)
    } else {
        ErrorReductionFactor::sweep(-1, 3, 1)
    }
}

/// Prints a tab-separated row.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::VirtualQram;
    use qram_noise::PauliChannel;

    #[test]
    fn noiseless_fidelity_is_one() {
        let memory = experiment_memory(2, 1);
        let est = architecture_fidelity(
            &VirtualQram::new(0, 2),
            &memory,
            NoiseModel::noiseless(),
            FidelityKind::Full,
            8,
            7,
        );
        assert!((est.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fidelity_is_below_one_and_reduced_is_at_least_full() {
        let memory = experiment_memory(3, 2);
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(0.01));
        let full = architecture_fidelity(
            &VirtualQram::new(0, 3),
            &memory,
            model,
            FidelityKind::Full,
            64,
            3,
        );
        let reduced = architecture_fidelity(
            &VirtualQram::new(0, 3),
            &memory,
            model,
            FidelityKind::Reduced,
            64,
            3,
        );
        assert!(full.mean < 1.0);
        // Tracing out ancillas can only help (same seed → same plans).
        assert!(reduced.mean >= full.mean - 1e-9);
    }

    #[test]
    fn sweep_sizes() {
        assert_eq!(default_er_sweep(false).len(), 5);
        assert_eq!(default_er_sweep(true).len(), 9);
    }
}
