//! Shared harness code for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §3 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — optimization breakdown |
//! | `table2` | Table 2 — architecture resource comparison |
//! | `fig8`   | Fig. 8 — 2D mapping overhead, swap vs teleportation |
//! | `fig9`   | Fig. 9 — fidelity vs architecture under X/Z noise |
//! | `fig10`  | Fig. 10 — fidelity vs error-reduction factor |
//! | `fig11`  | Fig. 11 — fidelity over the (m, k) grid |
//! | `fig12`  | Fig. 12 / App. A — synthetic IBMQ device models |
//! | `qec_table` | Eq. 7 — asymmetric surface-code prescription |
//!
//! Binaries print tab-separated rows to stdout so results can be piped
//! into a plotting tool. The flag set is shared (see [`RunOptions`]):
//! `--full` switches from the quick default sweep to the paper-scale one,
//! `--shots N` overrides the shot count, `--seed N` the master RNG seed,
//! and `--threads N` the shot-engine worker count (results are
//! bit-identical for any thread count).
//!
//! A ninth binary, `bench_report`, is not an experiment: it condenses
//! `cargo bench` JSON results into `BENCH_2.json` and applies the CI
//! regression gate (see [`report`]).

pub mod cli;
pub mod report;

pub use cli::RunOptions;

use qram_core::{Memory, QueryArchitecture};
use qram_noise::{ErrorReductionFactor, FaultSampler, NoiseModel};
use qram_sim::{
    monte_carlo_fidelity_with, monte_carlo_reduced_fidelity_with, FidelityEstimate, ShotConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which fidelity notion an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityKind {
    /// Full-state overlap `|⟨ψ_ideal|ψ_shot⟩|²` (paper Sec. 5 definition).
    Full,
    /// Reduced to the address + bus registers (traces out the tree) —
    /// the notion under which bucket brigade resists generic noise.
    Reduced,
}

/// Runs the Monte-Carlo fidelity experiment for one architecture on one
/// memory under one noise model.
///
/// `config` carries the shot count, the master seed (consumed by the
/// fault sampler: every shot's fault pattern is a pure function of
/// `(seed, shot)`) and the worker-thread count (a pure throughput knob —
/// the estimate is bit-identical for any value).
///
/// # Panics
///
/// Panics if the simulation rejects the circuit (cannot happen for the
/// generators in this workspace).
pub fn architecture_fidelity(
    arch: &dyn QueryArchitecture,
    memory: &Memory,
    model: NoiseModel,
    kind: FidelityKind,
    config: ShotConfig,
) -> FidelityEstimate {
    let query = arch.build(memory);
    let input = query.input_state(None);
    let sampler = FaultSampler::new(query.circuit(), model, config.seed);
    let sample = |shot| sampler.sample_shot(shot);
    match kind {
        FidelityKind::Full => {
            monte_carlo_fidelity_with(query.circuit().gates(), &input, &config, sample)
                .expect("generated circuits are always simulable")
        }
        FidelityKind::Reduced => monte_carlo_reduced_fidelity_with(
            query.circuit().gates(),
            &input,
            &query.output_qubits(),
            &config,
            sample,
        )
        .expect("generated circuits are always simulable"),
    }
}

/// A deterministic pseudo-random memory for experiment reproducibility.
pub fn experiment_memory(address_width: usize, seed: u64) -> Memory {
    Memory::random(address_width, &mut StdRng::seed_from_u64(seed))
}

/// The εr sweep of Figs. 10 and 12 (log-spaced over 0.1 … 1000).
pub fn default_er_sweep(full: bool) -> Vec<ErrorReductionFactor> {
    if full {
        ErrorReductionFactor::sweep(-1, 3, 2)
    } else {
        ErrorReductionFactor::sweep(-1, 3, 1)
    }
}

/// Prints a tab-separated row.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::VirtualQram;
    use qram_noise::PauliChannel;

    #[test]
    fn noiseless_fidelity_is_one() {
        let memory = experiment_memory(2, 1);
        let est = architecture_fidelity(
            &VirtualQram::new(0, 2),
            &memory,
            NoiseModel::noiseless(),
            FidelityKind::Full,
            ShotConfig::new(8).with_seed(7),
        );
        assert!((est.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fidelity_is_below_one_and_reduced_is_at_least_full() {
        let memory = experiment_memory(3, 2);
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(0.01));
        let config = ShotConfig::new(64).with_seed(3);
        let full = architecture_fidelity(
            &VirtualQram::new(0, 3),
            &memory,
            model,
            FidelityKind::Full,
            config,
        );
        let reduced = architecture_fidelity(
            &VirtualQram::new(0, 3),
            &memory,
            model,
            FidelityKind::Reduced,
            config,
        );
        assert!(full.mean < 1.0);
        // Tracing out ancillas can only help (same seed → same plans).
        assert!(reduced.mean >= full.mean - 1e-9);
    }

    #[test]
    fn estimates_are_identical_across_thread_counts() {
        // The ISSUE-level determinism pin: threads is a pure throughput
        // knob; the estimate is bit-identical for any value.
        let memory = experiment_memory(3, 5);
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(5e-3));
        let run = |threads| {
            architecture_fidelity(
                &VirtualQram::new(1, 2),
                &memory,
                model,
                FidelityKind::Full,
                ShotConfig::new(96).with_seed(11).with_threads(threads),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(3));
    }

    #[test]
    fn sweep_sizes() {
        assert_eq!(default_er_sweep(false).len(), 5);
        assert_eq!(default_er_sweep(true).len(), 9);
    }
}
