//! Machine-readable bench results: loading, summarising and regression
//! gating.
//!
//! The vendored `criterion` stub writes one JSON file per benchmark to
//! `<target>/bench/` (fields `name`, `mean_ns`, `iters`). This module
//! loads those files, condenses them into the repo-level `BENCH_2.json`
//! summary, and implements the CI regression gate for the shot engine:
//! the measured serial/sharded speedup must not regress more than a
//! tolerance against the checked-in baseline
//! (`.github/bench-baseline.json`). The gate is *ratio*-based on purpose —
//! absolute ns vary wildly across runners, the parallel speedup does not.
//!
//! See the `bench_report` binary for the CLI wrapping this module.

use std::path::{Path, PathBuf};

/// One benchmark's result as written by the criterion stub.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full benchmark label, e.g. `shot_engine/serial`.
    pub name: String,
    /// Mean wall-clock time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Extracts a string field from a single-level JSON object. Handles the
/// `\"` and `\\` escapes the criterion stub emits; not a general parser.
fn json_str_field(json: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\"");
    let rest = &json[json.find(&marker)? + marker.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a numeric field from a single-level JSON object.
fn json_num_field(json: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\"");
    let rest = &json[json.find(&marker)? + marker.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses one criterion-stub result file.
pub fn parse_record(json: &str) -> Option<BenchRecord> {
    Some(BenchRecord {
        name: json_str_field(json, "name")?,
        mean_ns: json_num_field(json, "mean_ns")?,
        iters: json_num_field(json, "iters")? as u64,
    })
}

/// Walks up from `start` to the first directory containing `Cargo.lock`
/// (the workspace root).
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The directory the criterion stub writes results to:
/// `$CARGO_TARGET_DIR/bench` or `<repo root>/target/bench`.
pub fn bench_results_dir() -> Option<PathBuf> {
    let target = match std::env::var("CARGO_TARGET_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => find_repo_root(&std::env::current_dir().ok()?)?.join("target"),
    };
    Some(target.join("bench"))
}

/// Loads every result file in `dir`, sorted by benchmark name.
pub fn load_records(dir: &Path) -> Vec<BenchRecord> {
    let mut records: Vec<BenchRecord> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .filter_map(|json| parse_record(&json))
        .collect();
    records.sort_by(|a, b| a.name.cmp(&b.name));
    records
}

/// The shot-engine headline numbers extracted from a result set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotEngineSummary {
    /// Mean ns/iter of `shot_engine/serial` (threads = 1).
    pub serial_ns: f64,
    /// Mean ns/iter of `shot_engine/sharded` (threads = all cores).
    pub sharded_ns: f64,
    /// Throughput ratio `serial_ns / sharded_ns`.
    pub speedup: f64,
}

/// Extracts the shot-engine serial/sharded pair from `records`.
pub fn shot_engine_summary(records: &[BenchRecord]) -> Option<ShotEngineSummary> {
    let mean = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .filter(|&ns| ns > 0.0)
    };
    let serial_ns = mean("shot_engine/serial")?;
    let sharded_ns = mean("shot_engine/sharded")?;
    Some(ShotEngineSummary {
        serial_ns,
        sharded_ns,
        speedup: serial_ns / sharded_ns,
    })
}

/// The path-parallel headline numbers extracted from a result set: the
/// `path_engine` group's wide-address (`m = 10`) workload run with one
/// path chunk vs one chunk per core, shot threads pinned to 1 in both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathEngineSummary {
    /// Mean ns/iter of `path_engine/serial` (path_chunks = 1).
    pub serial_ns: f64,
    /// Mean ns/iter of `path_engine/chunked` (path_chunks = auto).
    pub chunked_ns: f64,
    /// Throughput ratio `serial_ns / chunked_ns`.
    pub speedup: f64,
}

/// Extracts the path-engine serial/chunked pair from `records`.
pub fn path_engine_summary(records: &[BenchRecord]) -> Option<PathEngineSummary> {
    let mean = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .filter(|&ns| ns > 0.0)
    };
    let serial_ns = mean("path_engine/serial")?;
    let chunked_ns = mean("path_engine/chunked")?;
    Some(PathEngineSummary {
        serial_ns,
        chunked_ns,
        speedup: serial_ns / chunked_ns,
    })
}

/// Renders the `BENCH_2.json` summary document.
///
/// Both speedup sections (`shot_engine`, `path_speedup`) are only
/// authoritative when `threads_available ≥ 2` — on a single-core machine
/// the parallel arm degenerates to the serial one and the ratios hover
/// near 1.0. CI's multi-core bench runner is the source of truth.
pub fn summary_json(
    records: &[BenchRecord],
    shot_engine: Option<&ShotEngineSummary>,
    path_engine: Option<&PathEngineSummary>,
    threads_available: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"qram-bench/bench-summary/v3\",\n");
    out.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    match shot_engine {
        Some(s) => out.push_str(&format!(
            "  \"shot_engine\": {{\"serial_ns\": {:.1}, \"sharded_ns\": {:.1}, \"speedup\": {:.3}}},\n",
            s.serial_ns, s.sharded_ns, s.speedup
        )),
        None => out.push_str("  \"shot_engine\": null,\n"),
    }
    match path_engine {
        Some(p) => out.push_str(&format!(
            "  \"path_speedup\": {{\"serial_ns\": {:.1}, \"chunked_ns\": {:.1}, \"speedup\": {:.3}}},\n",
            p.serial_ns, p.chunked_ns, p.speedup
        )),
        None => out.push_str("  \"path_speedup\": null,\n"),
    }
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            r.name.replace('\\', "\\\\").replace('"', "\\\""),
            r.mean_ns,
            r.iters
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `q`-th percentile (`0 ≤ q ≤ 100`) of `values`, by nearest rank on
/// a sorted copy; 0 for empty input. Used for the serving-latency
/// percentiles of `serve_bench`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile input must not contain NaN")
    });
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One operating point of the open-loop serving sweep: the service
/// driven at a fixed offered load, measured on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadPoint {
    /// Offered arrival rate in requests per virtual second.
    pub offered_rps: f64,
    /// `offered_rps / modeled capacity` (1.0 = critically loaded).
    pub load_factor: f64,
    /// Requests offered to admission.
    pub offered: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed by back-pressure (bounded queue full).
    pub shed: u64,
    /// Achieved completion rate in requests per virtual second.
    pub achieved_rps: f64,
    /// Virtual-clock end-to-end latency percentiles (ns): p50, p90,
    /// p99, max.
    pub latency_ns: [f64; 4],
    /// Mean virtual ns per request spent queueing (admission wait +
    /// execution-unit stall).
    pub mean_queue_wait_ns: f64,
    /// Mean virtual ns per request spent compiling (0 on cache hits).
    pub mean_compile_ns: f64,
    /// Mean virtual ns per request executing.
    pub mean_execute_ns: f64,
    /// Circuit-cache hit rate at this point.
    pub cache_hit_rate: f64,
}

impl ServeLoadPoint {
    /// Renders the point as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_rps\": {:.1}, \"load_factor\": {:.3}, \"offered\": {}, \
             \"completed\": {}, \"shed\": {}, \"achieved_rps\": {:.1}, \
             \"latency_ns\": {{\"p50\": {:.0}, \"p90\": {:.0}, \"p99\": {:.0}, \"max\": {:.0}}}, \
             \"breakdown_ns\": {{\"queue_wait\": {:.1}, \"compile\": {:.1}, \"execute\": {:.1}}}, \
             \"cache_hit_rate\": {:.4}}}",
            self.offered_rps,
            self.load_factor,
            self.offered,
            self.completed,
            self.shed,
            self.achieved_rps,
            self.latency_ns[0],
            self.latency_ns[1],
            self.latency_ns[2],
            self.latency_ns[3],
            self.mean_queue_wait_ns,
            self.mean_compile_ns,
            self.mean_execute_ns,
            self.cache_hit_rate,
        )
    }
}

/// Renders a throughput-vs-offered-load sweep as an indented JSON array
/// fragment (for embedding in the `BENCH_SERVE.json` summary).
pub fn serve_sweep_json(points: &[ServeLoadPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, point) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", point.to_json()));
    }
    out.push_str("  ]");
    out
}

/// Per-architecture slice of a serving run: the schema-v3 breakdown
/// `serve_bench` reports for every architecture family a (possibly
/// mixed) workload touched.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArchPoint {
    /// Architecture family tag (`qram_core::ArchSpec::family`).
    pub arch: String,
    /// Requests this family served.
    pub requests: usize,
    /// Completion rate in requests per virtual second over the run's
    /// span.
    pub virtual_rps: f64,
    /// Virtual end-to-end latency percentiles (ns): p50, p90, p99, max.
    pub latency_ns: [f64; 4],
    /// Mean virtual ns executing one request of this family (the
    /// resource-calibrated cost signature).
    pub mean_execute_ns: f64,
    /// Batches fired for this family.
    pub batches: usize,
    /// Batches that paid a compile (circuit-cache misses).
    pub compiled: usize,
}

impl ServeArchPoint {
    /// Batch-level cache hit rate for the family (0 when no batch
    /// fired).
    pub fn batch_hit_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.batches - self.compiled) as f64 / self.batches as f64
        }
    }

    /// Renders the breakdown as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"arch\": \"{}\", \"requests\": {}, \"virtual_rps\": {:.1}, \
             \"latency_ns\": {{\"p50\": {:.0}, \"p90\": {:.0}, \"p99\": {:.0}, \"max\": {:.0}}}, \
             \"mean_execute_ns\": {:.1}, \"batches\": {}, \"compiled\": {}, \
             \"batch_hit_rate\": {:.4}}}",
            self.arch,
            self.requests,
            self.virtual_rps,
            self.latency_ns[0],
            self.latency_ns[1],
            self.latency_ns[2],
            self.latency_ns[3],
            self.mean_execute_ns,
            self.batches,
            self.compiled,
            self.batch_hit_rate(),
        )
    }
}

/// Renders the per-architecture breakdown as an indented JSON array
/// fragment (for the schema-v3 `BENCH_SERVE.json` summary).
pub fn serve_arch_json(points: &[ServeArchPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, point) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", point.to_json()));
    }
    out.push_str("  ]");
    out
}

/// The headline of a `BENCH_SERVE.json` summary, tolerant across schema
/// generations: v1/v2 summaries (no `arch` / `per_arch` fields) report
/// their architecture as the implicit `virtual`, v3+ summaries carry it
/// explicitly. Returns `None` when the document is not a serve summary
/// at all.
pub fn serve_summary_headline(json: &str) -> Option<String> {
    let schema = json_str_field(json, "schema")?;
    if !schema.starts_with("qram-bench/serve-summary/") {
        return None;
    }
    let mode = json_str_field(json, "mode").unwrap_or_else(|| "?".into());
    let arch = json_str_field(json, "arch").unwrap_or_else(|| "virtual".into());
    // Per-point first: an open-mode summary's only top-level count is
    // `requests_per_point` (a bare `"requests"` match would find the
    // per-architecture breakdown's field instead).
    let requests = json_num_field(json, "requests_per_point")
        .or_else(|| json_num_field(json, "requests"))
        .unwrap_or(0.0);
    Some(format!(
        "{schema}: mode={mode} arch={arch} requests={requests:.0}"
    ))
}

/// The stage-breakdown headline of a v4+ serve summary's `telemetry`
/// section. Returns `None` for pre-telemetry summaries (v3 and older),
/// which carry no `stage_*` keys — the caller just omits the line.
pub fn serve_telemetry_headline(json: &str) -> Option<String> {
    let schema = json_str_field(json, "schema")?;
    if !schema.starts_with("qram-bench/serve-summary/") {
        return None;
    }
    let queue_wait = json_num_field(json, "stage_queue_wait_p50_ns")?;
    let compile = json_num_field(json, "stage_compile_p50_ns")?;
    let execute = json_num_field(json, "stage_execute_p50_ns")?;
    let total_p99 = json_num_field(json, "stage_total_p99_ns")?;
    let high_water = json_num_field(json, "queue_depth_high_water").unwrap_or(0.0);
    let trace_digest = json_str_field(json, "trace_digest").unwrap_or_else(|| "?".into());
    Some(format!(
        "stages p50 queue_wait {:.1} us / compile {:.1} us / execute {:.1} us, \
         total p99 {:.1} us, queue high-water {high_water:.0}, trace {trace_digest}",
        queue_wait / 1e3,
        compile / 1e3,
        execute / 1e3,
        total_p99 / 1e3,
    ))
}

/// The scheduling-policy headline of a v5+ serve summary: the release
/// policy the run served under, the planner's qubit budget when one was
/// set, and — for open-mode summaries — the head-to-head
/// `policy_compare` deltas at the capacity operating point. Returns
/// `None` for v4-and-older summaries, which predate the
/// `release_policy` field — the caller just omits the line.
pub fn serve_policy_headline(json: &str) -> Option<String> {
    let schema = json_str_field(json, "schema")?;
    if !schema.starts_with("qram-bench/serve-summary/") {
        return None;
    }
    let policy = json_str_field(json, "release_policy")?;
    let mut line = format!("release policy {policy}");
    if let Some(budget) = json_num_field(json, "qubit_budget") {
        if budget > 0.0 {
            line.push_str(&format!(", qubit budget {budget:.0}"));
        }
    }
    if let (Some(p50_oldest), Some(p50_affine)) = (
        json_num_field(json, "p50_oldest_first_ns"),
        json_num_field(json, "p50_cache_affine_ns"),
    ) {
        let compile_oldest = json_num_field(json, "mean_compile_oldest_first_ns").unwrap_or(0.0);
        let compile_affine = json_num_field(json, "mean_compile_cache_affine_ns").unwrap_or(0.0);
        line.push_str(&format!(
            "; head-to-head at capacity: p50 {:.1} -> {:.1} us, mean compile {:.2} -> {:.2} us",
            p50_oldest / 1e3,
            p50_affine / 1e3,
            compile_oldest / 1e3,
            compile_affine / 1e3,
        ));
    }
    Some(line)
}

/// The fleet headline of a v6+ serve summary: shard count, front-door
/// shed policy, the door-to-completion latency percentiles (front-door
/// wait included), and — when the summary carries the `slo_compare`
/// head-to-head — the interactive p99 under each shed policy at the
/// overload point. Returns `None` for bare (non-fleet) runs and
/// pre-v6 summaries, which carry no `fleet_*` keys — the caller just
/// omits the line.
pub fn serve_fleet_headline(json: &str) -> Option<String> {
    let schema = json_str_field(json, "schema")?;
    if !schema.starts_with("qram-bench/serve-summary/") {
        return None;
    }
    let shards = json_num_field(json, "fleet_shards")?;
    let p50 = json_num_field(json, "fleet_p50_ns")?;
    let p99 = json_num_field(json, "fleet_p99_ns")?;
    let policy = json_str_field(json, "fleet_shed_policy").unwrap_or_else(|| "?".into());
    let tenants = json_num_field(json, "fleet_tenants").unwrap_or(0.0);
    let mut line = format!(
        "{shards:.0} shards x {tenants:.0} tenants, shed policy {policy}, \
         door-to-done p50 {:.1} us / p99 {:.1} us",
        p50 / 1e3,
        p99 / 1e3,
    );
    if let (Some(dp), Some(td)) = (
        json_num_field(json, "interactive_p99_deadline_priority_ns"),
        json_num_field(json, "interactive_p99_tail_drop_ns"),
    ) {
        line.push_str(&format!(
            "; interactive p99 at overload: deadline-priority {:.1} vs tail-drop {:.1} us",
            dp / 1e3,
            td / 1e3,
        ));
    }
    Some(line)
}

/// FNV-1a over a byte stream: the results digest `serve_bench` prints so
/// CI can diff 1-worker vs N-worker runs for bit-equality without
/// carrying the full result dump.
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One benchmark whose mean regressed against a saved baseline snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsRegression {
    /// Benchmark label.
    pub name: String,
    /// Current mean ns/iter.
    pub current_ns: f64,
    /// Baseline mean ns/iter.
    pub baseline_ns: f64,
    /// `current_ns / baseline_ns` (always above `1 + tolerance`).
    pub ratio: f64,
}

/// Compares `current` records against a `--save-baseline` snapshot and
/// returns every bench whose mean regressed beyond `tolerance`
/// (`current > baseline · (1 + tolerance)`), sorted worst first.
///
/// Benches present on only one side are ignored — added or removed
/// benchmarks are not regressions. Unlike the ratio gate of
/// [`apply_gate`], this comparison is *absolute* (ns vs ns), so it is
/// only meaningful against a snapshot taken on comparable hardware —
/// which is exactly what CI's cached per-runner baselines are.
pub fn compare_against_baseline(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
    tolerance: f64,
) -> Vec<AbsRegression> {
    let mut regressions: Vec<AbsRegression> = current
        .iter()
        .filter_map(|record| {
            let base = baseline
                .iter()
                .find(|b| b.name == record.name)
                .filter(|b| b.mean_ns > 0.0)?;
            let ratio = record.mean_ns / base.mean_ns;
            (ratio > 1.0 + tolerance).then(|| AbsRegression {
                name: record.name.clone(),
                current_ns: record.mean_ns,
                baseline_ns: base.mean_ns,
                ratio,
            })
        })
        .collect();
    regressions.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
    regressions
}

/// The directory the criterion stub saves `--save-baseline` snapshots
/// under: `<results dir>/baselines/<name>`.
pub fn baseline_snapshot_dir(name: &str) -> Option<PathBuf> {
    Some(bench_results_dir()?.join("baselines").join(name))
}

/// Min-ratchet merge for refreshing an absolute baseline: per bench,
/// keep the *faster* of the current mean and the stored baseline mean.
/// A plain copy-forward would let gradual regressions — each within
/// tolerance — walk the baseline upward run over run and never trip the
/// gate; ratcheting on the minimum pins the best mean ever observed.
/// Benches absent from `current` are dropped (removed benchmarks are
/// not regressions); new benches enter at their measured mean.
pub fn merge_baseline_records(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
) -> Vec<BenchRecord> {
    current
        .iter()
        .map(|record| {
            match baseline
                .iter()
                .find(|b| b.name == record.name)
                .filter(|b| b.mean_ns > 0.0 && b.mean_ns < record.mean_ns)
            {
                Some(faster) => BenchRecord {
                    name: record.name.clone(),
                    mean_ns: faster.mean_ns,
                    iters: faster.iters,
                },
                None => record.clone(),
            }
        })
        .collect()
}

/// Makes a benchmark label safe as a file stem (mirrors the criterion
/// stub's result-file naming, so refreshed snapshots overwrite the
/// stub's own `--save-baseline` files).
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Replaces the snapshot at `dir` with `records`, one result file per
/// bench in the criterion stub's format (readable by [`load_records`]).
///
/// # Errors
///
/// Propagates the first filesystem error.
pub fn write_baseline_snapshot(dir: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    if dir.exists() {
        std::fs::remove_dir_all(dir)?;
    }
    std::fs::create_dir_all(dir)?;
    for r in records {
        let json = format!(
            "{{\"name\":\"{}\",\"mean_ns\":{:.3},\"iters\":{}}}\n",
            r.name.replace('\\', "\\\\").replace('"', "\\\""),
            r.mean_ns,
            r.iters
        );
        std::fs::write(dir.join(format!("{}.json", sanitize_label(&r.name))), json)?;
    }
    Ok(())
}

/// The checked-in regression baseline for the shot engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Reference serial/sharded speedup on a multi-core runner.
    pub shot_engine_speedup: f64,
    /// Reference serial/chunked path-parallel speedup on a multi-core
    /// runner. `None` for pre-v3 baselines that predate the path gate —
    /// the path gate then skips instead of failing.
    pub path_speedup: Option<f64>,
    /// Allowed relative regression (0.25 = fail below 75% of reference).
    pub tolerance: f64,
}

/// Parses `.github/bench-baseline.json`.
pub fn parse_baseline(json: &str) -> Option<Baseline> {
    Some(Baseline {
        shot_engine_speedup: json_num_field(json, "shot_engine_speedup")?,
        path_speedup: json_num_field(json, "path_speedup"),
        tolerance: json_num_field(json, "tolerance").unwrap_or(0.25),
    })
}

/// The regression-gate verdict for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Speedup is within tolerance of the baseline.
    Pass {
        /// Measured serial/sharded speedup.
        speedup: f64,
        /// Minimum accepted speedup (`baseline · (1 − tolerance)`).
        floor: f64,
    },
    /// Speedup regressed below the tolerance floor.
    Fail {
        /// Measured serial/sharded speedup.
        speedup: f64,
        /// Minimum accepted speedup (`baseline · (1 − tolerance)`).
        floor: f64,
    },
    /// The gate could not run and is skipped gracefully (no baseline, no
    /// shot-engine results, or a single-core machine where the parallel
    /// speedup is physically unobservable).
    Skip(String),
}

/// Shared ratio check: measured speedup against `reference · (1 − tol)`,
/// skipping on single-core machines where the parallel arm degenerates
/// to the serial one.
fn gate_ratio(
    speedup: f64,
    reference: f64,
    tolerance: f64,
    threads_available: usize,
) -> GateOutcome {
    if threads_available < 2 {
        return GateOutcome::Skip(format!(
            "single-core machine ({threads_available} thread available): parallel speedup not observable"
        ));
    }
    let floor = reference * (1.0 - tolerance);
    if speedup >= floor {
        GateOutcome::Pass { speedup, floor }
    } else {
        GateOutcome::Fail { speedup, floor }
    }
}

/// Applies the ratio-based regression gate for the sharded shot engine.
pub fn apply_gate(
    shot_engine: Option<&ShotEngineSummary>,
    baseline: Option<&Baseline>,
    threads_available: usize,
) -> GateOutcome {
    let Some(baseline) = baseline else {
        return GateOutcome::Skip("no checked-in baseline".into());
    };
    let Some(summary) = shot_engine else {
        return GateOutcome::Skip("no shot_engine serial/sharded results".into());
    };
    gate_ratio(
        summary.speedup,
        baseline.shot_engine_speedup,
        baseline.tolerance,
        threads_available,
    )
}

/// Applies the ratio-based regression gate for the path-parallel engine:
/// `path_engine/serial` over `path_engine/chunked` must stay within
/// tolerance of the baseline's `path_speedup`. Skips gracefully when the
/// baseline predates the path gate, when no path-engine results exist,
/// or on a single-core machine.
pub fn apply_path_gate(
    path_engine: Option<&PathEngineSummary>,
    baseline: Option<&Baseline>,
    threads_available: usize,
) -> GateOutcome {
    let Some(baseline) = baseline else {
        return GateOutcome::Skip("no checked-in baseline".into());
    };
    let Some(reference) = baseline.path_speedup else {
        return GateOutcome::Skip("baseline has no path_speedup reference".into());
    };
    let Some(summary) = path_engine else {
        return GateOutcome::Skip("no path_engine serial/chunked results".into());
    };
    gate_ratio(
        summary.speedup,
        reference,
        baseline.tolerance,
        threads_available,
    )
}

/// Applies the fleet SLO gate over a serve summary's `slo_compare`
/// head-to-head: deadline-priority shedding must not lose to tail-drop
/// on interactive p99 at the overload point — the whole reason the
/// front door exists. The reported "speedup" is
/// `tail_drop_p99 / deadline_priority_p99` against a floor of 1.0, so
/// equality (e.g. a sweep that never shed) passes. Skips gracefully on
/// bare (non-fleet) runs, pre-v6 summaries, and sweeps that completed
/// no interactive requests.
pub fn apply_fleet_slo_gate(summary_json: Option<&str>) -> GateOutcome {
    let Some(json) = summary_json else {
        return GateOutcome::Skip("no BENCH_SERVE.json".into());
    };
    if serve_summary_headline(json).is_none() {
        return GateOutcome::Skip("not a recognized serve summary".into());
    }
    let (Some(dp), Some(td)) = (
        json_num_field(json, "interactive_p99_deadline_priority_ns"),
        json_num_field(json, "interactive_p99_tail_drop_ns"),
    ) else {
        return GateOutcome::Skip(
            "summary has no fleet slo_compare section (bare serve run)".into(),
        );
    };
    if dp <= 0.0 || td <= 0.0 {
        return GateOutcome::Skip("slo_compare completed no interactive requests".into());
    }
    let speedup = td / dp;
    let floor = 1.0;
    if speedup >= floor {
        GateOutcome::Pass { speedup, floor }
    } else {
        GateOutcome::Fail { speedup, floor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stub_record() {
        let json = "{\"name\":\"shot_engine/serial\",\"mean_ns\":1234.500,\"iters\":42}\n";
        let r = parse_record(json).unwrap();
        assert_eq!(r.name, "shot_engine/serial");
        assert_eq!(r.mean_ns, 1234.5);
        assert_eq!(r.iters, 42);
    }

    #[test]
    fn parses_escaped_names_and_whitespace() {
        let json = "{ \"name\" : \"a\\\"b\", \"mean_ns\" : 1e3, \"iters\" : 7 }";
        let r = parse_record(json).unwrap();
        assert_eq!(r.name, "a\"b");
        assert_eq!(r.mean_ns, 1000.0);
    }

    #[test]
    fn rejects_incomplete_records() {
        assert!(parse_record("{\"name\":\"x\"}").is_none());
        assert!(parse_record("{}").is_none());
    }

    fn records() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                name: "shot_engine/serial".into(),
                mean_ns: 4000.0,
                iters: 10,
            },
            BenchRecord {
                name: "shot_engine/sharded".into(),
                mean_ns: 1000.0,
                iters: 10,
            },
            BenchRecord {
                name: "path_engine/serial".into(),
                mean_ns: 6000.0,
                iters: 10,
            },
            BenchRecord {
                name: "path_engine/chunked".into(),
                mean_ns: 2000.0,
                iters: 10,
            },
        ]
    }

    #[test]
    fn shot_engine_speedup_is_serial_over_sharded() {
        let s = shot_engine_summary(&records()).unwrap();
        assert_eq!(s.speedup, 4.0);
        assert!(shot_engine_summary(&records()[..1]).is_none());
    }

    #[test]
    fn path_engine_speedup_is_serial_over_chunked() {
        let p = path_engine_summary(&records()).unwrap();
        assert_eq!(p.speedup, 3.0);
        // Shot-engine records alone don't produce a path summary.
        assert!(path_engine_summary(&records()[..2]).is_none());
    }

    #[test]
    fn summary_json_is_parseable_by_own_helpers() {
        let recs = records();
        let s = shot_engine_summary(&recs);
        let p = path_engine_summary(&recs);
        let json = summary_json(&recs, s.as_ref(), p.as_ref(), 8);
        assert_eq!(json_num_field(&json, "threads_available"), Some(8.0));
        assert_eq!(json_num_field(&json, "speedup"), Some(4.0));
        assert!(json.contains("\"path_speedup\": {\"serial_ns\": 6000.0"));
        assert!(json.contains("\"name\": \"shot_engine/serial\""));
        // Absent sections render as explicit nulls.
        let empty = summary_json(&[], None, None, 1);
        assert!(empty.contains("\"shot_engine\": null"));
        assert!(empty.contains("\"path_speedup\": null"));
    }

    #[test]
    fn baseline_parses_with_default_tolerance() {
        let b = parse_baseline("{\"shot_engine_speedup\": 2.0}").unwrap();
        assert_eq!(b.shot_engine_speedup, 2.0);
        assert_eq!(b.path_speedup, None);
        assert_eq!(b.tolerance, 0.25);
        let b = parse_baseline(
            "{\"shot_engine_speedup\": 3.0, \"path_speedup\": 1.6, \"tolerance\": 0.1}",
        )
        .unwrap();
        assert_eq!(b.path_speedup, Some(1.6));
        assert_eq!(b.tolerance, 0.1);
        assert!(parse_baseline("{}").is_none());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_below() {
        let recs = records();
        let summary = shot_engine_summary(&recs);
        let baseline = Baseline {
            shot_engine_speedup: 2.0,
            path_speedup: None,
            tolerance: 0.25,
        };
        match apply_gate(summary.as_ref(), Some(&baseline), 8) {
            GateOutcome::Pass { speedup, floor } => {
                assert_eq!(speedup, 4.0);
                assert_eq!(floor, 1.5);
            }
            other => panic!("expected pass, got {other:?}"),
        }
        let tight = Baseline {
            shot_engine_speedup: 8.0,
            path_speedup: None,
            tolerance: 0.25,
        };
        assert!(matches!(
            apply_gate(summary.as_ref(), Some(&tight), 8),
            GateOutcome::Fail { .. }
        ));
    }

    #[test]
    fn path_gate_mirrors_the_shot_gate() {
        let recs = records();
        let summary = path_engine_summary(&recs);
        let baseline = Baseline {
            shot_engine_speedup: 2.0,
            path_speedup: Some(1.6),
            tolerance: 0.25,
        };
        match apply_path_gate(summary.as_ref(), Some(&baseline), 8) {
            GateOutcome::Pass { speedup, floor } => {
                assert_eq!(speedup, 3.0);
                assert!((floor - 1.2).abs() < 1e-12);
            }
            other => panic!("expected pass, got {other:?}"),
        }
        let tight = Baseline {
            path_speedup: Some(8.0),
            ..baseline
        };
        assert!(matches!(
            apply_path_gate(summary.as_ref(), Some(&tight), 8),
            GateOutcome::Fail { .. }
        ));
        // Skips: pre-v3 baseline (no reference), no results, single core.
        let legacy = Baseline {
            path_speedup: None,
            ..baseline
        };
        assert!(matches!(
            apply_path_gate(summary.as_ref(), Some(&legacy), 8),
            GateOutcome::Skip(_)
        ));
        assert!(matches!(
            apply_path_gate(None, Some(&baseline), 8),
            GateOutcome::Skip(_)
        ));
        assert!(matches!(
            apply_path_gate(summary.as_ref(), Some(&baseline), 1),
            GateOutcome::Skip(_)
        ));
        assert!(matches!(
            apply_path_gate(summary.as_ref(), None, 8),
            GateOutcome::Skip(_)
        ));
    }

    #[test]
    fn percentile_nearest_rank() {
        let values = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&values, 50.0), 3.0);
        assert_eq!(percentile(&values, 99.0), 5.0);
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 90.0), 7.5);
    }

    #[test]
    fn serve_sweep_json_is_parseable_by_own_helpers() {
        let point = ServeLoadPoint {
            offered_rps: 1000.0,
            load_factor: 2.0,
            offered: 512,
            completed: 400,
            shed: 112,
            achieved_rps: 500.5,
            latency_ns: [1_000.0, 2_000.0, 9_000.0, 12_000.0],
            mean_queue_wait_ns: 700.25,
            mean_compile_ns: 12.5,
            mean_execute_ns: 300.0,
            cache_hit_rate: 0.9375,
        };
        let json = serve_sweep_json(&[point.clone(), point]);
        assert_eq!(json_num_field(&json, "load_factor"), Some(2.0));
        assert_eq!(json_num_field(&json, "shed"), Some(112.0));
        assert_eq!(json_num_field(&json, "p99"), Some(9_000.0));
        assert_eq!(json_num_field(&json, "queue_wait"), Some(700.2));
        assert_eq!(json.matches("achieved_rps").count(), 2);
        assert!(serve_sweep_json(&[]).starts_with("[\n"));
    }

    #[test]
    fn serve_arch_json_round_trips_and_hit_rate_is_batch_level() {
        let point = ServeArchPoint {
            arch: "bucket_brigade".into(),
            requests: 128,
            virtual_rps: 2_500.0,
            latency_ns: [1_000.0, 2_000.0, 4_000.0, 5_000.0],
            mean_execute_ns: 750.5,
            batches: 8,
            compiled: 2,
        };
        assert!((point.batch_hit_rate() - 0.75).abs() < 1e-12);
        let json = serve_arch_json(std::slice::from_ref(&point));
        assert_eq!(
            json_str_field(&json, "arch").as_deref(),
            Some("bucket_brigade")
        );
        assert_eq!(json_num_field(&json, "requests"), Some(128.0));
        assert_eq!(json_num_field(&json, "batch_hit_rate"), Some(0.75));
        // No batches → defined hit rate of 0, not NaN.
        let idle = ServeArchPoint {
            batches: 0,
            compiled: 0,
            ..point
        };
        assert_eq!(idle.batch_hit_rate(), 0.0);
        assert!(serve_arch_json(&[]).starts_with("[\n"));
    }

    #[test]
    fn serve_summary_headline_tolerates_old_and_new_schemas() {
        // v2 (pre-ArchSpec): no `arch` key — reported as virtual.
        let v2 = "{\"schema\": \"qram-bench/serve-summary/v2\", \"mode\": \"closed\", \
                  \"requests\": 256}";
        assert_eq!(
            serve_summary_headline(v2).unwrap(),
            "qram-bench/serve-summary/v2: mode=closed arch=virtual requests=256"
        );
        // v3: explicit arch, open mode counts per point.
        let v3 = "{\"schema\": \"qram-bench/serve-summary/v3\", \"mode\": \"open\", \
                  \"arch\": \"mix\", \"requests_per_point\": 64}";
        assert_eq!(
            serve_summary_headline(v3).unwrap(),
            "qram-bench/serve-summary/v3: mode=open arch=mix requests=64"
        );
        // Not a serve summary at all.
        assert!(serve_summary_headline("{\"schema\": \"qram-bench/bench-summary/v2\"}").is_none());
        assert!(serve_summary_headline("{}").is_none());
    }

    #[test]
    fn serve_policy_headline_tolerates_v4_and_v5() {
        // v4: predates `release_policy` — no policy line, but the
        // summary headline itself still renders.
        let v4 = "{\"schema\": \"qram-bench/serve-summary/v4\", \"mode\": \"closed\", \
                  \"arch\": \"virtual\", \"requests\": 256}";
        assert!(serve_policy_headline(v4).is_none());
        assert!(serve_summary_headline(v4).is_some());

        // v5 closed: policy alone (no compare block, unlimited budget).
        let v5_closed = "{\"schema\": \"qram-bench/serve-summary/v5\", \"mode\": \"closed\", \
                         \"release_policy\": \"oldest-first\", \"qubit_budget\": 0}";
        assert_eq!(
            serve_policy_headline(v5_closed).unwrap(),
            "release policy oldest-first"
        );

        // v5 open: budget plus the head-to-head deltas.
        let v5_open = "{\"schema\": \"qram-bench/serve-summary/v5\", \"mode\": \"open\", \
                       \"release_policy\": \"cache-affine\", \"qubit_budget\": 64, \
                       \"policy_compare\": {\"compare_load\": 1.00, \
                       \"p50_oldest_first_ns\": 34303, \"p99_oldest_first_ns\": 60000, \
                       \"mean_compile_oldest_first_ns\": 4336.5, \
                       \"p50_cache_affine_ns\": 33150, \"p99_cache_affine_ns\": 59000, \
                       \"mean_compile_cache_affine_ns\": 4090.2}}";
        assert_eq!(
            serve_policy_headline(v5_open).unwrap(),
            "release policy cache-affine, qubit budget 64; head-to-head at capacity: \
             p50 34.3 -> 33.1 us, mean compile 4.34 -> 4.09 us"
        );

        // Not a serve summary at all.
        assert!(serve_policy_headline("{\"schema\": \"qram-bench/bench-summary/v2\"}").is_none());
    }

    #[test]
    fn serve_fleet_headline_tolerates_bare_and_fleet_summaries() {
        // Bare (non-fleet) v6 open run: no fleet_* keys, no fleet line.
        let bare = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\", \
                    \"release_policy\": \"oldest-first\"}";
        assert!(serve_fleet_headline(bare).is_none());
        assert!(serve_summary_headline(bare).is_some());

        // Fleet v6 run with the slo_compare head-to-head.
        let fleet = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\", \
                     \"fleet\": {\"fleet_shards\": 4, \"fleet_tenants\": 3, \
                     \"fleet_shed_policy\": \"deadline-priority\", \
                     \"fleet_p50_ns\": 11400, \"fleet_p99_ns\": 140700}, \
                     \"slo_compare\": {\"interactive_p99_deadline_priority_ns\": 206400, \
                     \"interactive_p99_tail_drop_ns\": 258900}}";
        assert_eq!(
            serve_fleet_headline(fleet).unwrap(),
            "4 shards x 3 tenants, shed policy deadline-priority, \
             door-to-done p50 11.4 us / p99 140.7 us; \
             interactive p99 at overload: deadline-priority 206.4 vs tail-drop 258.9 us"
        );

        // Not a serve summary at all.
        assert!(serve_fleet_headline("{\"schema\": \"qram-bench/bench-summary/v2\"}").is_none());
    }

    #[test]
    fn fleet_slo_gate_passes_ties_fails_regressions_and_skips_bare_runs() {
        // Deadline-priority wins: pass, ratio above 1.
        let win = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\", \
                   \"interactive_p99_deadline_priority_ns\": 200000, \
                   \"interactive_p99_tail_drop_ns\": 250000}";
        match apply_fleet_slo_gate(Some(win)) {
            GateOutcome::Pass { speedup, floor } => {
                assert!(speedup > 1.2 && speedup < 1.3);
                assert_eq!(floor, 1.0);
            }
            other => panic!("expected pass, got {other:?}"),
        }

        // A tie (nothing shed at the compare point) still passes.
        let tie = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\", \
                   \"interactive_p99_deadline_priority_ns\": 151467, \
                   \"interactive_p99_tail_drop_ns\": 151467}";
        assert!(matches!(
            apply_fleet_slo_gate(Some(tie)),
            GateOutcome::Pass { .. }
        ));

        // Deadline-priority losing to tail-drop is a regression.
        let lose = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\", \
                    \"interactive_p99_deadline_priority_ns\": 260000, \
                    \"interactive_p99_tail_drop_ns\": 250000}";
        assert!(matches!(
            apply_fleet_slo_gate(Some(lose)),
            GateOutcome::Fail { .. }
        ));

        // Bare runs, foreign documents, and a missing summary all skip.
        let bare = "{\"schema\": \"qram-bench/serve-summary/v6\", \"mode\": \"open\"}";
        assert!(matches!(
            apply_fleet_slo_gate(Some(bare)),
            GateOutcome::Skip(_)
        ));
        assert!(matches!(
            apply_fleet_slo_gate(Some("{\"schema\": \"qram-bench/bench-summary/v2\"}")),
            GateOutcome::Skip(_)
        ));
        assert!(matches!(apply_fleet_slo_gate(None), GateOutcome::Skip(_)));
    }

    #[test]
    fn fnv1a_is_stable_and_order_sensitive() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a_64([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(*b"ab"), fnv1a_64(*b"ba"));
    }

    #[test]
    fn absolute_comparison_flags_only_regressions_beyond_tolerance() {
        let current = vec![
            BenchRecord {
                name: "a".into(),
                mean_ns: 1600.0,
                iters: 1,
            },
            BenchRecord {
                name: "b".into(),
                mean_ns: 1100.0,
                iters: 1,
            },
            BenchRecord {
                name: "new_bench".into(),
                mean_ns: 9999.0,
                iters: 1,
            },
        ];
        let baseline = vec![
            BenchRecord {
                name: "a".into(),
                mean_ns: 1000.0,
                iters: 1,
            },
            BenchRecord {
                name: "b".into(),
                mean_ns: 1000.0,
                iters: 1,
            },
            BenchRecord {
                name: "removed".into(),
                mean_ns: 1.0,
                iters: 1,
            },
        ];
        let regs = compare_against_baseline(&current, &baseline, 0.5);
        // `a` regressed 1.6x > 1.5x; `b` (1.1x) is within tolerance;
        // benches on only one side are ignored.
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "a");
        assert!((regs[0].ratio - 1.6).abs() < 1e-12);
        // Everything within a looser tolerance passes.
        assert!(compare_against_baseline(&current, &baseline, 0.7).is_empty());
    }

    #[test]
    fn absolute_comparison_sorts_worst_first_and_skips_zero_baselines() {
        let current = vec![
            BenchRecord {
                name: "x".into(),
                mean_ns: 2000.0,
                iters: 1,
            },
            BenchRecord {
                name: "y".into(),
                mean_ns: 3000.0,
                iters: 1,
            },
            BenchRecord {
                name: "z".into(),
                mean_ns: 5000.0,
                iters: 1,
            },
        ];
        let baseline = vec![
            BenchRecord {
                name: "x".into(),
                mean_ns: 1000.0,
                iters: 1,
            },
            BenchRecord {
                name: "y".into(),
                mean_ns: 1000.0,
                iters: 1,
            },
            BenchRecord {
                name: "z".into(),
                mean_ns: 0.0,
                iters: 1,
            },
        ];
        let regs = compare_against_baseline(&current, &baseline, 0.25);
        assert_eq!(
            regs.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["y", "x"]
        );
    }

    #[test]
    fn baseline_merge_ratchets_on_the_minimum() {
        let current = vec![
            BenchRecord {
                name: "drifted".into(),
                mean_ns: 140.0,
                iters: 5,
            },
            BenchRecord {
                name: "improved".into(),
                mean_ns: 80.0,
                iters: 5,
            },
            BenchRecord {
                name: "brand_new".into(),
                mean_ns: 500.0,
                iters: 5,
            },
        ];
        let baseline = vec![
            BenchRecord {
                name: "drifted".into(),
                mean_ns: 100.0,
                iters: 9,
            },
            BenchRecord {
                name: "improved".into(),
                mean_ns: 100.0,
                iters: 9,
            },
            BenchRecord {
                name: "removed".into(),
                mean_ns: 1.0,
                iters: 9,
            },
        ];
        let merged = merge_baseline_records(&current, &baseline);
        let mean = |name: &str| merged.iter().find(|r| r.name == name).map(|r| r.mean_ns);
        // A within-tolerance drift must NOT advance the baseline…
        assert_eq!(mean("drifted"), Some(100.0));
        // …an improvement must.
        assert_eq!(mean("improved"), Some(80.0));
        // New benches enter at their mean; removed ones are dropped.
        assert_eq!(mean("brand_new"), Some(500.0));
        assert_eq!(mean("removed"), None);
    }

    #[test]
    fn snapshot_round_trips_through_load_records() {
        let dir =
            std::env::temp_dir().join(format!("qram-bench-snapshot-test-{}", std::process::id()));
        let records = vec![
            BenchRecord {
                name: "group/bench m=4".into(),
                mean_ns: 1234.5,
                iters: 42,
            },
            BenchRecord {
                name: "plain".into(),
                mean_ns: 7.0,
                iters: 1,
            },
        ];
        write_baseline_snapshot(&dir, &records).unwrap();
        // Overwriting replaces stale files rather than accumulating.
        write_baseline_snapshot(&dir, &records[..1]).unwrap();
        let loaded = load_records(&dir);
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], records[0]);
    }

    #[test]
    fn gate_skips_gracefully() {
        let recs = records();
        let summary = shot_engine_summary(&recs);
        let baseline = Baseline {
            shot_engine_speedup: 2.0,
            path_speedup: None,
            tolerance: 0.25,
        };
        // No baseline checked in.
        assert!(matches!(
            apply_gate(summary.as_ref(), None, 8),
            GateOutcome::Skip(_)
        ));
        // No shot-engine results.
        assert!(matches!(
            apply_gate(None, Some(&baseline), 8),
            GateOutcome::Skip(_)
        ));
        // Single-core machine: speedup physically unobservable.
        assert!(matches!(
            apply_gate(summary.as_ref(), Some(&baseline), 1),
            GateOutcome::Skip(_)
        ));
    }
}
