//! Machine-readable bench results: loading, summarising and regression
//! gating.
//!
//! The vendored `criterion` stub writes one JSON file per benchmark to
//! `<target>/bench/` (fields `name`, `mean_ns`, `iters`). This module
//! loads those files, condenses them into the repo-level `BENCH_2.json`
//! summary, and implements the CI regression gate for the shot engine:
//! the measured serial/sharded speedup must not regress more than a
//! tolerance against the checked-in baseline
//! (`.github/bench-baseline.json`). The gate is *ratio*-based on purpose —
//! absolute ns vary wildly across runners, the parallel speedup does not.
//!
//! See the `bench_report` binary for the CLI wrapping this module.

use std::path::{Path, PathBuf};

/// One benchmark's result as written by the criterion stub.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full benchmark label, e.g. `shot_engine/serial`.
    pub name: String,
    /// Mean wall-clock time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Extracts a string field from a single-level JSON object. Handles the
/// `\"` and `\\` escapes the criterion stub emits; not a general parser.
fn json_str_field(json: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\"");
    let rest = &json[json.find(&marker)? + marker.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a numeric field from a single-level JSON object.
fn json_num_field(json: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\"");
    let rest = &json[json.find(&marker)? + marker.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses one criterion-stub result file.
pub fn parse_record(json: &str) -> Option<BenchRecord> {
    Some(BenchRecord {
        name: json_str_field(json, "name")?,
        mean_ns: json_num_field(json, "mean_ns")?,
        iters: json_num_field(json, "iters")? as u64,
    })
}

/// Walks up from `start` to the first directory containing `Cargo.lock`
/// (the workspace root).
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The directory the criterion stub writes results to:
/// `$CARGO_TARGET_DIR/bench` or `<repo root>/target/bench`.
pub fn bench_results_dir() -> Option<PathBuf> {
    let target = match std::env::var("CARGO_TARGET_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => find_repo_root(&std::env::current_dir().ok()?)?.join("target"),
    };
    Some(target.join("bench"))
}

/// Loads every result file in `dir`, sorted by benchmark name.
pub fn load_records(dir: &Path) -> Vec<BenchRecord> {
    let mut records: Vec<BenchRecord> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .filter_map(|json| parse_record(&json))
        .collect();
    records.sort_by(|a, b| a.name.cmp(&b.name));
    records
}

/// The shot-engine headline numbers extracted from a result set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotEngineSummary {
    /// Mean ns/iter of `shot_engine/serial` (threads = 1).
    pub serial_ns: f64,
    /// Mean ns/iter of `shot_engine/sharded` (threads = all cores).
    pub sharded_ns: f64,
    /// Throughput ratio `serial_ns / sharded_ns`.
    pub speedup: f64,
}

/// Extracts the shot-engine serial/sharded pair from `records`.
pub fn shot_engine_summary(records: &[BenchRecord]) -> Option<ShotEngineSummary> {
    let mean = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .filter(|&ns| ns > 0.0)
    };
    let serial_ns = mean("shot_engine/serial")?;
    let sharded_ns = mean("shot_engine/sharded")?;
    Some(ShotEngineSummary {
        serial_ns,
        sharded_ns,
        speedup: serial_ns / sharded_ns,
    })
}

/// Renders the `BENCH_2.json` summary document.
pub fn summary_json(
    records: &[BenchRecord],
    shot_engine: Option<&ShotEngineSummary>,
    threads_available: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"qram-bench/bench-summary/v2\",\n");
    out.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    match shot_engine {
        Some(s) => out.push_str(&format!(
            "  \"shot_engine\": {{\"serial_ns\": {:.1}, \"sharded_ns\": {:.1}, \"speedup\": {:.3}}},\n",
            s.serial_ns, s.sharded_ns, s.speedup
        )),
        None => out.push_str("  \"shot_engine\": null,\n"),
    }
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            r.name.replace('\\', "\\\\").replace('"', "\\\""),
            r.mean_ns,
            r.iters
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The checked-in regression baseline for the shot engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Reference serial/sharded speedup on a multi-core runner.
    pub shot_engine_speedup: f64,
    /// Allowed relative regression (0.25 = fail below 75% of reference).
    pub tolerance: f64,
}

/// Parses `.github/bench-baseline.json`.
pub fn parse_baseline(json: &str) -> Option<Baseline> {
    Some(Baseline {
        shot_engine_speedup: json_num_field(json, "shot_engine_speedup")?,
        tolerance: json_num_field(json, "tolerance").unwrap_or(0.25),
    })
}

/// The regression-gate verdict for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Speedup is within tolerance of the baseline.
    Pass {
        /// Measured serial/sharded speedup.
        speedup: f64,
        /// Minimum accepted speedup (`baseline · (1 − tolerance)`).
        floor: f64,
    },
    /// Speedup regressed below the tolerance floor.
    Fail {
        /// Measured serial/sharded speedup.
        speedup: f64,
        /// Minimum accepted speedup (`baseline · (1 − tolerance)`).
        floor: f64,
    },
    /// The gate could not run and is skipped gracefully (no baseline, no
    /// shot-engine results, or a single-core machine where the parallel
    /// speedup is physically unobservable).
    Skip(String),
}

/// Applies the ratio-based regression gate.
pub fn apply_gate(
    shot_engine: Option<&ShotEngineSummary>,
    baseline: Option<&Baseline>,
    threads_available: usize,
) -> GateOutcome {
    let Some(baseline) = baseline else {
        return GateOutcome::Skip("no checked-in baseline".into());
    };
    let Some(summary) = shot_engine else {
        return GateOutcome::Skip("no shot_engine serial/sharded results".into());
    };
    if threads_available < 2 {
        return GateOutcome::Skip(format!(
            "single-core machine ({threads_available} thread available): parallel speedup not observable"
        ));
    }
    let floor = baseline.shot_engine_speedup * (1.0 - baseline.tolerance);
    if summary.speedup >= floor {
        GateOutcome::Pass {
            speedup: summary.speedup,
            floor,
        }
    } else {
        GateOutcome::Fail {
            speedup: summary.speedup,
            floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stub_record() {
        let json = "{\"name\":\"shot_engine/serial\",\"mean_ns\":1234.500,\"iters\":42}\n";
        let r = parse_record(json).unwrap();
        assert_eq!(r.name, "shot_engine/serial");
        assert_eq!(r.mean_ns, 1234.5);
        assert_eq!(r.iters, 42);
    }

    #[test]
    fn parses_escaped_names_and_whitespace() {
        let json = "{ \"name\" : \"a\\\"b\", \"mean_ns\" : 1e3, \"iters\" : 7 }";
        let r = parse_record(json).unwrap();
        assert_eq!(r.name, "a\"b");
        assert_eq!(r.mean_ns, 1000.0);
    }

    #[test]
    fn rejects_incomplete_records() {
        assert!(parse_record("{\"name\":\"x\"}").is_none());
        assert!(parse_record("{}").is_none());
    }

    fn records() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                name: "shot_engine/serial".into(),
                mean_ns: 4000.0,
                iters: 10,
            },
            BenchRecord {
                name: "shot_engine/sharded".into(),
                mean_ns: 1000.0,
                iters: 10,
            },
        ]
    }

    #[test]
    fn shot_engine_speedup_is_serial_over_sharded() {
        let s = shot_engine_summary(&records()).unwrap();
        assert_eq!(s.speedup, 4.0);
        assert!(shot_engine_summary(&records()[..1]).is_none());
    }

    #[test]
    fn summary_json_is_parseable_by_own_helpers() {
        let recs = records();
        let s = shot_engine_summary(&recs);
        let json = summary_json(&recs, s.as_ref(), 8);
        assert_eq!(json_num_field(&json, "threads_available"), Some(8.0));
        assert_eq!(json_num_field(&json, "speedup"), Some(4.0));
        assert!(json.contains("\"name\": \"shot_engine/serial\""));
    }

    #[test]
    fn baseline_parses_with_default_tolerance() {
        let b = parse_baseline("{\"shot_engine_speedup\": 2.0}").unwrap();
        assert_eq!(b.shot_engine_speedup, 2.0);
        assert_eq!(b.tolerance, 0.25);
        let b = parse_baseline("{\"shot_engine_speedup\": 3.0, \"tolerance\": 0.1}").unwrap();
        assert_eq!(b.tolerance, 0.1);
        assert!(parse_baseline("{}").is_none());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_below() {
        let recs = records();
        let summary = shot_engine_summary(&recs);
        let baseline = Baseline {
            shot_engine_speedup: 2.0,
            tolerance: 0.25,
        };
        match apply_gate(summary.as_ref(), Some(&baseline), 8) {
            GateOutcome::Pass { speedup, floor } => {
                assert_eq!(speedup, 4.0);
                assert_eq!(floor, 1.5);
            }
            other => panic!("expected pass, got {other:?}"),
        }
        let tight = Baseline {
            shot_engine_speedup: 8.0,
            tolerance: 0.25,
        };
        assert!(matches!(
            apply_gate(summary.as_ref(), Some(&tight), 8),
            GateOutcome::Fail { .. }
        ));
    }

    #[test]
    fn gate_skips_gracefully() {
        let recs = records();
        let summary = shot_engine_summary(&recs);
        let baseline = Baseline {
            shot_engine_speedup: 2.0,
            tolerance: 0.25,
        };
        // No baseline checked in.
        assert!(matches!(
            apply_gate(summary.as_ref(), None, 8),
            GateOutcome::Skip(_)
        ));
        // No shot-engine results.
        assert!(matches!(
            apply_gate(None, Some(&baseline), 8),
            GateOutcome::Skip(_)
        ));
        // Single-core machine: speedup physically unobservable.
        assert!(matches!(
            apply_gate(summary.as_ref(), Some(&baseline), 1),
            GateOutcome::Skip(_)
        ));
    }
}
