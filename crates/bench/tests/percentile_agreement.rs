//! Pins the cross-crate percentile contract: `qram_telemetry::
//! Histogram::percentile` must agree exactly with the bench harness's
//! nearest-rank `report::percentile` over bucket-floor-quantized
//! samples. The serve summary quotes latency percentiles from both
//! paths (raw results via `report::percentile`, telemetry via the
//! histogram), so a drift between the two would make the v4 summary
//! self-inconsistent.

use qram_bench::report::percentile;
use qram_telemetry::Histogram;

fn assert_agreement(samples: &[u64]) {
    let mut histogram = Histogram::new();
    for &s in samples {
        histogram.record(s);
    }
    // The histogram stores bucket floors; quantize the reference samples
    // the same way so both sides rank the identical multiset.
    let quantized: Vec<f64> = samples
        .iter()
        .map(|&s| Histogram::quantize(s) as f64)
        .collect();
    for q in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
        assert_eq!(
            histogram.percentile(q),
            percentile(&quantized, q) as u64,
            "q={q} samples={samples:?}"
        );
    }
}

#[test]
fn histogram_percentile_matches_report_percentile_small_values() {
    // Values below the linear cutoff are stored exactly.
    assert_agreement(&[0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 127]);
}

#[test]
fn histogram_percentile_matches_report_percentile_wide_range() {
    // Latency-like spread across many orders of magnitude.
    let samples: Vec<u64> = (0..500)
        .map(|i: u64| (i * i * 7919 + i * 131) % 5_000_000)
        .collect();
    assert_agreement(&samples);
}

#[test]
fn histogram_percentile_matches_report_percentile_skewed() {
    // A heavy-tailed multiset with repeats: the shape queue-wait
    // histograms take under overload.
    let mut samples = vec![100u64; 400];
    samples.extend((0..40).map(|i: u64| 10_000 + i * 997));
    samples.extend([1_000_000, 2_000_000, 40_000_000]);
    assert_agreement(&samples);
}

#[test]
fn empty_histogram_answers_zero_like_the_report() {
    let histogram = Histogram::new();
    assert_eq!(histogram.percentile(50.0), 0);
    assert_eq!(percentile(&[], 50.0), 0.0);
}
