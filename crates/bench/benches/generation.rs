//! Criterion benches: circuit generation and 2D embedding throughput.
//!
//! Resource-estimation workflows (Tables 1-2) regenerate circuits many
//! times; these benches track the cost of compiling each architecture and
//! of building/validating H-tree embeddings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qram_bench::experiment_memory;
use qram_core::{BucketBrigadeQram, QueryArchitecture, SelectSwapQram, Sqc, VirtualQram};
use qram_layout::HTreeEmbedding;

fn bench_circuit_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_generation");
    let (k, m) = (2usize, 6usize);
    let memory = experiment_memory(k + m, 5);
    let archs: [(&str, Box<dyn QueryArchitecture>); 4] = [
        ("virtual", Box::new(VirtualQram::new(k, m))),
        ("sqc_bb", Box::new(BucketBrigadeQram::new(k, m))),
        ("sqc_ss", Box::new(SelectSwapQram::new(k, m))),
        ("sqc", Box::new(Sqc::new(k + m))),
    ];
    for (name, arch) in &archs {
        group.bench_function(*name, |b| b.iter(|| arch.build(&memory).circuit().len()));
    }
    group.finish();
}

fn bench_resource_counting(c: &mut Criterion) {
    let (k, m) = (2usize, 6usize);
    let memory = experiment_memory(k + m, 6);
    let query = VirtualQram::new(k, m).build(&memory);
    c.bench_function("resource_count_virtual_k2_m6", |b| {
        b.iter(|| query.resources().t_count)
    });
}

fn bench_htree(c: &mut Criterion) {
    let mut group = c.benchmark_group("htree");
    for m in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("embed", m), &m, |b, &m| {
            b.iter(|| HTreeEmbedding::new(m).role_census().routing)
        });
    }
    group.bench_function("embed_validate_m8", |b| {
        b.iter(|| {
            let e = HTreeEmbedding::new(8);
            e.validate().unwrap();
            e.unused_fraction()
        })
    });
    group.finish();
}

fn bench_optimization_ablation(c: &mut Criterion) {
    use qram_core::{Optimizations, VirtualQram};
    let mut group = c.benchmark_group("table1_ablation");
    let (k, m) = (2usize, 5usize);
    let memory = experiment_memory(k + m, 7);
    for (name, opts) in [
        ("raw", Optimizations::RAW),
        ("opt1", Optimizations::OPT1),
        ("opt2", Optimizations::OPT2),
        ("opt3", Optimizations::OPT3),
        ("all", Optimizations::ALL),
    ] {
        group.bench_function(name, |b| {
            let arch = VirtualQram::new(k, m).with_optimizations(opts);
            b.iter(|| {
                let q = arch.build(&memory);
                (q.resources().depth, q.num_qubits())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_circuit_generation,
    bench_resource_counting,
    bench_htree,
    bench_optimization_ablation
);
criterion_main!(benches);
