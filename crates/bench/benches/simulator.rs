//! Criterion benches: Feynman-path simulator throughput.
//!
//! The paper's simulator claim (Sec. 6.2): noisy QRAM circuits simulate
//! in memory *constant in circuit depth* because the gate family is
//! classical-reversible — the interesting cost is time per (gate × path).
//! These benches measure full-query simulation and one Monte-Carlo shot
//! across QRAM widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qram_bench::experiment_memory;
use qram_core::{QueryArchitecture, VirtualQram};
use qram_noise::{FaultSampler, NoiseModel, PauliChannel};
use qram_sim::{monte_carlo_fidelity_with, run, run_with_faults, ShotConfig};

fn bench_noiseless_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("noiseless_query");
    for m in [2usize, 4, 6] {
        let memory = experiment_memory(m, 1);
        let query = VirtualQram::new(0, m).build(&memory);
        let input = query.input_state(None);
        group.bench_with_input(BenchmarkId::new("virtual_k0", m), &m, |b, _| {
            b.iter(|| {
                let mut state = input.clone();
                run(query.circuit().gates(), &mut state).unwrap();
                state.num_paths()
            })
        });
    }
    group.finish();
}

fn bench_noisy_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_shot");
    for m in [2usize, 4, 6] {
        let memory = experiment_memory(m, 2);
        let query = VirtualQram::new(0, m).build(&memory);
        let input = query.input_state(None);
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(1e-3));
        group.bench_with_input(BenchmarkId::new("virtual_k0", m), &m, |b, _| {
            let sampler = FaultSampler::new(query.circuit(), model, 3);
            let mut shot = 0u64;
            b.iter(|| {
                let plan = sampler.sample_shot(shot);
                shot += 1;
                let mut state = input.clone();
                run_with_faults(query.circuit().gates(), &mut state, &plan).unwrap();
                state.num_paths()
            })
        });
    }
    group.finish();
}

fn bench_fault_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sampling");
    let memory = experiment_memory(6, 3);
    let query = VirtualQram::new(0, 6).build(&memory);
    for (name, model) in [
        (
            "per_gate",
            NoiseModel::per_gate(PauliChannel::depolarizing(1e-3)),
        ),
        (
            "qubit_per_step",
            NoiseModel::qubit_per_step(PauliChannel::depolarizing(1e-3)),
        ),
    ] {
        group.bench_function(name, |b| {
            let sampler = FaultSampler::new(query.circuit(), model, 4);
            let mut shot = 0u64;
            b.iter(|| {
                shot += 1;
                sampler.sample_shot(shot).len()
            })
        });
    }
    group.finish();
}

/// The headline serial-vs-sharded comparison the CI regression gate and
/// `BENCH_2.json` track: one full Monte-Carlo fidelity estimate per
/// iteration, identical workload and seed, only the thread count varies.
/// Determinism across thread counts means the two paths compute the very
/// same estimate — the ratio is pure engine throughput.
fn bench_shot_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_engine");
    let m = 5;
    let shots = 96;
    let memory = experiment_memory(m, 8);
    let query = VirtualQram::new(0, m).build(&memory);
    let input = query.input_state(None);
    let model = NoiseModel::per_gate(PauliChannel::depolarizing(2e-3));
    let sampler = FaultSampler::new(query.circuit(), model, 9);
    for (label, threads) in [("serial", 1usize), ("sharded", 0)] {
        let config = ShotConfig::new(shots).with_seed(9).with_threads(threads);
        group.bench_function(label, |b| {
            b.iter(|| {
                monte_carlo_fidelity_with(query.circuit().gates(), &input, &config, |shot| {
                    sampler.sample_shot(shot)
                })
                .unwrap()
                .mean
            })
        });
    }
    group.finish();
}

/// The path-parallel comparison the CI `path_speedup` gate tracks: a
/// wide (`m = 10`, 1024-path) query where shots are few but each shot is
/// expensive, so the win comes from splitting the *path slab*, not from
/// sharding shots. `serial` pins `path_chunks = 1`; `chunked` uses
/// `path_chunks = 0` (auto: one chunk per available core). Shot threads
/// stay at 1 in both so the ratio isolates path parallelism. On a
/// single-core runner auto resolves to 1 chunk and the ratio is ~1.0 —
/// the report gate detects and skips that case.
fn bench_path_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_engine");
    let m = 10;
    let shots = 4;
    let memory = experiment_memory(m, 8);
    let query = VirtualQram::new(0, m).build(&memory);
    let input = query.input_state(None);
    let model = NoiseModel::per_gate(PauliChannel::depolarizing(2e-3));
    let sampler = FaultSampler::new(query.circuit(), model, 9);
    for (label, chunks) in [("serial", 1usize), ("chunked", 0)] {
        let config = ShotConfig::new(shots)
            .with_seed(9)
            .with_threads(1)
            .with_path_chunks(chunks);
        group.bench_function(label, |b| {
            b.iter(|| {
                monte_carlo_fidelity_with(query.circuit().gates(), &input, &config, |shot| {
                    sampler.sample_shot(shot)
                })
                .unwrap()
                .mean
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_noiseless_query,
    bench_noisy_shot,
    bench_fault_sampling,
    bench_shot_engine,
    bench_path_engine
);
criterion_main!(benches);
