//! Criterion benches: Feynman-path simulator throughput.
//!
//! The paper's simulator claim (Sec. 6.2): noisy QRAM circuits simulate
//! in memory *constant in circuit depth* because the gate family is
//! classical-reversible — the interesting cost is time per (gate × path).
//! These benches measure full-query simulation and one Monte-Carlo shot
//! across QRAM widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qram_bench::experiment_memory;
use qram_core::{QueryArchitecture, VirtualQram};
use qram_noise::{FaultSampler, NoiseModel, PauliChannel};
use qram_sim::{run, run_with_faults};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_noiseless_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("noiseless_query");
    for m in [2usize, 4, 6] {
        let memory = experiment_memory(m, 1);
        let query = VirtualQram::new(0, m).build(&memory);
        let input = query.input_state(None);
        group.bench_with_input(BenchmarkId::new("virtual_k0", m), &m, |b, _| {
            b.iter(|| {
                let mut state = input.clone();
                run(query.circuit().gates(), &mut state).unwrap();
                state.num_paths()
            })
        });
    }
    group.finish();
}

fn bench_noisy_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_shot");
    for m in [2usize, 4, 6] {
        let memory = experiment_memory(m, 2);
        let query = VirtualQram::new(0, m).build(&memory);
        let input = query.input_state(None);
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(1e-3));
        group.bench_with_input(BenchmarkId::new("virtual_k0", m), &m, |b, _| {
            let mut sampler = FaultSampler::new(query.circuit(), model, StdRng::seed_from_u64(3));
            b.iter(|| {
                let plan = sampler.sample();
                let mut state = input.clone();
                run_with_faults(query.circuit().gates(), &mut state, &plan).unwrap();
                state.num_paths()
            })
        });
    }
    group.finish();
}

fn bench_fault_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sampling");
    let memory = experiment_memory(6, 3);
    let query = VirtualQram::new(0, 6).build(&memory);
    for (name, model) in [
        (
            "per_gate",
            NoiseModel::per_gate(PauliChannel::depolarizing(1e-3)),
        ),
        (
            "qubit_per_step",
            NoiseModel::qubit_per_step(PauliChannel::depolarizing(1e-3)),
        ),
    ] {
        group.bench_function(name, |b| {
            let mut sampler = FaultSampler::new(query.circuit(), model, StdRng::seed_from_u64(4));
            b.iter(|| sampler.sample().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_noiseless_query,
    bench_noisy_shot,
    bench_fault_sampling
);
criterion_main!(benches);
