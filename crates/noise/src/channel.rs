//! Single-qubit Pauli error channels.

use qram_sim::Pauli;
use rand::Rng;

/// A single-qubit Pauli channel
/// `ρ → (1 − pₓ − p_y − p_z)ρ + pₓXρX + p_yYρY + p_zZρZ`.
///
/// The paper uses three specializations: the phase-flip channel of the
/// Sec. 5.1 analysis (`ρ → (1−ε)ρ + εZρZ`), the bit-flip channel of the
/// Fig. 10 comparison, and the depolarizing channel for device models.
///
/// ```
/// use qram_noise::PauliChannel;
/// let ch = PauliChannel::phase_flip(1e-3);
/// assert_eq!(ch.pz, 1e-3);
/// assert_eq!(ch.total(), 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PauliChannel {
    /// Probability of an X (bit flip) error.
    pub px: f64,
    /// Probability of a Y error.
    pub py: f64,
    /// Probability of a Z (phase flip) error.
    pub pz: f64,
}

impl PauliChannel {
    /// The error-free channel.
    pub const NOISELESS: PauliChannel = PauliChannel {
        px: 0.0,
        py: 0.0,
        pz: 0.0,
    };

    /// A general Pauli channel.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the total exceeds 1.
    pub fn new(px: f64, py: f64, pz: f64) -> Self {
        assert!(
            px >= 0.0 && py >= 0.0 && pz >= 0.0,
            "negative error probability"
        );
        assert!(
            px + py + pz <= 1.0 + 1e-12,
            "total error probability exceeds 1"
        );
        PauliChannel { px, py, pz }
    }

    /// Phase-flip channel `ρ → (1−ε)ρ + εZρZ` (paper Sec. 5.1).
    pub fn phase_flip(eps: f64) -> Self {
        Self::new(0.0, 0.0, eps)
    }

    /// Bit-flip channel `ρ → (1−ε)ρ + εXρX`.
    pub fn bit_flip(eps: f64) -> Self {
        Self::new(eps, 0.0, 0.0)
    }

    /// Depolarizing channel: X, Y and Z each with probability `ε/3`.
    pub fn depolarizing(eps: f64) -> Self {
        Self::new(eps / 3.0, eps / 3.0, eps / 3.0)
    }

    /// Total error probability `pₓ + p_y + p_z`.
    pub fn total(&self) -> f64 {
        self.px + self.py + self.pz
    }

    /// Whether the channel never produces errors.
    pub fn is_noiseless(&self) -> bool {
        self.total() == 0.0
    }

    /// Returns a channel with every probability scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if scaling pushes the total above 1.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.px * factor, self.py * factor, self.pz * factor)
    }

    /// Samples one application of the channel: `None` = no error,
    /// `Some(pauli)` = that Pauli strikes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Pauli> {
        if self.is_noiseless() {
            return None;
        }
        let u: f64 = rng.random();
        if u < self.px {
            Some(Pauli::X)
        } else if u < self.px + self.py {
            Some(Pauli::Y)
        } else if u < self.px + self.py + self.pz {
            Some(Pauli::Z)
        } else {
            None
        }
    }
}

impl std::fmt::Display for PauliChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pauli(px={:.2e}, py={:.2e}, pz={:.2e})",
            self.px, self.py, self.pz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constructors_set_expected_components() {
        assert_eq!(
            PauliChannel::phase_flip(0.1),
            PauliChannel::new(0.0, 0.0, 0.1)
        );
        assert_eq!(
            PauliChannel::bit_flip(0.1),
            PauliChannel::new(0.1, 0.0, 0.0)
        );
        let d = PauliChannel::depolarizing(0.3);
        assert!((d.px - 0.1).abs() < 1e-12);
        assert!((d.total() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_probability() {
        let _ = PauliChannel::new(-0.1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn rejects_total_above_one() {
        let _ = PauliChannel::new(0.5, 0.4, 0.2);
    }

    #[test]
    fn noiseless_never_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(PauliChannel::NOISELESS.sample(&mut rng), None);
        }
    }

    #[test]
    fn sample_frequency_tracks_probability() {
        let ch = PauliChannel::phase_flip(0.25);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 40_000;
        let hits = (0..trials)
            .filter(|_| ch.sample(&mut rng).is_some())
            .count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn sample_respects_pauli_mix() {
        let ch = PauliChannel::new(0.5, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            if let Some(Pauli::Y) = ch.sample(&mut rng) {
                panic!("Y sampled with py = 0")
            }
        }
    }

    #[test]
    fn scaled_divides_rates() {
        let ch = PauliChannel::depolarizing(0.3).scaled(0.1);
        assert!((ch.total() - 0.03).abs() < 1e-12);
    }
}
