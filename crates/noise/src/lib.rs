//! Pauli noise channels, Monte-Carlo error models and synthetic device
//! models for QRAM simulation (paper Secs. 5, 6.3 and Appendix A).
//!
//! The crate separates three concerns:
//!
//! * **What errors look like** — [`PauliChannel`]: a single-qubit Pauli
//!   channel `ρ → (1−p)ρ + pₓXρX + p_yYρY + p_zZρZ`, with the paper's
//!   phase-flip, bit-flip and depolarizing specializations.
//! * **Where errors strike** — [`NoiseModel`]: qubit-per-step (the
//!   Sec. 5.1 analysis model: every qubit suffers the channel at every
//!   schedule layer) or per-gate (the Sec. 6.3 evaluation model: the
//!   channel strikes the support of each executed gate).
//! * **How strong errors are** — [`ErrorReductionFactor`]: Appendix A's
//!   `εr = current/future` knob, scaling a base error rate of `10⁻³`.
//!
//! [`FaultSampler`] turns a circuit + model + master seed into the
//! `FaultPlan` of one Monte-Carlo shot, ready for
//! `qram_sim::run_with_faults`. Each shot's plan is a pure function of
//! `(seed, shot index)` — the contract the sharded parallel shot engine
//! in `qram_sim` needs for thread-count-independent estimates.
//! [`DeviceModel`] adds coupling-map-aware device descriptions standing in
//! for the IBMQ backends of Appendix A (see the DESIGN.md substitution
//! table: we encode the published topologies with uniform error rates
//! because the proprietary calibration snapshots are not available
//! offline).
//!
//! # Example
//!
//! ```
//! use qram_circuit::{Circuit, Gate, Qubit};
//! use qram_noise::{FaultSampler, NoiseModel, PauliChannel};
//! use qram_sim::{monte_carlo_fidelity, PathState};
//!
//! # fn main() -> Result<(), qram_sim::SimError> {
//! let mut c = Circuit::new(2);
//! c.push(Gate::cx(Qubit(0), Qubit(1)));
//!
//! let model = NoiseModel::per_gate(PauliChannel::phase_flip(1e-3));
//! let sampler = FaultSampler::new(&c, model, 7);
//! let input = PathState::uniform_over(2, &[Qubit(0)]);
//! let est = monte_carlo_fidelity(c.gates(), &input, 256, |shot| sampler.sample_shot(shot))?;
//! assert!(est.mean > 0.95);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod device;
mod model;
mod sampler;

pub use channel::PauliChannel;
pub use device::{ibm_perth, ibmq_guadalupe, DeviceModel};
pub use model::{ErrorReductionFactor, NoiseModel, NoisePlacement, BASE_ERROR_RATE};
pub use sampler::{derive_stream_seed, FaultSampler};
