//! Synthetic device models standing in for the IBMQ backends of
//! Appendix A.
//!
//! The paper's Appendix A experiments pull noise models from IBM's
//! `ibm_perth` (7 qubits) and `ibmq_guadalupe` (16 qubits) at run time.
//! Those calibration snapshots are proprietary and unavailable offline, so
//! this module encodes the *published coupling maps* of the two machines
//! with uniform error rates at the paper's stated current-hardware
//! baseline (`ε₀ = 10⁻³`, Appendix A). The Fig. 12 signal — fidelity as a
//! function of the error-reduction factor, given real (sparse) device
//! connectivity — is preserved: it is driven by SWAP-routing overhead and
//! the εr scaling, not by per-qubit calibration detail.

use crate::{PauliChannel, BASE_ERROR_RATE};

/// A quantum device: qubit count, coupling map, and arity-dependent error
/// channels.
///
/// ```
/// use qram_noise::ibm_perth;
/// let dev = ibm_perth();
/// assert_eq!(dev.num_qubits(), 7);
/// assert!(dev.are_coupled(0, 1));
/// assert!(!dev.are_coupled(0, 6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: String,
    num_qubits: usize,
    coupling: Vec<(usize, usize)>,
    one_qubit_channel: PauliChannel,
    two_qubit_channel: PauliChannel,
}

impl DeviceModel {
    /// Builds a device from a coupling map and error channels.
    ///
    /// # Panics
    ///
    /// Panics if any coupling endpoint is out of range or self-coupled.
    pub fn new(
        name: impl Into<String>,
        num_qubits: usize,
        coupling: Vec<(usize, usize)>,
        one_qubit_channel: PauliChannel,
        two_qubit_channel: PauliChannel,
    ) -> Self {
        for &(a, b) in &coupling {
            assert!(
                a < num_qubits && b < num_qubits,
                "coupling ({a},{b}) out of range"
            );
            assert!(a != b, "self-coupling ({a},{b})");
        }
        DeviceModel {
            name: name.into(),
            num_qubits,
            coupling,
            one_qubit_channel,
            two_qubit_channel,
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The undirected coupling map.
    pub fn coupling(&self) -> &[(usize, usize)] {
        &self.coupling
    }

    /// Whether qubits `a` and `b` are directly coupled (order-insensitive).
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.coupling
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    /// The error channel applied to each qubit of a gate with the given
    /// arity (1-qubit channel for single-qubit gates, 2-qubit channel for
    /// everything larger — multi-qubit gates on devices are compiled to
    /// 2-qubit gates, so their per-qubit rate matches).
    pub fn channel_for_arity(&self, arity: usize) -> PauliChannel {
        if arity <= 1 {
            self.one_qubit_channel
        } else {
            self.two_qubit_channel
        }
    }
}

impl std::fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplings)",
            self.name,
            self.num_qubits,
            self.coupling.len()
        )
    }
}

/// Synthetic model of IBM's 7-qubit `ibm_perth` (H-shaped topology):
///
/// ```text
/// 0 — 1 — 2
///     |
///     3
///     |
/// 4 — 5 — 6
/// ```
pub fn ibm_perth() -> DeviceModel {
    DeviceModel::new(
        "ibm_perth",
        7,
        vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)],
        PauliChannel::depolarizing(BASE_ERROR_RATE / 10.0),
        PauliChannel::depolarizing(BASE_ERROR_RATE),
    )
}

/// Synthetic model of IBM's 16-qubit `ibmq_guadalupe` (heavy-hex Falcon
/// topology, the published coupling map).
pub fn ibmq_guadalupe() -> DeviceModel {
    DeviceModel::new(
        "ibmq_guadalupe",
        16,
        vec![
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ],
        PauliChannel::depolarizing(BASE_ERROR_RATE / 10.0),
        PauliChannel::depolarizing(BASE_ERROR_RATE),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perth_topology_is_h_shaped() {
        let dev = ibm_perth();
        assert_eq!(dev.num_qubits(), 7);
        assert_eq!(dev.coupling().len(), 6); // a tree: n − 1 edges
        assert!(dev.are_coupled(1, 3));
        assert!(dev.are_coupled(3, 1)); // order-insensitive
        assert!(!dev.are_coupled(2, 3));
    }

    #[test]
    fn guadalupe_is_heavy_hex() {
        let dev = ibmq_guadalupe();
        assert_eq!(dev.num_qubits(), 16);
        assert_eq!(dev.coupling().len(), 16);
        // Heavy-hex: max degree 3.
        for q in 0..16 {
            let deg = dev
                .coupling()
                .iter()
                .filter(|&&(a, b)| a == q || b == q)
                .count();
            assert!(deg <= 3, "qubit {q} has degree {deg}");
        }
    }

    #[test]
    fn two_qubit_gates_are_noisier() {
        let dev = ibm_perth();
        assert!(dev.channel_for_arity(2).total() > dev.channel_for_arity(1).total());
        // 3-qubit gates priced as 2-qubit compiled gates.
        assert_eq!(dev.channel_for_arity(3), dev.channel_for_arity(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_coupling() {
        let _ = DeviceModel::new(
            "bad",
            2,
            vec![(0, 5)],
            PauliChannel::NOISELESS,
            PauliChannel::NOISELESS,
        );
    }

    #[test]
    fn display_mentions_name() {
        assert!(ibm_perth().to_string().contains("ibm_perth"));
    }
}
