//! Monte-Carlo fault sampling: noise model × circuit → per-shot fault
//! plans.

use qram_circuit::{Circuit, Qubit};
use qram_sim::{Fault, FaultPlan};
use rand::Rng;

use crate::{DeviceModel, ErrorReductionFactor, NoiseModel, NoisePlacement, PauliChannel};

/// Samples the fault pattern of one Monte-Carlo shot for a fixed circuit
/// under a noise model.
///
/// The sampler precomputes every *error opportunity* ("trial") of the
/// model — one per (qubit, layer) for [`NoisePlacement::QubitPerStep`],
/// one per (gate, support qubit) for [`NoisePlacement::PerGate`], one per
/// qubit for [`NoisePlacement::PerQubitOnce`] — and draws a geometric skip
/// sequence over the trials, so sampling cost per shot is proportional to
/// the *number of faults*, not the number of opportunities. At the paper's
/// `ε = 10⁻³` this is a ~1000× speedup over trial-by-trial sampling.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// use qram_noise::{FaultSampler, NoiseModel, PauliChannel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// let model = NoiseModel::per_gate(PauliChannel::depolarizing(0.5));
/// let mut s = FaultSampler::new(&c, model, StdRng::seed_from_u64(3));
/// let plan = s.sample();
/// assert!(plan.len() <= 2); // at most one fault per support qubit
/// ```
#[derive(Debug)]
pub struct FaultSampler<R> {
    trials: Trials,
    rng: R,
}

#[derive(Debug)]
enum Trials {
    /// All trials share one channel; geometric skipping applies.
    Uniform {
        channel: PauliChannel,
        locations: Vec<(usize, Qubit)>,
    },
    /// Heterogeneous channels (device models); sampled trial by trial.
    PerTrial {
        entries: Vec<(usize, Qubit, PauliChannel)>,
    },
}

impl<R: Rng> FaultSampler<R> {
    /// Builds a sampler for `circuit` under a uniform noise `model`.
    pub fn new(circuit: &Circuit, model: NoiseModel, rng: R) -> Self {
        let locations = match model.placement {
            NoisePlacement::PerGate => per_gate_locations(circuit),
            NoisePlacement::QubitPerStep => qubit_per_step_locations(circuit),
            NoisePlacement::PerQubitOnce => (0..circuit.num_qubits())
                .map(|q| (0usize, Qubit(q as u32)))
                .collect(),
        };
        FaultSampler {
            trials: Trials::Uniform {
                channel: model.channel,
                locations,
            },
            rng,
        }
    }

    /// Builds a per-gate sampler whose channel strength depends on gate
    /// arity, as specified by `device`, with rates scaled down by `er`.
    pub fn for_device(
        circuit: &Circuit,
        device: &DeviceModel,
        er: ErrorReductionFactor,
        rng: R,
    ) -> Self {
        let scale = 1.0 / er.0;
        let mut entries = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            if gate.is_barrier() {
                continue;
            }
            let channel = device.channel_for_arity(gate.arity()).scaled(scale);
            for q in gate.qubits() {
                entries.push((i + 1, q, channel));
            }
        }
        FaultSampler {
            trials: Trials::PerTrial { entries },
            rng,
        }
    }

    /// Number of error opportunities per shot.
    pub fn num_trials(&self) -> usize {
        match &self.trials {
            Trials::Uniform { locations, .. } => locations.len(),
            Trials::PerTrial { entries } => entries.len(),
        }
    }

    /// Draws the fault pattern of one shot.
    pub fn sample(&mut self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        match &self.trials {
            Trials::Uniform { channel, locations } => {
                let p = channel.total();
                if p <= 0.0 {
                    return plan;
                }
                if p >= 1.0 {
                    for &(idx, q) in locations {
                        if let Some(pauli) = channel.sample(&mut self.rng) {
                            plan.push(Fault::new(idx, q, pauli));
                        }
                    }
                    return plan;
                }
                // Geometric skipping: the gap to the next erroring trial is
                // ⌊ln(1−U)/ln(1−p)⌋.
                let log1mp = (1.0 - p).ln();
                let mut t = 0usize;
                loop {
                    let u: f64 = self.rng.random();
                    let gap = ((1.0 - u).ln() / log1mp).floor();
                    if !gap.is_finite() || gap >= (locations.len() - t) as f64 {
                        break;
                    }
                    t += gap as usize;
                    let (idx, q) = locations[t];
                    plan.push(Fault::new(
                        idx,
                        q,
                        conditional_pauli(channel, &mut self.rng),
                    ));
                    t += 1;
                    if t >= locations.len() {
                        break;
                    }
                }
            }
            Trials::PerTrial { entries } => {
                for &(idx, q, channel) in entries {
                    if let Some(pauli) = channel.sample(&mut self.rng) {
                        plan.push(Fault::new(idx, q, pauli));
                    }
                }
            }
        }
        plan
    }
}

/// Samples which Pauli struck, conditioned on *some* error striking.
fn conditional_pauli<R: Rng + ?Sized>(channel: &PauliChannel, rng: &mut R) -> qram_sim::Pauli {
    use qram_sim::Pauli;
    let total = channel.total();
    let u: f64 = rng.random::<f64>() * total;
    if u < channel.px {
        Pauli::X
    } else if u < channel.px + channel.py {
        Pauli::Y
    } else {
        Pauli::Z
    }
}

/// One trial per (gate, support qubit); faults strike after the gate.
fn per_gate_locations(circuit: &Circuit) -> Vec<(usize, Qubit)> {
    let mut locations = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        if gate.is_barrier() {
            continue;
        }
        for q in gate.qubits() {
            locations.push((i + 1, q));
        }
    }
    locations
}

/// One trial per (qubit, schedule layer). An error on qubit `q` at layer
/// `l` is placed after the last gate on `q` scheduled at a layer ≤ `l`
/// (before the first gate if none) — Pauli errors commute freely across
/// idle wire segments, so this placement is trajectory-exact.
fn qubit_per_step_locations(circuit: &Circuit) -> Vec<(usize, Qubit)> {
    let num_qubits = circuit.num_qubits();
    // Re-run the ASAP recurrence to learn each gate's layer.
    let mut busy = vec![0usize; num_qubits];
    let mut floor = 0usize;
    let mut depth = 0usize;
    // events[q] = [(layer, flat index after the gate)], ascending in layer.
    let mut events: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_qubits];
    for (i, gate) in circuit.gates().iter().enumerate() {
        if gate.is_barrier() {
            floor = depth;
            continue;
        }
        let qs = gate.qubits();
        let layer = qs
            .iter()
            .map(|q| busy[q.index()])
            .max()
            .unwrap_or(floor)
            .max(floor);
        for q in &qs {
            busy[q.index()] = layer + 1;
            events[q.index()].push((layer, i + 1));
        }
        depth = depth.max(layer + 1);
    }

    let mut locations = Vec::with_capacity(num_qubits * depth);
    for (q, evs) in events.iter().enumerate() {
        let mut cursor = 0usize; // next event to pass
        let mut placement = 0usize; // before the first gate
        for layer in 0..depth {
            while cursor < evs.len() && evs[cursor].0 <= layer {
                placement = evs[cursor].1;
                cursor += 1;
            }
            locations.push((placement, Qubit(q as u32)));
        }
    }
    locations
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::Gate;
    use rand::{rngs::StdRng, SeedableRng};

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c
    }

    #[test]
    fn per_gate_trial_count_is_total_support() {
        let c = chain_circuit();
        let s = FaultSampler::new(
            &c,
            NoiseModel::per_gate(PauliChannel::phase_flip(0.1)),
            StdRng::seed_from_u64(0),
        );
        assert_eq!(s.num_trials(), 4); // two 2-qubit gates
    }

    #[test]
    fn qubit_per_step_trial_count_is_qubits_times_depth() {
        let c = chain_circuit(); // depth 2, 3 qubits
        let s = FaultSampler::new(
            &c,
            NoiseModel::qubit_per_step(PauliChannel::phase_flip(0.1)),
            StdRng::seed_from_u64(0),
        );
        assert_eq!(s.num_trials(), 6);
    }

    #[test]
    fn per_qubit_once_places_faults_at_start() {
        let c = chain_circuit();
        let mut s = FaultSampler::new(
            &c,
            NoiseModel::per_qubit_once(PauliChannel::bit_flip(1.0)),
            StdRng::seed_from_u64(0),
        );
        let plan = s.sample();
        assert_eq!(plan.len(), 3);
        assert!(plan.faults().iter().all(|f| f.gate_index == 0));
    }

    #[test]
    fn noiseless_model_samples_empty_plans() {
        let c = chain_circuit();
        let mut s = FaultSampler::new(&c, NoiseModel::noiseless(), StdRng::seed_from_u64(0));
        for _ in 0..10 {
            assert!(s.sample().is_empty());
        }
    }

    #[test]
    fn geometric_skipping_matches_expected_rate() {
        let mut c = Circuit::new(8);
        for _ in 0..50 {
            for q in 0..8 {
                c.push(Gate::x(Qubit(q)));
            }
        }
        let p = 0.01;
        let mut s = FaultSampler::new(
            &c,
            NoiseModel::per_gate(PauliChannel::depolarizing(p)),
            StdRng::seed_from_u64(11),
        );
        let trials = s.num_trials() as f64;
        let shots = 500;
        let total: usize = (0..shots).map(|_| s.sample().len()).sum();
        let mean = total as f64 / shots as f64;
        let expected = trials * p;
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn certain_error_rate_hits_every_trial() {
        let c = chain_circuit();
        let mut s = FaultSampler::new(
            &c,
            NoiseModel::per_gate(PauliChannel::bit_flip(1.0)),
            StdRng::seed_from_u64(5),
        );
        assert_eq!(s.sample().len(), 4);
    }

    #[test]
    fn qubit_per_step_placement_respects_gate_order() {
        // Qubit 1 is touched by gate 0 (layer 0) and gate 1 (layer 1).
        // An error at layer 0 must land at gate_index 1 (between the CXs).
        let c = chain_circuit();
        let locations = qubit_per_step_locations(&c);
        // locations are grouped by qubit, then layer.
        let q1: Vec<_> = locations.iter().filter(|(_, q)| q.index() == 1).collect();
        assert_eq!(q1.len(), 2);
        assert_eq!(q1[0].0, 1); // after gate 0
        assert_eq!(q1[1].0, 2); // after gate 1

        // Qubit 0 is only touched at layer 0.
        let q0: Vec<_> = locations.iter().filter(|(_, q)| q.index() == 0).collect();
        assert_eq!(q0[0].0, 1);
        assert_eq!(q0[1].0, 1); // idles at layer 1; error stays after gate 0
    }

    #[test]
    fn device_sampler_uses_arity_dependent_channels() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let device = crate::ibm_perth();
        let mut s = FaultSampler::for_device(
            &c,
            &device,
            ErrorReductionFactor(1.0),
            StdRng::seed_from_u64(1),
        );
        assert_eq!(s.num_trials(), 3);
        let _ = s.sample(); // must not panic
    }
}
