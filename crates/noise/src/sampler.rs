//! Monte-Carlo fault sampling: noise model × circuit → per-shot fault
//! plans.

use qram_circuit::{Circuit, Qubit};
use qram_sim::{Fault, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DeviceModel, ErrorReductionFactor, NoiseModel, NoisePlacement, PauliChannel};

/// Samples the fault pattern of one Monte-Carlo shot for a fixed circuit
/// under a noise model.
///
/// The sampler precomputes every *error opportunity* ("trial") of the
/// model — one per (qubit, layer) for [`NoisePlacement::QubitPerStep`],
/// one per (gate, support qubit) for [`NoisePlacement::PerGate`], one per
/// qubit for [`NoisePlacement::PerQubitOnce`] — and draws a geometric skip
/// sequence over the trials, so sampling cost per shot is proportional to
/// the *number of faults*, not the number of opportunities. At the paper's
/// `ε = 10⁻³` this is a ~1000× speedup over trial-by-trial sampling.
///
/// Sampling is **per shot**: [`FaultSampler::sample_shot`] takes `&self`
/// and the shot index, and derives an independent, decorrelated RNG stream
/// for that shot from the master seed. A shot's fault pattern is therefore
/// a pure function of `(seed, shot)` — the contract the sharded parallel
/// shot engine in `qram-sim` relies on for bit-identical estimates across
/// thread counts.
///
/// ```
/// use qram_circuit::{Circuit, Gate, Qubit};
/// use qram_noise::{FaultSampler, NoiseModel, PauliChannel};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// let model = NoiseModel::per_gate(PauliChannel::depolarizing(0.5));
/// let s = FaultSampler::new(&c, model, 3);
/// let plan = s.sample_shot(0);
/// assert!(plan.len() <= 2); // at most one fault per support qubit
/// assert_eq!(plan, s.sample_shot(0)); // pure in (seed, shot)
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    trials: Trials,
    seed: u64,
}

#[derive(Debug, Clone)]
enum Trials {
    /// All trials share one channel; geometric skipping applies.
    Uniform {
        channel: PauliChannel,
        locations: Vec<(usize, Qubit)>,
    },
    /// Heterogeneous channels (device models); sampled trial by trial.
    PerTrial {
        entries: Vec<(usize, Qubit, PauliChannel)>,
    },
}

/// Derives the RNG seed of one consumer's stream from a master seed and
/// a stream index: a SplitMix64-style avalanche over the pair, so
/// neighbouring indices get decorrelated streams and the assignment is
/// independent of any sharding. Used for per-shot streams here and for
/// per-request streams in `qram-service` — one definition of the
/// decorrelation scheme for the whole workspace.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSampler {
    /// Builds a sampler for `circuit` under a uniform noise `model`, with
    /// all shot streams derived from the master `seed`.
    pub fn new(circuit: &Circuit, model: NoiseModel, seed: u64) -> Self {
        let locations = match model.placement {
            NoisePlacement::PerGate => per_gate_locations(circuit),
            NoisePlacement::QubitPerStep => qubit_per_step_locations(circuit),
            NoisePlacement::PerQubitOnce => (0..circuit.num_qubits())
                .map(|q| (0usize, Qubit(q as u32)))
                .collect(),
        };
        FaultSampler {
            trials: Trials::Uniform {
                channel: model.channel,
                locations,
            },
            seed,
        }
    }

    /// Builds a per-gate sampler whose channel strength depends on gate
    /// arity, as specified by `device`, with rates scaled down by `er`.
    pub fn for_device(
        circuit: &Circuit,
        device: &DeviceModel,
        er: ErrorReductionFactor,
        seed: u64,
    ) -> Self {
        let scale = 1.0 / er.0;
        let mut entries = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            if gate.is_barrier() {
                continue;
            }
            let channel = device.channel_for_arity(gate.arity()).scaled(scale);
            for q in gate.qubits() {
                entries.push((i + 1, q, channel));
            }
        }
        FaultSampler {
            trials: Trials::PerTrial { entries },
            seed,
        }
    }

    /// Number of error opportunities per shot.
    pub fn num_trials(&self) -> usize {
        match &self.trials {
            Trials::Uniform { locations, .. } => locations.len(),
            Trials::PerTrial { entries } => entries.len(),
        }
    }

    /// The master seed all shot streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the fault pattern of shot `shot` — deterministic in
    /// `(seed, shot)` and callable concurrently from any thread.
    pub fn sample_shot(&self, shot: u64) -> FaultPlan {
        self.sample_shot_from(self.seed, shot)
    }

    /// Like [`FaultSampler::sample_shot`], but deriving the shot's
    /// stream from an explicit `master` seed instead of the sampler's
    /// own — many consumers (e.g. one per served request in
    /// `qram-service`) can share one precomputed trial table without
    /// cloning or rebuilding the sampler.
    pub fn sample_shot_from(&self, master: u64, shot: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(master, shot));
        let mut plan = FaultPlan::new();
        match &self.trials {
            Trials::Uniform { channel, locations } => {
                let p = channel.total();
                if p <= 0.0 {
                    return plan;
                }
                if p >= 1.0 {
                    for &(idx, q) in locations {
                        if let Some(pauli) = channel.sample(&mut rng) {
                            plan.push(Fault::new(idx, q, pauli));
                        }
                    }
                    return plan;
                }
                // Geometric skipping: the gap to the next erroring trial is
                // ⌊ln(1−U)/ln(1−p)⌋.
                let log1mp = (1.0 - p).ln();
                let mut t = 0usize;
                loop {
                    let u: f64 = rng.random();
                    let gap = ((1.0 - u).ln() / log1mp).floor();
                    if !gap.is_finite() || gap >= (locations.len() - t) as f64 {
                        break;
                    }
                    t += gap as usize;
                    let (idx, q) = locations[t];
                    plan.push(Fault::new(idx, q, conditional_pauli(channel, &mut rng)));
                    t += 1;
                    if t >= locations.len() {
                        break;
                    }
                }
            }
            Trials::PerTrial { entries } => {
                for &(idx, q, channel) in entries {
                    if let Some(pauli) = channel.sample(&mut rng) {
                        plan.push(Fault::new(idx, q, pauli));
                    }
                }
            }
        }
        plan
    }
}

/// Samples which Pauli struck, conditioned on *some* error striking.
fn conditional_pauli<R: Rng + ?Sized>(channel: &PauliChannel, rng: &mut R) -> qram_sim::Pauli {
    use qram_sim::Pauli;
    let total = channel.total();
    let u: f64 = rng.random::<f64>() * total;
    if u < channel.px {
        Pauli::X
    } else if u < channel.px + channel.py {
        Pauli::Y
    } else {
        Pauli::Z
    }
}

/// One trial per (gate, support qubit); faults strike after the gate.
fn per_gate_locations(circuit: &Circuit) -> Vec<(usize, Qubit)> {
    let mut locations = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        if gate.is_barrier() {
            continue;
        }
        for q in gate.qubits() {
            locations.push((i + 1, q));
        }
    }
    locations
}

/// One trial per (qubit, schedule layer). An error on qubit `q` at layer
/// `l` is placed after the last gate on `q` scheduled at a layer ≤ `l`
/// (before the first gate if none) — Pauli errors commute freely across
/// idle wire segments, so this placement is trajectory-exact.
fn qubit_per_step_locations(circuit: &Circuit) -> Vec<(usize, Qubit)> {
    let num_qubits = circuit.num_qubits();
    // Re-run the ASAP recurrence to learn each gate's layer.
    let mut busy = vec![0usize; num_qubits];
    let mut floor = 0usize;
    let mut depth = 0usize;
    // events[q] = [(layer, flat index after the gate)], ascending in layer.
    let mut events: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_qubits];
    for (i, gate) in circuit.gates().iter().enumerate() {
        if gate.is_barrier() {
            floor = depth;
            continue;
        }
        let qs = gate.qubits();
        let layer = qs
            .iter()
            .map(|q| busy[q.index()])
            .max()
            .unwrap_or(floor)
            .max(floor);
        for q in &qs {
            busy[q.index()] = layer + 1;
            events[q.index()].push((layer, i + 1));
        }
        depth = depth.max(layer + 1);
    }

    let mut locations = Vec::with_capacity(num_qubits * depth);
    for (q, evs) in events.iter().enumerate() {
        let mut cursor = 0usize; // next event to pass
        let mut placement = 0usize; // before the first gate
        for layer in 0..depth {
            while cursor < evs.len() && evs[cursor].0 <= layer {
                placement = evs[cursor].1;
                cursor += 1;
            }
            locations.push((placement, Qubit(q as u32)));
        }
    }
    locations
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::Gate;

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c
    }

    #[test]
    fn per_gate_trial_count_is_total_support() {
        let c = chain_circuit();
        let s = FaultSampler::new(&c, NoiseModel::per_gate(PauliChannel::phase_flip(0.1)), 0);
        assert_eq!(s.num_trials(), 4); // two 2-qubit gates
    }

    #[test]
    fn qubit_per_step_trial_count_is_qubits_times_depth() {
        let c = chain_circuit(); // depth 2, 3 qubits
        let s = FaultSampler::new(
            &c,
            NoiseModel::qubit_per_step(PauliChannel::phase_flip(0.1)),
            0,
        );
        assert_eq!(s.num_trials(), 6);
    }

    #[test]
    fn per_qubit_once_places_faults_at_start() {
        let c = chain_circuit();
        let s = FaultSampler::new(
            &c,
            NoiseModel::per_qubit_once(PauliChannel::bit_flip(1.0)),
            0,
        );
        let plan = s.sample_shot(0);
        assert_eq!(plan.len(), 3);
        assert!(plan.faults().iter().all(|f| f.gate_index == 0));
    }

    #[test]
    fn noiseless_model_samples_empty_plans() {
        let c = chain_circuit();
        let s = FaultSampler::new(&c, NoiseModel::noiseless(), 0);
        for shot in 0..10 {
            assert!(s.sample_shot(shot).is_empty());
        }
    }

    #[test]
    fn geometric_skipping_matches_expected_rate() {
        let mut c = Circuit::new(8);
        for _ in 0..50 {
            for q in 0..8 {
                c.push(Gate::x(Qubit(q)));
            }
        }
        let p = 0.01;
        let s = FaultSampler::new(&c, NoiseModel::per_gate(PauliChannel::depolarizing(p)), 11);
        let trials = s.num_trials() as f64;
        let shots = 500u64;
        let total: usize = (0..shots).map(|shot| s.sample_shot(shot).len()).sum();
        let mean = total as f64 / shots as f64;
        let expected = trials * p;
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn certain_error_rate_hits_every_trial() {
        let c = chain_circuit();
        let s = FaultSampler::new(&c, NoiseModel::per_gate(PauliChannel::bit_flip(1.0)), 5);
        assert_eq!(s.sample_shot(0).len(), 4);
    }

    #[test]
    fn shots_are_pure_and_decorrelated() {
        let c = chain_circuit();
        let s = FaultSampler::new(&c, NoiseModel::per_gate(PauliChannel::depolarizing(0.4)), 7);
        // Pure: re-sampling the same shot gives the same plan.
        for shot in 0..20 {
            assert_eq!(s.sample_shot(shot), s.sample_shot(shot));
        }
        // Decorrelated: across many shots the plans are not all equal.
        let first = s.sample_shot(0);
        assert!((1..100).any(|shot| s.sample_shot(shot) != first));
        // Different master seeds give different shot streams.
        let other = FaultSampler::new(&c, NoiseModel::per_gate(PauliChannel::depolarizing(0.4)), 8);
        assert!((0..100).any(|shot| s.sample_shot(shot) != other.sample_shot(shot)));
    }

    #[test]
    fn qubit_per_step_placement_respects_gate_order() {
        // Qubit 1 is touched by gate 0 (layer 0) and gate 1 (layer 1).
        // An error at layer 0 must land at gate_index 1 (between the CXs).
        let c = chain_circuit();
        let locations = qubit_per_step_locations(&c);
        // locations are grouped by qubit, then layer.
        let q1: Vec<_> = locations.iter().filter(|(_, q)| q.index() == 1).collect();
        assert_eq!(q1.len(), 2);
        assert_eq!(q1[0].0, 1); // after gate 0
        assert_eq!(q1[1].0, 2); // after gate 1

        // Qubit 0 is only touched at layer 0.
        let q0: Vec<_> = locations.iter().filter(|(_, q)| q.index() == 0).collect();
        assert_eq!(q0[0].0, 1);
        assert_eq!(q0[1].0, 1); // idles at layer 1; error stays after gate 0
    }

    #[test]
    fn device_sampler_uses_arity_dependent_channels() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let device = crate::ibm_perth();
        let s = FaultSampler::for_device(&c, &device, ErrorReductionFactor(1.0), 1);
        assert_eq!(s.num_trials(), 3);
        let _ = s.sample_shot(0); // must not panic
    }
}
