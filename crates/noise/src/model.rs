//! Noise-model composition: channel + placement + strength scaling.

use crate::PauliChannel;

/// The paper's assumed current-hardware error rate, `ε₀ = 10⁻³`
/// (Appendix A).
pub const BASE_ERROR_RATE: f64 = 1e-3;

/// Where in the circuit a noise model strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePlacement {
    /// Every qubit suffers the channel at every schedule layer — the
    /// qubit-based model of the Sec. 5.1 analysis. Idle qubits decay too.
    QubitPerStep,
    /// The channel strikes every qubit in the support of each executed
    /// gate — the gate-based Monte-Carlo model of Sec. 6.3.
    PerGate,
    /// The channel strikes every qubit exactly once, before the circuit —
    /// the single-shot qubit model used for the closed-form bound of
    /// Eq. (3) (each qubit is subjected to the channel once).
    PerQubitOnce,
}

/// A complete noise model: a Pauli channel and a placement rule.
///
/// ```
/// use qram_noise::{NoiseModel, PauliChannel};
/// let model = NoiseModel::per_gate(PauliChannel::depolarizing(1e-3));
/// assert_eq!(model.channel.total(), 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// The single-qubit error channel.
    pub channel: PauliChannel,
    /// Where the channel strikes.
    pub placement: NoisePlacement,
}

impl NoiseModel {
    /// A noise-free model (useful as a control).
    pub fn noiseless() -> Self {
        NoiseModel {
            channel: PauliChannel::NOISELESS,
            placement: NoisePlacement::PerGate,
        }
    }

    /// Qubit-per-step placement with the given channel.
    pub fn qubit_per_step(channel: PauliChannel) -> Self {
        NoiseModel {
            channel,
            placement: NoisePlacement::QubitPerStep,
        }
    }

    /// Per-gate placement with the given channel.
    pub fn per_gate(channel: PauliChannel) -> Self {
        NoiseModel {
            channel,
            placement: NoisePlacement::PerGate,
        }
    }

    /// Single application per qubit with the given channel.
    pub fn per_qubit_once(channel: PauliChannel) -> Self {
        NoiseModel {
            channel,
            placement: NoisePlacement::PerQubitOnce,
        }
    }

    /// The same model with its channel scaled by `1/εr`.
    pub fn reduced_by(&self, er: ErrorReductionFactor) -> Self {
        NoiseModel {
            channel: self.channel.scaled(1.0 / er.0),
            placement: self.placement,
        }
    }
}

/// Appendix A's error reduction factor
/// `εr = current error rate / future error rate`.
///
/// `εr = 1` is today's hardware (`ε = 10⁻³`); `εr = 100` is hardware two
/// orders of magnitude better (`ε = 10⁻⁵`). Values below 1 model *worse*
/// hardware, which the paper's Fig. 10/12 sweeps include (εr = 0.1).
///
/// ```
/// use qram_noise::ErrorReductionFactor;
/// let er = ErrorReductionFactor(100.0);
/// assert!((er.error_rate() - 1e-5).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ErrorReductionFactor(pub f64);

impl ErrorReductionFactor {
    /// The effective error rate `ε₀/εr`.
    pub fn error_rate(&self) -> f64 {
        BASE_ERROR_RATE / self.0
    }

    /// A log-spaced sweep from `10^lo` to `10^hi` with `per_decade` points
    /// per decade — the x-axis of Figs. 10 and 12.
    pub fn sweep(lo: i32, hi: i32, per_decade: usize) -> Vec<ErrorReductionFactor> {
        assert!(hi >= lo && per_decade >= 1);
        let steps = ((hi - lo) as usize) * per_decade;
        (0..=steps)
            .map(|i| {
                let exp = lo as f64 + i as f64 / per_decade as f64;
                ErrorReductionFactor(10f64.powf(exp))
            })
            .collect()
    }
}

impl std::fmt::Display for ErrorReductionFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "εr={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factor_scales_base_rate() {
        assert!((ErrorReductionFactor(1.0).error_rate() - 1e-3).abs() < 1e-15);
        assert!((ErrorReductionFactor(1000.0).error_rate() - 1e-6).abs() < 1e-18);
        assert!((ErrorReductionFactor(0.1).error_rate() - 1e-2).abs() < 1e-15);
    }

    #[test]
    fn reduced_model_scales_channel() {
        let model = NoiseModel::per_gate(PauliChannel::phase_flip(1e-3));
        let reduced = model.reduced_by(ErrorReductionFactor(10.0));
        assert!((reduced.channel.pz - 1e-4).abs() < 1e-15);
        assert_eq!(reduced.placement, NoisePlacement::PerGate);
    }

    #[test]
    fn sweep_is_log_spaced_and_inclusive() {
        let sweep = ErrorReductionFactor::sweep(-1, 3, 1);
        assert_eq!(sweep.len(), 5);
        assert!((sweep[0].0 - 0.1).abs() < 1e-12);
        assert!((sweep[4].0 - 1000.0).abs() < 1e-9);

        let fine = ErrorReductionFactor::sweep(0, 1, 4);
        assert_eq!(fine.len(), 5);
        assert!((fine[1].0 - 10f64.powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn noiseless_model_has_zero_rate() {
        assert!(NoiseModel::noiseless().channel.is_noiseless());
    }
}
