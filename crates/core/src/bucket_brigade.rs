//! Bucket-brigade QRAM with dual-rail bus routing — baseline **BB**, and
//! with an SQC prefix the paper's load-multiple-times **Baseline B**
//! (Secs. 2.3.2 and 6.1).
//!
//! Address loading routes the address qubits into the tree with CSWAPs
//! (W-state-like router occupation, the property that gives bucket
//! brigade its noise resilience). Data retrieval physically routes a
//! **dual-rail bus** down to the leaves and back: the bus travels as a
//! two-qubit codeword (`|10⟩ = 0`, `|01⟩ = 1`, `|00⟩` = no bus), so the
//! classically-controlled `ClSwap` write at the leaves acts only where
//! the bus is actually present — vacuum is invariant (Fig. 5d). Errors on
//! any tree component therefore stay confined to the subtree below it
//! for X as well as Z faults, which is why Fig. 9 shows BB as the only
//! architecture with polynomial fidelity decay under *both* channels.
//!
//! The cost: with SQC width `k`, the `m` address qubits are loaded and
//! unloaded once per page — `2^k` times per query — which is exactly the
//! exponential T-count/T-depth overhead the virtual QRAM's load-once
//! property removes (Table 2).

use qram_circuit::{Circuit, Gate, QubitAllocator, Register};

use crate::architecture::interface_registers;
use crate::tree::{PageSelector, RouterTree};
use crate::{Memory, QueryArchitecture, QueryCircuit};

/// Bucket-brigade QRAM over `m` tree bits with an SQC prefix of `k` bits
/// (`k = 0` = the plain BB baseline).
///
/// ```
/// use qram_core::{BucketBrigadeQram, Memory, QueryArchitecture};
/// let memory = Memory::from_bits([true, false, true, true]);
/// let query = BucketBrigadeQram::new(0, 2).build(&memory);
/// query.verify(&memory).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketBrigadeQram {
    k: usize,
    m: usize,
}

impl BucketBrigadeQram {
    /// A bucket-brigade QRAM with SQC width `k` and tree width `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1, "tree width m must be at least 1");
        BucketBrigadeQram { k, m }
    }

    /// SQC width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Tree width `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Routes the dual-rail bus one full descent (root → leaves).
    fn descend(&self, circuit: &mut Circuit, rail0: &RouterTree, rail1: &RouterTree) {
        for v in 0..self.m {
            rail0.route_hop(circuit, v);
            rail1.route_hop(circuit, v);
        }
    }

    /// Exact inverse of [`BucketBrigadeQram::descend`].
    fn ascend(&self, circuit: &mut Circuit, rail0: &RouterTree, rail1: &RouterTree) {
        for v in (0..self.m).rev() {
            rail1.route_hop_inverse(circuit, v);
            rail0.route_hop_inverse(circuit, v);
        }
    }

    /// The classically-controlled dual-rail write layer for one page.
    fn write_layer(
        &self,
        circuit: &mut Circuit,
        rail0: &RouterTree,
        rail1: &RouterTree,
        page: &[bool],
    ) {
        for (l, &bit) in page.iter().enumerate() {
            if bit {
                circuit.push(Gate::ClSwap(rail0.flag(l), rail1.flag(l)));
            }
        }
    }
}

impl QueryArchitecture for BucketBrigadeQram {
    fn name(&self) -> String {
        if self.k == 0 {
            format!("bucket-brigade(m={})", self.m)
        } else {
            format!("sqc+bb(k={},m={})", self.k, self.m)
        }
    }

    fn address_width(&self) -> usize {
        self.k + self.m
    }

    fn build(&self, memory: &Memory) -> QueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.address_width(),
            "memory address width mismatch"
        );
        let (k, m) = (self.k, self.m);
        let mut alloc = QubitAllocator::new();
        let (address, bus) = interface_registers(&mut alloc, k + m);
        let addr_k = Register::new("addr_k", 0, k as u32);
        let addr_m = Register::new("addr_m", k as u32, m as u32);

        // rail0 owns the canonical tree (routers + wire0 + leaf0); rail1
        // adds the second rail of the dual-rail encoding.
        let rail0 = RouterTree::allocate(&mut alloc, m);
        let wire1 = alloc.register("wires_rail1", (1 << m) - 1);
        let leaf1 = alloc.register("leaves_rail1", 1 << m);
        let rail1 = {
            let view = rail0.with_wires(wire1);
            view.with_flags(leaf1)
        };

        let mut circuit = Circuit::new(alloc.num_qubits());
        let pages = memory.num_pages(m);
        let mut selector = PageSelector::new(&addr_k, rail1.root_in());

        // Load-multiple-times: the full loading/retrieval/unloading cycle
        // repeats per page (Baseline B's deficiency, Sec. 7.1).
        for p in 0..pages {
            rail0.load_address(&mut circuit, &addr_m, true);
            // Inject the dual-rail bus |10⟩ ("value 0") at the root.
            circuit.push(Gate::x(rail0.root_in()));
            self.descend(&mut circuit, &rail0, &rail1);
            self.write_layer(&mut circuit, &rail0, &rail1, memory.page(m, p));
            self.ascend(&mut circuit, &rail0, &rail1);
            // The bus codeword is back at the root; its 1-rail holds xᵢ.
            selector.emit(&mut circuit, p as u64, bus.get(0));
            // Return the bus to the leaves, unwrite, bring it home, eject.
            self.descend(&mut circuit, &rail0, &rail1);
            self.write_layer(&mut circuit, &rail0, &rail1, memory.page(m, p));
            self.ascend(&mut circuit, &rail0, &rail1);
            circuit.push(Gate::x(rail0.root_in()));
            rail0.unload_address(&mut circuit, &addr_m, true);
        }

        QueryCircuit::new(circuit, address, bus, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_memory(n: usize, seed: u64) -> Memory {
        Memory::random(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn plain_bb_verifies() {
        for m in 1..=4 {
            let memory = random_memory(m, m as u64 + 60);
            BucketBrigadeQram::new(0, m)
                .build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("m={m}: {e}"));
        }
    }

    #[test]
    fn sqc_bb_hybrid_verifies() {
        for (k, m) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            let memory = random_memory(k + m, (k * 7 + m) as u64);
            BucketBrigadeQram::new(k, m)
                .build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("k={k} m={m}: {e}"));
        }
    }

    #[test]
    fn classical_queries_match_memory() {
        let memory = random_memory(3, 8);
        let query = BucketBrigadeQram::new(1, 2).build(&memory);
        for address in 0..8 {
            assert_eq!(
                query.query_classical(address).unwrap(),
                memory.get(address as usize)
            );
        }
    }

    #[test]
    fn loading_repeats_per_page() {
        // Load-multiple-times: CSWAP count scales with 2^k.
        let m = 2;
        let q1 = BucketBrigadeQram::new(1, m).build(&Memory::ones(m + 1));
        let q3 = BucketBrigadeQram::new(3, m).build(&Memory::ones(m + 3));
        let c1 = q1.circuit().gate_census()["cswap"];
        let c3 = q3.circuit().gate_census()["cswap"];
        assert_eq!(c3, 4 * c1, "2^3 pages vs 2^1 pages");
    }

    #[test]
    fn name_distinguishes_plain_and_hybrid() {
        assert_eq!(BucketBrigadeQram::new(0, 3).name(), "bucket-brigade(m=3)");
        assert_eq!(BucketBrigadeQram::new(2, 3).name(), "sqc+bb(k=2,m=3)");
    }
}
