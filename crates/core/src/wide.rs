//! Wide-word virtual QRAM (the Sec. 8 generalization, taken seriously).
//!
//! [`query_word`](crate::query_word) realizes the paper's literal Sec. 8
//! suggestion — run the 1-bit query once per bit-plane — which re-loads
//! the address `w` times. But the virtual QRAM's **load-once** property
//! composes across planes just as it does across pages: load the `m`
//! address bits once, prepare the flag once, then run the
//! (write → compress → copy → uncompress) retrieval block once per
//! *(page, bit-plane)* pair, steering each plane's copy onto its own bus
//! qubit. One address loading amortizes over `w · 2^k` retrievals —
//! exactly the parallel-retrieval composition the paper credits to
//! Chen et al. [10] and declares compatible with virtual QRAM.

use qram_circuit::{Circuit, Gate, Qubit, QubitAllocator, Register};
use qram_sim::{run, PathState};

use crate::tree::{PageSelector, RouterTree};
use crate::{QueryError, WideMemory};

/// A virtual QRAM querying `w`-bit words: `Σᵢ αᵢ|i⟩|0⟩^w → Σᵢ αᵢ|i⟩|xᵢ⟩`,
/// with `xᵢ` delivered on `w` bus qubits.
///
/// ```
/// use qram_core::{WideMemory, WideVirtualQram};
/// let memory = WideMemory::from_words(3, &[5, 2, 7, 0, 1, 6, 3, 4]);
/// let qram = WideVirtualQram::new(1, 2, 3);
/// let query = qram.build(&memory);
/// assert_eq!(query.query_classical_word(2).unwrap(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideVirtualQram {
    k: usize,
    m: usize,
    data_width: usize,
}

impl WideVirtualQram {
    /// A wide virtual QRAM with SQC width `k`, QRAM width `m` and word
    /// width `data_width`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `data_width == 0`.
    pub fn new(k: usize, m: usize, data_width: usize) -> Self {
        assert!(m >= 1, "QRAM width m must be at least 1");
        assert!(data_width >= 1, "data width must be at least 1");
        WideVirtualQram { k, m, data_width }
    }

    /// Word width `w`.
    pub fn data_width(&self) -> usize {
        self.data_width
    }

    /// Total address width `n = k + m`.
    pub fn address_width(&self) -> usize {
        self.k + self.m
    }

    /// Compiles the wide query circuit for `memory`.
    ///
    /// # Panics
    ///
    /// Panics if the memory shape disagrees with `(k, m, data_width)`.
    pub fn build(&self, memory: &WideMemory) -> WideQueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.k + self.m,
            "address width mismatch"
        );
        assert_eq!(memory.data_width(), self.data_width, "data width mismatch");
        let (k, m, w) = (self.k, self.m, self.data_width);

        let mut alloc = QubitAllocator::new();
        let address = alloc.register("address", k + m);
        let buses = alloc.register("buses", w);
        let addr_k = Register::new("addr_k", 0, k as u32);
        let addr_m = Register::new("addr_m", k as u32, m as u32);
        let tree = RouterTree::allocate(&mut alloc, m);

        let mut circuit = Circuit::new(alloc.num_qubits());
        let pages = 1usize << k;
        let mut selector = PageSelector::new(&addr_k, tree.wire(1));

        // Load once — for all pages AND all bit-planes.
        tree.load_address(&mut circuit, &addr_m, true);
        tree.prepare_flags(&mut circuit);

        // Per (page, plane): fused write → compress → copy → uncompute.
        for p in 0..pages {
            for bit in 0..w {
                let page = memory.plane(bit).page(m, p);
                self.write(&mut circuit, &tree, page, false);
                self.compress(&mut circuit, &tree, false);
                selector.emit(&mut circuit, p as u64, buses.get(bit));
                self.compress(&mut circuit, &tree, true);
                self.write(&mut circuit, &tree, page, true);
            }
        }

        tree.unprepare_flags(&mut circuit);
        tree.unload_address(&mut circuit, &addr_m, true);

        WideQueryCircuit {
            circuit,
            address,
            buses,
            allocator: alloc,
        }
    }

    /// Fused write layer (flags straight onto parent rails).
    fn write(&self, circuit: &mut Circuit, tree: &RouterTree, page: &[bool], invert: bool) {
        let emit = |circuit: &mut Circuit, l: usize| {
            circuit.push(Gate::clcx(tree.flag(l), tree.wire(tree.leaf_parent(l))));
        };
        if invert {
            for l in (0..page.len()).rev() {
                if page[l] {
                    emit(circuit, l);
                }
            }
        } else {
            for (l, &bit) in page.iter().enumerate() {
                if bit {
                    emit(circuit, l);
                }
            }
        }
    }

    /// Internal CX compression over the recycled wires.
    fn compress(&self, circuit: &mut Circuit, tree: &RouterTree, invert: bool) {
        let m = self.m;
        let levels: Vec<usize> = if invert {
            (0..m.saturating_sub(1)).collect()
        } else {
            (0..m.saturating_sub(1)).rev().collect()
        };
        for v in levels {
            let nodes: Vec<usize> = if invert {
                ((1 << v)..(1 << (v + 1))).rev().collect()
            } else {
                ((1 << v)..(1 << (v + 1))).collect()
            };
            for wnode in nodes {
                if invert {
                    circuit.push(Gate::cx(tree.wire(2 * wnode + 1), tree.wire(wnode)));
                    circuit.push(Gate::cx(tree.wire(2 * wnode), tree.wire(wnode)));
                } else {
                    circuit.push(Gate::cx(tree.wire(2 * wnode), tree.wire(wnode)));
                    circuit.push(Gate::cx(tree.wire(2 * wnode + 1), tree.wire(wnode)));
                }
            }
        }
    }
}

/// A compiled wide query: the circuit plus its registers.
#[derive(Debug, Clone)]
pub struct WideQueryCircuit {
    circuit: Circuit,
    address: Register,
    buses: Register,
    allocator: QubitAllocator,
}

impl WideQueryCircuit {
    /// The gate sequence.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The address register (MSB first).
    pub fn address(&self) -> &Register {
        &self.address
    }

    /// The `w` bus qubits, least-significant bit first.
    pub fn buses(&self) -> &Register {
        &self.buses
    }

    /// Total qubits.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// All structural registers.
    pub fn registers(&self) -> &[Register] {
        self.allocator.registers()
    }

    /// Runs the query on a classical address and reassembles the word.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::GarbageLeft`] if ancillas fail to return to
    /// `|0⟩`, or propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn query_classical_word(&self, address: u64) -> Result<u64, QueryError> {
        let n = self.address.len();
        assert!(address < (1u64 << n), "address {address} out of range");
        let mut state = PathState::computational_basis(self.num_qubits());
        let addr_idx: Vec<Qubit> = self.address.iter().collect();
        for (i, q) in addr_idx.iter().enumerate() {
            if (address >> (n - 1 - i)) & 1 == 1 {
                state.apply_x(*q);
            }
        }
        run(self.circuit.gates(), &mut state)?;

        let mut word = 0u64;
        for bit in 0..self.buses.len() {
            match state.classical_value(&[self.buses.get(bit)]) {
                Some(v) => word |= v << bit,
                None => return Err(QueryError::GarbageLeft),
            }
        }
        let work: Vec<Qubit> = (0..self.num_qubits() as u32)
            .map(Qubit)
            .filter(|q| !self.address.contains(*q) && !self.buses.contains(*q))
            .collect();
        if state.is_zero_on(&work) {
            Ok(word)
        } else {
            Err(QueryError::GarbageLeft)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{query_word, QueryArchitecture, VirtualQram};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_wide(n: usize, w: usize, seed: u64) -> WideMemory {
        let mut rng = StdRng::seed_from_u64(seed);
        let words: Vec<u64> = (0..1usize << n)
            .map(|_| rng.random_range(0..(1u64 << w)))
            .collect();
        WideMemory::from_words(w, &words)
    }

    #[test]
    fn wide_queries_read_whole_words() {
        let memory = random_wide(4, 3, 2);
        let qram = WideVirtualQram::new(2, 2, 3);
        let query = qram.build(&memory);
        for address in 0..16u64 {
            assert_eq!(
                query.query_classical_word(address).unwrap(),
                memory.word(address as usize),
                "address {address}"
            );
        }
    }

    #[test]
    fn wide_superposition_entangles_words() {
        // Run on the uniform superposition and check every branch by
        // projecting on classical address values via per-branch runs, plus
        // global norm/path invariants.
        let memory = random_wide(2, 2, 5);
        let query = WideVirtualQram::new(1, 1, 2).build(&memory);
        let addr: Vec<Qubit> = query.address().iter().collect();
        let mut state = PathState::uniform_over(query.num_qubits(), &addr);
        run(query.circuit().gates(), &mut state).unwrap();
        assert_eq!(state.num_paths(), 4);
        assert!((state.norm_sqr() - 1.0).abs() < 1e-12);
        // Each path must carry its word on the buses.
        let addr_idx: Vec<usize> = addr.iter().map(|q| q.index()).collect();
        for (bits, _) in state.iter() {
            let a = bits.read_msb_first(&addr_idx) as usize;
            let mut word = 0u64;
            for b in 0..2 {
                word |= (bits.get(query.buses().get(b).index()) as u64) << b;
            }
            assert_eq!(word, memory.word(a), "address {a}");
        }
    }

    #[test]
    fn load_once_amortizes_across_planes() {
        // The wide circuit must not pay per-plane loading: its CSWAP count
        // equals the 1-bit circuit's, while query_word pays w× that.
        let (k, m, w) = (1usize, 3usize, 4usize);
        let memory = random_wide(k + m, w, 7);
        let wide = WideVirtualQram::new(k, m, w).build(&memory);
        let narrow = VirtualQram::new(k, m).build(memory.plane(0));
        let wide_cswaps = wide.circuit().gate_census()["cswap"];
        let narrow_cswaps = narrow.circuit().gate_census()["cswap"];
        assert_eq!(
            wide_cswaps, narrow_cswaps,
            "loading must be shared across planes"
        );
    }

    #[test]
    fn wide_matches_plane_by_plane_reference() {
        let memory = random_wide(3, 3, 9);
        let qram = WideVirtualQram::new(1, 2, 3);
        let query = qram.build(&memory);
        let reference_arch = VirtualQram::new(1, 2);
        for address in 0..8u64 {
            assert_eq!(
                query.query_classical_word(address).unwrap(),
                query_word(&reference_arch, &memory, address).unwrap()
            );
        }
    }

    #[test]
    #[should_panic(expected = "data width mismatch")]
    fn wrong_data_width_rejected() {
        let memory = random_wide(2, 2, 1);
        let _ = WideVirtualQram::new(1, 1, 3).build(&memory);
    }
}
