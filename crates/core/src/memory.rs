//! Classical memory contents and the page/segment view of virtual QRAM.

use rand::Rng;

/// A classical memory of `N = 2^n` one-bit cells — the data a quantum
/// query entangles with the address register (Eq. 2 of the paper).
///
/// Virtual QRAM (Sec. 3.1.3) views the same memory as `K = 2^k` contiguous
/// *pages* of `M = 2^m` cells (`k + m = n`); [`Memory::page`] and
/// [`Memory::page_delta`] expose that view, the latter implementing the
/// XOR-delta trick behind lazy data swapping (Sec. 3.2.2).
///
/// ```
/// use qram_core::Memory;
/// let mem = Memory::from_bits([true, false, false, true]);
/// assert_eq!(mem.address_width(), 2);
/// assert!(mem.get(0) && mem.get(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bits: Vec<bool>,
    address_width: usize,
}

impl Memory {
    /// An all-zero memory of `2^address_width` cells.
    ///
    /// # Panics
    ///
    /// Panics if `address_width` exceeds 24 (16 Mi cells — far past any
    /// simulable size).
    pub fn zeroed(address_width: usize) -> Self {
        assert!(
            address_width <= 24,
            "address width {address_width} unreasonably large"
        );
        Memory {
            bits: vec![false; 1 << address_width],
            address_width,
        }
    }

    /// A memory with every cell set to 1 — the worst case for data-write
    /// gate counts, used to pin resource formulas in tests.
    pub fn ones(address_width: usize) -> Self {
        let mut mem = Self::zeroed(address_width);
        mem.bits.fill(true);
        mem
    }

    /// Builds a memory from explicit cell contents.
    ///
    /// # Panics
    ///
    /// Panics if the number of bits is not a power of two.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        assert!(
            bits.len().is_power_of_two(),
            "memory size {} is not a power of two",
            bits.len()
        );
        let address_width = bits.len().trailing_zeros() as usize;
        Memory {
            bits,
            address_width,
        }
    }

    /// A memory with independent uniform random cells.
    pub fn random<R: Rng + ?Sized>(address_width: usize, rng: &mut R) -> Self {
        let mut mem = Self::zeroed(address_width);
        for bit in &mut mem.bits {
            *bit = rng.random::<bool>();
        }
        mem
    }

    /// Number of address bits `n`.
    pub fn address_width(&self) -> usize {
        self.address_width
    }

    /// Number of cells `N = 2^n`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the memory has zero cells (never true: minimum is 1 cell).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The cell at `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn get(&self, address: usize) -> bool {
        self.bits[address]
    }

    /// Writes the cell at `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn set(&mut self, address: usize, value: bool) {
        self.bits[address] = value;
    }

    /// All cells, address order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of 1-cells.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Page `p` of the `(k, m)` split: cells
    /// `p·2^m ..= p·2^m + 2^m − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m > n` or `p ≥ 2^(n−m)`.
    pub fn page(&self, m: usize, p: usize) -> &[bool] {
        assert!(
            m <= self.address_width,
            "page width {m} exceeds address width"
        );
        let pages = 1 << (self.address_width - m);
        assert!(p < pages, "page {p} out of range ({pages} pages)");
        let size = 1 << m;
        &self.bits[p * size..(p + 1) * size]
    }

    /// Number of pages under a `2^m`-cell page size.
    pub fn num_pages(&self, m: usize) -> usize {
        assert!(
            m <= self.address_width,
            "page width {m} exceeds address width"
        );
        1 << (self.address_width - m)
    }

    /// The lazy-swapping delta of Sec. 3.2.2: cell-wise XOR of pages `p`
    /// and `p + 1` (`x′ᵢ = xᵢ ⊕ xᵢ₊₂ᵐ`). Loading only the 1-positions of
    /// the delta replaces a full unload + reload.
    ///
    /// # Panics
    ///
    /// Panics if `p + 1` is not a valid page.
    pub fn page_delta(&self, m: usize, p: usize) -> Vec<bool> {
        let a = self.page(m, p);
        let b = self.page(m, p + 1);
        a.iter().zip(b).map(|(&x, &y)| x != y).collect()
    }
}

impl std::fmt::Display for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory[{} cells:", self.len())?;
        for chunk in self.bits.chunks(8).take(8) {
            write!(f, " ")?;
            for &b in chunk {
                write!(f, "{}", b as u8)?;
            }
        }
        if self.len() > 64 {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

/// A memory of multi-bit words, realized as one [`Memory`] bit-plane per
/// data bit — the Sec. 8 generalized-data-width extension: a `w`-bit query
/// runs the 1-bit query once per plane.
///
/// ```
/// use qram_core::WideMemory;
/// let mem = WideMemory::from_words(2, &[3, 1, 0, 2]);
/// assert_eq!(mem.word(0), 3);
/// assert_eq!(mem.plane(0).get(1), true); // low bit of word 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideMemory {
    planes: Vec<Memory>,
    data_width: usize,
}

impl WideMemory {
    /// Builds a wide memory from `2^n` words of `data_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the word count is not a power of two, `data_width` is 0,
    /// or any word overflows `data_width` bits.
    pub fn from_words(data_width: usize, words: &[u64]) -> Self {
        assert!((1..=64).contains(&data_width), "data width must be 1..=64");
        assert!(
            words.len().is_power_of_two(),
            "word count must be a power of two"
        );
        for &w in words {
            assert!(
                data_width == 64 || w >> data_width == 0,
                "word {w:#x} overflows {data_width} bits"
            );
        }
        let planes = (0..data_width)
            .map(|bit| Memory::from_bits(words.iter().map(|&w| (w >> bit) & 1 == 1)))
            .collect();
        WideMemory { planes, data_width }
    }

    /// Bits per word.
    pub fn data_width(&self) -> usize {
        self.data_width
    }

    /// Number of address bits.
    pub fn address_width(&self) -> usize {
        self.planes[0].address_width()
    }

    /// The `bit`-th bit-plane as a 1-bit memory.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= data_width`.
    pub fn plane(&self, bit: usize) -> &Memory {
        &self.planes[bit]
    }

    /// Reassembles the word at `address`.
    pub fn word(&self, address: usize) -> u64 {
        self.planes
            .iter()
            .enumerate()
            .map(|(bit, plane)| (plane.get(address) as u64) << bit)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zeroed_and_ones() {
        let z = Memory::zeroed(3);
        assert_eq!(z.len(), 8);
        assert_eq!(z.count_ones(), 0);
        let o = Memory::ones(3);
        assert_eq!(o.count_ones(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Memory::from_bits([true, false, true]);
    }

    #[test]
    fn pages_partition_the_memory() {
        let mem = Memory::from_bits((0..16).map(|i| i % 3 == 0));
        assert_eq!(mem.num_pages(2), 4);
        let mut rebuilt = Vec::new();
        for p in 0..4 {
            rebuilt.extend_from_slice(mem.page(2, p));
        }
        assert_eq!(rebuilt, mem.bits());
    }

    #[test]
    fn page_delta_is_xor() {
        let mem = Memory::from_bits([true, false, true, true]);
        // pages of size 2: [1,0] and [1,1]; delta = [0,1].
        assert_eq!(mem.page_delta(1, 0), vec![false, true]);
    }

    #[test]
    fn delta_chain_reconstructs_last_page() {
        // page(0) XOR delta(0) XOR delta(1) … = last page, the invariant
        // lazy swapping relies on for its final unload.
        let mut rng = StdRng::seed_from_u64(9);
        let mem = Memory::random(5, &mut rng);
        let m = 3;
        let mut acc: Vec<bool> = mem.page(m, 0).to_vec();
        for p in 0..mem.num_pages(m) - 1 {
            for (a, d) in acc.iter_mut().zip(mem.page_delta(m, p)) {
                *a = *a != d;
            }
        }
        assert_eq!(acc, mem.page(m, mem.num_pages(m) - 1));
    }

    #[test]
    fn random_memory_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let mem = Memory::random(10, &mut rng);
        let ones = mem.count_ones();
        assert!(ones > 400 && ones < 624, "ones = {ones}");
    }

    #[test]
    fn wide_memory_round_trips_words() {
        let words = [5u64, 0, 7, 2, 1, 6, 3, 4];
        let mem = WideMemory::from_words(3, &words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(mem.word(i), w);
        }
        assert_eq!(mem.address_width(), 3);
        assert_eq!(mem.data_width(), 3);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn wide_memory_rejects_overflow() {
        let _ = WideMemory::from_words(2, &[4, 0]);
    }

    #[test]
    fn display_shows_prefix() {
        let mem = Memory::from_bits([true, false]);
        assert!(mem.to_string().contains("10"));
    }
}
