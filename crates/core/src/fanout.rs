//! Fanout QRAM — the first `O(log N)`-latency router architecture
//! (Sec. 2.3.2), kept as a baseline because its GHZ-like address loading
//! is the negative example motivating bucket brigade.

use qram_circuit::{Circuit, Gate, QubitAllocator, Register};

use crate::architecture::interface_registers;
use crate::tree::{PageSelector, RouterTree};
use crate::{Memory, QueryArchitecture, QueryCircuit};

/// Fanout QRAM over `m` address bits: address loading broadcasts the
/// `u`-th address bit to **all** `2^u` routers of level `u` with CX gates,
/// preparing a GHZ-like state across each level; retrieval then proceeds
/// exactly as in the other router architectures (flag ball + CX
/// compression).
///
/// The broadcast is the architecture's flaw: every router of a level
/// carries the same address bit, so a single Z error *anywhere* in a
/// level dephases the whole superposition — there is no noise locality to
/// exploit (Sec. 2.3.2's "decoherence problems due to the high
/// entanglement of GHZ states").
///
/// ```
/// use qram_core::{FanoutQram, Memory, QueryArchitecture};
/// let memory = Memory::from_bits([true, false, true, true]);
/// let query = FanoutQram::new(2).build(&memory);
/// query.verify(&memory).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutQram {
    m: usize,
}

impl FanoutQram {
    /// A fanout QRAM over `m` address bits.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "address width must be at least 1");
        FanoutQram { m }
    }

    fn broadcast(&self, circuit: &mut Circuit, tree: &RouterTree, addr: &Register) {
        for u in 0..self.m {
            for w in (1 << u)..(1 << (u + 1)) {
                circuit.push(Gate::cx(addr.get(u), tree.router(w)));
            }
        }
    }

    fn unbroadcast(&self, circuit: &mut Circuit, tree: &RouterTree, addr: &Register) {
        for u in (0..self.m).rev() {
            for w in ((1 << u)..(1 << (u + 1))).rev() {
                circuit.push(Gate::cx(addr.get(u), tree.router(w)));
            }
        }
    }
}

impl QueryArchitecture for FanoutQram {
    fn name(&self) -> String {
        format!("fanout(m={})", self.m)
    }

    fn address_width(&self) -> usize {
        self.m
    }

    fn build(&self, memory: &Memory) -> QueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.m,
            "memory address width mismatch"
        );
        let m = self.m;
        let mut alloc = QubitAllocator::new();
        let (address, bus) = interface_registers(&mut alloc, m);
        let tree = RouterTree::allocate(&mut alloc, m);
        let leaf_rails = alloc.register("leaf_rails", 1 << m);
        let mut circuit = Circuit::new(alloc.num_qubits());

        // GHZ-style address loading.
        self.broadcast(&mut circuit, &tree, &address);
        // Retrieval: identical machinery to bucket brigade — flag ball,
        // classically-controlled writes, CX compression to the root.
        tree.prepare_flags(&mut circuit);
        for l in 0..memory.len() {
            if memory.get(l) {
                circuit.push(Gate::clcx(tree.flag(l), leaf_rails.get(l)));
            }
        }
        for l in 0..memory.len() {
            circuit.push(Gate::cx(leaf_rails.get(l), tree.wire(tree.leaf_parent(l))));
        }
        for v in (0..m.saturating_sub(1)).rev() {
            for w in (1 << v)..(1 << (v + 1)) {
                circuit.push(Gate::cx(tree.wire(2 * w), tree.wire(w)));
                circuit.push(Gate::cx(tree.wire(2 * w + 1), tree.wire(w)));
            }
        }
        let empty = Register::new("none", 0, 0);
        PageSelector::new(&empty, tree.wire(1)).emit(&mut circuit, 0, bus.get(0));
        // Uncompute everything.
        for v in 0..m.saturating_sub(1) {
            for w in ((1 << v)..(1 << (v + 1))).rev() {
                circuit.push(Gate::cx(tree.wire(2 * w + 1), tree.wire(w)));
                circuit.push(Gate::cx(tree.wire(2 * w), tree.wire(w)));
            }
        }
        for l in (0..memory.len()).rev() {
            circuit.push(Gate::cx(leaf_rails.get(l), tree.wire(tree.leaf_parent(l))));
        }
        for l in (0..memory.len()).rev() {
            if memory.get(l) {
                circuit.push(Gate::clcx(tree.flag(l), leaf_rails.get(l)));
            }
        }
        tree.unprepare_flags(&mut circuit);
        self.unbroadcast(&mut circuit, &tree, &address);

        QueryCircuit::new(circuit, address, bus, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn verifies_on_random_memories() {
        for m in 1..=4 {
            let memory = Memory::random(m, &mut StdRng::seed_from_u64(m as u64 + 40));
            FanoutQram::new(m)
                .build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("m={m}: {e}"));
        }
    }

    #[test]
    fn loading_depth_is_constant_per_level_with_fanout_gates() {
        // CX broadcast serializes on each address qubit: level u costs
        // 2^u layers. (The physical fanout gate would make this O(1); the
        // CX decomposition keeps the GHZ structure, which is what matters
        // for the noise comparison.)
        let memory = Memory::ones(3);
        let query = FanoutQram::new(3).build(&memory);
        query.verify(&memory).unwrap();
    }

    #[test]
    fn routers_hold_ghz_copies_of_address_bits() {
        use qram_sim::{run, PathState};
        let memory = Memory::zeroed(2);
        let qram = FanoutQram::new(2);
        let query = qram.build(&memory);

        // Build only the broadcast part to inspect the state.
        let mut alloc = QubitAllocator::new();
        let (address, _bus) = interface_registers(&mut alloc, 2);
        let tree = RouterTree::allocate(&mut alloc, 2);
        let mut circuit = Circuit::new(alloc.num_qubits());
        qram.broadcast(&mut circuit, &tree, &address);

        let mut state = PathState::computational_basis(alloc.num_qubits());
        state.apply_x(address.get(0)); // a0 = 1
        run(circuit.gates(), &mut state).unwrap();
        // Both level-1 routers hold a copy of... level 0 router = a0 = 1.
        assert!(state.probability_of_one(tree.router(1)) > 0.999);
        // Level-1 routers copy a1 = 0.
        assert!(state.probability_of_one(tree.router(2)) < 1e-9);
        assert!(state.probability_of_one(tree.router(3)) < 1e-9);
        let _ = query;
    }
}
