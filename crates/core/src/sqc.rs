//! The sequential query circuit (SQC / QROM) — the gate-based baseline of
//! Sec. 2.3.1.

use qram_circuit::{Circuit, Gate, QubitAllocator};

use crate::architecture::interface_registers;
use crate::{Memory, QueryArchitecture, QueryCircuit};

/// A sequential query circuit over `n` address bits: one `MCX` per 1-cell
/// of the memory, each controlled on the full address register with the
/// polarity pattern of its address (Fig. 2d).
///
/// `O(log N)` qubits, `O(N)` latency — the extreme space-efficient,
/// time-hungry corner of the design space, and the component that handles
/// the `k` high bits in every hybrid architecture.
///
/// ```
/// use qram_core::{Memory, QueryArchitecture, Sqc};
/// let memory = Memory::from_bits([false, true, true, false]);
/// let query = Sqc::new(2).build(&memory);
/// query.verify(&memory).unwrap();
/// assert_eq!(query.num_qubits(), 3); // 2 address + 1 bus
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqc {
    n: usize,
}

impl Sqc {
    /// An SQC over `n` address bits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "address width must be at least 1");
        Sqc { n }
    }
}

impl QueryArchitecture for Sqc {
    fn name(&self) -> String {
        format!("sqc(n={})", self.n)
    }

    fn address_width(&self) -> usize {
        self.n
    }

    fn build(&self, memory: &Memory) -> QueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.n,
            "memory address width mismatch"
        );
        let mut alloc = QubitAllocator::new();
        let (address, bus) = interface_registers(&mut alloc, self.n);
        let mut circuit = Circuit::new(alloc.num_qubits());
        let controls: Vec<_> = address.iter().collect();
        for i in 0..memory.len() {
            if memory.get(i) {
                circuit.push(Gate::mcx_pattern(&controls, i as u64, bus.get(0)));
            }
        }
        QueryCircuit::new(circuit, address, bus, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn verifies_on_random_memories() {
        for n in 1..=5 {
            let memory = Memory::random(n, &mut StdRng::seed_from_u64(n as u64));
            Sqc::new(n).build(&memory).verify(&memory).unwrap();
        }
    }

    #[test]
    fn gate_count_equals_ones_count() {
        let memory = Memory::from_bits([true, true, false, true, false, false, true, true]);
        let query = Sqc::new(3).build(&memory);
        assert_eq!(query.circuit().len(), memory.count_ones());
    }

    #[test]
    fn qubit_count_is_logarithmic() {
        let memory = Memory::ones(6);
        assert_eq!(Sqc::new(6).build(&memory).num_qubits(), 7);
    }

    #[test]
    fn depth_is_linear_in_memory_size() {
        // All MCX gates share the bus → they serialize.
        let memory = Memory::ones(5);
        let query = Sqc::new(5).build(&memory);
        assert_eq!(query.circuit().schedule().depth(), 32);
    }

    #[test]
    fn empty_memory_needs_no_gates() {
        let memory = Memory::zeroed(3);
        let query = Sqc::new(3).build(&memory);
        assert!(query.circuit().is_empty());
        query.verify(&memory).unwrap();
    }
}
