//! Shared router-tree machinery for the router-based architectures.
//!
//! The QRAM tree for address width `m` has `2^m − 1` router nodes in heap
//! order (node `v` has children `2v`, `2v+1`; root is `1`) and `2^m`
//! leaves. Router-based generators share three structural registers:
//!
//! * `routers` — the direction-holding qubits (`q^(c)` in Algorithm 1);
//! * `wires` — one input port per internal node (`q^(d)` during address
//!   loading); `wire(1)` is the paper's `q^(d)₋₁`, the root input;
//! * `flags` — the leaf-level ports. After query-state preparation the
//!   flag register holds the one-hot address indicator (the "specific
//!   data qubit" of Fig. 4a).
//!
//! plus the two reusable circuit fragments every router architecture is
//! made of: bucket-brigade *address loading* (pipelined or not,
//! Sec. 3.2.3) and *ball routing* through the CSWAP network.

use qram_circuit::{Circuit, Control, Gate, Qubit, QubitAllocator, Register};

/// Heap-ordered tree registers shared by router-based architectures.
#[derive(Debug, Clone)]
pub(crate) struct RouterTree {
    m: usize,
    routers: Register,
    wires: Register,
    flags: Register,
}

impl RouterTree {
    /// Allocates the tree registers for address width `m ≥ 1`.
    pub fn allocate(alloc: &mut QubitAllocator, m: usize) -> Self {
        assert!(m >= 1, "router tree needs at least one level");
        let routers = alloc.register("routers", (1 << m) - 1);
        let wires = alloc.register("wires", (1 << m) - 1);
        let flags = alloc.register("flags", 1 << m);
        RouterTree {
            m,
            routers,
            wires,
            flags,
        }
    }

    /// Address width `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// A view of the same tree whose routing network runs over a
    /// different wire register (used when address-qubit recycling is
    /// disabled and query-state preparation gets a dedicated ball
    /// network).
    pub fn with_wires(&self, wires: Register) -> RouterTree {
        assert_eq!(
            wires.len(),
            self.wires.len(),
            "wire register width mismatch"
        );
        RouterTree {
            m: self.m,
            routers: self.routers.clone(),
            wires,
            flags: self.flags.clone(),
        }
    }

    /// A view of the same tree with a different leaf register (the second
    /// rail of a dual-rail bus).
    pub fn with_flags(&self, flags: Register) -> RouterTree {
        assert_eq!(
            flags.len(),
            self.flags.len(),
            "flag register width mismatch"
        );
        RouterTree {
            m: self.m,
            routers: self.routers.clone(),
            wires: self.wires.clone(),
            flags,
        }
    }

    /// Router qubit of heap node `v ∈ 1..2^m`.
    pub fn router(&self, v: usize) -> Qubit {
        self.routers.get(v - 1)
    }

    /// Wire (input port) qubit of heap node `v ∈ 1..2^m`.
    pub fn wire(&self, v: usize) -> Qubit {
        self.wires.get(v - 1)
    }

    /// Leaf flag qubit for leaf `l ∈ 0..2^m`.
    pub fn flag(&self, l: usize) -> Qubit {
        self.flags.get(l)
    }

    /// The root input port (`q^(d)₋₁` of Algorithm 1).
    pub fn root_in(&self) -> Qubit {
        self.wire(1)
    }

    /// Heap index of the parent router of leaf `l`.
    pub fn leaf_parent(&self, l: usize) -> usize {
        (1 << (self.m - 1)) + l / 2
    }

    /// One routing hop at tree level `v ∈ 0..m`: every level-`v` node
    /// routes its wire content one level down — to its children's wires,
    /// or to the leaf flags when `v = m − 1`. Content moves left on
    /// router `|0⟩`, right on `|1⟩` (the quantum-router semantics of
    /// Fig. 2).
    pub fn route_hop(&self, circuit: &mut Circuit, v: usize) {
        assert!(v < self.m, "hop level {v} out of range");
        for w in (1 << v)..(1 << (v + 1)) {
            let (left, right) = if v + 1 == self.m {
                // Children are leaves: targets are flags.
                let base = (w - (1 << v)) * 2;
                (self.flag(base), self.flag(base + 1))
            } else {
                (self.wire(2 * w), self.wire(2 * w + 1))
            };
            circuit.push(Gate::cswap0(self.router(w), self.wire(w), left));
            circuit.push(Gate::cswap(self.router(w), self.wire(w), right));
        }
    }

    /// The inverse of [`RouterTree::route_hop`] (same gates, reverse
    /// order — CSWAPs are self-inverse).
    pub fn route_hop_inverse(&self, circuit: &mut Circuit, v: usize) {
        assert!(v < self.m, "hop level {v} out of range");
        for w in ((1 << v)..(1 << (v + 1))).rev() {
            let (left, right) = if v + 1 == self.m {
                let base = (w - (1 << v)) * 2;
                (self.flag(base), self.flag(base + 1))
            } else {
                (self.wire(2 * w), self.wire(2 * w + 1))
            };
            circuit.push(Gate::cswap(self.router(w), self.wire(w), right));
            circuit.push(Gate::cswap0(self.router(w), self.wire(w), left));
        }
    }

    /// Bucket-brigade address loading (Algorithm 1's loading phase): the
    /// `m` address qubits are routed into the tree one after another, the
    /// `u`-th coming to rest in the level-`u` routers of its branch.
    /// With `pipelined = false` a barrier separates consecutive address
    /// qubits, reproducing the unpipelined `O(m²)` schedule the
    /// pipelining optimization (Sec. 3.2.3) removes.
    pub fn load_address(&self, circuit: &mut Circuit, addr: &Register, pipelined: bool) {
        assert_eq!(addr.len(), self.m, "address register width mismatch");
        for u in 0..self.m {
            if !pipelined && u > 0 {
                circuit.barrier();
            }
            circuit.push(Gate::swap(addr.get(u), self.root_in()));
            for v in 0..u {
                self.route_hop(circuit, v);
            }
            // Deposit into the level-u routers.
            for w in (1 << u)..(1 << (u + 1)) {
                circuit.push(Gate::swap(self.wire(w), self.router(w)));
            }
        }
    }

    /// Exact inverse of [`RouterTree::load_address`].
    pub fn unload_address(&self, circuit: &mut Circuit, addr: &Register, pipelined: bool) {
        for u in (0..self.m).rev() {
            for w in ((1 << u)..(1 << (u + 1))).rev() {
                circuit.push(Gate::swap(self.wire(w), self.router(w)));
            }
            for v in (0..u).rev() {
                self.route_hop_inverse(circuit, v);
            }
            circuit.push(Gate::swap(addr.get(u), self.root_in()));
            if !pipelined && u > 0 {
                circuit.barrier();
            }
        }
    }

    /// Query-state preparation (Fig. 4a): inject a `|1⟩` ball at the root
    /// and route it down to the flags, leaving the one-hot address
    /// indicator in the flag register.
    pub fn prepare_flags(&self, circuit: &mut Circuit) {
        circuit.push(Gate::x(self.root_in()));
        for v in 0..self.m {
            self.route_hop(circuit, v);
        }
    }

    /// Exact inverse of [`RouterTree::prepare_flags`].
    pub fn unprepare_flags(&self, circuit: &mut Circuit) {
        for v in (0..self.m).rev() {
            self.route_hop_inverse(circuit, v);
        }
        circuit.push(Gate::x(self.root_in()));
    }
}

/// Emits the page-select MCX that copies a root value onto the bus,
/// conditioned on the `k` SQC address bits spelling page `p` (Fig. 4c's
/// dark-gray controls). With `k = 0` this degrades to a plain CX.
///
/// The control list is pooled: the SQC controls and the trailing root
/// control are laid out once at construction and only the polarities are
/// rewritten per page, so the per-page cost is a single exact-size clone
/// into the emitted gate instead of rebuilding the qubit list and the
/// pattern expansion every page.
pub(crate) struct PageSelector {
    /// `k` SQC controls (polarity rewritten per page) followed by the
    /// always-on root control; empty when `k = 0`.
    controls: Vec<Control>,
    root: Qubit,
}

impl PageSelector {
    /// Lays out the pooled control buffer for `addr_k` steering `root`.
    pub fn new(addr_k: &Register, root: Qubit) -> Self {
        let mut controls: Vec<Control> = addr_k.iter().map(Control::on).collect();
        if !controls.is_empty() {
            controls.push(Control::on(root));
        }
        PageSelector { controls, root }
    }

    /// Appends the select gate for `page` targeting `bus`.
    pub fn emit(&mut self, circuit: &mut Circuit, page: u64, bus: Qubit) {
        if self.controls.is_empty() {
            circuit.push(Gate::cx(self.root, bus));
            return;
        }
        let k = self.controls.len() - 1;
        for (i, c) in self.controls[..k].iter_mut().enumerate() {
            c.value = (page >> (k - 1 - i)) & 1 == 1;
        }
        circuit.push(Gate::Mcx {
            controls: self.controls.clone(),
            target: bus,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_sim::{run, PathState};

    /// Loads a classical address and checks the routers on its path.
    #[test]
    fn loading_routes_address_bits_to_path_routers() {
        let m = 3;
        let mut alloc = QubitAllocator::new();
        let addr = alloc.register("addr", m);
        let tree = RouterTree::allocate(&mut alloc, m);
        let mut circuit = Circuit::new(alloc.num_qubits());
        tree.load_address(&mut circuit, &addr, true);

        for address in 0..(1u64 << m) {
            let addr_qs: Vec<Qubit> = addr.iter().collect();
            let mut state = PathState::computational_basis(alloc.num_qubits());
            // Write the address (MSB first) into the address register.
            for (i, q) in addr_qs.iter().enumerate() {
                if (address >> (m - 1 - i)) & 1 == 1 {
                    state.apply_x(*q);
                }
            }
            run(circuit.gates(), &mut state).unwrap();

            // Walk the tree: router at each level must hold the address
            // bit for that level.
            let mut v = 1usize;
            for u in 0..m {
                let bit = (address >> (m - 1 - u)) & 1 == 1;
                assert!(
                    (state.probability_of_one(tree.router(v)) - (bit as u8 as f64)).abs() < 1e-9,
                    "address {address:#b}, level {u}"
                );
                v = 2 * v + bit as usize;
            }
            // All wires must be back to |0⟩.
            for w in 1..(1 << m) {
                assert!(state.probability_of_one(tree.wire(w)) < 1e-9);
            }
        }
    }

    #[test]
    fn flag_preparation_is_one_hot() {
        let m = 3;
        let mut alloc = QubitAllocator::new();
        let addr = alloc.register("addr", m);
        let tree = RouterTree::allocate(&mut alloc, m);
        let mut circuit = Circuit::new(alloc.num_qubits());
        tree.load_address(&mut circuit, &addr, true);
        tree.prepare_flags(&mut circuit);

        for address in 0..(1usize << m) {
            let mut state = PathState::computational_basis(alloc.num_qubits());
            for (i, q) in addr.iter().enumerate() {
                if (address >> (m - 1 - i)) & 1 == 1 {
                    state.apply_x(q);
                }
            }
            run(circuit.gates(), &mut state).unwrap();
            for l in 0..(1usize << m) {
                let expected = (l == address) as u8 as f64;
                assert!(
                    (state.probability_of_one(tree.flag(l)) - expected).abs() < 1e-9,
                    "address {address}, flag {l}"
                );
            }
        }
    }

    #[test]
    fn load_then_unload_is_identity() {
        let m = 3;
        let mut alloc = QubitAllocator::new();
        let addr = alloc.register("addr", m);
        let tree = RouterTree::allocate(&mut alloc, m);
        let mut circuit = Circuit::new(alloc.num_qubits());
        tree.load_address(&mut circuit, &addr, true);
        tree.prepare_flags(&mut circuit);
        tree.unprepare_flags(&mut circuit);
        tree.unload_address(&mut circuit, &addr, true);

        let addr_qs: Vec<Qubit> = addr.iter().collect();
        let input = PathState::uniform_over(alloc.num_qubits(), &addr_qs);
        let mut state = input.clone();
        run(circuit.gates(), &mut state).unwrap();
        assert!((state.fidelity(&input) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_loading_is_asymptotically_shallower() {
        // The pipelining optimization: O(m) vs O(m²) loading depth.
        let depths: Vec<(usize, usize)> = (2..=6)
            .map(|m| {
                let mut alloc = QubitAllocator::new();
                let addr = alloc.register("addr", m);
                let tree = RouterTree::allocate(&mut alloc, m);
                let mut piped = Circuit::new(alloc.num_qubits());
                tree.load_address(&mut piped, &addr, true);
                let mut raw = Circuit::new(alloc.num_qubits());
                tree.load_address(&mut raw, &addr, false);
                (piped.schedule().depth(), raw.schedule().depth())
            })
            .collect();
        for (piped, raw) in &depths {
            assert!(piped <= raw);
        }
        // Pipelined depth grows linearly (≈ 4m), unpipelined quadratically.
        let (p6, r6) = depths[4];
        assert!(p6 <= 5 * 6, "pipelined depth {p6}");
        assert!(r6 >= 6 * 6 / 2, "raw depth {r6}");
        // Linear growth: constant increments between consecutive m.
        let increments: Vec<isize> = depths
            .windows(2)
            .map(|w| w[1].0 as isize - w[0].0 as isize)
            .collect();
        assert!(
            increments.windows(2).all(|w| (w[0] - w[1]).abs() <= 2),
            "{increments:?}"
        );
    }

    #[test]
    fn page_selector_degrades_to_cx_without_sqc_bits() {
        let mut alloc = QubitAllocator::new();
        let addr_k = alloc.register("addr_k", 0);
        let root = alloc.register("root", 1).get(0);
        let bus = alloc.register("bus", 1).get(0);
        let mut circuit = Circuit::new(alloc.num_qubits());
        PageSelector::new(&addr_k, root).emit(&mut circuit, 0, bus);
        assert_eq!(circuit.gates()[0], Gate::cx(root, bus));
    }

    #[test]
    fn page_selector_matches_mcx_pattern_reference() {
        // The pooled buffer must emit, page after page, exactly the gate
        // the unpooled reference path used to build: `mcx_pattern` over
        // the SQC bits (MSB first) with the root control appended last.
        let k = 3;
        let mut alloc = QubitAllocator::new();
        let addr_k = alloc.register("addr_k", k);
        let root = alloc.register("root", 1).get(0);
        let bus = alloc.register("bus", 1).get(0);
        let mut selector = PageSelector::new(&addr_k, root);
        for page in 0..(1u64 << k) {
            let mut circuit = Circuit::new(alloc.num_qubits());
            selector.emit(&mut circuit, page, bus);
            let mut reference = Gate::mcx_pattern(&addr_k.iter().collect::<Vec<_>>(), page, bus);
            if let Gate::Mcx { controls, .. } = &mut reference {
                controls.push(Control::on(root));
            }
            assert_eq!(circuit.gates()[0], reference, "page {page}");
        }
    }
}
