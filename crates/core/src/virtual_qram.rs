//! The paper's contribution: virtual QRAM (Sec. 3, Algorithm 1).
//!
//! A virtual QRAM serves a `2^n`-cell address space with a physical
//! router tree of only `2^m` leaves (`m = n − k`): the memory is split
//! into `2^k` pages, the `m` low address bits are loaded into the tree
//! **once** (the "load-once" property), and the data-retrieval stage is
//! repeated per page with the `k` high address bits steering an MCX that
//! copies each page's root value onto the bus. One query:
//!
//! 1. **Address loading** — bucket-brigade-route the `m` low address
//!    qubits into the routers (pipelined under OPT3).
//! 2. **Query-state preparation** — route a `|1⟩` ball to the leaves,
//!    leaving a one-hot address flag (Fig. 4a).
//! 3. **Per page** — classically-controlled writes put `flag·xᵢ` on the
//!    data rails (`Classical-CX`/dual-rail `ClSwap`, Fig. 5d), a CX
//!    array compresses the addressed bit to the root (Fig. 4c), an MCX
//!    conditioned on the SQC bits copies it to the bus, and the
//!    compression is uncomputed (Fig. 4d). Under OPT2 consecutive pages
//!    are loaded as XOR deltas instead of unload + reload.
//! 4. **Uncompute** — remove the flag ball and unload the address.
//!
//! The CX compression array points child → parent, so Z errors on the
//! rails never propagate (Fig. 7) — the origin of the architecture's
//! Z-biased noise resilience (Sec. 5.1).

use qram_circuit::{Circuit, Gate, Qubit, QubitAllocator, Register};

use crate::architecture::interface_registers;
use crate::tree::{PageSelector, RouterTree};
use crate::{Memory, QueryArchitecture, QueryCircuit};

/// Toggle switches for the three key optimizations of Sec. 3.2.
///
/// ```
/// use qram_core::Optimizations;
/// let all = Optimizations::ALL;
/// assert!(all.recycle_qubits && all.lazy_swapping && all.pipeline_address);
/// assert_eq!(Optimizations::default(), Optimizations::ALL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Optimizations {
    /// OPT1 — address-qubit recycling (Sec. 3.2.1): reuse the idle wire
    /// network as the query-prep ball network and the compression rails,
    /// saving `Θ(2^m)` qubits.
    pub recycle_qubits: bool,
    /// OPT2 — lazy data swapping (Sec. 3.2.2): load page `p+1` as the XOR
    /// delta against page `p`, halving the expected number of
    /// classically-controlled gates.
    pub lazy_swapping: bool,
    /// OPT3 — address pipelining (Sec. 3.2.3): stream the address qubits
    /// into the tree without waiting, reducing loading depth from
    /// `O(m²)` to `O(m)`.
    pub pipeline_address: bool,
}

impl Optimizations {
    /// Every optimization enabled (the paper's "OPT: ALL" column).
    pub const ALL: Optimizations = Optimizations {
        recycle_qubits: true,
        lazy_swapping: true,
        pipeline_address: true,
    };

    /// No optimizations (the paper's "RAW" column).
    pub const RAW: Optimizations = Optimizations {
        recycle_qubits: false,
        lazy_swapping: false,
        pipeline_address: false,
    };

    /// Only OPT1 (address-qubit recycling).
    pub const OPT1: Optimizations = Optimizations {
        recycle_qubits: true,
        ..Optimizations::RAW
    };

    /// Only OPT2 (lazy data swapping).
    pub const OPT2: Optimizations = Optimizations {
        lazy_swapping: true,
        ..Optimizations::RAW
    };

    /// Only OPT3 (address pipelining).
    pub const OPT3: Optimizations = Optimizations {
        pipeline_address: true,
        ..Optimizations::RAW
    };
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::ALL
    }
}

impl std::fmt::Display for Optimizations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (
            self.recycle_qubits,
            self.lazy_swapping,
            self.pipeline_address,
        ) {
            (true, true, true) => write!(f, "ALL"),
            (false, false, false) => write!(f, "RAW"),
            (r, l, p) => {
                let mut first = true;
                for (on, name) in [(r, "OPT1"), (l, "OPT2"), (p, "OPT3")] {
                    if on {
                        if !first {
                            write!(f, "+")?;
                        }
                        write!(f, "{name}")?;
                        first = false;
                    }
                }
                Ok(())
            }
        }
    }
}

/// How classical data is written onto the data rails (Sec. 3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataEncoding {
    /// One qubit per data node; writes are classically-controlled CX from
    /// the leaf flag.
    #[default]
    Bit,
    /// Dual-rail data nodes (Fig. 5d): the flag qubit and a partner rail;
    /// writes are classically-controlled SWAPs, under which vacuum is
    /// invariant.
    DualRail,
    /// Fused data rails (this repository's extension): the write CX lands
    /// directly on the *parent's* compression rail, eliminating the leaf
    /// rail register — `2^m` fewer qubits at identical semantics (XOR
    /// accumulation commutes with the compression array). This is what
    /// lets the `m = 1` instance fit IBM's 7-qubit `ibm_perth` in the
    /// Appendix A experiments.
    FusedBit,
}

/// The virtual QRAM architecture with SQC width `k` and QRAM width `m`
/// (total address width `n = k + m`).
///
/// ```
/// use qram_core::{Memory, Optimizations, QueryArchitecture, VirtualQram};
///
/// let memory = Memory::from_bits([true, false, false, true, true, true, false, false]);
/// let qram = VirtualQram::new(1, 2); // 2 pages of 4 cells
/// let query = qram.build(&memory);
/// query.verify(&memory).expect("Σ αᵢ|i⟩|xᵢ⟩");
/// assert!(query.query_classical(3).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtualQram {
    k: usize,
    m: usize,
    opts: Optimizations,
    encoding: DataEncoding,
}

impl VirtualQram {
    /// A virtual QRAM with all optimizations and bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` (the router tree needs at least one level).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1, "QRAM width m must be at least 1");
        VirtualQram {
            k,
            m,
            opts: Optimizations::ALL,
            encoding: DataEncoding::Bit,
        }
    }

    /// Overrides the optimization set.
    pub fn with_optimizations(mut self, opts: Optimizations) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the data encoding.
    pub fn with_encoding(mut self, encoding: DataEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// SQC width `k` (number of pages = `2^k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// QRAM width `m` (page size = `2^m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The active optimization set.
    pub fn optimizations(&self) -> Optimizations {
        self.opts
    }

    /// The data encoding.
    pub fn encoding(&self) -> DataEncoding {
        self.encoding
    }

    /// Emits the classically-controlled write layer for `bits` (one gate
    /// per 1-bit).
    fn write_layer(&self, circuit: &mut Circuit, parts: &Parts, bits: &[bool]) {
        for (l, &bit) in bits.iter().enumerate() {
            if !bit {
                continue;
            }
            let gate = match self.encoding {
                DataEncoding::Bit => Gate::clcx(parts.tree.flag(l), parts.leaf_rail(l)),
                DataEncoding::DualRail => Gate::ClSwap(parts.tree.flag(l), parts.leaf_rail(l)),
                DataEncoding::FusedBit => {
                    Gate::clcx(parts.tree.flag(l), parts.rail(parts.tree.leaf_parent(l)))
                }
            };
            circuit.push(gate);
        }
    }

    /// Emits the CX compression array (Fig. 4c): leaf rails into their
    /// parents' rails (skipped under fused writes, which already target
    /// the parents), then child rails into parent rails level by level up
    /// to the root.
    fn compress(&self, circuit: &mut Circuit, parts: &Parts) {
        let m = self.m;
        if self.encoding != DataEncoding::FusedBit {
            for l in 0..(1 << m) {
                circuit.push(Gate::cx(
                    parts.leaf_rail(l),
                    parts.rail(parts.tree.leaf_parent(l)),
                ));
            }
        }
        for v in (0..m.saturating_sub(1)).rev() {
            for w in (1 << v)..(1 << (v + 1)) {
                circuit.push(Gate::cx(parts.rail(2 * w), parts.rail(w)));
                circuit.push(Gate::cx(parts.rail(2 * w + 1), parts.rail(w)));
            }
        }
    }

    /// Exact inverse of [`VirtualQram::compress`].
    fn uncompress(&self, circuit: &mut Circuit, parts: &Parts) {
        let m = self.m;
        for v in 0..m.saturating_sub(1) {
            for w in ((1 << v)..(1 << (v + 1))).rev() {
                circuit.push(Gate::cx(parts.rail(2 * w + 1), parts.rail(w)));
                circuit.push(Gate::cx(parts.rail(2 * w), parts.rail(w)));
            }
        }
        if self.encoding != DataEncoding::FusedBit {
            for l in (0..(1 << m)).rev() {
                circuit.push(Gate::cx(
                    parts.leaf_rail(l),
                    parts.rail(parts.tree.leaf_parent(l)),
                ));
            }
        }
    }
}

/// Allocated structure of one virtual-QRAM instance.
struct Parts {
    tree: RouterTree,
    /// Ball network for query-state preparation (the tree's own wires
    /// under OPT1, a dedicated register otherwise).
    prep_tree: RouterTree,
    /// Leaf data rails (bit encoding) or dual-rail partners.
    leaf_rails: Register,
    /// Internal compression rails, heap-indexed; `None` = recycle wires.
    internal_rails: Option<Register>,
}

impl Parts {
    fn rail(&self, v: usize) -> Qubit {
        match &self.internal_rails {
            Some(reg) => reg.get(v - 1),
            None => self.tree.wire(v),
        }
    }

    fn leaf_rail(&self, l: usize) -> Qubit {
        self.leaf_rails.get(l)
    }
}

/// The cached per-page retrieval stage: the gate sequences that are
/// *identical for every page*, generated once per [`VirtualQram::build`]
/// and stamped `2^k` times, instead of being regenerated from the tree
/// structure page after page.
struct PageTemplate {
    /// The CX compression array (Fig. 4c), as a circuit fragment.
    compress: Circuit,
    /// Its exact inverse (Fig. 4d).
    uncompress: Circuit,
    /// One classically-controlled write gate per leaf, in leaf order;
    /// stamping a page pushes exactly the subset whose data bit is 1
    /// (or whose XOR delta bit is 1, under OPT2 lazy swapping).
    writes: Vec<Gate>,
}

impl PageTemplate {
    fn new(qram: &VirtualQram, parts: &Parts, num_qubits: usize) -> Self {
        let mut compress = Circuit::new(num_qubits);
        qram.compress(&mut compress, parts);
        let mut uncompress = Circuit::new(num_qubits);
        qram.uncompress(&mut uncompress, parts);
        // An all-ones page makes `write_layer` emit every leaf's write
        // gate, in leaf order — the per-leaf stamp table.
        let mut writes = Circuit::new(num_qubits);
        qram.write_layer(&mut writes, parts, &vec![true; 1 << qram.m]);
        PageTemplate {
            compress,
            uncompress,
            writes: writes.gates().to_vec(),
        }
    }
}

/// Emits the per-page retrieval stage either from a cached
/// [`PageTemplate`] (the production path) or by regenerating every gate
/// from the tree structure (the pre-template reference path, kept as the
/// specification the equivalence test pins the cache against).
struct PageEmitter<'a> {
    qram: &'a VirtualQram,
    parts: &'a Parts,
    template: Option<PageTemplate>,
}

impl PageEmitter<'_> {
    fn compress(&self, circuit: &mut Circuit) {
        match &self.template {
            Some(t) => circuit.extend(&t.compress),
            None => self.qram.compress(circuit, self.parts),
        }
    }

    fn uncompress(&self, circuit: &mut Circuit) {
        match &self.template {
            Some(t) => circuit.extend(&t.uncompress),
            None => self.qram.uncompress(circuit, self.parts),
        }
    }

    fn writes(&self, circuit: &mut Circuit, bits: &[bool]) {
        match &self.template {
            Some(t) => {
                for (gate, &bit) in t.writes.iter().zip(bits) {
                    if bit {
                        circuit.push(gate.clone());
                    }
                }
            }
            None => self.qram.write_layer(circuit, self.parts, bits),
        }
    }
}

impl QueryArchitecture for VirtualQram {
    fn name(&self) -> String {
        let enc = match self.encoding {
            DataEncoding::Bit => "",
            DataEncoding::DualRail => ",dual-rail",
            DataEncoding::FusedBit => ",fused",
        };
        format!("virtual(k={},m={},{}{})", self.k, self.m, self.opts, enc)
    }

    fn address_width(&self) -> usize {
        self.k + self.m
    }

    fn build(&self, memory: &Memory) -> QueryCircuit {
        self.build_impl(memory, true)
    }
}

impl VirtualQram {
    /// Shared build path. `cache_page_template == true` generates the
    /// per-page retrieval stage once and stamps it per page (the
    /// production path); `false` regenerates it page by page — kept as
    /// the reference against which the template is tested gate-for-gate.
    fn build_impl(&self, memory: &Memory, cache_page_template: bool) -> QueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.address_width(),
            "memory address width mismatch"
        );
        let (k, m) = (self.k, self.m);
        let mut alloc = QubitAllocator::new();
        let (address, bus) = interface_registers(&mut alloc, k + m);
        let addr_k = Register::new("addr_k", 0, k as u32);
        let addr_m = Register::new("addr_m", k as u32, m as u32);

        let tree = RouterTree::allocate(&mut alloc, m);
        let prep_tree = if self.opts.recycle_qubits {
            tree.clone()
        } else {
            tree.with_wires(alloc.register("prep_ball", (1 << m) - 1))
        };
        let leaf_rails = match self.encoding {
            DataEncoding::Bit => alloc.register("leaf_rails", 1 << m),
            DataEncoding::DualRail => alloc.register("dual_rail_partners", 1 << m),
            // Fused writes target the parent rails directly.
            DataEncoding::FusedBit => alloc.register("leaf_rails", 0),
        };
        let internal_rails = if self.opts.recycle_qubits {
            None
        } else {
            Some(alloc.register("internal_rails", (1 << m) - 1))
        };
        let parts = Parts {
            tree,
            prep_tree,
            leaf_rails,
            internal_rails,
        };
        debug_assert_eq!(parts.tree.m(), m);

        let mut circuit = Circuit::new(alloc.num_qubits());
        let pages = memory.num_pages(m);

        // Stage 1: load-once address loading (Sec. 3.1.1).
        parts
            .tree
            .load_address(&mut circuit, &addr_m, self.opts.pipeline_address);
        // Query-state preparation: one-hot flag at the addressed leaf.
        parts.prep_tree.prepare_flags(&mut circuit);

        // Stage 2: data retrieval, once per page (Sec. 3.1.2-3.1.3). The
        // compression array, its inverse and the per-leaf write gates are
        // page-independent, so the emitter generates them once and stamps
        // them per page; only the SQC-steered MCX and the set of firing
        // write gates vary with `p`.
        let emitter = PageEmitter {
            qram: self,
            parts: &parts,
            template: cache_page_template
                .then(|| PageTemplate::new(self, &parts, alloc.num_qubits())),
        };
        let mut selector = PageSelector::new(&addr_k, parts.rail(1));
        if self.opts.lazy_swapping {
            emitter.writes(&mut circuit, memory.page(m, 0));
            for p in 0..pages {
                emitter.compress(&mut circuit);
                selector.emit(&mut circuit, p as u64, bus.get(0));
                emitter.uncompress(&mut circuit);
                if p + 1 < pages {
                    emitter.writes(&mut circuit, &memory.page_delta(m, p));
                }
            }
            emitter.writes(&mut circuit, memory.page(m, pages - 1));
        } else {
            for p in 0..pages {
                emitter.writes(&mut circuit, memory.page(m, p));
                emitter.compress(&mut circuit);
                selector.emit(&mut circuit, p as u64, bus.get(0));
                emitter.uncompress(&mut circuit);
                emitter.writes(&mut circuit, memory.page(m, p));
            }
        }

        // Final uncompute (Fig. 4f / Algorithm 1's closing loop).
        parts.prep_tree.unprepare_flags(&mut circuit);
        parts
            .tree
            .unload_address(&mut circuit, &addr_m, self.opts.pipeline_address);

        QueryCircuit::new(circuit, address, bus, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_memory(n: usize, seed: u64) -> Memory {
        Memory::random(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn verifies_on_all_small_shapes() {
        for (k, m) in [(0, 1), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2), (1, 3)] {
            let memory = random_memory(k + m, (k * 10 + m) as u64);
            let qram = VirtualQram::new(k, m);
            qram.build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("k={k} m={m}: {e}"));
        }
    }

    #[test]
    fn optimizations_never_change_semantics() {
        let memory = random_memory(4, 77);
        let variants = [
            Optimizations::RAW,
            Optimizations::OPT1,
            Optimizations::OPT2,
            Optimizations::OPT3,
            Optimizations {
                recycle_qubits: true,
                lazy_swapping: true,
                pipeline_address: false,
            },
            Optimizations::ALL,
        ];
        for opts in variants {
            let qram = VirtualQram::new(2, 2).with_optimizations(opts);
            qram.build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("{opts}: {e}"));
        }
    }

    #[test]
    fn dual_rail_encoding_is_equivalent() {
        let memory = random_memory(3, 5);
        for opts in [Optimizations::RAW, Optimizations::ALL] {
            let qram = VirtualQram::new(1, 2)
                .with_encoding(DataEncoding::DualRail)
                .with_optimizations(opts);
            qram.build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("dual-rail {opts}: {e}"));
        }
    }

    #[test]
    fn fused_encoding_is_equivalent_and_smaller() {
        let memory = random_memory(4, 6);
        for opts in [Optimizations::RAW, Optimizations::OPT2, Optimizations::ALL] {
            let plain = VirtualQram::new(2, 2).with_optimizations(opts);
            let fused = plain.with_encoding(DataEncoding::FusedBit);
            fused
                .build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("fused {opts}: {e}"));
            // Exactly the leaf-rail register is saved.
            assert_eq!(
                plain.build(&memory).num_qubits() - fused.build(&memory).num_qubits(),
                1 << 2,
                "{opts}"
            );
        }
    }

    #[test]
    fn fused_m1_fits_seven_qubits() {
        // The Appendix A constraint: ibm_perth has 7 qubits.
        let memory = random_memory(1, 1);
        let query = VirtualQram::new(0, 1)
            .with_encoding(DataEncoding::FusedBit)
            .build(&memory);
        assert!(query.num_qubits() <= 7, "{} qubits", query.num_qubits());
        query.verify(&memory).unwrap();
    }

    #[test]
    fn classical_queries_read_every_cell() {
        let memory = random_memory(4, 11);
        let qram = VirtualQram::new(2, 2);
        let query = qram.build(&memory);
        for address in 0..16 {
            assert_eq!(
                query.query_classical(address).unwrap(),
                memory.get(address as usize),
                "address {address}"
            );
        }
    }

    #[test]
    fn recycling_saves_theta_2m_qubits() {
        let memory = Memory::ones(5); // k=1, m=4
        let raw = VirtualQram::new(1, 4).with_optimizations(Optimizations::RAW);
        let opt1 = VirtualQram::new(1, 4).with_optimizations(Optimizations::OPT1);
        let raw_q = raw.build(&memory).num_qubits();
        let opt1_q = opt1.build(&memory).num_qubits();
        // Two dropped registers of 2^m − 1 qubits each.
        assert_eq!(raw_q - opt1_q, 2 * ((1 << 4) - 1));
    }

    #[test]
    fn lazy_swapping_halves_classically_controlled_gates() {
        let memory = random_memory(6, 3); // k=3, m=3: 8 pages
        let eager = VirtualQram::new(3, 3).with_optimizations(Optimizations::RAW);
        let lazy = VirtualQram::new(3, 3).with_optimizations(Optimizations::OPT2);
        let eager_count = eager.build(&memory).resources().classically_controlled;
        let lazy_count = lazy.build(&memory).resources().classically_controlled;
        assert!(
            (lazy_count as f64) < 0.75 * eager_count as f64,
            "lazy {lazy_count} vs eager {eager_count}"
        );
    }

    #[test]
    fn pipelining_reduces_depth_quadratically() {
        // The loading-stage gap between unpipelined and pipelined
        // schedules grows quadratically in m (measured: 2·(m−2)²), while
        // the pipelined total stays linear.
        let gap = |m: usize| {
            let memory = Memory::ones(m);
            let raw = VirtualQram::new(0, m).with_optimizations(Optimizations {
                pipeline_address: false,
                ..Optimizations::ALL
            });
            let piped = VirtualQram::new(0, m);
            let rd = raw.build(&memory).circuit().schedule().depth();
            let pd = piped.build(&memory).circuit().schedule().depth();
            (rd - pd, pd)
        };
        let (gap4, piped4) = gap(4);
        let (gap8, piped8) = gap(8);
        assert!(
            gap8 >= 4 * gap4,
            "gap m=4 {gap4} vs m=8 {gap8} not quadratic"
        );
        // Pipelined total depth stays linear in m.
        assert!(piped8 <= 2 * piped4 + 8, "piped4 {piped4}, piped8 {piped8}");
    }

    #[test]
    fn load_once_property_loads_address_a_constant_number_of_times() {
        // The CSWAP count of address loading must be independent of k:
        // compare k=0 and k=3 at the same m — the difference must contain
        // no additional cswap gates beyond retrieval MCXs.
        let m = 3;
        let mem_small = Memory::ones(m);
        let mem_large = Memory::ones(m + 3);
        let q0 = VirtualQram::new(0, m).build(&mem_small);
        let q3 = VirtualQram::new(3, m).build(&mem_large);
        let cswaps_k0 = q0
            .circuit()
            .gate_census()
            .get("cswap")
            .copied()
            .unwrap_or(0);
        let cswaps_k3 = q3
            .circuit()
            .gate_census()
            .get("cswap")
            .copied()
            .unwrap_or(0);
        assert_eq!(cswaps_k0, cswaps_k3, "loading must not repeat per page");
    }

    #[test]
    fn cached_template_matches_reference_gate_for_gate() {
        // The template-stamped build must emit the exact gate sequence of
        // the per-page reference path — for every optimization preset,
        // every encoding, and shapes with one and several pages.
        let presets = [
            Optimizations::RAW,
            Optimizations::OPT1,
            Optimizations::OPT2,
            Optimizations::OPT3,
            Optimizations {
                recycle_qubits: true,
                lazy_swapping: true,
                pipeline_address: false,
            },
            Optimizations::ALL,
        ];
        let encodings = [
            DataEncoding::Bit,
            DataEncoding::DualRail,
            DataEncoding::FusedBit,
        ];
        for (k, m) in [(0, 2), (1, 2), (2, 3)] {
            let memory = random_memory(k + m, (41 * k + m) as u64);
            for opts in presets {
                for encoding in encodings {
                    let qram = VirtualQram::new(k, m)
                        .with_optimizations(opts)
                        .with_encoding(encoding);
                    let cached = qram.build_impl(&memory, true);
                    let reference = qram.build_impl(&memory, false);
                    assert_eq!(
                        cached.circuit().gates(),
                        reference.circuit().gates(),
                        "k={k} m={m} {opts} {encoding:?}"
                    );
                    assert_eq!(cached.num_qubits(), reference.num_qubits());
                }
            }
        }
    }

    #[test]
    fn name_reports_shape_and_opts() {
        let qram = VirtualQram::new(2, 4).with_optimizations(Optimizations::OPT2);
        assert_eq!(qram.name(), "virtual(k=2,m=4,OPT2)");
        assert_eq!(VirtualQram::new(1, 1).name(), "virtual(k=1,m=1,ALL)");
    }

    #[test]
    #[should_panic(expected = "address width mismatch")]
    fn wrong_memory_size_is_rejected() {
        let memory = Memory::zeroed(3);
        let _ = VirtualQram::new(1, 1).build(&memory);
    }
}
