//! Closed-form resource formulas for the virtual QRAM (Tables 1 and 2).
//!
//! Every formula here describes *this repository's concrete circuits* and
//! is pinned by tests against the measured [`ResourceCount`] of generated
//! circuits — the formulas are exact, not asymptotic. Where the paper
//! reports slightly different constants (its Table 1 counts a dual-rail
//! variant of the un-recycled layout), the *savings* are the same:
//! OPT1 removes `Θ(2^m)` qubits, OPT2 halves the expected
//! classically-controlled gate count, OPT3 turns `O(m²)` loading depth
//! into `O(m)`.
//!
//! [`ResourceCount`]: qram_circuit::resources::ResourceCount

use crate::{Memory, Optimizations};

/// Closed-form resource model of a [`crate::VirtualQram`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualQramModel {
    /// SQC width.
    pub k: usize,
    /// QRAM width.
    pub m: usize,
    /// Optimization set.
    pub opts: Optimizations,
}

impl VirtualQramModel {
    /// Model for the given shape and optimization set.
    pub fn new(k: usize, m: usize, opts: Optimizations) -> Self {
        VirtualQramModel { k, m, opts }
    }

    /// Exact qubit count of the generated circuit:
    /// interface `n + 1` plus routers, wires and flags
    /// (`3·2^m − 2`), leaf rails (`2^m`), and — without OPT1 — a
    /// dedicated prep-ball network and internal rails (`2·(2^m − 1)`).
    ///
    /// `≈ 4·2^m` with recycling, `≈ 6·2^m` without: Table 1's qubit row.
    pub fn qubits(&self) -> usize {
        let m2 = 1usize << self.m;
        let base = (self.k + self.m + 1) + (2 * m2 - 2) + m2 + m2;
        if self.opts.recycle_qubits {
            base
        } else {
            base + 2 * (m2 - 1)
        }
    }

    /// Exact CSWAP count: address loading + unloading
    /// (`2·(2^(m+1) − 2m − 2)`) plus flag preparation + removal
    /// (`2·(2^(m+1) − 2)`). Loading happens **once** regardless of `k` —
    /// the load-once property.
    pub fn cswap_count(&self) -> usize {
        let m = self.m as u32;
        let loading = 2 * ((1usize << (m + 1)) - 2 * self.m - 2);
        let flagging = 2 * ((1usize << (m + 1)) - 2);
        loading + flagging
    }

    /// Exact SWAP count of loading + unloading: `2·(m + 2^m − 1)`.
    pub fn swap_count(&self) -> usize {
        2 * (self.m + (1 << self.m) - 1)
    }

    /// Exact compression-CX count: `2·2^k` arrays of `2^(m+1) − 2` gates.
    pub fn compression_cx_count(&self) -> usize {
        2 * (1 << self.k) * ((1 << (self.m + 1)) - 2)
    }

    /// Exact page-select gate count: one MCX (or CX when `k = 0`) per
    /// page.
    pub fn page_select_count(&self) -> usize {
        1 << self.k
    }

    /// Exact classically-controlled gate count for `memory`: eager
    /// loading writes and unwrites every page
    /// (`2·popcount(memory)`); lazy swapping (OPT2) writes the first
    /// page, XOR deltas between consecutive pages, and one final unwrite
    /// of the last page — half the count in expectation over uniform
    /// random data (Table 1's last row).
    ///
    /// # Panics
    ///
    /// Panics if the memory shape disagrees with `(k, m)`.
    pub fn classically_controlled(&self, memory: &Memory) -> usize {
        assert_eq!(
            memory.address_width(),
            self.k + self.m,
            "memory shape mismatch"
        );
        let pages = memory.num_pages(self.m);
        if self.opts.lazy_swapping {
            let first: usize = memory.page(self.m, 0).iter().filter(|&&b| b).count();
            let deltas: usize = (0..pages - 1)
                .map(|p| memory.page_delta(self.m, p).iter().filter(|&&b| b).count())
                .sum();
            let last: usize = memory
                .page(self.m, pages - 1)
                .iter()
                .filter(|&&b| b)
                .count();
            first + deltas + last
        } else {
            2 * memory.count_ones()
        }
    }

    /// Total gate count for `memory` (sum of the per-family formulas).
    pub fn total_gates(&self, memory: &Memory) -> usize {
        // 2 X gates inject/remove the flag ball.
        self.cswap_count()
            + self.swap_count()
            + self.compression_cx_count()
            + self.page_select_count()
            + self.classically_controlled(memory)
            + 2
    }
}

/// The asymptotic rows of Table 2, as printable strings, for the
/// architecture-comparison harness.
pub fn table2_asymptotics() -> [[&'static str; 4]; 6] {
    [
        ["metric", "SQC+BB", "SQC+SS", "our QRAM"],
        ["qubits", "O(2^m + k)", "O(2^m + k)", "O(2^m + k)"],
        ["circuit depth", "O(m·2^k)", "O(m²·2^k)", "O(m·2^k)"],
        [
            "T count",
            "O((2^m + k)·2^k)",
            "O(2^(m+k)·k)",
            "O(2^m + k·2^k)",
        ],
        ["T depth", "O((m + k)·2^k)", "O(k·2^k)", "O(m + k·2^k)"],
        [
            "Clifford depth",
            "O((m + k)·2^k)",
            "O((m² + k)·2^k)",
            "O((m + k)·2^k)",
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryArchitecture, VirtualQram};
    use rand::{rngs::StdRng, SeedableRng};

    fn check_formulas(k: usize, m: usize, opts: Optimizations, seed: u64) {
        let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(seed));
        let query = VirtualQram::new(k, m)
            .with_optimizations(opts)
            .build(&memory);
        let model = VirtualQramModel::new(k, m, opts);
        let census = query.circuit().gate_census();
        let get = |name: &str| census.get(name).copied().unwrap_or(0);

        assert_eq!(
            query.num_qubits(),
            model.qubits(),
            "qubits k={k} m={m} {opts}"
        );
        assert_eq!(
            get("cswap"),
            model.cswap_count(),
            "cswap k={k} m={m} {opts}"
        );
        assert_eq!(get("swap"), model.swap_count(), "swap k={k} m={m} {opts}");
        assert_eq!(
            get("cx"),
            model.compression_cx_count() + if k == 0 { model.page_select_count() } else { 0 },
            "cx k={k} m={m} {opts}"
        );
        if k > 0 {
            assert_eq!(
                get("mcx"),
                model.page_select_count(),
                "mcx k={k} m={m} {opts}"
            );
        }
        assert_eq!(
            query.resources().classically_controlled,
            model.classically_controlled(&memory),
            "clctrl k={k} m={m} {opts}"
        );
        assert_eq!(
            query.circuit().len(),
            model.total_gates(&memory),
            "total k={k} m={m} {opts}"
        );
    }

    #[test]
    fn formulas_match_generated_circuits() {
        let variants = [
            Optimizations::RAW,
            Optimizations::OPT1,
            Optimizations::OPT2,
            Optimizations::ALL,
        ];
        let mut seed = 0;
        for (k, m) in [(0, 1), (0, 3), (1, 2), (2, 2), (2, 3), (3, 1)] {
            for opts in variants {
                seed += 1;
                check_formulas(k, m, opts, seed);
            }
        }
    }

    #[test]
    fn opt1_saves_two_registers_of_qubits() {
        for m in 1..=8 {
            let raw = VirtualQramModel::new(2, m, Optimizations::RAW).qubits();
            let opt = VirtualQramModel::new(2, m, Optimizations::OPT1).qubits();
            assert_eq!(raw - opt, 2 * ((1 << m) - 1));
        }
    }

    #[test]
    fn lazy_swapping_halves_expected_writes() {
        // Expectation over random data: eager ≈ 2^(m+k), lazy ≈ 2^(m+k−1).
        let (k, m) = (4, 4);
        let mut rng = StdRng::seed_from_u64(99);
        let mut eager_total = 0usize;
        let mut lazy_total = 0usize;
        for _ in 0..20 {
            let memory = Memory::random(k + m, &mut rng);
            eager_total +=
                VirtualQramModel::new(k, m, Optimizations::RAW).classically_controlled(&memory);
            lazy_total +=
                VirtualQramModel::new(k, m, Optimizations::OPT2).classically_controlled(&memory);
        }
        let ratio = lazy_total as f64 / eager_total as f64;
        assert!((ratio - 0.5).abs() < 0.08, "ratio {ratio}");
    }

    #[test]
    fn cswap_count_is_independent_of_k() {
        let a = VirtualQramModel::new(0, 5, Optimizations::ALL).cswap_count();
        let b = VirtualQramModel::new(4, 5, Optimizations::ALL).cswap_count();
        assert_eq!(a, b);
    }

    #[test]
    fn table2_rows_are_well_formed() {
        let rows = table2_asymptotics();
        assert_eq!(rows[0][3], "our QRAM");
        assert!(rows.iter().all(|r| r.iter().all(|c| !c.is_empty())));
    }
}
