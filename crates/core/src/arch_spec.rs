//! [`ArchSpec`]: the value-level name of a query architecture.
//!
//! The trait object [`QueryArchitecture`] is how circuits get *built*;
//! `ArchSpec` is how architectures get *named, compared, hashed and
//! shipped around* — in serving-layer cache keys, batch group keys,
//! workload mixes and bench reports. It is the paper's comparison axis
//! (Table 2 pits SQC, bucket-brigade, select-swap and the virtual QRAM
//! against each other) reified as a plain `Copy` enum: one variant per
//! architecture family, carrying exactly the parameters that distinguish
//! two compiled circuits of that family.
//!
//! [`ArchSpec::instantiate`] crosses back to the trait world, so any
//! consumer generic over `dyn QueryArchitecture` can serve any spec.

use crate::{
    BucketBrigadeQram, DataEncoding, FanoutQram, Optimizations, QueryArchitecture, SelectSwapQram,
    Sqc, VirtualQram,
};

/// A hashable, cache-key-able description of one query architecture.
///
/// Two specs are equal exactly when they compile identical circuits for
/// any given memory, which is what makes `ArchSpec` the right key for
/// compiled-circuit caches and batch grouping.
///
/// ```
/// use qram_core::{ArchSpec, Memory};
/// let spec = ArchSpec::BucketBrigade { k: 1, m: 2 };
/// assert_eq!(spec.address_width(), 3);
/// let memory = Memory::from_bits((0..8).map(|i| i % 3 == 0));
/// let query = spec.instantiate().build(&memory);
/// query.verify(&memory)?;
/// # Ok::<(), qram_core::QueryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchSpec {
    /// Gate-based QROM over `n` address bits ([`Sqc`], Sec. 2.3.1).
    Sqc {
        /// Address width.
        n: usize,
    },
    /// Fanout QRAM over an `m`-level router tree ([`FanoutQram`],
    /// Sec. 2.3.2).
    Fanout {
        /// Tree width (= address width).
        m: usize,
    },
    /// Hybrid SQC + bucket-brigade tree ([`BucketBrigadeQram`],
    /// baseline **BB**).
    BucketBrigade {
        /// SQC width (`2^k` pages).
        k: usize,
        /// Tree width (`2^m` leaves).
        m: usize,
    },
    /// Select-swap hybrid ([`SelectSwapQram`], baseline **SS**).
    SelectSwap {
        /// Select width.
        k: usize,
        /// Swap width.
        m: usize,
    },
    /// The paper's virtual QRAM ([`VirtualQram`], Sec. 3), with its
    /// optimization switches and data encoding — the parameters that
    /// change the compiled circuit, and therefore belong in the key.
    Virtual {
        /// SQC width (`2^k` pages).
        k: usize,
        /// QRAM width (`2^m` physical leaves).
        m: usize,
        /// Optimization set (Table 1 ablation axis).
        opts: Optimizations,
        /// Data-rail encoding.
        encoding: DataEncoding,
    },
}

impl ArchSpec {
    /// The `(k, m)` virtual QRAM with every optimization and bit
    /// encoding — the paper's headline configuration.
    pub fn virtual_all(k: usize, m: usize) -> Self {
        ArchSpec::Virtual {
            k,
            m,
            opts: Optimizations::ALL,
            encoding: DataEncoding::Bit,
        }
    }

    /// Total address width `n` the architecture serves.
    pub fn address_width(&self) -> usize {
        match *self {
            ArchSpec::Sqc { n } => n,
            ArchSpec::Fanout { m } => m,
            ArchSpec::BucketBrigade { k, m }
            | ArchSpec::SelectSwap { k, m }
            | ArchSpec::Virtual { k, m, .. } => k + m,
        }
    }

    /// Short stable family tag (`"sqc"`, `"fanout"`, `"bucket_brigade"`,
    /// `"select_swap"`, `"virtual"`) for reports and breakdown keys.
    pub fn family(&self) -> &'static str {
        match self {
            ArchSpec::Sqc { .. } => "sqc",
            ArchSpec::Fanout { .. } => "fanout",
            ArchSpec::BucketBrigade { .. } => "bucket_brigade",
            ArchSpec::SelectSwap { .. } => "select_swap",
            ArchSpec::Virtual { .. } => "virtual",
        }
    }

    /// Human-readable instance name, e.g. `"virtual(k=1,m=2,ALL)"`
    /// (delegates to the instantiated architecture).
    pub fn name(&self) -> String {
        self.instantiate().name()
    }

    /// Builds the architecture this spec names.
    ///
    /// # Panics
    ///
    /// Propagates the constructors' validation panics (e.g. `m == 0`
    /// for the tree-based families, `n == 0` for SQC).
    pub fn instantiate(&self) -> Box<dyn QueryArchitecture> {
        match *self {
            ArchSpec::Sqc { n } => Box::new(Sqc::new(n)),
            ArchSpec::Fanout { m } => Box::new(FanoutQram::new(m)),
            ArchSpec::BucketBrigade { k, m } => Box::new(BucketBrigadeQram::new(k, m)),
            ArchSpec::SelectSwap { k, m } => Box::new(SelectSwapQram::new(k, m)),
            ArchSpec::Virtual {
                k,
                m,
                opts,
                encoding,
            } => Box::new(
                VirtualQram::new(k, m)
                    .with_optimizations(opts)
                    .with_encoding(encoding),
            ),
        }
    }

    /// Every legal spec serving address width `n`, across all five
    /// families: `Sqc{n}`, `Fanout{n}`, and each hybrid at every split
    /// `k + m = n` with at least one page bit (`k ≥ 1`) and one tree bit
    /// (`m ≥ 1`) — the paper's Table 2 design space, which a capacity
    /// planner sweeps to pick the split a qubit budget affords (the
    /// virtual family enumerates its headline `virtual_all`
    /// configuration per split; optimization/encoding ablations stay a
    /// separate axis).
    ///
    /// Deterministic order: family by [`ArchSpec::family`] tag order
    /// (sqc, fanout, bucket_brigade, select_swap, virtual), then
    /// ascending `k` within a family.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the hybrids need at least one page bit and one
    /// tree bit).
    pub fn family_candidates(n: usize) -> Vec<ArchSpec> {
        assert!(n >= 2, "candidate enumeration needs n >= 2, got {n}");
        let mut candidates = vec![ArchSpec::Sqc { n }, ArchSpec::Fanout { m: n }];
        candidates.extend((1..n).map(|k| ArchSpec::BucketBrigade { k, m: n - k }));
        candidates.extend((1..n).map(|k| ArchSpec::SelectSwap { k, m: n - k }));
        candidates.extend((1..n).map(|k| ArchSpec::virtual_all(k, n - k)));
        candidates
    }
}

impl std::fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Memory;
    use std::collections::HashSet;

    /// One spec per family at width `n`, hybrids at `k = 1` — the
    /// historical comparison set (the removed `all_families` shim),
    /// kept literal here to pin that every family round-trips.
    fn one_spec_per_family(n: usize) -> Vec<ArchSpec> {
        vec![
            ArchSpec::Sqc { n },
            ArchSpec::Fanout { m: n },
            ArchSpec::BucketBrigade { k: 1, m: n - 1 },
            ArchSpec::SelectSwap { k: 1, m: n - 1 },
            ArchSpec::virtual_all(1, n - 1),
        ]
    }

    #[test]
    fn every_family_instantiates_verifies_and_reads_back() {
        let n = 3;
        let memory = Memory::from_bits((0..8).map(|i| i % 3 == 1));
        for spec in one_spec_per_family(n) {
            assert_eq!(spec.address_width(), n, "{spec}");
            let query = spec.instantiate().build(&memory);
            query
                .verify(&memory)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            for address in 0..8u64 {
                assert_eq!(
                    query.query_classical(address).unwrap(),
                    memory.get(address as usize),
                    "{spec} at {address}"
                );
            }
        }
    }

    #[test]
    fn families_are_distinct_hash_keys() {
        let specs = one_spec_per_family(3);
        let set: HashSet<ArchSpec> = specs.iter().copied().collect();
        assert_eq!(set.len(), specs.len());
        let families: HashSet<&str> = specs.iter().map(ArchSpec::family).collect();
        assert_eq!(families.len(), 5);
    }

    #[test]
    fn virtual_parameters_distinguish_specs() {
        let mut set = HashSet::new();
        set.insert(ArchSpec::virtual_all(1, 2));
        set.insert(ArchSpec::Virtual {
            k: 1,
            m: 2,
            opts: Optimizations::RAW,
            encoding: DataEncoding::Bit,
        });
        set.insert(ArchSpec::Virtual {
            k: 1,
            m: 2,
            opts: Optimizations::ALL,
            encoding: DataEncoding::FusedBit,
        });
        set.insert(ArchSpec::virtual_all(1, 2)); // duplicate
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn names_and_widths_delegate_to_the_architectures() {
        assert_eq!(ArchSpec::Sqc { n: 3 }.name(), "sqc(n=3)");
        assert_eq!(ArchSpec::Fanout { m: 2 }.address_width(), 2);
        assert_eq!(ArchSpec::virtual_all(2, 4).name(), "virtual(k=2,m=4,ALL)");
        assert_eq!(format!("{}", ArchSpec::Sqc { n: 2 }), "sqc(n=2)");
    }

    #[test]
    fn resources_hook_matches_a_direct_build() {
        let memory = Memory::from_bits((0..8).map(|i| i % 2 == 0));
        for spec in one_spec_per_family(3) {
            let arch = spec.instantiate();
            let direct = arch.build(&memory).resources();
            assert_eq!(arch.resources(&memory), direct, "{spec}");
            assert!(direct.num_gates > 0);
            assert!(direct.lowered_depth > 0);
        }
    }

    #[test]
    fn family_candidates_enumerate_every_legal_split() {
        for n in 2..=5 {
            let candidates = ArchSpec::family_candidates(n);
            // Sqc + Fanout + three hybrid families at (n - 1) splits each.
            assert_eq!(candidates.len(), 2 + 3 * (n - 1), "n = {n}");
            let set: HashSet<ArchSpec> = candidates.iter().copied().collect();
            assert_eq!(set.len(), candidates.len(), "n = {n}: duplicates");
            for spec in &candidates {
                assert_eq!(spec.address_width(), n, "{spec}");
            }
            // The one-per-family k = 1 set is a subset of the space.
            for legacy in one_spec_per_family(n) {
                assert!(set.contains(&legacy), "{legacy} missing at n = {n}");
            }
        }
    }

    #[test]
    fn family_candidates_build_and_verify() {
        let n = 3;
        let memory = Memory::from_bits((0..8).map(|i| i % 3 == 1));
        for spec in ArchSpec::family_candidates(n) {
            let query = spec.instantiate().build(&memory);
            query
                .verify(&memory)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn candidate_enumeration_rejects_tiny_widths() {
        let _ = ArchSpec::family_candidates(1);
    }
}
