//! The [`QueryArchitecture`] abstraction: anything that can compile a
//! classical memory into a quantum-query circuit.

use qram_circuit::resources::ResourceCount;
use qram_circuit::{Circuit, Qubit, QubitAllocator, Register};
use qram_sim::{run, Amplitude, BitString, PathState, SimError};

use crate::Memory;

/// A compiled quantum query: the circuit plus the registers that give its
/// flat qubit space meaning.
///
/// Contract (Eq. 2 of the paper): running [`QueryCircuit::circuit`] on
/// `Σᵢ αᵢ|i⟩_address ⊗ |0⟩_everything-else` must produce
/// `Σᵢ αᵢ|i⟩_address |xᵢ⟩_bus` with every other qubit returned to `|0⟩`.
/// [`QueryCircuit::verify`] checks exactly this.
#[derive(Debug, Clone)]
pub struct QueryCircuit {
    circuit: Circuit,
    address: Register,
    bus: Register,
    allocator: QubitAllocator,
}

impl QueryCircuit {
    /// Assembles a query circuit from its parts. Generators call this;
    /// users receive it from [`QueryArchitecture::build`].
    pub fn new(
        circuit: Circuit,
        address: Register,
        bus: Register,
        allocator: QubitAllocator,
    ) -> Self {
        assert_eq!(
            circuit.num_qubits(),
            allocator.num_qubits(),
            "circuit width disagrees with allocator"
        );
        assert_eq!(bus.len(), 1, "bus register must hold exactly one qubit");
        QueryCircuit {
            circuit,
            address,
            bus,
            allocator,
        }
    }

    /// The gate sequence.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The `n`-qubit address register, most significant bit first.
    pub fn address(&self) -> &Register {
        &self.address
    }

    /// The bus qubit that receives `xᵢ`.
    pub fn bus(&self) -> Qubit {
        self.bus.get(0)
    }

    /// Total qubit count.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// All structural registers (address, bus, routers, wires, …).
    pub fn registers(&self) -> &[Register] {
        self.allocator.registers()
    }

    /// Address qubits followed by the bus qubit — the registers that carry
    /// the query's logical output (what reduced fidelity keeps).
    pub fn output_qubits(&self) -> Vec<Qubit> {
        let mut qs: Vec<Qubit> = self.address.iter().collect();
        qs.push(self.bus());
        qs
    }

    /// Fault-tolerant resource count of the circuit.
    pub fn resources(&self) -> ResourceCount {
        ResourceCount::of(&self.circuit)
    }

    /// The canonical query input for this circuit: `Σᵢ αᵢ|i⟩` over the
    /// address register, everything else `|0⟩`. `None` = uniform
    /// superposition over all `2^n` addresses.
    ///
    /// # Panics
    ///
    /// Panics if more amplitudes are supplied than addresses exist.
    pub fn input_state(&self, amplitudes: Option<&[Amplitude]>) -> PathState {
        let addr: Vec<Qubit> = self.address.iter().collect();
        match amplitudes {
            None => PathState::uniform_over(self.num_qubits(), &addr),
            Some(amps) => PathState::superposition_over(self.num_qubits(), &addr, amps),
        }
    }

    /// The ideal query output for `memory` given input amplitudes:
    /// `Σᵢ αᵢ|i⟩|xᵢ⟩`, ancillas `|0⟩`.
    pub fn ideal_output(&self, memory: &Memory, amplitudes: Option<&[Amplitude]>) -> PathState {
        let n = self.address.len();
        let addr_idx: Vec<usize> = self.address.iter().map(|q| q.index()).collect();
        let bus_idx = self.bus().index();
        let uniform = Amplitude::real(1.0 / ((1u64 << n) as f64).sqrt());
        let entries = (0..(1u64 << n)).filter_map(|i| {
            let amp = match amplitudes {
                None => uniform,
                Some(amps) => amps.get(i as usize).copied().unwrap_or(Amplitude::ZERO),
            };
            if amp.is_negligible(1e-14) {
                return None;
            }
            let mut bits = BitString::zeros(self.num_qubits());
            bits.write_msb_first(&addr_idx, i);
            bits.set(bus_idx, memory.get(i as usize));
            Some((bits, amp))
        });
        PathState::from_parts(self.num_qubits(), entries)
    }

    /// Runs the query on a single classical `address` and returns the bus
    /// readout.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; additionally fails with
    /// [`QueryError::GarbageLeft`] if ancillas did not return to `|0⟩` or
    /// the bus ended in superposition.
    pub fn query_classical(&self, address: u64) -> Result<bool, QueryError> {
        let n = self.address.len();
        assert!(address < (1u64 << n), "address {address} out of range");
        let mut amps = vec![Amplitude::ZERO; address as usize + 1];
        amps[address as usize] = Amplitude::ONE;
        let mut state = self.input_state(Some(&amps));
        run(self.circuit.gates(), &mut state)?;
        let bus = state
            .classical_value(&[self.bus()])
            .ok_or(QueryError::GarbageLeft)?;
        // Every non-address, non-bus qubit must be |0⟩.
        let work: Vec<Qubit> = (0..self.num_qubits() as u32)
            .map(Qubit)
            .filter(|q| !self.address.contains(*q) && *q != self.bus())
            .collect();
        if state.is_zero_on(&work) {
            Ok(bus == 1)
        } else {
            Err(QueryError::GarbageLeft)
        }
    }

    /// Verifies the Eq. 2 contract on the uniform superposition: the
    /// circuit output must match [`QueryCircuit::ideal_output`] to within
    /// `1 − 10⁻⁹` fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::WrongOutput`] with the measured fidelity on
    /// mismatch.
    pub fn verify(&self, memory: &Memory) -> Result<(), QueryError> {
        let mut state = self.input_state(None);
        run(self.circuit.gates(), &mut state)?;
        let ideal = self.ideal_output(memory, None);
        let fidelity = ideal.fidelity(&state);
        if (fidelity - 1.0).abs() < 1e-9 {
            Ok(())
        } else {
            Err(QueryError::WrongOutput { fidelity })
        }
    }
}

/// Errors produced when executing or verifying a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The simulator rejected the circuit.
    Sim(SimError),
    /// Ancilla qubits did not return to `|0⟩` (or the bus ended
    /// entangled) after a classical-address query.
    GarbageLeft,
    /// The superposition output mismatched the ideal output.
    WrongOutput {
        /// Measured fidelity against the ideal output.
        fidelity: f64,
    },
}

impl From<SimError> for QueryError {
    fn from(e: SimError) -> Self {
        QueryError::Sim(e)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Sim(e) => write!(f, "simulation failed: {e}"),
            QueryError::GarbageLeft => {
                write!(f, "query left garbage in ancilla or bus registers")
            }
            QueryError::WrongOutput { fidelity } => {
                write!(
                    f,
                    "query output mismatched ideal state (fidelity {fidelity:.6})"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// A quantum-query architecture: a recipe turning classical memory into a
/// [`QueryCircuit`].
///
/// Implementations in this crate: [`crate::Sqc`] (gate-based QROM),
/// [`crate::FanoutQram`], [`crate::BucketBrigadeQram`] (router-based
/// baselines), [`crate::SelectSwapQram`], and the paper's contribution,
/// [`crate::VirtualQram`].
pub trait QueryArchitecture {
    /// Human-readable architecture name (e.g. `"virtual(k=2,m=4)"`).
    fn name(&self) -> String;

    /// Total address width `n` the architecture serves.
    fn address_width(&self) -> usize;

    /// Compiles a query circuit for `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `memory.address_width() != self.address_width()`.
    fn build(&self, memory: &Memory) -> QueryCircuit;

    /// Fault-tolerant resource count of the circuit this architecture
    /// compiles for `memory` — the quantity every architecture
    /// comparison in the paper (Tables 1 and 2) is made on, and what
    /// the serving layer calibrates its virtual-time cost model
    /// against.
    ///
    /// The default implementation builds the circuit and prices it.
    /// An override (e.g. from a closed-form model, to skip the build)
    /// must return **exactly** the measured resources of the circuit
    /// `build` generates — the serving layer prices cached circuits
    /// from their measured count and capacity planning prices through
    /// this hook, and the two must agree. The equality is pinned for
    /// every architecture by `arch_spec`'s
    /// `resources_hook_matches_a_direct_build` test.
    ///
    /// # Panics
    ///
    /// Panics if `memory.address_width() != self.address_width()`.
    fn resources(&self, memory: &Memory) -> ResourceCount {
        self.build(memory).resources()
    }
}

/// Shared generator helper: allocate the (address, bus) interface
/// registers every architecture starts from.
pub(crate) fn interface_registers(alloc: &mut QubitAllocator, n: usize) -> (Register, Register) {
    let address = alloc.register("address", n);
    let bus = alloc.register("bus", 1);
    (address, bus)
}

/// Reads a full `w`-bit word from a [`crate::WideMemory`] by querying one
/// bit-plane at a time through `arch` — the paper's Sec. 8 generalized
/// data width, realized exactly as it describes: "repeatedly querying
/// memory cells one bit at a time".
///
/// # Errors
///
/// Propagates the first per-plane [`QueryError`].
///
/// # Panics
///
/// Panics if `arch`'s address width disagrees with the memory's or
/// `address` is out of range.
///
/// ```
/// use qram_core::{query_word, VirtualQram, WideMemory};
/// let memory = WideMemory::from_words(3, &[5, 2, 7, 0]);
/// let word = query_word(&VirtualQram::new(1, 1), &memory, 2)?;
/// assert_eq!(word, 7);
/// # Ok::<(), qram_core::QueryError>(())
/// ```
pub fn query_word(
    arch: &dyn QueryArchitecture,
    memory: &crate::WideMemory,
    address: u64,
) -> Result<u64, QueryError> {
    assert_eq!(
        arch.address_width(),
        memory.address_width(),
        "architecture/memory address width mismatch"
    );
    let mut word = 0u64;
    for bit in 0..memory.data_width() {
        let query = arch.build(memory.plane(bit));
        if query.query_classical(address)? {
            word |= 1 << bit;
        }
    }
    Ok(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::Gate;

    /// A toy 1-bit architecture: bus ^= address (memory [0, 1] identity).
    struct IdentityArch;

    impl QueryArchitecture for IdentityArch {
        fn name(&self) -> String {
            "identity".into()
        }
        fn address_width(&self) -> usize {
            1
        }
        fn build(&self, memory: &Memory) -> QueryCircuit {
            assert_eq!(memory.address_width(), 1);
            let mut alloc = QubitAllocator::new();
            let (address, bus) = interface_registers(&mut alloc, 1);
            let mut circuit = Circuit::new(alloc.num_qubits());
            // memory [x0, x1]: bus = x0·(1−a) + x1·a.
            if memory.get(0) {
                circuit.push(Gate::cx0(address.get(0), bus.get(0)));
            }
            if memory.get(1) {
                circuit.push(Gate::cx(address.get(0), bus.get(0)));
            }
            QueryCircuit::new(circuit, address, bus, alloc)
        }
    }

    #[test]
    fn identity_arch_passes_verification() {
        for bits in [[false, false], [false, true], [true, false], [true, true]] {
            let memory = Memory::from_bits(bits);
            let qc = IdentityArch.build(&memory);
            qc.verify(&memory).unwrap();
        }
    }

    #[test]
    fn classical_queries_read_single_cells() {
        let memory = Memory::from_bits([true, false]);
        let qc = IdentityArch.build(&memory);
        assert!(qc.query_classical(0).unwrap());
        assert!(!qc.query_classical(1).unwrap());
    }

    #[test]
    fn verify_detects_wrong_circuits() {
        let memory = Memory::from_bits([false, true]);
        let wrong = Memory::from_bits([true, false]);
        let qc = IdentityArch.build(&wrong);
        let err = qc.verify(&memory).unwrap_err();
        assert!(matches!(err, QueryError::WrongOutput { .. }));
    }

    #[test]
    fn output_qubits_are_address_then_bus() {
        let memory = Memory::from_bits([false, true]);
        let qc = IdentityArch.build(&memory);
        let out = qc.output_qubits();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], qc.bus());
    }
}
