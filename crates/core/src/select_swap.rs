//! Select-Swap QRAM — baseline **SS** / the paper's **Baseline S**
//! (Secs. 2.3.3 and 6.1).
//!
//! Select-Swap splits the address like virtual QRAM — `k` *select* bits
//! and `m` *swap* bits — but replaces the router tree with a flat block
//! of `2^m` data qubits and a CSWAP *swap network*:
//!
//! * **Select** (per page): MCX gates conditioned on the `k` high bits
//!   write page `p`'s 1-cells into the block (a plain
//!   classically-controlled layer when `k = 0`).
//! * **Swap network**: `m` rounds of CSWAPs fold the block in half, each
//!   round steered by one low address bit; after round `m` the block's
//!   first qubit holds `xᵢ`. Each round's single steering qubit must be
//!   fanned out with a CX-copy tree before its CSWAPs can fire in
//!   parallel (and unfanned after), which is precisely why the stage
//!   cannot pipeline: the network costs `Θ(m)` depth per round,
//!   `Θ(m²)` per page — the quadratic gap of Table 2.
//!
//! The CX fanout re-introduces GHZ-style sensitivity: an error on any
//! fanout copy or block qubit corrupts the whole query, so SS shows no
//! noise resilience in Fig. 9.

use qram_circuit::{Circuit, Gate, Qubit, QubitAllocator, Register};

use crate::architecture::interface_registers;
use crate::{Memory, QueryArchitecture, QueryCircuit};

/// Select-Swap QRAM with select width `k` and swap width `m`.
///
/// ```
/// use qram_core::{Memory, QueryArchitecture, SelectSwapQram};
/// let memory = Memory::from_bits([true, true, false, true, false, false, false, true]);
/// let query = SelectSwapQram::new(1, 2).build(&memory);
/// query.verify(&memory).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectSwapQram {
    k: usize,
    m: usize,
}

impl SelectSwapQram {
    /// A Select-Swap QRAM with select width `k` and swap width `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1, "swap width m must be at least 1");
        SelectSwapQram { k, m }
    }

    /// Select width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Swap width `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    fn select_layer(
        &self,
        circuit: &mut Circuit,
        addr_k: &Register,
        page_index: u64,
        page: &[bool],
        block: &Register,
    ) {
        let controls: Vec<Qubit> = addr_k.iter().collect();
        for (l, &bit) in page.iter().enumerate() {
            if !bit {
                continue;
            }
            if controls.is_empty() {
                circuit.push(Gate::ClX(block.get(l)));
            } else {
                circuit.push(Gate::mcx_pattern(&controls, page_index, block.get(l)));
            }
        }
    }

    /// One fold of the swap network: round `u` brings cell
    /// `i + 2^(m−u−1)` onto cell `i` when address bit `u` is set.
    fn swap_round(
        &self,
        circuit: &mut Circuit,
        steer: Qubit,
        fan: &Register,
        block: &Register,
        u: usize,
        inverse: bool,
    ) {
        let half = 1usize << (self.m - u - 1);
        // Fanout copies: c[0] is the steering qubit itself, c[1..half] are
        // ancillas filled by a CX doubling tree.
        let copy = |j: usize| if j == 0 { steer } else { fan.get(j - 1) };
        let fan_gates = |circuit: &mut Circuit, invert: bool| {
            let mut gates = Vec::new();
            let mut level = 1usize;
            while level < half {
                for i in level..(2 * level).min(half) {
                    gates.push(Gate::cx(copy(i - level), copy(i)));
                }
                level *= 2;
            }
            if invert {
                gates.reverse();
            }
            for g in gates {
                circuit.push(g);
            }
        };
        let cswaps = |circuit: &mut Circuit, invert: bool| {
            let range: Vec<usize> = if invert {
                (0..half).rev().collect()
            } else {
                (0..half).collect()
            };
            for j in range {
                circuit.push(Gate::cswap(copy(j), block.get(j), block.get(j + half)));
            }
        };
        if inverse {
            fan_gates(circuit, false);
            cswaps(circuit, true);
            fan_gates(circuit, true);
        } else {
            fan_gates(circuit, false);
            cswaps(circuit, false);
            fan_gates(circuit, true);
        }
    }
}

impl QueryArchitecture for SelectSwapQram {
    fn name(&self) -> String {
        format!("select-swap(k={},m={})", self.k, self.m)
    }

    fn address_width(&self) -> usize {
        self.k + self.m
    }

    fn build(&self, memory: &Memory) -> QueryCircuit {
        assert_eq!(
            memory.address_width(),
            self.address_width(),
            "memory address width mismatch"
        );
        let (k, m) = (self.k, self.m);
        let mut alloc = QubitAllocator::new();
        let (address, bus) = interface_registers(&mut alloc, k + m);
        let addr_k = Register::new("addr_k", 0, k as u32);
        let addr_m = Register::new("addr_m", k as u32, m as u32);
        let block = alloc.register("block", 1 << m);
        let fan = alloc.register("fanout", (1usize << (m - 1)).saturating_sub(1));

        let mut circuit = Circuit::new(alloc.num_qubits());
        let pages = memory.num_pages(m);

        for p in 0..pages {
            self.select_layer(&mut circuit, &addr_k, p as u64, memory.page(m, p), &block);
            for u in 0..m {
                self.swap_round(&mut circuit, addr_m.get(u), &fan, &block, u, false);
            }
            circuit.push(Gate::cx(block.get(0), bus.get(0)));
            for u in (0..m).rev() {
                self.swap_round(&mut circuit, addr_m.get(u), &fan, &block, u, true);
            }
            self.select_layer(&mut circuit, &addr_k, p as u64, memory.page(m, p), &block);
        }

        QueryCircuit::new(circuit, address, bus, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_memory(n: usize, seed: u64) -> Memory {
        Memory::random(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn verifies_on_all_small_shapes() {
        for (k, m) in [(0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (2, 2), (1, 3)] {
            let memory = random_memory(k + m, (k * 13 + m) as u64);
            SelectSwapQram::new(k, m)
                .build(&memory)
                .verify(&memory)
                .unwrap_or_else(|e| panic!("k={k} m={m}: {e}"));
        }
    }

    #[test]
    fn classical_queries_match_memory() {
        let memory = random_memory(4, 21);
        let query = SelectSwapQram::new(2, 2).build(&memory);
        for address in 0..16 {
            assert_eq!(
                query.query_classical(address).unwrap(),
                memory.get(address as usize)
            );
        }
    }

    #[test]
    fn swap_stage_depth_is_quadratic_in_m() {
        // With one steering qubit per round, depth per round is
        // Θ(round's fanout tree) — total Θ(m²), vs Θ(m) for the router
        // architectures.
        let d: Vec<usize> = (2..=6)
            .map(|m| {
                let memory = Memory::zeroed(m); // isolate the swap network
                SelectSwapQram::new(0, m)
                    .build(&memory)
                    .circuit()
                    .schedule()
                    .depth()
            })
            .collect();
        // Quadratic growth: depth(m=6)/depth(m=3) ≈ 4, definitely > 2.
        assert!(d[4] as f64 / d[1] as f64 > 2.0, "depths {d:?}");
    }

    #[test]
    fn fanout_register_is_used_for_wide_rounds() {
        let memory = Memory::ones(3);
        let query = SelectSwapQram::new(0, 3).build(&memory);
        // Round 0 of m=3 needs 4 CSWAPs in parallel → 3 fan ancillas.
        let census = query.circuit().gate_census();
        assert!(census["cx"] > 2, "fanout CX gates expected");
        query.verify(&memory).unwrap();
    }

    #[test]
    fn m_equals_one_needs_no_fanout() {
        let memory = random_memory(1, 1);
        let query = SelectSwapQram::new(0, 1).build(&memory);
        query.verify(&memory).unwrap();
        assert_eq!(query.num_qubits(), 1 + 1 + 2); // addr, bus, block; no fan
    }
}
