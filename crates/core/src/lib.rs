//! QRAM query architectures: the MICRO '23 virtual QRAM and every
//! baseline it is evaluated against.
//!
//! This crate is the paper's contribution layer. It compiles classical
//! memory contents into quantum-query circuits
//! (`Σᵢ αᵢ|i⟩|0⟩ → Σᵢ αᵢ|i⟩|xᵢ⟩`, Eq. 2) under five architectures:
//!
//! | Architecture | Kind | Paper role |
//! |---|---|---|
//! | [`Sqc`] | gate-based (QROM) | Sec. 2.3.1 baseline; the `k`-bit stage of every hybrid |
//! | [`FanoutQram`] | router-based | Sec. 2.3.2 negative example (GHZ-fragile) |
//! | [`BucketBrigadeQram`] | router-based | baseline **BB** / load-multiple-times **Baseline B** |
//! | [`SelectSwapQram`] | hybrid | baseline **SS** / **Baseline S** |
//! | [`VirtualQram`] | hybrid router | **the contribution** (Sec. 3, Algorithm 1) |
//!
//! All five implement [`QueryArchitecture`] and produce a
//! [`QueryCircuit`] whose correctness is machine-checkable
//! ([`QueryCircuit::verify`]) against the [`Memory`] it was compiled
//! from. [`VirtualQram`] exposes the paper's three key optimizations as
//! independent switches ([`Optimizations`]) and both data encodings
//! ([`DataEncoding`]), so the Table 1 ablation is a first-class API.
//! [`VirtualQramModel`] provides the matching closed-form resource
//! formulas, pinned to the generated circuits by tests.
//!
//! # Example
//!
//! ```
//! use qram_core::{Memory, QueryArchitecture, VirtualQram};
//!
//! // A 16-cell memory served by a 4-leaf physical QRAM (4 pages).
//! let memory = Memory::from_bits((0..16).map(|i| i % 5 == 0));
//! let query = VirtualQram::new(2, 2).build(&memory);
//! query.verify(&memory)?;
//! assert!(query.query_classical(10)?.eq(&memory.get(10)));
//! # Ok::<(), qram_core::QueryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch_spec;
mod architecture;
mod bucket_brigade;
mod fanout;
mod memory;
mod resource_model;
mod select_swap;
mod sqc;
mod tree;
mod virtual_qram;
mod wide;

pub use arch_spec::ArchSpec;
pub use architecture::{query_word, QueryArchitecture, QueryCircuit, QueryError};
pub use bucket_brigade::BucketBrigadeQram;
pub use fanout::FanoutQram;
pub use memory::{Memory, WideMemory};
pub use resource_model::{table2_asymptotics, VirtualQramModel};
pub use select_swap::SelectSwapQram;
pub use sqc::Sqc;
pub use virtual_qram::{DataEncoding, Optimizations, VirtualQram};
pub use wide::{WideQueryCircuit, WideVirtualQram};
