//! Closed-form query-fidelity lower bounds (paper Sec. 5.1).
//!
//! The paper proves that the bucket-brigade part of the virtual QRAM is
//! *intrinsically resilient to Z-biased noise*: a Z error on a router only
//! corrupts the branches through that router's subtree (Fig. 7), so the
//! expected query fidelity is bounded by a polynomial in the address width
//! `m` — not in the tree size `2^m`. X errors enjoy no such locality (any
//! single X propagates to the root), and any Pauli error in the SQC stage
//! is fatal, which is what makes the `(m, k)` split a real design
//! trade-off (Fig. 11).
//!
//! All bounds are reported clamped to `[0, 1]`; they are *lower* bounds,
//! so simulated fidelities must lie at or above them (integration tests
//! enforce this against the Feynman-path simulator).

/// Eq. (3): fidelity lower bound of a bare (bit-encoded) QRAM of width `m`
/// under a per-qubit Z channel of strength `eps`:
/// `F ≥ 1 − 4·ε·m²`.
///
/// ```
/// use qram_qec::z_fidelity_bound;
/// assert!((z_fidelity_bound(1e-3, 4) - (1.0 - 4.0 * 1e-3 * 16.0)).abs() < 1e-12);
/// ```
pub fn z_fidelity_bound(eps: f64, m: usize) -> f64 {
    clamp01(1.0 - 4.0 * eps * (m * m) as f64)
}

/// Sec. 5.1's dual-rail variant of Eq. (3): duplicated router/data qubits
/// double the error surface, `F ≥ 1 − 8·ε·m²`.
pub fn z_fidelity_bound_dual_rail(eps: f64, m: usize) -> f64 {
    clamp01(1.0 - 8.0 * eps * (m * m) as f64)
}

/// Sec. 5.1's X-channel behavior for the bare QRAM: *no* resilience — a
/// single X error anywhere in the `O(m·2^m)` gate volume destroys the
/// query, so `F ≥ 1 − 8·ε·m·2^m` (exponentially demanding in `m`).
pub fn x_fidelity_bound(eps: f64, m: usize) -> f64 {
    clamp01(1.0 - 8.0 * eps * (m as f64) * (1u64 << m) as f64)
}

/// Sec. 5.1's SQC fidelity bound: every Pauli error in the sequential
/// query circuit over `k` bits is fatal, `F ≥ 1 − ε·k·2^k`.
pub fn sqc_fidelity_bound(eps: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    clamp01(1.0 - eps * (k as f64) * (1u64 << k) as f64)
}

/// Eq. (5): virtual-QRAM query fidelity under Z errors,
/// `F ≥ 1 − 8·ε·(m+1)·2^k·(k+m)`.
///
/// Polynomial in `m`, exponential in `k` — the asymmetry Fig. 11
/// visualizes.
pub fn virtual_z_fidelity_bound(eps: f64, m: usize, k: usize) -> f64 {
    let pages = (1u64 << k) as f64;
    clamp01(1.0 - 8.0 * eps * (m as f64 + 1.0) * pages * (k + m) as f64)
}

/// Eq. (6): virtual-QRAM query fidelity under X errors,
/// `F ≥ 1 − 8·ε·(m+1)·2^k·(k+2^m)` — exponential in *both* widths, since
/// X errors propagate across the whole `2^m`-leaf tree.
///
/// The paper's display typesets the last factor as `(k + 2m)`; the
/// surrounding prose ("exponential in the total number of qubits",
/// "1 − 8εm·2^m") and Fig. 10's simulated X-fidelity collapse at small
/// `m` require the `2^m` reading, which we adopt.
pub fn virtual_x_fidelity_bound(eps: f64, m: usize, k: usize) -> f64 {
    let pages = (1u64 << k) as f64;
    let tree = (1u64 << m) as f64;
    clamp01(1.0 - 8.0 * eps * (m as f64 + 1.0) * pages * (k as f64 + tree))
}

/// The expected-fidelity model behind Eq. (3)'s derivation:
/// `E[F] ≥ (2·(1−ε)^(m²) − 1)²` — each of the `2^m` branches survives iff
/// its `m` routers stay clean through `m` time steps. Useful as a tighter
/// oracle for simulator cross-checks at large `ε`, where the linearized
/// Eq. (3) goes slack.
pub fn z_expected_fidelity_model(eps: f64, m: usize) -> f64 {
    let good = (1.0 - eps).powi((m * m) as i32);
    clamp01((2.0 * good - 1.0).powi(2))
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_clamp_to_unit_interval() {
        assert_eq!(z_fidelity_bound(1.0, 10), 0.0);
        assert_eq!(z_fidelity_bound(0.0, 10), 1.0);
        assert_eq!(virtual_x_fidelity_bound(0.5, 8, 4), 0.0);
    }

    #[test]
    fn z_bound_is_polynomial_x_bound_exponential() {
        let eps = 1e-6;
        // Doubling m quadruples the Z infidelity…
        let z4 = 1.0 - z_fidelity_bound(eps, 4);
        let z8 = 1.0 - z_fidelity_bound(eps, 8);
        assert!((z8 / z4 - 4.0).abs() < 1e-9);
        // …but multiplies the X infidelity by ~2^4·2 = 32.
        let x4 = 1.0 - x_fidelity_bound(eps, 4);
        let x8 = 1.0 - x_fidelity_bound(eps, 8);
        assert!((x8 / x4 - 32.0).abs() < 1e-9);
    }

    #[test]
    fn dual_rail_doubles_the_infidelity() {
        let eps = 1e-5;
        let single = 1.0 - z_fidelity_bound(eps, 5);
        let dual = 1.0 - z_fidelity_bound_dual_rail(eps, 5);
        assert!((dual / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sqc_bound_matches_paper_form() {
        let eps = 1e-4;
        assert_eq!(sqc_fidelity_bound(eps, 0), 1.0);
        let k3 = 1.0 - sqc_fidelity_bound(eps, 3);
        assert!((k3 - eps * 3.0 * 8.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_bounds_decay_faster_in_k_than_m() {
        // Fig. 11's claim: along k the fidelity collapses exponentially,
        // along m only polynomially (for Z noise).
        let eps = 1e-5;
        let base = 1.0 - virtual_z_fidelity_bound(eps, 2, 0);
        let plus_m = 1.0 - virtual_z_fidelity_bound(eps, 4, 0);
        let plus_k = 1.0 - virtual_z_fidelity_bound(eps, 2, 2);
        assert!(plus_k > plus_m, "k-growth {plus_k} vs m-growth {plus_m}");
        let _ = base;
    }

    #[test]
    fn virtual_bound_reduces_to_bare_bound_shape_at_k0() {
        // k = 0: Eq. (5) reads 1 − 8ε(m+1)m — same polynomial family as
        // Eq. (3).
        let eps = 1e-6;
        let m = 6;
        let infidelity = 1.0 - virtual_z_fidelity_bound(eps, m, 0);
        assert!((infidelity - 8.0 * eps * 7.0 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_model_is_tighter_than_linearized_bound() {
        let (eps, m) = (1e-3, 6);
        assert!(z_expected_fidelity_model(eps, m) >= z_fidelity_bound(eps, m));
        // And they agree in the small-ε limit.
        let (eps, m) = (1e-8, 4);
        let gap = z_expected_fidelity_model(eps, m) - z_fidelity_bound(eps, m);
        assert!(gap.abs() < 1e-9);
    }
}
