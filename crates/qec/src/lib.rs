//! Asymmetric error correction for noise-biased QRAM (paper Sec. 5).
//!
//! Two halves:
//!
//! * fidelity bounds — the closed-form query-fidelity lower bounds of
//!   Sec. 5.1 (Eqs. 3, 5, 6 plus the SQC and dual-rail variants). These
//!   are the analytical oracles the simulation campaign validates
//!   against, and the inputs to the code-design rule below.
//! * [`SurfaceCode`] / [`balanced_code`] — the Sec. 5.2 prescription:
//!   encode QRAM routers in *rectangular* surface codes whose distance
//!   gap `dx − dz` (Eq. 7) equalizes the X and Z fidelity bounds, and
//!   encode the unbiased SQC address qubits in square codes.
//!
//! # Example
//!
//! ```
//! use qram_qec::{balanced_code, virtual_z_fidelity_bound, TYPICAL_THRESHOLD};
//!
//! // A (m=6, k=2) virtual QRAM at physical error rate 10⁻³:
//! let code = balanced_code(2, 6, 1e-3, TYPICAL_THRESHOLD, 9);
//! assert!(code.dx() >= code.dz()); // X needs more protection
//!
//! // The Z-channel fidelity floor at the logical error rate:
//! let f = virtual_z_fidelity_bound(code.logical_z_rate(1e-3, TYPICAL_THRESHOLD), 6, 2);
//! assert!(f > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod surface;

pub use bounds::{
    sqc_fidelity_bound, virtual_x_fidelity_bound, virtual_z_fidelity_bound, x_fidelity_bound,
    z_expected_fidelity_model, z_fidelity_bound, z_fidelity_bound_dual_rail,
};
pub use surface::{
    balanced_code, balanced_code_tree, distance_gap, distance_gap_tree, SurfaceCode,
    TYPICAL_THRESHOLD,
};
