//! Rectangular surface-code logical error model (paper Sec. 5.2).
//!
//! A rectangular surface code with X distance `dx` and Z distance `dz`
//! suppresses logical X errors as `(p/p_th)^((dx+1)/2)` and logical Z
//! errors as `(p/p_th)^((dz+1)/2)`, so the logical error-rate *ratio* is
//! `p_xl/p_zl ≈ (p/p_th)^((dx−dz)/2)` — an exponential bias knob. The
//! paper (citing the XZZX surface code literature) uses the simplified
//! exponent `(p/p_th)^(dx−dz)`; this module exposes both the per-channel
//! rates (with the standard `(d+1)/2` exponent) and the paper's ratio
//! form, which agree up to the same constant rescaling of distances.

/// The standard circuit-level surface-code threshold (~1 %) used for
/// numeric examples.
pub const TYPICAL_THRESHOLD: f64 = 1e-2;

/// A rectangular surface-code patch with independent X and Z distances.
///
/// ```
/// use qram_qec::SurfaceCode;
/// let square = SurfaceCode::square(5);
/// assert_eq!(square.dx(), 5);
/// let biased = SurfaceCode::new(7, 3);
/// assert!(biased.is_rectangular());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SurfaceCode {
    dx: usize,
    dz: usize,
}

impl SurfaceCode {
    /// A rectangular code with X distance `dx` and Z distance `dz`.
    ///
    /// # Panics
    ///
    /// Panics if either distance is zero or even (surface-code distances
    /// are odd so majority voting is unambiguous).
    pub fn new(dx: usize, dz: usize) -> Self {
        assert!(dx >= 1 && dz >= 1, "distances must be positive");
        assert!(dx % 2 == 1 && dz % 2 == 1, "distances must be odd");
        SurfaceCode { dx, dz }
    }

    /// A square code (`dx = dz = d`), used for the SQC address qubits that
    /// enjoy no noise bias (Sec. 5.2).
    pub fn square(d: usize) -> Self {
        Self::new(d, d)
    }

    /// X distance.
    pub fn dx(&self) -> usize {
        self.dx
    }

    /// Z distance.
    pub fn dz(&self) -> usize {
        self.dz
    }

    /// Whether the code is biased (`dx ≠ dz`).
    pub fn is_rectangular(&self) -> bool {
        self.dx != self.dz
    }

    /// Physical qubits per logical patch: `dx·dz` data qubits plus
    /// `dx·dz − 1` syndrome qubits.
    pub fn physical_qubits(&self) -> usize {
        2 * self.dx * self.dz - 1
    }

    /// Logical X error rate per code cycle:
    /// `A·(p/p_th)^((dx+1)/2)` with `A = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `p_th` is not positive.
    pub fn logical_x_rate(&self, p: f64, p_th: f64) -> f64 {
        logical_rate(self.dx, p, p_th)
    }

    /// Logical Z error rate per code cycle:
    /// `A·(p/p_th)^((dz+1)/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `p_th` is not positive.
    pub fn logical_z_rate(&self, p: f64, p_th: f64) -> f64 {
        logical_rate(self.dz, p, p_th)
    }

    /// The paper's bias ratio `p_xl/p_zl ≈ (p/p_th)^(dx−dz)` (Sec. 5.2).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `p_th` is not positive.
    pub fn bias_ratio(&self, p: f64, p_th: f64) -> f64 {
        assert!(p > 0.0 && p_th > 0.0, "rates must be positive");
        (p / p_th).powi(self.dx as i32 - self.dz as i32)
    }
}

impl std::fmt::Display for SurfaceCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "surface[dx={}, dz={}]", self.dx, self.dz)
    }
}

fn logical_rate(d: usize, p: f64, p_th: f64) -> f64 {
    assert!(p > 0.0 && p_th > 0.0, "rates must be positive");
    0.1 * (p / p_th).powf((d as f64 + 1.0) / 2.0)
}

/// Eq. (7): the code-distance gap `dx − dz` that balances the X and Z
/// query-fidelity bounds of the virtual QRAM —
/// `dx − dz ≈ log((k+m)/(k+2m)) / log(p/p_th)`.
///
/// Returned as a (possibly fractional) real; [`balanced_code`] rounds it
/// into odd distances.
///
/// # Panics
///
/// Panics unless `m ≥ 1` and `0 < p < p_th` (below threshold).
pub fn distance_gap(k: usize, m: usize, p: f64, p_th: f64) -> f64 {
    assert!(m >= 1, "QRAM width must be at least 1");
    assert!(p > 0.0 && p < p_th, "physical rate must be below threshold");
    let ratio = (k + m) as f64 / (k + 2 * m) as f64;
    ratio.ln() / (p / p_th).ln()
}

/// The distance gap implied by the Eq. (5)/(6) fidelity bounds *as
/// implemented* (with the X bound exponential in the tree size `2^m`;
/// see `bounds::virtual_x_fidelity_bound` for the reading): balancing
/// `F_X = F_Z` requires `εx/εz = (k+m)/(k+2^m)`, hence
/// `dx − dz ≈ log((k+m)/(k+2^m)) / log(p/p_th)` — substantially more X
/// protection than the paper's printed `(k+2m)` form once `m` grows.
///
/// # Panics
///
/// Same conditions as [`distance_gap`].
pub fn distance_gap_tree(k: usize, m: usize, p: f64, p_th: f64) -> f64 {
    assert!(m >= 1, "QRAM width must be at least 1");
    assert!(p > 0.0 && p < p_th, "physical rate must be below threshold");
    let ratio = (k + m) as f64 / (k as f64 + (1u64 << m) as f64);
    ratio.ln() / (p / p_th).ln()
}

/// Chooses a rectangular code for the QRAM routers: the smallest odd
/// `dz ≥ dz_min` plus the Eq. (7) gap (rounded to keep `dx` odd).
///
/// The gap is positive below threshold (the X bound of Eq. (6) is looser
/// than the Z bound of Eq. (5), so X needs *more* protection: `dx > dz`).
///
/// # Panics
///
/// Same conditions as [`distance_gap`]; additionally `dz_min` must be odd.
pub fn balanced_code(k: usize, m: usize, p: f64, p_th: f64, dz_min: usize) -> SurfaceCode {
    assert!(dz_min % 2 == 1, "dz_min must be odd");
    let gap = distance_gap(k, m, p, p_th).max(0.0);
    // Round the gap to the nearest even integer so dx stays odd.
    let gap_int = (gap / 2.0).round() as usize * 2;
    SurfaceCode::new(dz_min + gap_int, dz_min)
}

/// Like [`balanced_code`] but using [`distance_gap_tree`] — the gap that
/// balances the bounds as implemented in this crate.
///
/// # Panics
///
/// Same conditions as [`balanced_code`].
pub fn balanced_code_tree(k: usize, m: usize, p: f64, p_th: f64, dz_min: usize) -> SurfaceCode {
    assert!(dz_min % 2 == 1, "dz_min must be odd");
    let gap = distance_gap_tree(k, m, p, p_th).max(0.0);
    let gap_int = (gap / 2.0).round() as usize * 2;
    SurfaceCode::new(dz_min + gap_int, dz_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_overhead_counts_data_and_syndrome() {
        assert_eq!(SurfaceCode::square(3).physical_qubits(), 17);
        assert_eq!(SurfaceCode::square(5).physical_qubits(), 49);
        assert_eq!(SurfaceCode::new(5, 3).physical_qubits(), 29);
    }

    #[test]
    fn logical_rates_fall_with_distance() {
        let p = 1e-3;
        let r3 = SurfaceCode::square(3).logical_x_rate(p, TYPICAL_THRESHOLD);
        let r5 = SurfaceCode::square(5).logical_x_rate(p, TYPICAL_THRESHOLD);
        let r7 = SurfaceCode::square(7).logical_x_rate(p, TYPICAL_THRESHOLD);
        assert!(r3 > r5 && r5 > r7);
        // One distance step = one factor of p/p_th.
        assert!((r3 / r5 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_code_biases_the_rates() {
        let code = SurfaceCode::new(7, 3);
        let p = 1e-3;
        let x = code.logical_x_rate(p, TYPICAL_THRESHOLD);
        let z = code.logical_z_rate(p, TYPICAL_THRESHOLD);
        assert!(x < z, "more X distance → fewer logical X errors");
        // Paper ratio form: (p/p_th)^(dx−dz) = 10⁻⁴.
        assert!((code.bias_ratio(p, TYPICAL_THRESHOLD) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn distance_gap_is_positive_below_threshold() {
        // (k+m)/(k+2m) < 1 and p/p_th < 1: both logs negative → gap > 0.
        let gap = distance_gap(2, 4, 1e-3, TYPICAL_THRESHOLD);
        assert!(gap > 0.0);
        // Stronger bias needed when m dominates k.
        let gap_heavy_m = distance_gap(0, 8, 1e-3, TYPICAL_THRESHOLD);
        assert!(gap_heavy_m > gap);
    }

    #[test]
    fn balanced_code_keeps_distances_odd() {
        for (k, m) in [(0usize, 2usize), (1, 3), (2, 6), (4, 8)] {
            let code = balanced_code(k, m, 1e-3, TYPICAL_THRESHOLD, 5);
            assert_eq!(code.dz(), 5);
            assert_eq!(code.dx() % 2, 1, "k={k} m={m}: {code}");
            assert!(code.dx() >= code.dz());
        }
    }

    #[test]
    fn balanced_code_equalizes_error_budget() {
        // With the chosen gap, the biased bias_ratio should approximate
        // (k+m)/(k+2m) — the ratio the Eq. (7) derivation targets.
        let (k, m, p) = (1usize, 5usize, 1e-3);
        let code = balanced_code(k, m, p, TYPICAL_THRESHOLD, 3);
        let achieved = code.bias_ratio(p, TYPICAL_THRESHOLD);
        let target = (k + m) as f64 / (k + 2 * m) as f64;
        // Rounding to integer (odd) distances leaves at most one factor of
        // (p/p_th)^±1 of slack.
        let slack = achieved / target;
        assert!((0.1..=10.0).contains(&slack), "slack {slack}");
    }

    #[test]
    fn tree_gap_exceeds_printed_gap_and_balances_bounds() {
        let (k, m, p) = (2usize, 6usize, 3e-3);
        let printed = distance_gap(k, m, p, TYPICAL_THRESHOLD);
        let tree = distance_gap_tree(k, m, p, TYPICAL_THRESHOLD);
        assert!(tree > printed, "tree {tree} vs printed {printed}");
        // The tree-balanced code gives X strictly more protection.
        let code = balanced_code_tree(k, m, p, TYPICAL_THRESHOLD, 5);
        assert!(code.dx() > code.dz(), "{code}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distances_rejected() {
        let _ = SurfaceCode::new(4, 3);
    }

    #[test]
    #[should_panic(expected = "below threshold")]
    fn above_threshold_rejected() {
        let _ = distance_gap(1, 2, 2e-2, TYPICAL_THRESHOLD);
    }
}
