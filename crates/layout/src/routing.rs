//! Routing-overhead accounting for mapped QRAM circuits (paper Sec. 4.3,
//! Fig. 8).
//!
//! After H-tree embedding, a tree-edge gate (`CSWAP`/`CX` between a parent
//! and child router) acts on cells separated by the edge's grid distance.
//! Two routing disciplines resolve the distance:
//!
//! * **Swap-based** (Fig. 6d): shuttle one operand along the edge path
//!   with nearest-neighbor SWAPs and bring it back afterwards — extra
//!   depth proportional to the distance. Near the root the H-tree edge
//!   distance is `Θ(√M)`, so the overhead grows *exponentially in `m`*.
//! * **Teleportation-based** (Fig. 6e): the idle routing cells on the
//!   (vertex-disjoint!) edge path hold a pre-shared entangled chain; EPR
//!   preparation and Bell-state measurements all happen in parallel, so a
//!   qubit crosses any distance in **constant depth** (Sec. 4.3).
//!
//! The functions here reproduce Fig. 8's y-axis: the *extra operation
//! depth* added to one full query by each discipline. A query is modeled
//! exactly as the paper's circuits execute: the address-loading stage
//! traverses tree levels `1..=m` downward, the data-retrieval stage
//! compresses from the leaves back to the root, and both stages pay each
//! level's worst-case edge distance once in the critical path (pipelining
//! overlaps gates *within* a level, not the wire latency of one gate).

use crate::HTreeEmbedding;

/// Depth of a nearest-neighbor SWAP in native 2-qubit gates (3 CX).
pub const SWAP_DEPTH: usize = 3;

/// Constant depth of one teleportation hop: parallel EPR preparation,
/// parallel Bell-state measurement, Pauli correction.
pub const TELEPORT_DEPTH: usize = 3;

/// Extra operation depth of one query under swap-based routing.
///
/// Each tree level `ℓ` contributes its worst-case edge distance `d_ℓ`:
/// shuttling an operand adjacent costs `d_ℓ − 1` SWAPs, and returning it
/// costs the same, so a level with non-adjacent edges adds
/// `2 · (d_ℓ − 1) · SWAP_DEPTH` to the critical path. The address-loading
/// and data-retrieval stages each traverse all levels once (the retrieval
/// CX array climbs the same edges), hence the factor 2.
///
/// ```
/// use qram_layout::{swap_extra_depth, HTreeEmbedding};
/// let small = swap_extra_depth(&HTreeEmbedding::new(2));
/// let large = swap_extra_depth(&HTreeEmbedding::new(6));
/// assert!(large > 8 * small); // exponential growth in m
/// ```
pub fn swap_extra_depth(embedding: &HTreeEmbedding) -> usize {
    let m = embedding.address_width();
    2 * (1..=m)
        .map(|level| {
            let d = embedding.level_distance(level);
            2 * (d - 1) * SWAP_DEPTH
        })
        .sum::<usize>()
}

/// Extra operation depth of one query under teleportation-based routing:
/// a constant [`TELEPORT_DEPTH`] per non-adjacent level per stage,
/// independent of the edge distance.
///
/// ```
/// use qram_layout::{teleport_extra_depth, HTreeEmbedding};
/// let d6 = teleport_extra_depth(&HTreeEmbedding::new(6));
/// let d8 = teleport_extra_depth(&HTreeEmbedding::new(8));
/// assert!(d8 - d6 <= 2 * 2 * 3); // linear in m: ≤ one hop per new level/stage
/// ```
pub fn teleport_extra_depth(embedding: &HTreeEmbedding) -> usize {
    let m = embedding.address_width();
    2 * (1..=m)
        .map(|level| {
            if embedding.level_distance(level) > 1 {
                TELEPORT_DEPTH
            } else {
                0
            }
        })
        .sum::<usize>()
}

/// One row of the Fig. 8 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingOverhead {
    /// QRAM address width.
    pub m: usize,
    /// Extra depth under swap-based routing.
    pub swap_depth: usize,
    /// Extra depth under teleportation-based routing.
    pub teleport_depth: usize,
    /// Grid cells used by the embedding.
    pub grid_cells: usize,
}

/// Computes the Fig. 8 series for `m ∈ 1..=max_m`.
pub fn routing_overhead_sweep(max_m: usize) -> Vec<RoutingOverhead> {
    (1..=max_m)
        .map(|m| {
            let e = HTreeEmbedding::new(m);
            RoutingOverhead {
                m,
                swap_depth: swap_extra_depth(&e),
                teleport_depth: teleport_extra_depth(&e),
                grid_cells: e.rows() * e.cols(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_overhead_grows_exponentially() {
        let sweep = routing_overhead_sweep(9);
        // Doubling m roughly doubles the dominant edge distance (√M), so
        // consecutive even m should grow by ~2×.
        let d4 = sweep[3].swap_depth as f64;
        let d6 = sweep[5].swap_depth as f64;
        let d8 = sweep[7].swap_depth as f64;
        assert!(d6 / d4 > 1.6, "d6/d4 = {}", d6 / d4);
        assert!(d8 / d6 > 1.6, "d8/d6 = {}", d8 / d6);
    }

    #[test]
    fn teleport_overhead_is_at_most_linear() {
        let sweep = routing_overhead_sweep(9);
        for row in &sweep {
            assert!(
                row.teleport_depth <= 2 * TELEPORT_DEPTH * row.m,
                "m={}: {}",
                row.m,
                row.teleport_depth
            );
        }
    }

    #[test]
    fn teleportation_beats_swapping_beyond_tiny_trees() {
        let sweep = routing_overhead_sweep(9);
        for row in sweep.iter().filter(|r| r.m >= 3) {
            assert!(
                row.swap_depth > row.teleport_depth,
                "m={}: swap {} vs teleport {}",
                row.m,
                row.swap_depth,
                row.teleport_depth
            );
        }
    }

    #[test]
    fn adjacent_edges_cost_nothing() {
        // m=1: the 3×1 embedding has only nearest-neighbor edges.
        let e = HTreeEmbedding::new(1);
        assert_eq!(swap_extra_depth(&e), 0);
        assert_eq!(teleport_extra_depth(&e), 0);
    }

    #[test]
    fn sweep_is_dense_and_ordered() {
        let sweep = routing_overhead_sweep(5);
        assert_eq!(sweep.len(), 5);
        for (i, row) in sweep.iter().enumerate() {
            assert_eq!(row.m, i + 1);
        }
    }
}
