//! Hardware connectivity graphs.

use std::collections::VecDeque;

/// A hardware connectivity graph: sites (physical qubits) and the pairs
/// that can interact directly.
///
/// QRAM mapping (paper Sec. 4) targets 2D nearest-neighbor grids; the
/// Appendix A experiments target the sparser IBMQ coupling graphs. Both
/// implement this trait.
pub trait Topology {
    /// Number of sites.
    fn num_sites(&self) -> usize;

    /// The sites directly coupled to `site`.
    fn neighbors(&self, site: usize) -> Vec<usize>;

    /// Shortest-path distance between `a` and `b` in hops
    /// (`0` iff `a == b`). Default implementation: BFS.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range or the sites are disconnected.
    fn distance(&self, a: usize, b: usize) -> usize {
        assert!(
            a < self.num_sites() && b < self.num_sites(),
            "site out of range"
        );
        if a == b {
            return 0;
        }
        let mut dist = vec![usize::MAX; self.num_sites()];
        dist[a] = 0;
        let mut queue = VecDeque::from([a]);
        while let Some(s) = queue.pop_front() {
            for n in self.neighbors(s) {
                if dist[n] == usize::MAX {
                    dist[n] = dist[s] + 1;
                    if n == b {
                        return dist[n];
                    }
                    queue.push_back(n);
                }
            }
        }
        panic!("sites {a} and {b} are disconnected");
    }

    /// One shortest path from `a` to `b` (inclusive of both endpoints).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Topology::distance`].
    fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        assert!(
            a < self.num_sites() && b < self.num_sites(),
            "site out of range"
        );
        if a == b {
            return vec![a];
        }
        let mut prev = vec![usize::MAX; self.num_sites()];
        let mut seen = vec![false; self.num_sites()];
        seen[a] = true;
        let mut queue = VecDeque::from([a]);
        while let Some(s) = queue.pop_front() {
            for n in self.neighbors(s) {
                if !seen[n] {
                    seen[n] = true;
                    prev[n] = s;
                    if n == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(n);
                }
            }
        }
        panic!("sites {a} and {b} are disconnected");
    }
}

/// A `rows × cols` nearest-neighbor square grid. Site `(r, c)` has index
/// `r·cols + c`; neighbors are the 4-connected cells.
///
/// ```
/// use qram_layout::{Grid, Topology};
/// let g = Grid::new(3, 3);
/// assert_eq!(g.num_sites(), 9);
/// assert_eq!(g.distance(0, 8), 4); // Manhattan
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Grid { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The site index of cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the grid.
    pub fn site(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "cell ({r},{c}) outside grid"
        );
        r * self.cols + c
    }

    /// The cell `(r, c)` of a site index.
    pub fn cell(&self, site: usize) -> (usize, usize) {
        assert!(site < self.num_sites(), "site {site} out of range");
        (site / self.cols, site % self.cols)
    }

    /// Manhattan distance between two cells.
    pub fn manhattan(&self, a: (usize, usize), b: (usize, usize)) -> usize {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }
}

impl Topology for Grid {
    fn num_sites(&self) -> usize {
        self.rows * self.cols
    }

    fn neighbors(&self, site: usize) -> Vec<usize> {
        let (r, c) = self.cell(site);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.site(r - 1, c));
        }
        if r + 1 < self.rows {
            out.push(self.site(r + 1, c));
        }
        if c > 0 {
            out.push(self.site(r, c - 1));
        }
        if c + 1 < self.cols {
            out.push(self.site(r, c + 1));
        }
        out
    }

    fn distance(&self, a: usize, b: usize) -> usize {
        self.manhattan(self.cell(a), self.cell(b))
    }
}

/// An explicit coupling graph (edge list), used for device topologies
/// such as `ibm_perth` and `ibmq_guadalupe`.
///
/// ```
/// use qram_layout::{CouplingGraph, Topology};
/// let g = CouplingGraph::new(3, vec![(0, 1), (1, 2)]);
/// assert_eq!(g.distance(0, 2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    num_sites: usize,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingGraph {
    /// Builds a graph from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(num_sites: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut adjacency = vec![Vec::new(); num_sites];
        for (a, b) in edges {
            assert!(
                a < num_sites && b < num_sites,
                "edge ({a},{b}) out of range"
            );
            assert!(a != b, "self-loop on {a}");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        CouplingGraph {
            num_sites,
            adjacency,
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }
}

impl Topology for CouplingGraph {
    fn num_sites(&self) -> usize {
        self.num_sites
    }

    fn neighbors(&self, site: usize) -> Vec<usize> {
        self.adjacency[site].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_round_trips() {
        let g = Grid::new(4, 5);
        for r in 0..4 {
            for c in 0..5 {
                assert_eq!(g.cell(g.site(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn grid_neighbors_corner_edge_interior() {
        let g = Grid::new(3, 3);
        assert_eq!(g.neighbors(g.site(0, 0)).len(), 2);
        assert_eq!(g.neighbors(g.site(0, 1)).len(), 3);
        assert_eq!(g.neighbors(g.site(1, 1)).len(), 4);
    }

    #[test]
    fn grid_distance_is_manhattan() {
        let g = Grid::new(5, 5);
        assert_eq!(g.distance(g.site(0, 0), g.site(4, 4)), 8);
        assert_eq!(g.distance(g.site(2, 2), g.site(2, 2)), 0);
    }

    #[test]
    fn grid_shortest_path_has_right_length() {
        let g = Grid::new(4, 4);
        let path = g.shortest_path(g.site(0, 0), g.site(3, 2));
        assert_eq!(path.len(), 6); // distance 5 → 6 sites
        assert_eq!(path[0], g.site(0, 0));
        assert_eq!(*path.last().unwrap(), g.site(3, 2));
        for w in path.windows(2) {
            assert_eq!(g.distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn coupling_graph_bfs_distance() {
        // A path graph 0-1-2-3.
        let g = CouplingGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.distance(0, 3), 3);
        assert_eq!(g.num_edges(), 3);
        let path = g.shortest_path(3, 0);
        assert_eq!(path, vec![3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_sites_panic() {
        let g = CouplingGraph::new(3, vec![(0, 1)]);
        let _ = g.distance(0, 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_grid_rejected() {
        let _ = Grid::new(0, 3);
    }
}
