//! Placing concrete circuits onto grid embeddings: per-gate routed-depth
//! accounting.
//!
//! [`routing_overhead_sweep`](crate::routing_overhead_sweep) prices the
//! *architecture* (one worst-case edge per tree level); this module prices
//! a *circuit*: every gate of a scheduled circuit is charged the grid
//! distance between its qubits' assigned cells under swap-based routing,
//! or a constant under teleportation routing, and the charges accumulate
//! along the qubit-conflict critical path — the mapped analogue of
//! [`qram_circuit::schedule::Schedule`] depth.
//!
//! This is how the repository cross-checks Fig. 8 bottom-up: the sweep's
//! closed-form per-level costs and the per-gate accounting of an actual
//! generated QRAM circuit agree on growth law.

use std::collections::HashMap;

use qram_circuit::{Circuit, Qubit};

use crate::{Grid, HTreeEmbedding, SWAP_DEPTH, TELEPORT_DEPTH};

/// How long-range gates are executed on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingDiscipline {
    /// Shuttle operands together and back with nearest-neighbor SWAPs:
    /// a distance-`d` gate costs `2·(d−1)·SWAP_DEPTH` extra layers.
    SwapChains,
    /// Teleport across the idle routing cells: any non-adjacent gate
    /// costs a constant `TELEPORT_DEPTH` extra layers.
    Teleportation,
}

/// An assignment of a circuit's qubits to cells of a grid.
///
/// Build one with [`Placement::new`] and assign registers cell by cell,
/// or use [`Placement::for_htree`] to place a QRAM circuit's tree
/// registers onto an [`HTreeEmbedding`] (routers onto router cells,
/// leaf-indexed registers onto data cells, interface qubits onto the
/// port).
#[derive(Debug, Clone)]
pub struct Placement {
    grid: Grid,
    site_of: HashMap<Qubit, (usize, usize)>,
}

impl Placement {
    /// An empty placement over `grid`.
    pub fn new(grid: Grid) -> Self {
        Placement {
            grid,
            site_of: HashMap::new(),
        }
    }

    /// Assigns `qubit` to `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the grid or already occupied by a
    /// different qubit.
    pub fn assign(&mut self, qubit: Qubit, cell: (usize, usize)) {
        assert!(
            cell.0 < self.grid.rows() && cell.1 < self.grid.cols(),
            "cell {cell:?} outside grid"
        );
        assert!(
            !self.site_of.values().any(|&c| c == cell),
            "cell {cell:?} already occupied"
        );
        self.site_of.insert(qubit, cell);
    }

    /// The cell assigned to `qubit`, if any.
    pub fn cell_of(&self, qubit: Qubit) -> Option<(usize, usize)> {
        self.site_of.get(&qubit).copied()
    }

    /// Number of placed qubits.
    pub fn len(&self) -> usize {
        self.site_of.len()
    }

    /// Whether no qubits are placed.
    pub fn is_empty(&self) -> bool {
        self.site_of.is_empty()
    }

    /// Places a QRAM circuit's structural registers onto an H-tree
    /// embedding. `routers` must hold the heap-ordered router register;
    /// `leaf_registers` are placed (in order) onto the data cells; any
    /// remaining registers (address, bus, wires, rails) are parked on
    /// the port path and the unused cells, nearest the root first —
    /// they interact only through the root in the generated circuits.
    ///
    /// # Panics
    ///
    /// Panics if register widths disagree with the embedding or the
    /// spare cells run out.
    pub fn for_htree(
        embedding: &HTreeEmbedding,
        routers: impl IntoIterator<Item = Qubit>,
        leaf_registers: Vec<Vec<Qubit>>,
        spare: impl IntoIterator<Item = Qubit>,
    ) -> Self {
        let grid = embedding.grid();
        let mut placement = Placement::new(grid);

        let routers: Vec<Qubit> = routers.into_iter().collect();
        assert_eq!(
            routers.len(),
            (1 << embedding.address_width()) - 1,
            "router register width mismatch"
        );
        for (i, &q) in routers.iter().enumerate() {
            placement.assign(q, embedding.router_position(i + 1));
        }

        for leaves in &leaf_registers {
            assert_eq!(
                leaves.len(),
                embedding.capacity(),
                "leaf register width mismatch"
            );
        }
        // The first leaf register takes the data cells; additional leaf
        // registers (dual rails, flags + rails) stack onto spare cells
        // adjacent in enumeration order.
        let mut leaf_iter = leaf_registers.into_iter();
        if let Some(first) = leaf_iter.next() {
            for (l, q) in first.into_iter().enumerate() {
                placement.assign(q, embedding.leaf_position(l));
            }
        }

        // Spare cells: port path first (closest to the root), then unused
        // cells in row-major order, then routing cells not on the port.
        let mut spare_cells: Vec<(usize, usize)> = embedding.port_path().to_vec();
        for r in 0..embedding.rows() {
            for c in 0..embedding.cols() {
                if embedding.role(r, c) == crate::CellRole::Unused {
                    spare_cells.push((r, c));
                }
            }
        }
        for r in 0..embedding.rows() {
            for c in 0..embedding.cols() {
                if embedding.role(r, c) == crate::CellRole::Routing
                    && !embedding.port_path().contains(&(r, c))
                {
                    spare_cells.push((r, c));
                }
            }
        }
        let mut spare_cells = spare_cells.into_iter();
        for leaves in leaf_iter {
            for q in leaves {
                let cell = spare_cells.next().expect("ran out of spare cells");
                placement.assign(q, cell);
            }
        }
        for q in spare {
            let cell = spare_cells.next().expect("ran out of spare cells");
            placement.assign(q, cell);
        }
        placement
    }

    /// Mapped depth of `circuit` under `discipline`: each gate occupies
    /// its qubits for `1 + extra(gate)` layers, where `extra` is the
    /// routing charge for the largest pairwise distance in the gate's
    /// support; depths accumulate along the qubit-conflict critical path.
    ///
    /// # Panics
    ///
    /// Panics if the circuit touches an unplaced qubit.
    pub fn mapped_depth(&self, circuit: &Circuit, discipline: RoutingDiscipline) -> usize {
        let mut busy: HashMap<Qubit, usize> = HashMap::new();
        let mut floor = 0usize;
        let mut depth = 0usize;
        for gate in circuit.gates() {
            if gate.is_barrier() {
                floor = depth;
                continue;
            }
            let qs = gate.qubits();
            let span = self.max_span(&qs);
            let extra = match discipline {
                RoutingDiscipline::SwapChains => 2 * span.saturating_sub(1) * SWAP_DEPTH,
                RoutingDiscipline::Teleportation => {
                    if span > 1 {
                        TELEPORT_DEPTH
                    } else {
                        0
                    }
                }
            };
            let start = qs
                .iter()
                .map(|q| busy.get(q).copied().unwrap_or(0))
                .max()
                .unwrap_or(floor)
                .max(floor);
            let end = start + 1 + extra;
            for q in qs {
                busy.insert(q, end);
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Extra mapped depth relative to the unmapped ASAP schedule.
    pub fn extra_depth(&self, circuit: &Circuit, discipline: RoutingDiscipline) -> usize {
        self.mapped_depth(circuit, discipline) - circuit.schedule().depth()
    }

    fn max_span(&self, qubits: &[Qubit]) -> usize {
        let mut max = 0;
        for (i, &a) in qubits.iter().enumerate() {
            for &b in &qubits[i + 1..] {
                let ca = self.site_of[&a];
                let cb = self.site_of[&b];
                max = max.max(self.grid.manhattan(ca, cb));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::{Circuit, Gate};

    fn line_placement(n: usize) -> Placement {
        let mut p = Placement::new(Grid::new(1, n));
        for i in 0..n {
            p.assign(Qubit(i as u32), (0, i));
        }
        p
    }

    #[test]
    fn adjacent_gates_cost_base_depth() {
        let p = line_placement(3);
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        assert_eq!(p.mapped_depth(&c, RoutingDiscipline::SwapChains), 1);
        assert_eq!(p.mapped_depth(&c, RoutingDiscipline::Teleportation), 1);
    }

    #[test]
    fn distant_gates_cost_by_discipline() {
        let p = line_placement(5);
        let mut c = Circuit::new(5);
        c.push(Gate::cx(Qubit(0), Qubit(4))); // distance 4
        assert_eq!(
            p.mapped_depth(&c, RoutingDiscipline::SwapChains),
            1 + 2 * 3 * SWAP_DEPTH
        );
        assert_eq!(
            p.mapped_depth(&c, RoutingDiscipline::Teleportation),
            1 + TELEPORT_DEPTH
        );
    }

    #[test]
    fn three_qubit_gates_use_largest_span() {
        let p = line_placement(4);
        let mut c = Circuit::new(4);
        c.push(Gate::cswap(Qubit(0), Qubit(1), Qubit(3))); // max span 3
        assert_eq!(
            p.mapped_depth(&c, RoutingDiscipline::SwapChains),
            1 + 2 * 2 * SWAP_DEPTH
        );
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_assignment_rejected() {
        let mut p = Placement::new(Grid::new(2, 2));
        p.assign(Qubit(0), (0, 0));
        p.assign(Qubit(1), (0, 0));
    }

    #[test]
    fn htree_placement_places_all_tree_registers() {
        let e = HTreeEmbedding::new(3);
        let m = 3usize;
        let routers: Vec<Qubit> = (0..(1 << m) - 1).map(|i| Qubit(i as u32)).collect();
        let base = routers.len() as u32;
        let leaves: Vec<Qubit> = (0..1 << m).map(|i| Qubit(base + i as u32)).collect();
        let spare: Vec<Qubit> = (0..4).map(|i| Qubit(base + 8 + i)).collect();
        let p = Placement::for_htree(&e, routers.clone(), vec![leaves.clone()], spare.clone());
        assert_eq!(p.len(), routers.len() + leaves.len() + spare.len());
        // Routers landed on router cells, leaves on data cells.
        let (r, c) = p.cell_of(routers[0]).unwrap();
        assert_eq!(e.role(r, c), crate::CellRole::Router);
        let (r, c) = p.cell_of(leaves[0]).unwrap();
        assert_eq!(e.role(r, c), crate::CellRole::Data);
    }

    #[test]
    fn mapped_depths_respect_fig8_ordering() {
        // A synthetic tree-walk circuit over H-tree placements must show
        // swap ≥ teleport extra depth, growing with m.
        for m in 2..=5 {
            let e = HTreeEmbedding::new(m);
            let routers: Vec<Qubit> = (0..(1 << m) - 1).map(|i| Qubit(i as u32)).collect();
            let p = Placement::for_htree(&e, routers.clone(), Vec::new(), Vec::new());
            let mut c = Circuit::new(routers.len());
            // Parent-child CX down every edge of the tree.
            for v in 2..(1 << m) - 1 {
                c.push(Gate::cx(routers[v / 2 - 1], routers[v - 1]));
            }
            let swap = p.extra_depth(&c, RoutingDiscipline::SwapChains);
            let tele = p.extra_depth(&c, RoutingDiscipline::Teleportation);
            assert!(swap >= tele, "m={m}: swap {swap} < teleport {tele}");
        }
    }
}
